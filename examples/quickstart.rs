//! Quickstart: compile one benchmark with convergent hyperblock formation
//! and compare it against the basic-block baseline on the TRIPS-like timing
//! model.
//!
//! Run with `cargo run --release --example quickstart`.

use chf::core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf::sim::timing::{simulate_timing, TimingConfig};
use chf::workloads::micro;

fn main() {
    let w = micro::gzip_1();
    println!("benchmark: {}\n", w.name);

    // Baseline: basic blocks as TRIPS blocks.
    let base = compile(
        &w.function,
        &w.profile,
        &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks),
    );
    let base_t =
        simulate_timing(&base.function, &w.args, &w.memory, &TimingConfig::trips()).unwrap();

    // Convergent hyperblock formation: the paper's (IUPO) configuration.
    let conv = compile(&w.function, &w.profile, &CompileConfig::convergent());
    let conv_t =
        simulate_timing(&conv.function, &w.args, &w.memory, &TimingConfig::trips()).unwrap();

    assert_eq!(
        base_t.ret, conv_t.ret,
        "compilation must preserve behaviour"
    );

    println!("                      basic blocks    convergent (IUPO)");
    println!(
        "static blocks        {:>12}    {:>12}",
        base.function.block_count(),
        conv.function.block_count()
    );
    println!(
        "dynamic blocks       {:>12}    {:>12}",
        base_t.blocks_executed, conv_t.blocks_executed
    );
    println!(
        "cycles               {:>12}    {:>12}",
        base_t.cycles, conv_t.cycles
    );
    println!(
        "mispredictions       {:>12}    {:>12}",
        base_t.mispredictions, conv_t.mispredictions
    );
    println!(
        "\ntransformations (m/t/u/p): {}   speedup: {:.2}x",
        conv.stats.mtup(),
        base_t.cycles as f64 / conv_t.cycles as f64
    );
    println!("\ncompiled hyperblocks:\n{}", conv.function);
}
