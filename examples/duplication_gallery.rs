//! The paper's Figures 2–4, executed: classical tail duplication, head
//! duplication as peeling, and head duplication as unrolling, each shown as
//! CFG before → after.
//!
//! Run with `cargo run --example duplication_gallery`.

use chf::core::duplication::{classify, duplicate_for_merge, DuplicationKind};
use chf::core::ifconvert::combine;
use chf::ir::builder::FunctionBuilder;
use chf::ir::function::Function;
use chf::ir::ids::BlockId;
use chf::ir::instr::Operand;
use chf::ir::loops::LoopForest;

fn reg(r: chf::ir::ids::Reg) -> Operand {
    Operand::Reg(r)
}

/// Figure 2's CFG: `A -> {B, D}; B -> D` — `D` is a merge point with a side
/// entrance.
fn figure2() -> (Function, BlockId, BlockId) {
    let mut fb = FunctionBuilder::new("fig2", 1);
    let a = fb.create_named_block("A");
    let b = fb.create_named_block("B");
    let d = fb.create_named_block("D");
    fb.switch_to(a);
    let c = fb.cmp_lt(reg(fb.param(0)), Operand::Imm(5));
    fb.branch(c, b, d);
    fb.switch_to(b);
    fb.store(Operand::Imm(0), Operand::Imm(1));
    fb.jump(d);
    fb.switch_to(d);
    let x = fb.load(Operand::Imm(0));
    fb.ret(Some(reg(x)));
    (fb.build().unwrap(), a, d)
}

/// Figures 3/4's CFG: `A -> B; B -> B | C` — `B` is a self-loop header.
fn figure34() -> (Function, BlockId, BlockId) {
    let mut fb = FunctionBuilder::new("fig34", 1);
    let a = fb.create_named_block("A");
    let b = fb.create_named_block("B");
    let c = fb.create_named_block("C");
    fb.switch_to(a);
    let i = fb.mov(Operand::Imm(0));
    fb.jump(b);
    fb.switch_to(b);
    let i2 = fb.add(reg(i), Operand::Imm(1));
    fb.mov_to(i, reg(i2));
    let t = fb.cmp_lt(reg(i), reg(fb.param(0)));
    fb.branch(t, b, c);
    fb.switch_to(c);
    fb.ret(Some(reg(i)));
    (fb.build().unwrap(), a, b)
}

fn show(title: &str, f: &Function) {
    println!("--- {title} ---\n{f}");
}

fn main() {
    // Figure 2: classical tail duplication.
    let (mut f, a, d) = figure2();
    let forest = LoopForest::of(&f);
    assert_eq!(classify(&f, &forest, a, d), DuplicationKind::Tail);
    show("Figure 2a: original CFG (D is a merge point)", &f);
    let d_copy = duplicate_for_merge(&mut f, a, d);
    show("Figure 2c/2d: D duplicated to D', A retargeted", &f);
    combine(&mut f, a, d_copy).unwrap();
    show("Figure 2e: D' if-converted into A", &f);

    // Figure 3: head duplication implements peeling.
    let (mut f, a, b) = figure34();
    let forest = LoopForest::of(&f);
    assert_eq!(classify(&f, &forest, a, b), DuplicationKind::Peel);
    show("Figure 3a: original CFG (B is a loop header)", &f);
    let b_copy = duplicate_for_merge(&mut f, a, b);
    show(
        "Figure 3b/3c: B peeled to B' (B' -> B is a loop entrance)",
        &f,
    );
    combine(&mut f, a, b_copy).unwrap();
    show("Figure 3d: peeled iteration if-converted into A", &f);

    // Figure 4: head duplication implements unrolling.
    let (mut f, _a, b) = figure34();
    let forest = LoopForest::of(&f);
    assert_eq!(classify(&f, &forest, b, b), DuplicationKind::Unroll);
    show("Figure 4a: original CFG (B's back edge targets itself)", &f);
    let b_copy = duplicate_for_merge(&mut f, b, b);
    show(
        "Figure 4b/4c: body copied, back edge rewired through B'",
        &f,
    );
    combine(&mut f, b, b_copy).unwrap();
    show("Figure 4d: unrolled iteration if-converted into B", &f);

    println!("All three transformations use the same duplication mechanism —");
    println!("the paper's central observation (§4.1).");
}
