//! Working with the textual IR format: write a function by hand, parse it,
//! run it, compile it, and print the result.
//!
//! Run with `cargo run --example textual_ir`.

use chf::core::pipeline::{compile, CompileConfig};
use chf::ir::parse::parse_function;
use chf::sim::functional::{profile_run, run, RunConfig};

const GCD: &str = "\
fn gcd(params: 2, regs: 4)
B0:
  exits:
    -> B1
B1:
    r2 = ne r1, #0
  exits:
    [r2] -> B2
    -> ret r0
B2:
    r3 = rem r0, r1
    r0 = mov r1
    r1 = mov r3
  exits:
    -> B1
";

fn main() {
    let f = parse_function(GCD).expect("valid textual IR");
    println!("parsed:\n{f}");

    let r = run(&f, &[252, 105], &[], &RunConfig::default()).unwrap();
    println!(
        "gcd(252, 105) = {:?}  ({} blocks executed)",
        r.ret, r.blocks_executed
    );
    assert_eq!(r.ret, Some(21));

    // Compile it like any workload: profile, form hyperblocks, compare.
    let profile = profile_run(&f, &[252, 105], &[]).unwrap();
    let compiled = compile(&f, &profile, &CompileConfig::convergent());
    let r2 = run(&compiled.function, &[252, 105], &[], &RunConfig::default()).unwrap();
    assert_eq!(r2.ret, Some(21));
    println!(
        "\nafter convergent formation: {} blocks executed (was {}), m/t/u/p = {}",
        r2.blocks_executed,
        r.blocks_executed,
        compiled.stats.mtup()
    );
    println!("\ncompiled:\n{}", compiled.function);

    // The printer's output round-trips through the parser.
    let text = compiled.function.to_string();
    let reparsed = parse_function(&text).expect("printer output parses");
    assert_eq!(reparsed.to_string(), text);
    println!("print → parse → print round-trip: ok");
}
