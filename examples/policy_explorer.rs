//! Block-selection policies head-to-head (paper §5/§7.2): run one
//! benchmark under the VLIW, depth-first, and breadth-first heuristics and
//! show why EDGE prefers breadth-first.
//!
//! Run with `cargo run --release --example policy_explorer [benchmark]`.

use chf::core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf::core::PolicyKind;
use chf::sim::timing::{simulate_timing, TimingConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "bzip2_3".into());
    let all = chf::workloads::microbenchmarks();
    let w = all
        .iter()
        .find(|w| w.name == name)
        .unwrap_or_else(|| panic!("unknown benchmark {name}; try one of Table 1's rows"));

    let base = compile(
        &w.function,
        &w.profile,
        &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks),
    );
    let base_t =
        simulate_timing(&base.function, &w.args, &w.memory, &TimingConfig::trips()).unwrap();
    println!(
        "benchmark: {}   basic blocks: {} cycles\n",
        w.name, base_t.cycles
    );
    println!(
        "{:<18} {:>8} {:>10} {:>9} {:>12}  m/t/u/p",
        "policy", "cycles", "improve%", "mispred%", "nullified"
    );

    for (label, policy, iterative) in [
        ("VLIW", PolicyKind::Vliw, false),
        ("Convergent VLIW", PolicyKind::Vliw, true),
        ("depth-first", PolicyKind::DepthFirst, true),
        ("breadth-first", PolicyKind::BreadthFirst, true),
    ] {
        let c = compile(
            &w.function,
            &w.profile,
            &CompileConfig::with_policy(policy, iterative),
        );
        let t = simulate_timing(&c.function, &w.args, &w.memory, &TimingConfig::trips()).unwrap();
        assert_eq!(t.ret, Some(w.expected), "{label} miscompiled {name}");
        println!(
            "{:<18} {:>8} {:>9.1}% {:>8.1}% {:>12}  {}",
            label,
            t.cycles,
            (base_t.cycles as f64 - t.cycles as f64) / base_t.cycles as f64 * 100.0,
            t.misprediction_rate() * 100.0,
            t.insts_nullified,
            c.stats.mtup(),
        );
    }

    println!("\nOn bzip2_3, depth-first and VLIW exclude the rarely-taken block and");
    println!("must tail-duplicate the final block of the loop, making the induction");
    println!("variable data-dependent on the slow exit test (paper §7.2).");
}
