//! The paper's Figure 1 / Section 3 motivating example: an outer loop with
//! two inner while loops that typically iterate three times. Each static
//! phase ordering handles it differently; convergent formation produces the
//! densest blocks.
//!
//! Run with `cargo run --release --example phase_ordering`.

use chf::core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf::ir::builder::FunctionBuilder;
use chf::ir::instr::Operand;
use chf::sim::functional::{profile_run, run, RunConfig};
use chf::sim::timing::{simulate_timing, TimingConfig};

fn reg(r: chf::ir::ids::Reg) -> Operand {
    Operand::Reg(r)
}

/// Figure 1a's shape: outer loop A..I with two inner while loops (CD and
/// FG) whose exit tests run every iteration, each typically iterating three
/// times (data-driven).
fn figure1_program() -> chf::ir::function::Function {
    let mut fb = FunctionBuilder::new("figure1", 0);
    let entry = fb.create_named_block("A");
    fb.switch_to(entry);
    let acc = fb.mov(Operand::Imm(0));
    let outer_i = fb.mov(Operand::Imm(0));

    let outer_h = fb.create_named_block("B");
    let outer_body = fb.create_block();
    let done = fb.create_named_block("I");
    fb.jump(outer_h);
    fb.switch_to(outer_h);
    let oc = fb.cmp_lt(reg(outer_i), Operand::Imm(30));
    fb.branch(oc, outer_body, done);

    fb.switch_to(outer_body);
    // First inner while loop (CD): trip count from data (mostly 3).
    let x0 = fb.rem(reg(outer_i), Operand::Imm(3));
    let x = fb.add(reg(x0), Operand::Imm(2)); // 2..4, mode 3
    let xv = fb.mov(reg(x));
    let h1 = fb.create_named_block("C");
    let b1 = fb.create_named_block("D");
    let x1 = fb.create_block();
    fb.jump(h1);
    fb.switch_to(h1);
    let c1 = fb.cmp_gt(reg(xv), Operand::Imm(0));
    fb.branch(c1, b1, x1);
    fb.switch_to(b1);
    let a2 = fb.add(reg(acc), reg(xv));
    fb.mov_to(acc, reg(a2));
    let xd = fb.sub(reg(xv), Operand::Imm(1));
    fb.mov_to(xv, reg(xd));
    fb.jump(h1);
    fb.switch_to(x1);

    // E: between the loops.
    let e1 = fb.mul(reg(acc), Operand::Imm(3));
    let e2 = fb.and(reg(e1), Operand::Imm(0xffff));
    fb.mov_to(acc, reg(e2));

    // Second inner while loop (FG).
    let yv = fb.mov(reg(x));
    let h2 = fb.create_named_block("F");
    let b2 = fb.create_named_block("G");
    let x2 = fb.create_block();
    fb.jump(h2);
    fb.switch_to(h2);
    let c2 = fb.cmp_gt(reg(yv), Operand::Imm(0));
    fb.branch(c2, b2, x2);
    fb.switch_to(b2);
    let a3 = fb.xor(reg(acc), reg(yv));
    fb.mov_to(acc, reg(a3));
    let yd = fb.sub(reg(yv), Operand::Imm(1));
    fb.mov_to(yv, reg(yd));
    fb.jump(h2);
    fb.switch_to(x2);

    // H: outer latch.
    let i2 = fb.add(reg(outer_i), Operand::Imm(1));
    fb.mov_to(outer_i, reg(i2));
    fb.jump(outer_h);

    fb.switch_to(done);
    fb.ret(Some(reg(acc)));
    fb.build().unwrap()
}

fn main() {
    let f = figure1_program();
    let profile = profile_run(&f, &[], &[]).unwrap();
    let base = run(&f, &[], &[], &RunConfig::default()).unwrap();
    println!("Figure 1 example: outer loop with two inner while loops (trips ≈ 3)\n");
    println!(
        "basic-block form: {} static blocks, {} dynamic blocks\n",
        f.block_count(),
        base.blocks_executed
    );
    println!(
        "{:<10} {:>8} {:>8} {:>8} {:>10}  m/t/u/p",
        "ordering", "static", "dynamic", "cycles", "improve%"
    );

    let mut bb_cycles = 0;
    for ordering in [
        PhaseOrdering::BasicBlocks,
        PhaseOrdering::Upio,
        PhaseOrdering::Iupo,
        PhaseOrdering::IupThenO,
        PhaseOrdering::Iupo_,
    ] {
        let c = compile(&f, &profile, &CompileConfig::with_ordering(ordering));
        let t = simulate_timing(&c.function, &[], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(t.ret, base.ret, "{} miscompiled", ordering.label());
        if ordering == PhaseOrdering::BasicBlocks {
            bb_cycles = t.cycles;
        }
        println!(
            "{:<10} {:>8} {:>8} {:>8} {:>9.1}%  {}",
            ordering.label(),
            c.function.block_count(),
            t.blocks_executed,
            t.cycles,
            (bb_cycles as f64 - t.cycles as f64) / bb_cycles as f64 * 100.0,
            c.stats.mtup(),
        );
    }
    println!("\nConvergent formation folds the inner-loop iterations and the");
    println!("surrounding code into the same blocks (Figure 1d), where the");
    println!("static orderings stop at Figure 1b/1c.");
}
