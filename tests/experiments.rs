//! Smoke tests over the experiment harness: the headline claims of the
//! paper's evaluation must hold on the reproduced tables.

use chf_bench::{fig7, table1, table2, table3};

/// Table 1's headline: convergent hyperblock formation outperforms the
/// classical discrete phase orderings on average (the paper reports a 2–11%
/// margin over UPIO/IUPO).
#[test]
fn table1_convergent_beats_discrete_on_average() {
    let rows = table1::run();
    assert_eq!(rows.len(), 24);
    let avg = |k: usize| -> f64 {
        rows.iter().map(|r| r.configs[k].improvement).sum::<f64>() / rows.len() as f64
    };
    let (upio, iupo, iup_o, iupo_full) = (avg(0), avg(1), avg(2), avg(3));
    assert!(
        iupo_full > upio && iupo_full > iupo,
        "convergent (IUPO) must beat discrete orderings: {iupo_full:.1} vs {upio:.1}/{iupo:.1}"
    );
    assert!(
        iup_o > upio,
        "(IUP)O must beat UPIO: {iup_o:.1} vs {upio:.1}"
    );
    // Hyperblock formation must be broadly profitable.
    assert!(
        iupo_full > 15.0,
        "average improvement too low: {iupo_full:.1}"
    );
}

/// Table 2's headline: breadth-first is the best EDGE heuristic; iterative
/// optimization improves the VLIW heuristic; bzip2_3 is a pathology for
/// DF/VLIW but fine for BF (§7.2).
#[test]
fn table2_policy_ordering_matches_paper() {
    let rows = table2::run();
    let avg =
        |k: usize| -> f64 { rows.iter().map(|r| r.results[k].2).sum::<f64>() / rows.len() as f64 };
    let (vliw, conv_vliw, df, bf) = (avg(0), avg(1), avg(2), avg(3));
    assert!(
        bf > vliw && bf > df,
        "BF must be best: {bf:.1} vs {vliw:.1}/{df:.1}"
    );
    assert!(
        conv_vliw >= vliw,
        "iterative optimization must not hurt VLIW: {conv_vliw:.1} vs {vliw:.1}"
    );

    let bzip2_3 = rows.iter().find(|r| r.name == "bzip2_3").unwrap();
    let (df_imp, bf_imp) = (bzip2_3.results[2].2, bzip2_3.results[3].2);
    assert!(
        bf_imp > 20.0 && df_imp < 0.0,
        "bzip2_3 pathology: BF {bf_imp:.1} should win, DF {df_imp:.1} should lose"
    );

    // parser_1: the VLIW heuristic's exclusions raise its misprediction
    // rate well above breadth-first's (the paper reports 11×).
    let parser = rows.iter().find(|r| r.name == "parser_1").unwrap();
    let (vliw_mr, bf_mr) = (parser.results[0].3, parser.results[3].3);
    assert!(
        vliw_mr > bf_mr,
        "parser_1 misprediction rates: VLIW {vliw_mr:.3} !> BF {bf_mr:.3}"
    );
}

/// Table 3's headline: block counts improve monotonically from UPIO to the
/// fully convergent ordering, on average, over the SPEC-like suite.
#[test]
fn table3_block_count_ordering() {
    let rows = table3::run();
    assert_eq!(rows.len(), 19);
    let avg =
        |k: usize| -> f64 { rows.iter().map(|r| r.results[k].2).sum::<f64>() / rows.len() as f64 };
    let (upio, iupo, iup_o, iupo_full) = (avg(0), avg(1), avg(2), avg(3));
    assert!(iupo > upio, "IUPO {iupo:.1} !> UPIO {upio:.1}");
    assert!(iup_o > iupo, "(IUP)O {iup_o:.1} !> IUPO {iupo:.1}");
    assert!(
        iupo_full >= iup_o,
        "(IUPO) {iupo_full:.1} !>= (IUP)O {iup_o:.1}"
    );
    // Every composite must improve under the convergent ordering.
    for r in &rows {
        let conv = r.results[3].2;
        assert!(conv > 0.0, "{} did not improve: {conv:.1}", r.name);
    }
}

/// Budget-ablation headline: under an equal, constrained trial budget the
/// profile-guided hot-first policy spends its ledger on the hot regions
/// first, so its total dynamic-block reduction over the 19 composites is
/// never worse than breadth-first's.
#[test]
fn table2_budget_hotfirst_at_least_matches_breadth_first() {
    let rows = table2::run_budget_with(4, table2::DEFAULT_TRIAL_BUDGET);
    assert_eq!(rows.len(), 19);
    let total = |k: usize| -> u64 {
        rows.iter()
            .filter(|r| r.error.is_none())
            .map(|r| r.results[k].1)
            .sum()
    };
    let (bf, hf) = (total(0), total(1));
    assert!(
        hf <= bf,
        "HF dynamic blocks {hf} must not exceed BF {bf} at equal budget"
    );
    // The budget must genuinely constrain the suite: the ledger should
    // record skipped candidates somewhere, for every policy column.
    for k in 0..3 {
        assert!(
            rows.iter()
                .filter(|r| r.error.is_none())
                .any(|r| r.results[k].3.budget_skipped > 0),
            "column {k}: budget never binds — ablation is vacuous"
        );
    }
}

/// Portfolio headline: the per-function tournament over
/// `{BF, HF, DF} × {budget, unbounded}` contains every fixed column as an
/// entrant, so its suite-total dynamic block count can never exceed the
/// best fixed policy's — in particular HF's, the strongest fixed column.
#[test]
fn table2_portfolio_never_worse_than_any_fixed_policy() {
    let rows = table2::run_budget_with(4, table2::DEFAULT_TRIAL_BUDGET);
    assert_eq!(rows.len(), 19);
    let healthy: Vec<_> = rows.iter().filter(|r| r.error.is_none()).collect();
    assert_eq!(healthy.len(), 19, "portfolio run poisoned a composite");
    let portfolio: u64 = healthy
        .iter()
        .map(|r| {
            r.portfolio
                .as_ref()
                .expect("healthy row has portfolio")
                .blocks
        })
        .sum();
    for k in 0..3 {
        let fixed: u64 = healthy.iter().map(|r| r.results[k].1).sum();
        let label = healthy[0].results[k].0;
        assert!(
            portfolio <= fixed,
            "portfolio {portfolio} blocks > fixed {label} {fixed}"
        );
    }
    // Per-row dominance too: the winner is selected per function, so it
    // must match or beat every fixed column on every single composite.
    for r in &healthy {
        let p = r.portfolio.as_ref().unwrap();
        for (label, blocks, ..) in &r.results {
            assert!(
                p.blocks <= *blocks,
                "{}: portfolio {} ({}) > {label} {blocks}",
                r.name,
                p.blocks,
                p.winner
            );
        }
        assert!(
            p.stats.tournament_entrants == 6,
            "{}: portfolio ran {} entrants, expected 6",
            r.name,
            p.stats.tournament_entrants
        );
    }
}

/// Figure 7's headline: cycle-count reduction correlates positively with
/// block-count reduction.
#[test]
fn fig7_positive_correlation() {
    let rows = table1::run();
    let pts = fig7::points(&rows);
    assert_eq!(pts.len(), 24 * 4);
    let fit = fig7::linear_fit(&pts);
    assert!(fit.slope > 0.0, "slope {:.2} must be positive", fit.slope);
    assert!(
        fit.r2 > 0.3,
        "correlation too weak: r^2 = {:.3} (paper: 0.78)",
        fit.r2
    );
}
