//! Backend-stage integration (paper §6): register allocation, fanout
//! insertion, and reverse if-conversion over the real workload suite.

use chf::core::constraints::BlockConstraints;
use chf::core::fanout::insert_fanout;
use chf::core::pipeline::{compile, CompileConfig};
use chf::core::regalloc::{allocate_registers, RegFileSpec};
use chf::core::reverse::split_oversized;
use chf::ir::verify::verify;
use chf::sim::functional::{run, RunConfig};

/// Observable digest ignoring the compiler-private spill area.
fn digest(
    f: &chf::ir::function::Function,
    args: &[i64],
    mem: &[(i64, i64)],
) -> (Option<i64>, Vec<(i64, i64)>) {
    let r = run(f, args, mem, &RunConfig::default()).unwrap();
    let (ret, m) = r.digest();
    (ret, m.into_iter().filter(|(a, _)| *a >= 0).collect())
}

/// "TRIPS has a large number of architectural registers": none of the
/// formed microbenchmarks should need spill code with 128 registers.
#[test]
fn formed_micros_never_spill_on_trips() {
    for w in chf::workloads::microbenchmarks() {
        let mut c = compile(&w.function, &w.profile, &CompileConfig::convergent());
        let stats = allocate_registers(&mut c.function, &RegFileSpec::trips());
        assert_eq!(stats.spilled, 0, "{} spilled: {stats:?}", w.name);
        assert!(stats.max_pressure <= 128, "{}", w.name);
    }
}

/// With an artificially tiny register file the allocator must spill — and
/// the program must still behave identically.
#[test]
fn tiny_register_file_spills_correctly() {
    let spec = RegFileSpec {
        num_regs: 3,
        spill_base: -1_000_000,
    };
    let mut spilled_somewhere = false;
    // Use the basic-block forms: they carry more values across block
    // boundaries than the collapsed hyperblocks do.
    for w in chf::workloads::microbenchmarks().into_iter().take(10) {
        let mut f = w.function.clone();
        let before = digest(&f, &w.args, &w.memory);
        let stats = allocate_registers(&mut f, &spec);
        verify(&f).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        spilled_somewhere |= stats.spilled > 0;
        let after = digest(&f, &w.args, &w.memory);
        assert_eq!(before, after, "{} changed behaviour after spilling", w.name);
        assert_eq!(after.0, Some(w.expected), "{}", w.name);
    }
    assert!(
        spilled_somewhere,
        "three registers should force some spills"
    );
}

/// Fanout insertion over compiled workloads stays within the constraints'
/// headroom and preserves behaviour.
#[test]
fn fanout_fits_headroom_on_compiled_workloads() {
    let constraints = BlockConstraints::trips();
    for w in chf::workloads::microbenchmarks() {
        // Compile without the built-in backend so the measurement is clean.
        let mut config = CompileConfig::convergent();
        config.backend = false;
        let mut c = compile(&w.function, &w.profile, &config);
        let before = digest(&c.function, &w.args, &w.memory);
        let stats = insert_fanout(&mut c.function, 4);
        verify(&c.function).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        assert_eq!(
            digest(&c.function, &w.args, &w.memory),
            before,
            "{}",
            w.name
        );
        // Any block pushed over the budget must be recoverable by reverse
        // if-conversion.
        split_oversized(&mut c.function, &constraints);
        for (b, blk) in c.function.blocks() {
            assert!(
                blk.size() <= constraints.max_insts,
                "{}: block {b} oversize after fanout+split ({} slots, {} movs inserted)",
                w.name,
                blk.size(),
                stats.movs_inserted
            );
        }
        assert_eq!(
            digest(&c.function, &w.args, &w.memory),
            before,
            "{}",
            w.name
        );
    }
}

/// The full pipeline with the backend enabled (the default) keeps every
/// workload correct — the configuration the evaluation harness measures.
#[test]
fn default_pipeline_with_backend_is_correct_on_spec_suite() {
    for w in chf::workloads::spec_suite().into_iter().take(6) {
        let c = compile(&w.function, &w.profile, &CompileConfig::convergent());
        let r = run(&c.function, &w.args, &w.memory, &RunConfig::default()).unwrap();
        assert_eq!(r.ret, Some(w.expected), "{}", w.name);
    }
}
