//! The checked-in trace corpus is a contract: every `.til` entry must
//! parse back, re-measure to exactly its manifest, and do so identically
//! at any worker count. This is the same gate `verify.sh corpus` runs in
//! CI, exercised here through the library so `cargo test` catches a
//! corpus/compiler skew without the release binary.

use chf_corpus::store::Class;
use chf_corpus::{load_corpus, replay_corpus, Expect};
use std::path::PathBuf;

fn corpus_root() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus")
}

#[test]
fn every_entry_parses_with_a_consistent_manifest() {
    let entries = load_corpus(&corpus_root()).expect("corpus loads");
    assert!(!entries.is_empty(), "the seed corpus must not be empty");
    assert!(
        entries.iter().any(|e| e.class == Class::Failing),
        "the seed corpus pins at least one verifier-refused entry"
    );
    assert!(
        entries.iter().any(|e| e.class == Class::Passing),
        "the seed corpus pins at least one formed entry"
    );
    for e in &entries {
        // Round-trip stability: rendering the parsed function and parsing
        // it again is a fixed point, so the stored text is canonical.
        let rendered = e.function.to_string();
        let reparsed = chf_ir::parse::parse_function(&rendered)
            .unwrap_or_else(|err| panic!("{}: re-parse failed: {err}", e.path.display()));
        assert_eq!(
            reparsed.to_string(),
            rendered,
            "{}: text form is not a fixed point",
            e.path.display()
        );
        // The manifest's own invariants (measured block present iff the
        // class needs one) are enforced at load; spot-check the linkage.
        match e.manifest.expect {
            Expect::Rejected => assert!(e.manifest.measured.is_none()),
            _ => assert!(e.manifest.measured.is_some()),
        }
    }
}

#[test]
fn corpus_replays_clean_and_identically_at_1_2_8_workers() {
    let root = corpus_root();
    let reports: Vec<_> = [1, 2, 8]
        .iter()
        .map(|&jobs| replay_corpus(&root, jobs).expect("replay runs"))
        .collect();
    for r in &reports {
        assert!(
            r.is_clean(),
            "corpus drifted — formation stats or digests no longer match \
             the pinned manifests: {:?}",
            r.drifts
        );
    }
    let fragments: Vec<String> = reports.iter().map(|r| r.json_fragment()).collect();
    assert_eq!(fragments[0], fragments[1], "1 vs 2 workers");
    assert_eq!(fragments[0], fragments[2], "1 vs 8 workers");
}
