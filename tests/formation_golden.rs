//! Golden-snapshot guard for convergent formation.
//!
//! The trial/commit machinery in `chf_core::convergent` is performance
//! critical and was rewritten from whole-function-clone trials to
//! block-scoped snapshot/rollback trials. This test pins the *observable
//! formation trajectory* — the paper's `m/t/u/p` static transformation
//! counts (plus rejected-trial counts) and the final block count of every
//! compiled function — on the 24-microbenchmark suite across all five phase
//! orderings. Any behavioural drift in the incremental path shows up as a
//! diff against `tests/golden/formation_stats.txt`, which was captured from
//! the original scratch-space (clone-per-trial) implementation.
//!
//! To re-bless after an *intentional* formation change:
//!
//! ```sh
//! CHF_BLESS=1 cargo test --test formation_golden
//! ```

use chf_core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf_core::PolicyKind;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/formation_stats.txt";
const GOLDEN_HOTFIRST_PATH: &str = "tests/golden/formation_stats_hotfirst.txt";

/// Render the full formation trajectory of the micro suite as stable text:
/// one line per (benchmark, ordering) with m/t/u/p/failures and the final
/// block count.
fn snapshot() -> String {
    let mut out = String::new();
    out.push_str("# benchmark ordering m t u p failures blocks\n");
    for w in chf_workloads::microbenchmarks() {
        for ordering in [
            PhaseOrdering::BasicBlocks,
            PhaseOrdering::Upio,
            PhaseOrdering::Iupo,
            PhaseOrdering::IupThenO,
            PhaseOrdering::Iupo_,
        ] {
            let c = compile(
                &w.function,
                &w.profile,
                &CompileConfig::with_ordering(ordering),
            );
            let s = c.stats;
            writeln!(
                out,
                "{} {} {} {} {} {} {} {}",
                w.name,
                ordering.label(),
                s.merges,
                s.tail_dups,
                s.unrolls,
                s.peels,
                s.failures,
                c.function.block_count(),
            )
            .unwrap();
        }
    }
    out
}

/// Render the hot-first policy's formation trajectory on the micro suite:
/// one line per (benchmark, iterative-opt flag) with the full `m/t/u/p`
/// (plus rejected-trial counts) and the final block count. Pins the
/// profile-guided ordering byte-for-byte, separately from the historical
/// breadth-first golden.
fn snapshot_hotfirst() -> String {
    let mut out = String::new();
    out.push_str("# benchmark iter_opt m t u p failures blocks\n");
    for w in chf_workloads::microbenchmarks() {
        for iter_opt in [false, true] {
            let c = compile(
                &w.function,
                &w.profile,
                &CompileConfig::with_policy(PolicyKind::HotFirst, iter_opt),
            );
            let s = c.stats;
            writeln!(
                out,
                "{} {} {} {} {} {} {} {}",
                w.name,
                iter_opt,
                s.merges,
                s.tail_dups,
                s.unrolls,
                s.peels,
                s.failures,
                c.function.block_count(),
            )
            .unwrap();
        }
    }
    out
}

/// Compare (or, under `CHF_BLESS`, re-capture) one golden snapshot.
fn check_golden(golden_path: &str, actual: &str) {
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(golden_path);
    if std::env::var_os("CHF_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), actual.len());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with CHF_BLESS=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        // Produce a focused diff rather than two multi-kilobyte blobs.
        let mut diff = String::new();
        for (e, a) in expected.lines().zip(actual.lines()) {
            if e != a {
                let _ = writeln!(diff, "-{e}\n+{a}");
            }
        }
        let (el, al) = (expected.lines().count(), actual.lines().count());
        if el != al {
            let _ = writeln!(diff, "line counts differ: expected {el}, actual {al}");
        }
        panic!(
            "formation trajectory drifted from {golden_path} — the trial/commit \
             path is no longer bit-identical to the golden capture:\n{diff}"
        );
    }
}

#[test]
fn formation_stats_match_golden() {
    check_golden(GOLDEN_PATH, &snapshot());
}

#[test]
fn hotfirst_formation_stats_match_golden() {
    check_golden(GOLDEN_HOTFIRST_PATH, &snapshot_hotfirst());
}
