//! End-to-end correctness: every workload, compiled under every phase
//! ordering and policy, must preserve observable behaviour on both
//! simulators, satisfy the structural constraints, and verify.

use chf::core::constraints::BlockConstraints;
use chf::core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf::core::PolicyKind;
use chf::ir::verify::verify;
use chf::sim::functional::{run, RunConfig};
use chf::sim::timing::{simulate_timing, TimingConfig};

fn all_orderings() -> [PhaseOrdering; 5] {
    [
        PhaseOrdering::BasicBlocks,
        PhaseOrdering::Upio,
        PhaseOrdering::Iupo,
        PhaseOrdering::IupThenO,
        PhaseOrdering::Iupo_,
    ]
}

#[test]
fn all_microbenchmarks_all_orderings_preserve_behaviour() {
    for w in chf::workloads::microbenchmarks() {
        let base = run(&w.function, &w.args, &w.memory, &RunConfig::default()).unwrap();
        assert_eq!(base.ret, Some(w.expected), "{} baseline", w.name);
        for ordering in all_orderings() {
            let c = compile(
                &w.function,
                &w.profile,
                &CompileConfig::with_ordering(ordering),
            );
            verify(&c.function).unwrap_or_else(|e| panic!("{} {}: {e}", w.name, ordering.label()));
            let r = run(&c.function, &w.args, &w.memory, &RunConfig::default()).unwrap();
            assert_eq!(
                r.digest(),
                base.digest(),
                "{} under {} changed behaviour",
                w.name,
                ordering.label()
            );
        }
    }
}

#[test]
fn all_microbenchmarks_all_policies_preserve_behaviour() {
    for w in chf::workloads::microbenchmarks() {
        let base = run(&w.function, &w.args, &w.memory, &RunConfig::default()).unwrap();
        for policy in [
            PolicyKind::BreadthFirst,
            PolicyKind::DepthFirst,
            PolicyKind::Vliw,
        ] {
            for iterative in [false, true] {
                let c = compile(
                    &w.function,
                    &w.profile,
                    &CompileConfig::with_policy(policy, iterative),
                );
                verify(&c.function).unwrap_or_else(|e| panic!("{} {policy:?}: {e}", w.name));
                let r = run(&c.function, &w.args, &w.memory, &RunConfig::default()).unwrap();
                assert_eq!(
                    r.digest(),
                    base.digest(),
                    "{} under {policy:?}/{iterative} changed behaviour",
                    w.name
                );
            }
        }
    }
}

#[test]
fn spec_composites_convergent_preserves_behaviour() {
    for w in chf::workloads::spec_suite() {
        let base = run(&w.function, &w.args, &w.memory, &RunConfig::default()).unwrap();
        let c = compile(&w.function, &w.profile, &CompileConfig::convergent());
        verify(&c.function).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        let r = run(&c.function, &w.args, &w.memory, &RunConfig::default()).unwrap();
        assert_eq!(r.digest(), base.digest(), "{} miscompiled", w.name);
    }
}

#[test]
fn timing_simulator_agrees_with_functional_on_compiled_code() {
    for w in chf::workloads::microbenchmarks() {
        let c = compile(&w.function, &w.profile, &CompileConfig::convergent());
        let fr = run(&c.function, &w.args, &w.memory, &RunConfig::default()).unwrap();
        let tr = simulate_timing(&c.function, &w.args, &w.memory, &TimingConfig::trips()).unwrap();
        assert_eq!(fr.digest(), tr.digest(), "{}", w.name);
        assert_eq!(fr.blocks_executed, tr.blocks_executed, "{}", w.name);
    }
}

#[test]
fn compiled_blocks_respect_trips_constraints() {
    let constraints = BlockConstraints::trips();
    for w in chf::workloads::microbenchmarks() {
        for ordering in all_orderings() {
            let c = compile(
                &w.function,
                &w.profile,
                &CompileConfig::with_ordering(ordering),
            );
            // Size and memory constraints must hold everywhere; register
            // constraints are best-effort after splitting (see §6), so only
            // check the hard structural ones here.
            for (b, blk) in c.function.blocks() {
                assert!(
                    blk.size() <= constraints.max_insts,
                    "{} {}: block {b} has {} slots",
                    w.name,
                    ordering.label(),
                    blk.size()
                );
                assert!(
                    blk.memory_ops() <= constraints.max_memory_ops,
                    "{} {}: block {b} has {} memory ops",
                    w.name,
                    ordering.label(),
                    blk.memory_ops()
                );
            }
        }
    }
}

#[test]
fn generated_programs_survive_full_pipeline() {
    use chf::ir::testgen::{generate, GenConfig};
    use chf::sim::functional::profile_run;
    let cfg = GenConfig::default();
    for seed in 100..140 {
        let f = generate(seed, &cfg);
        let profile = profile_run(&f, &[5, 9], &[]).unwrap();
        let base = run(&f, &[5, 9], &[], &RunConfig::default()).unwrap();
        for ordering in all_orderings() {
            let c = compile(&f, &profile, &CompileConfig::with_ordering(ordering));
            verify(&c.function).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            for args in [[5, 9], [0, 0], [-3, 77]] {
                let base2 = run(&f, &args, &[], &RunConfig::default()).unwrap();
                let _ = &base;
                let r = run(&c.function, &args, &[], &RunConfig::default()).unwrap();
                assert_eq!(
                    r.digest(),
                    base2.digest(),
                    "seed {seed} {} args {args:?}",
                    ordering.label()
                );
            }
        }
    }
}
