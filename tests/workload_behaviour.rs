//! Validate that the reconstructed microbenchmarks exhibit the *dynamic*
//! behaviour the paper attributes to their namesakes — these properties are
//! what make the policy comparisons meaningful.

use chf::core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf::ir::stats::FunctionStats;
use chf::sim::timing::{simulate_timing, TimingConfig};
use chf::workloads::micro;

fn bb_timing(w: &chf::workloads::Workload) -> chf::sim::timing::TimingResult {
    let c = compile(
        &w.function,
        &w.profile,
        &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks),
    );
    simulate_timing(&c.function, &w.args, &w.memory, &TimingConfig::trips()).unwrap()
}

/// bzip2_1 scans predictable data, bzip2_2 the same loop over random data:
/// the basic-block misprediction rate must separate them clearly.
#[test]
fn bzip2_pair_separates_on_predictability() {
    let predictable = bb_timing(&micro::bzip2_1());
    let random = bb_timing(&micro::bzip2_2());
    assert!(
        random.misprediction_rate() > 2.0 * predictable.misprediction_rate(),
        "random {:.3} !>> predictable {:.3}",
        random.misprediction_rate(),
        predictable.misprediction_rate()
    );
}

/// ammp_1's inner while loops have low trip counts (the paper's best head
/// duplication candidates); matrix_1's inner loop has ten.
#[test]
fn trip_count_profiles_match_descriptions() {
    let ammp = micro::ammp_1();
    let low_trip = ammp
        .profile
        .trip_histograms
        .values()
        .filter(|h| h.visits() > 10)
        .any(|h| h.mean() < 6.0);
    assert!(low_trip, "ammp_1 needs low-trip inner loops");

    let matrix = micro::matrix_1();
    let has_ten = matrix
        .profile
        .trip_histograms
        .values()
        .any(|h| (h.mean() - 11.0).abs() < 1.0);
    assert!(has_ten, "matrix_1 inner loop should run 10 iterations");
}

/// dct8x8's basic blocks are already large (the paper reports hyperblock
/// formation gains almost nothing); vadd's loop is memory-dense.
#[test]
fn static_shapes_match_descriptions() {
    let dct = micro::dct8x8();
    let stats = FunctionStats::of(&dct.function);
    assert!(
        stats.max_block_slots >= 30,
        "dct8x8 body should be large: {stats}"
    );

    let vadd = micro::vadd();
    let body_mem = vadd
        .function
        .blocks()
        .map(|(_, b)| b.memory_ops())
        .max()
        .unwrap();
    assert!(body_mem >= 3, "vadd body has 2 loads + 1 store");
}

/// After convergent formation, hot loop blocks approach the structural
/// budget: mean fill must rise substantially over the basic-block form for
/// loop-dominated kernels ("converging on the limit of the structural
/// constraints").
#[test]
fn formation_converges_toward_full_blocks() {
    for w in [micro::art_1(), micro::vadd(), micro::doppler_gmti()] {
        let before = FunctionStats::of(&w.function);
        let c = compile(&w.function, &w.profile, &CompileConfig::convergent());
        let after = FunctionStats::of(&c.function);
        assert!(
            after.mean_block_slots > 2.0 * before.mean_block_slots,
            "{}: blocks did not grow ({before} -> {after})",
            w.name
        );
        assert!(after.blocks < before.blocks, "{}: block count", w.name);
    }
}

/// The rarely-taken arms the policy study depends on really are rare in
/// the profiles (bzip2_3's extra block, parser_1's heavy paths).
#[test]
fn rare_paths_are_rare() {
    for (w, max_ratio) in [(micro::bzip2_3(), 0.1), (micro::parser_1(), 0.1)] {
        let hottest = *w.profile.block_counts.values().max().unwrap() as f64;
        let has_rare = w
            .profile
            .block_counts
            .values()
            .any(|&c| c > 0 && (c as f64) < hottest * max_ratio);
        assert!(has_rare, "{} lost its rare path", w.name);
    }
}

/// gzip_1's inner loop collapses into a single block under convergent
/// formation — the paper's flagship block-count example.
#[test]
fn gzip_1_inner_loop_fits_one_block() {
    let w = micro::gzip_1();
    let c = compile(&w.function, &w.profile, &CompileConfig::convergent());
    let t = simulate_timing(&c.function, &w.args, &w.memory, &TimingConfig::trips()).unwrap();
    // 300 iterations: within a few hundred dynamic blocks means several
    // iterations per block.
    assert!(
        t.blocks_executed < 150,
        "gzip_1 should run few blocks, got {}",
        t.blocks_executed
    );
}
