//! Golden-snapshot guard for the cycle-level timing model.
//!
//! The timing simulator was rewritten from a direct interpreter to an
//! event-driven core over a pre-decoded program representation, with the
//! contract that the rewrite is **cycle-for-cycle identical** — not merely
//! statistically close. This test pins the exact cycle count and
//! misprediction count of every table-1 microbenchmark, in both its
//! basic-block form and its compiled hyperblock form, under every memory
//! ordering model. The golden capture was taken from the legacy core; any
//! drift in the event engine (a changed wake-up order, an off-by-one in the
//! calendar queue, an LSQ short-cut) shows up as a one-line diff against
//! `tests/golden/timing_cycles.txt`.
//!
//! To re-bless after an *intentional* timing-model change:
//!
//! ```sh
//! CHF_BLESS=1 cargo test --test timing_golden
//! ```

use chf::core::pipeline::{compile, CompileConfig};
use chf::sim::timing::{simulate_timing_lowered, MemoryOrdering, TimingConfig};
use chf::sim::LoweredProgram;
use std::fmt::Write as _;

const GOLDEN_PATH: &str = "tests/golden/timing_cycles.txt";

const ORDERINGS: [(MemoryOrdering, &str); 3] = [
    (MemoryOrdering::Exact, "exact"),
    (MemoryOrdering::Conservative, "conservative"),
    (MemoryOrdering::Oracle, "oracle"),
];

/// One line per (benchmark, form, memory ordering): exact cycles and
/// mispredictions. Each function is lowered once and the handle reused
/// across the three orderings — the same access pattern the benchmark
/// harness uses, so handle reuse itself is under the golden contract.
fn snapshot() -> String {
    let mut out = String::new();
    out.push_str("# benchmark form ordering cycles mispredictions\n");
    for w in chf::workloads::microbenchmarks() {
        let compiled = compile(&w.function, &w.profile, &CompileConfig::default());
        for (form, f) in [("bb", &w.function), ("hb", &compiled.function)] {
            let lowered = LoweredProgram::lower(f);
            for (ordering, label) in ORDERINGS {
                let cfg = TimingConfig {
                    memory_ordering: ordering,
                    ..TimingConfig::trips()
                };
                let t = simulate_timing_lowered(&lowered, &w.args, &w.memory, &cfg)
                    .unwrap_or_else(|e| panic!("{} {form} {label}: {e}", w.name));
                assert_eq!(t.ret, Some(w.expected), "{} {form} {label}", w.name);
                writeln!(
                    out,
                    "{} {form} {label} {} {}",
                    w.name, t.cycles, t.mispredictions
                )
                .unwrap();
            }
        }
    }
    out
}

#[test]
fn timing_cycles_match_golden() {
    let actual = snapshot();
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join(GOLDEN_PATH);
    if std::env::var_os("CHF_BLESS").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, &actual).unwrap();
        eprintln!("blessed {} ({} bytes)", path.display(), actual.len());
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!(
            "missing golden file {} ({e}); run with CHF_BLESS=1 to create it",
            path.display()
        )
    });
    if expected != actual {
        let mut diff = String::new();
        for (e, a) in expected.lines().zip(actual.lines()) {
            if e != a {
                let _ = writeln!(diff, "-{e}\n+{a}");
            }
        }
        let (el, al) = (expected.lines().count(), actual.lines().count());
        if el != al {
            let _ = writeln!(diff, "line counts differ: expected {el}, actual {al}");
        }
        panic!(
            "cycle counts drifted from {GOLDEN_PATH} — the event-driven core \
             is no longer cycle-identical to the golden capture:\n{diff}"
        );
    }
}

/// The golden capture must also be what the *legacy* core computes: this is
/// the whole-suite differential check (satellite of the proptest in
/// `crates/sim/tests/differential.rs`), pinning old and new engines to the
/// same numbers on real workloads rather than generated programs.
#[cfg(feature = "legacy-sim")]
#[test]
fn event_core_matches_legacy_on_full_suite() {
    use chf::sim::timing_legacy::simulate_timing_legacy;
    for w in chf::workloads::microbenchmarks() {
        let compiled = compile(&w.function, &w.profile, &CompileConfig::default());
        for (form, f) in [("bb", &w.function), ("hb", &compiled.function)] {
            for (ordering, label) in ORDERINGS {
                let cfg = TimingConfig {
                    memory_ordering: ordering,
                    ..TimingConfig::trips()
                };
                let ev = chf::sim::timing::simulate_timing(f, &w.args, &w.memory, &cfg).unwrap();
                let lg = simulate_timing_legacy(f, &w.args, &w.memory, &cfg).unwrap();
                assert_eq!(ev.cycles, lg.cycles, "{} {form} {label}", w.name);
                assert_eq!(
                    ev.mispredictions, lg.mispredictions,
                    "{} {form} {label}",
                    w.name
                );
                assert_eq!(
                    ev.insts_executed, lg.insts_executed,
                    "{} {form} {label}",
                    w.name
                );
                assert_eq!(ev.digest(), lg.digest(), "{} {form} {label}", w.name);
            }
        }
    }
}
