//! Integration tests reproducing the paper's illustrative figures (1–4)
//! as executable transformations.

use chf::core::duplication::{classify, duplicate_for_merge, DuplicationKind};
use chf::core::ifconvert::combine;
use chf::core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf::ir::builder::FunctionBuilder;
use chf::ir::function::Function;
use chf::ir::ids::{BlockId, Reg};
use chf::ir::instr::Operand;
use chf::ir::loops::LoopForest;
use chf::ir::verify::verify;
use chf::sim::functional::{profile_run, run, RunConfig};

fn reg(r: Reg) -> Operand {
    Operand::Reg(r)
}

fn digest(f: &Function, args: &[i64]) -> (Option<i64>, Vec<(i64, i64)>) {
    run(f, args, &[], &RunConfig::default()).unwrap().digest()
}

/// Figure 2: A branches to B or D; B falls into D (merge point).
fn fig2() -> (Function, BlockId, BlockId, BlockId) {
    let mut fb = FunctionBuilder::new("fig2", 1);
    let a = fb.create_named_block("A");
    let b = fb.create_named_block("B");
    let d = fb.create_named_block("D");
    fb.switch_to(a);
    let c = fb.cmp_lt(reg(fb.param(0)), Operand::Imm(5));
    fb.branch(c, b, d);
    fb.switch_to(b);
    fb.store(Operand::Imm(0), Operand::Imm(1));
    fb.jump(d);
    fb.switch_to(d);
    let x = fb.load(Operand::Imm(0));
    let y = fb.add(reg(x), reg(fb.param(0)));
    fb.ret(Some(reg(y)));
    (fb.build().unwrap(), a, b, d)
}

/// Figures 3/4: A enters self-loop B; B exits to C.
fn fig34() -> (Function, BlockId, BlockId, BlockId) {
    let mut fb = FunctionBuilder::new("fig34", 1);
    let a = fb.create_named_block("A");
    let b = fb.create_named_block("B");
    let c = fb.create_named_block("C");
    fb.switch_to(a);
    let i = fb.mov(Operand::Imm(0));
    fb.jump(b);
    fb.switch_to(b);
    let i2 = fb.add(reg(i), Operand::Imm(1));
    fb.mov_to(i, reg(i2));
    let t = fb.cmp_lt(reg(i), reg(fb.param(0)));
    fb.branch(t, b, c);
    fb.switch_to(c);
    fb.ret(Some(reg(i)));
    (fb.build().unwrap(), a, b, c)
}

#[test]
fn figure2_tail_duplication_sequence() {
    // (a) original CFG: D has two predecessors.
    let (mut f, a, b, d) = fig2();
    let orig = f.clone();
    assert_eq!(chf::ir::cfg::predecessor_count(&f, d), 2);
    let forest = LoopForest::of(&f);
    assert_eq!(classify(&f, &forest, a, d), DuplicationKind::Tail);

    // (c) code duplication + (d) CFG transformation.
    let d2 = duplicate_for_merge(&mut f, a, d);
    verify(&f).unwrap();
    assert_eq!(chf::ir::cfg::predecessor_count(&f, d2), 1);
    assert_eq!(chf::ir::cfg::predecessor_count(&f, d), 1);
    assert!(f.block(b).successors().any(|s| s == d), "B still reaches D");

    // (e) if-conversion of the copy into A.
    combine(&mut f, a, d2).unwrap();
    verify(&f).unwrap();
    assert!(f.block(a).is_predicated());
    for x in [0, 4, 5, 10] {
        assert_eq!(digest(&f, &[x]), digest(&orig, &[x]), "arg {x}");
    }
}

#[test]
fn figure3_head_duplication_peels() {
    let (mut f, a, b, _c) = fig34();
    let orig = f.clone();
    let forest = LoopForest::of(&f);
    assert_eq!(classify(&f, &forest, a, b), DuplicationKind::Peel);

    // (b) copy B to B'; (c) A -> B', B' -> B (loop entrance), B' -> C.
    let b2 = duplicate_for_merge(&mut f, a, b);
    verify(&f).unwrap();
    assert!(f.block(a).successors().any(|s| s == b2));
    assert!(f.block(b2).successors().any(|s| s == b), "B' -> B entrance");
    // B is still a loop header.
    let forest = LoopForest::of(&f);
    assert!(forest.is_header(b));

    // (d) if-convert B' into A: one iteration peeled.
    combine(&mut f, a, b2).unwrap();
    verify(&f).unwrap();
    for x in [0, 1, 2, 6] {
        assert_eq!(digest(&f, &[x]), digest(&orig, &[x]), "arg {x}");
    }
}

#[test]
fn figure4_head_duplication_unrolls() {
    let (mut f, _a, b, c) = fig34();
    let orig = f.clone();
    let forest = LoopForest::of(&f);
    assert_eq!(classify(&f, &forest, b, b), DuplicationKind::Unroll);

    // (b)/(c): B -> B' replaces the self edge; B' -> B is the new back edge;
    // B' -> C exists.
    let b2 = duplicate_for_merge(&mut f, b, b);
    verify(&f).unwrap();
    assert!(f.block(b).successors().any(|s| s == b2));
    assert!(
        !f.block(b).successors().any(|s| s == b),
        "self edge removed"
    );
    assert!(f.block(b2).successors().any(|s| s == b), "new back edge");
    assert!(f.block(b2).successors().any(|s| s == c));

    // (d): if-convert B' into B — two iterations per block, loop restored.
    combine(&mut f, b, b2).unwrap();
    verify(&f).unwrap();
    assert!(f.block(b).successors().any(|s| s == b), "loop back on B");
    for x in [0, 1, 2, 5, 6] {
        assert_eq!(digest(&f, &[x]), digest(&orig, &[x]), "arg {x}");
    }
    // Two iterations per block: dynamic block count of the loop halves.
    let before = run(&orig, &[20], &[], &RunConfig::default()).unwrap();
    let after = run(&f, &[20], &[], &RunConfig::default()).unwrap();
    assert!(after.blocks_executed < before.blocks_executed);
}

/// Figure 1: outer loop with two low-trip inner while loops. Convergent
/// formation must fold iterations of the inner loops into enclosing blocks
/// (the 1d shape), reducing dynamic block counts far below the original.
#[test]
fn figure1_convergence_on_nested_while_loops() {
    let mut fb = FunctionBuilder::new("fig1", 0);
    let entry = fb.create_block();
    fb.switch_to(entry);
    let acc = fb.mov(Operand::Imm(0));
    let i = fb.mov(Operand::Imm(0));
    let oh = fb.create_block();
    let ob = fb.create_block();
    let out = fb.create_block();
    fb.jump(oh);
    fb.switch_to(oh);
    let oc = fb.cmp_lt(reg(i), Operand::Imm(20));
    fb.branch(oc, ob, out);
    fb.switch_to(ob);
    // inner while loop, three trips typical
    let t0 = fb.rem(reg(i), Operand::Imm(2));
    let t = fb.add(reg(t0), Operand::Imm(2)); // 2 or 3
    let x = fb.mov(reg(t));
    let ih = fb.create_block();
    let ib = fb.create_block();
    let ix = fb.create_block();
    fb.jump(ih);
    fb.switch_to(ih);
    let icond = fb.cmp_gt(reg(x), Operand::Imm(0));
    fb.branch(icond, ib, ix);
    fb.switch_to(ib);
    let a2 = fb.add(reg(acc), reg(x));
    fb.mov_to(acc, reg(a2));
    let x2 = fb.sub(reg(x), Operand::Imm(1));
    fb.mov_to(x, reg(x2));
    fb.jump(ih);
    fb.switch_to(ix);
    let i2 = fb.add(reg(i), Operand::Imm(1));
    fb.mov_to(i, reg(i2));
    fb.jump(oh);
    fb.switch_to(out);
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let profile = profile_run(&f, &[], &[]).unwrap();
    let base = run(&f, &[], &[], &RunConfig::default()).unwrap();

    let compiled = compile(&f, &profile, &CompileConfig::convergent());
    verify(&compiled.function).unwrap();
    let after = run(&compiled.function, &[], &[], &RunConfig::default()).unwrap();
    assert_eq!(after.digest(), base.digest());
    assert!(
        after.blocks_executed * 2 < base.blocks_executed,
        "convergent formation should at least halve dynamic blocks: {} vs {}",
        after.blocks_executed,
        base.blocks_executed
    );
    // Head duplication must have fired (peeling or unrolling the inner
    // while loop).
    assert!(compiled.stats.unrolls + compiled.stats.peels > 0);

    // The discrete orderings also compile this shape correctly; individual
    // programs may favour either side (as in the paper's Table 1), but no
    // discrete ordering may be dramatically better here.
    for ordering in [PhaseOrdering::Upio, PhaseOrdering::Iupo] {
        let c = compile(&f, &profile, &CompileConfig::with_ordering(ordering));
        let r = run(&c.function, &[], &[], &RunConfig::default()).unwrap();
        assert_eq!(r.digest(), base.digest());
        assert!(
            after.blocks_executed <= r.blocks_executed * 2,
            "{} dominates convergent on Figure 1 ({} vs {})",
            ordering.label(),
            r.blocks_executed,
            after.blocks_executed
        );
    }
}
