//! Determinism guard: regenerating every archived CSV through the parallel
//! evaluation harness must reproduce the committed `results/` files byte
//! for byte.
//!
//! This pins three properties at once:
//!
//! 1. the compiler is deterministic (no hash-iteration or thread-scheduling
//!    order leaks into decisions);
//! 2. the parallel harness reassembles results in suite order, so worker
//!    count cannot change the output;
//! 3. performance work on the formation path does not silently change the
//!    *results* of formation — the committed tables stay the source of
//!    truth.
//!
//! If a deliberate algorithmic change moves the numbers, regenerate the
//! archives with `cargo run --release -p chf-bench --bin summary` and commit
//! the new CSVs alongside the change.

use chf_bench::{csv, fig7, table1, table2, table3};

fn committed(name: &str) -> String {
    let path = format!("{}/results/{name}", env!("CARGO_MANIFEST_DIR"));
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("cannot read {path}: {e}"))
}

/// Regenerate Table 1 (and its derived Figure 7) with several worker counts
/// and diff against the committed archives.
#[test]
fn table1_and_fig7_csvs_are_reproducible() {
    let expected_t1 = committed("table1.csv");
    let expected_f7 = committed("fig7.csv");
    for workers in [1, 4] {
        let rows = table1::run_with(workers);
        assert_eq!(
            csv::table1_csv(&rows),
            expected_t1,
            "table1.csv drifted (workers={workers})"
        );
        let pts = fig7::points(&rows);
        let fit = fig7::linear_fit(&pts);
        assert_eq!(
            csv::fig7_csv(&pts, &fit),
            expected_f7,
            "fig7.csv drifted (workers={workers})"
        );
    }
}

/// Regenerate Table 2 through the parallel harness and diff.
#[test]
fn table2_csv_is_reproducible() {
    let rows = table2::run_with(4);
    assert_eq!(csv::table2_csv(&rows), committed("table2.csv"));
}

/// Regenerate the Table 2 budget ablation through the parallel harness
/// (two worker counts) and diff — the trial-budget ledger must be as
/// deterministic as the formation results themselves.
#[test]
fn table2_budget_csv_is_reproducible() {
    let expected = committed("table2_budget.csv");
    for workers in [1, 4] {
        let rows = table2::run_budget_with(workers, table2::DEFAULT_TRIAL_BUDGET);
        assert_eq!(
            csv::table2_budget_csv(&rows),
            expected,
            "table2_budget.csv drifted (workers={workers})"
        );
    }
}

/// Regenerate Table 3 through the parallel harness and diff.
#[test]
fn table3_csv_is_reproducible() {
    let rows = table3::run_with(4);
    assert_eq!(csv::table3_csv(&rows), committed("table3.csv"));
}
