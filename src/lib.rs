#![warn(missing_docs)]
//! # chf — convergent hyperblock formation
//!
//! Umbrella crate re-exporting the full public API of the CHF workspace, a
//! reproduction of *"Merging Head and Tail Duplication for Convergent
//! Hyperblock Formation"* (Maher, Smith, Burger, McKinley — MICRO 2006).
//!
//! The workspace contains:
//!
//! * [`ir`] — the predicated RISC-like IR, CFG, and analyses;
//! * [`opt`] — scalar optimizations applied inside the convergent loop;
//! * [`core`] — if-conversion, tail & head duplication, the convergent
//!   formation algorithm, block-selection policies, and phase pipelines;
//! * [`sim`] — the functional and TRIPS-like timing simulators;
//! * [`workloads`] — the microbenchmark and SPEC-like workload suites used
//!   by the paper's evaluation.
//!
//! ## Quickstart
//!
//! ```
//! use chf::workloads::micro;
//! use chf::core::pipeline::{compile, CompileConfig, PhaseOrdering};
//! use chf::sim::timing::{simulate_timing, TimingConfig};
//!
//! // Take one microbenchmark, compile it with full convergent formation,
//! // and simulate it.
//! let w = micro::matrix_1();
//! let compiled = compile(&w.function, &w.profile, &CompileConfig::convergent());
//! let result =
//!     simulate_timing(&compiled.function, &w.args, &w.memory, &TimingConfig::trips()).unwrap();
//! assert!(result.cycles > 0);
//! assert_eq!(result.ret, Some(w.expected));
//! ```

pub use chf_core as core;
pub use chf_ir as ir;
pub use chf_opt as opt;
pub use chf_sim as sim;
pub use chf_workloads as workloads;
