//! Checkpoint plan pass for sharded whole-program timing simulation.
//!
//! A whole-program timing run is split into **shards** at block-commit
//! boundaries: shard `k` covers committed blocks `[k·S, (k+1)·S)`. Before
//! any cycle simulation happens, a single fast *functional* pass over the
//! [`LoweredProgram`] ([`plan_shards`]) executes the program
//! architecturally and records, for every shard:
//!
//! * a [`Checkpoint`] — the full architectural state (next block, register
//!   file, memory image, exit-predictor state) at the shard's **warm-up
//!   start**, `W` blocks before the shard's range. The timing engine's
//!   microarchitectural state (in-flight commits, issue-ring occupancy,
//!   register availability times) is *not* recorded: a shard re-derives it
//!   by cycle-simulating the `W` warm-up blocks, and the stitcher verifies
//!   convergence by digest comparison ([`crate::shard`]).
//! * a [`ShardExpect`] — the architectural ground truth over the shard's
//!   range (instruction counters, misprediction count, and a running hash
//!   of prediction outcomes), which the stitcher cross-checks against the
//!   timing engine's replay. The predictor is purely architectural — its
//!   state is a function of the control-flow path alone — so the plan pass
//!   replays it exactly and a shard starts from the *exact* predictor
//!   state, not an approximation.
//!
//! Commit boundaries are safe cut points because the engine carries no
//! hidden state across them besides what the checkpoint + warm-up
//! reconstruct: the LSQ and the written-register set reset every block,
//! and all timing arithmetic is shift-invariant (see
//! [`crate::timing::TimingDigest`]).
//!
//! The plan pass mirrors the *timing* model's error discipline (eager
//! out-of-range reject, `MalformedInstruction` on executed irregular
//! instructions, the legacy fuel/dangling ordering) so that a program the
//! timing core rejects is rejected identically here, and the sharded
//! runner can fall back to the sequential engine with the exact same
//! error.

use crate::functional::{eval, SimError};
use crate::lower::{LExitKind, LKind, LoweredProgram, NONE};
use crate::predictor::ExitPredictor;
use crate::timing::{outcome_hash_step, SimMemory, TimingConfig, OUTCOME_HASH_INIT};

/// Sharding parameters for [`plan_shards`].
#[derive(Copy, Clone, Debug)]
pub struct ShardConfig {
    /// Committed blocks per shard (`S`). The last shard may be shorter.
    pub shard_blocks: u64,
    /// Warm-up blocks simulated before a shard's range (`W`) to
    /// reconstruct the engine's microarchitectural state. Clamped to
    /// `[1, shard_blocks / 2]`.
    pub warmup_blocks: u64,
}

impl Default for ShardConfig {
    fn default() -> Self {
        // S is a latency/parallelism trade-off: small enough that the 19
        // composites (tens to hundreds of thousands of dynamic blocks)
        // split into many shards, large enough that the W-block warm-up
        // (and the per-shard plan/probe overhead) stays a small fraction.
        ShardConfig {
            shard_blocks: 4096,
            warmup_blocks: 64,
        }
    }
}

impl ShardConfig {
    /// The sanitized `(shard_blocks, warmup_blocks)` actually used.
    pub(crate) fn sanitized(&self) -> (u64, u64) {
        let s = self.shard_blocks.max(2);
        let w = self.warmup_blocks.clamp(1, s / 2);
        (s, w)
    }
}

/// Architectural state at a shard's warm-up start, recorded by the plan
/// pass. Everything the functional machine is: where it is, what the
/// registers hold, what memory holds, and what the predictor has learned.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Committed-block count at which this state was captured.
    pub(crate) at_block: u64,
    /// Dense index of the next block to execute.
    pub(crate) cur: u32,
    /// Full register file (length `nregs.max(1)`, the engine's layout).
    pub(crate) regs: Vec<i64>,
    /// Full memory image, sorted, including written zeros
    /// ([`SimMemory::image`]).
    pub(crate) mem: Vec<(i64, i64)>,
    /// Exact predictor state at this point.
    pub(crate) predictor: ExitPredictor,
    /// Cached [`ExitPredictor::state_hash`] of `predictor`, compared (not
    /// recomputed) at probe time.
    pub(crate) pred_hash: u64,
}

impl Checkpoint {
    /// Approximate heap bytes held by this checkpoint.
    pub fn bytes(&self) -> usize {
        self.regs.len() * std::mem::size_of::<i64>()
            + self.mem.len() * std::mem::size_of::<(i64, i64)>()
            + self.predictor.state_bytes()
    }
}

/// Architectural ground truth over one shard's range, for stitch-time
/// validation.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ShardExpect {
    /// Prediction-outcome hash over the range (see
    /// [`crate::timing::outcome_hash_step`]).
    pub(crate) outcome_hash: u64,
    /// Mispredictions in the range.
    pub(crate) mispredictions: u64,
    /// Instructions executed in the range.
    pub(crate) insts_executed: u64,
    /// Instructions nullified in the range.
    pub(crate) insts_nullified: u64,
    /// Instruction slots fetched in the range.
    pub(crate) insts_fetched: u64,
}

/// One shard of the plan: where it starts, how long it warms up, what it
/// covers, and what it must reproduce.
#[derive(Clone, Debug)]
pub struct ShardSpec {
    /// Warm-up blocks before the range (0 for shard 0).
    pub(crate) warmup: u64,
    /// First committed-block index of the range.
    pub(crate) start: u64,
    /// Committed blocks in the range.
    pub(crate) len: u64,
    /// State at `start − warmup`.
    pub(crate) checkpoint: Checkpoint,
    /// Ground truth over `[start, start + len)`.
    pub(crate) expect: ShardExpect,
}

/// Output of [`plan_shards`]: everything the sharded runner and stitcher
/// need, including the whole-program architectural result for final
/// validation.
#[derive(Clone, Debug)]
pub struct ShardPlan {
    /// Sanitized shard size `S`.
    pub(crate) shard_blocks: u64,
    /// Sanitized warm-up length `W`.
    pub(crate) warmup_blocks: u64,
    /// Total dynamic blocks `N`.
    pub(crate) total_blocks: u64,
    pub(crate) shards: Vec<ShardSpec>,
    /// The program's return value.
    pub(crate) ret: Option<i64>,
    /// The final memory image.
    pub(crate) final_mem: Vec<(i64, i64)>,
}

impl ShardPlan {
    /// Number of shards.
    pub fn n_shards(&self) -> usize {
        self.shards.len()
    }

    /// Total dynamic blocks in the planned run.
    pub fn total_blocks(&self) -> u64 {
        self.total_blocks
    }

    /// Sanitized shard size `S` the plan was built with.
    pub fn shard_blocks(&self) -> u64 {
        self.shard_blocks
    }

    /// Sanitized warm-up length `W` the plan was built with.
    pub fn warmup_blocks(&self) -> u64 {
        self.warmup_blocks
    }

    /// Approximate heap bytes held by all recorded checkpoints.
    pub fn checkpoint_bytes(&self) -> usize {
        self.shards.iter().map(|s| s.checkpoint.bytes()).sum()
    }
}

/// The functional plan pass: execute the program architecturally once,
/// recording per-shard checkpoints and expectations.
///
/// # Errors
/// Exactly the errors [`crate::timing::simulate_timing_lowered`] would
/// produce on the same program (same fuel discipline, same eager reject,
/// same malformed-instruction behaviour), so a planning failure implies
/// the sequential timing run fails identically.
pub fn plan_shards(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
    shard: &ShardConfig,
) -> Result<ShardPlan, SimError> {
    if let Some(e) = &p.timing_reject {
        return Err(e.clone());
    }
    let (s, w) = shard.sanitized();

    let mut regs: Vec<i64> = vec![0; p.nregs.max(1)];
    for (i, a) in args.iter().enumerate().take(p.params as usize) {
        regs[i] = *a;
    }
    let mut mem = SimMemory::new(mem_init);
    let mut predictor = ExitPredictor::new(&config.predictor);

    let mut blocks: u64 = 0;
    let mut insts_executed: u64 = 0;
    let mut insts_nullified: u64 = 0;
    let mut insts_fetched: u64 = 0;
    let mut outcome_hash = OUTCOME_HASH_INIT;

    // Shard 0's "checkpoint" is the initial state (warm-up 0).
    let mut checkpoints: Vec<Checkpoint> = vec![Checkpoint {
        at_block: 0,
        cur: p.entry,
        regs: regs.clone(),
        mem: mem.image(),
        pred_hash: predictor.state_hash(),
        predictor: predictor.clone(),
    }];
    let mut expects: Vec<ShardExpect> = Vec::new();
    // Counter snapshot at the last closed range boundary.
    let mut range_base = (0u64, 0u64, 0u64, 0u64); // executed, nullified, fetched, mispred

    let close_range = |expects: &mut Vec<ShardExpect>,
                       base: &mut (u64, u64, u64, u64),
                       outcome: &mut u64,
                       executed: u64,
                       nullified: u64,
                       fetched: u64,
                       mispred: u64| {
        expects.push(ShardExpect {
            outcome_hash: *outcome,
            mispredictions: mispred - base.3,
            insts_executed: executed - base.0,
            insts_nullified: nullified - base.1,
            insts_fetched: fetched - base.2,
        });
        *base = (executed, nullified, fetched, mispred);
        *outcome = OUTCOME_HASH_INIT;
    };

    let mut cur = p.entry;
    let ret: Option<i64> = 'outer: loop {
        if blocks >= config.max_blocks {
            return Err(SimError::OutOfFuel { executed: blocks });
        }
        // `blocks` blocks have committed; this is a shard boundary when it
        // hits a multiple of S, and a checkpoint position W blocks before
        // the next boundary.
        if blocks > 0 && blocks.is_multiple_of(s) {
            close_range(
                &mut expects,
                &mut range_base,
                &mut outcome_hash,
                insts_executed,
                insts_nullified,
                insts_fetched,
                predictor.mispredictions(),
            );
        }
        if blocks % s == s - w {
            checkpoints.push(Checkpoint {
                at_block: blocks,
                cur,
                regs: regs.clone(),
                mem: mem.image(),
                pred_hash: predictor.state_hash(),
                predictor: predictor.clone(),
            });
        }
        blocks += 1;

        let lb = &p.blocks[cur as usize];
        insts_fetched += lb.size as u64;

        for inst in &p.insts[lb.inst_start as usize..lb.inst_end as usize] {
            // The timing model's functional semantics: predicate first
            // (clamped reads are identities on in-range registers), no
            // uninitialized-read checks, and an *executed* irregular
            // instruction is an error.
            if inst.pred_reg != NONE && (regs[inst.pred_reg as usize] != 0) != inst.pred_if_true {
                insts_nullified += 1;
                continue;
            }
            insts_executed += 1;
            let a = if inst.a_reg != NONE {
                regs[inst.a_reg as usize]
            } else {
                inst.a_imm
            };
            match inst.kind {
                LKind::Alu => {
                    let b = if inst.b_reg != NONE {
                        regs[inst.b_reg as usize]
                    } else {
                        inst.b_imm
                    };
                    regs[inst.dst as usize] = eval(inst.op, a, b);
                }
                LKind::Load => {
                    regs[inst.dst as usize] = mem.load(a);
                }
                LKind::Store => {
                    let b = if inst.b_reg != NONE {
                        regs[inst.b_reg as usize]
                    } else {
                        inst.b_imm
                    };
                    mem.store(a, b);
                }
                LKind::Slow(_) => {
                    return Err(SimError::MalformedInstruction { block: lb.id });
                }
            }
        }

        // Exits, in the timing model's scan order.
        let mut fired = None;
        for e in &p.exits[lb.exit_start as usize..lb.exit_end as usize] {
            if let Some(r) = e.pred_oor {
                return Err(SimError::RegisterOutOfRange {
                    block: lb.id,
                    reg: r,
                });
            }
            if e.pred_reg == NONE || (regs[e.pred_reg as usize] != 0) == e.pred_if_true {
                fired = Some(e);
                break;
            }
        }
        let fe = fired.ok_or(SimError::NoFiringExit { block: lb.id })?;
        if let LExitKind::RetRegOor(r) = fe.kind {
            return Err(SimError::RegisterOutOfRange {
                block: lb.id,
                reg: r,
            });
        }

        let fallback = lb.fallback.unwrap_or(fe.orig);
        let correct = predictor.update_tagged(lb.id, fallback, fe.orig, fe.hist_tag);
        outcome_hash = outcome_hash_step(outcome_hash, correct);

        match fe.kind {
            LExitKind::Goto(next) => cur = next,
            LExitKind::Dangling(target) => {
                if blocks >= config.max_blocks {
                    return Err(SimError::OutOfFuel { executed: blocks });
                }
                return Err(SimError::DanglingTarget { target });
            }
            LExitKind::RetNone => break 'outer None,
            LExitKind::RetImm(v) => break 'outer Some(v),
            LExitKind::RetReg(r) => break 'outer Some(regs[r as usize]),
            LExitKind::RetRegOor(_) => unreachable!("handled above"),
        }
    };

    close_range(
        &mut expects,
        &mut range_base,
        &mut outcome_hash,
        insts_executed,
        insts_nullified,
        insts_fetched,
        predictor.mispredictions(),
    );

    let n_shards = expects.len();
    // A checkpoint recorded W blocks before a boundary the program never
    // reached (it returned first) backs no shard.
    checkpoints.truncate(n_shards);
    debug_assert_eq!(checkpoints.len(), n_shards, "one checkpoint per shard");

    let shards = checkpoints
        .into_iter()
        .zip(expects)
        .enumerate()
        .map(|(k, (checkpoint, expect))| {
            let start = k as u64 * s;
            ShardSpec {
                warmup: start - checkpoint.at_block,
                start,
                len: (blocks - start).min(s),
                checkpoint,
                expect,
            }
        })
        .collect();

    Ok(ShardPlan {
        shard_blocks: s,
        warmup_blocks: w,
        total_blocks: blocks,
        shards,
        ret,
        final_mem: mem.image(),
    })
}
