//! Legacy (pre-event-queue) simulator cores, kept for one release behind
//! the default-on `legacy-sim` feature as the differential reference for
//! the rewritten engines in [`crate::timing`] and [`crate::functional`].
//!
//! These are the original per-block interpreters: the timing model walks
//! `chf_ir` structures directly, re-matching `Option<Operand>` slots and
//! probing a hash map per issued instruction, and the functional loop
//! re-hashes profile keys per block. They are slow but simple, and the
//! rewritten cores must agree with them **exactly** — same cycles, same
//! counters, same return value and memory digest, same error on broken IR.
//! `tests/differential.rs` enforces this over generated programs, and the
//! table-1 golden cycle snapshot pins the agreed numbers.
//!
//! One deliberate change is landed even here: the `MemoryOrdering::Exact`
//! LSQ path used to rescan every earlier store in the block per load
//! (quadratic in block size). It now uses a per-address last-store map —
//! the same structure the lowered representation precomputes — and debug
//! builds assert the map agrees with the original rescan on every load, so
//! the reference stays honest while the fix applies to both paths.

use crate::functional::{exec_inst, FuncResult, Machine, RunConfig, SimError};
use crate::predictor::ExitPredictor;
use crate::timing::{MemoryOrdering, TimingConfig, TimingResult};
use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::fxhash::FxHashMap;
use chf_ir::ids::BlockId;
use chf_ir::instr::{Opcode, Operand};
use chf_ir::loops::LoopForest;
use chf_ir::profile::ProfileData;
use std::collections::VecDeque;

/// Tracks issue-slot occupancy per cycle, pruned as time advances (the
/// original open-addressing-by-probe structure; the rewritten engine uses a
/// calendar ring instead).
struct IssueSlots {
    used: FxHashMap<u64, u32>,
    width: u32,
    prune_floor: u64,
}

impl IssueSlots {
    fn new(width: u32) -> Self {
        IssueSlots {
            used: FxHashMap::default(),
            width,
            prune_floor: 0,
        }
    }

    /// First cycle ≥ `ready` with a free slot; claims it.
    fn issue_at(&mut self, ready: u64) -> u64 {
        let mut t = ready;
        loop {
            let n = self.used.entry(t).or_insert(0);
            if *n < self.width {
                *n += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Drop bookkeeping for cycles before `floor` (nothing issues in the
    /// past).
    fn prune_before(&mut self, floor: u64) {
        if floor > self.prune_floor + 4096 {
            self.used.retain(|t, _| *t >= floor);
            self.prune_floor = floor;
        }
    }
}

/// The original direct-interpretation timing model. Cycle-for-cycle the
/// behaviour [`crate::timing::simulate_timing`] must reproduce.
///
/// # Errors
/// Returns [`SimError::OutOfFuel`] if the block budget is exhausted, or a
/// malformed-IR [`SimError`] variant if `f` does not verify.
pub fn simulate_timing_legacy(
    f: &Function,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
) -> Result<TimingResult, SimError> {
    let mut m = Machine::new(f, args, mem_init);
    let nregs = f.reg_count() as usize;
    // Reject out-of-range register references up front: the dense `avail`
    // vector below (and the liveness bitsets) index by register number, so
    // this single O(insts) sweep makes every later lookup in-bounds by
    // construction instead of a panic waiting for corrupted IR.
    for (id, blk) in f.blocks() {
        for inst in &blk.insts {
            for r in inst.uses().chain(inst.def()) {
                if r.index() >= nregs {
                    return Err(SimError::RegisterOutOfRange {
                        block: id,
                        reg: r.0,
                    });
                }
            }
        }
        for e in &blk.exits {
            if let Some(p) = e.pred {
                if p.reg.index() >= nregs {
                    return Err(SimError::RegisterOutOfRange {
                        block: id,
                        reg: p.reg.0,
                    });
                }
            }
            if let ExitTarget::Return(Some(Operand::Reg(r))) = e.target {
                if r.index() >= nregs {
                    return Err(SimError::RegisterOutOfRange {
                        block: id,
                        reg: r.0,
                    });
                }
            }
        }
    }
    let liveness = chf_ir::liveness::Liveness::compute(f);
    // Cycle at which each register's current value becomes available.
    let mut avail: Vec<u64> = vec![0; nregs];
    let mut predictor = ExitPredictor::new(&config.predictor);
    let mut slots = IssueSlots::new(config.issue_width);

    // In-order commit times of in-flight blocks.
    let mut inflight: VecDeque<u64> = VecDeque::new();
    let mut last_commit: u64 = 0;
    let mut fetch_ready: u64 = 0;

    let mut blocks_executed = 0u64;
    let mut insts_executed = 0u64;
    let mut insts_nullified = 0u64;
    let mut insts_fetched = 0u64;

    let mut written_this_block: Vec<u32> = Vec::new();
    let mut cur = f.entry;

    let ret = 'outer: loop {
        if blocks_executed >= config.max_blocks {
            return Err(SimError::OutOfFuel {
                executed: blocks_executed,
            });
        }
        blocks_executed += 1;

        let blk = f
            .try_block(cur)
            .ok_or(SimError::DanglingTarget { target: cur })?;
        let size = blk.size() as u64;
        insts_fetched += size;

        // --- Dispatch: wait for fetch, and for a window slot. ---
        let mut dispatch = fetch_ready;
        if inflight.len() >= config.window_blocks {
            let oldest = inflight.pop_front().unwrap();
            dispatch = dispatch.max(oldest);
        }
        slots.prune_before(dispatch);

        // Fetch/map of the *next* block is serialized behind this one.
        let map_cycles = config.block_overhead + size.div_ceil(config.fetch_bandwidth as u64);
        fetch_ready = dispatch + map_cycles;

        // --- Execute instructions in dataflow order. ---
        written_this_block.clear();
        // Executed stores in this block instance: (address, completion), and
        // the per-address completion maximum (the LSQ fix; the vector is
        // retained to cross-check the map in debug builds).
        let mut block_stores: Vec<(i64, u64)> = Vec::new();
        let mut store_done: FxHashMap<i64, u64> = FxHashMap::default();
        let mut any_store_done: u64 = 0;
        let mut outputs_done = dispatch;
        for inst in &blk.insts {
            // Resolve the predicate functionally and find its ready time.
            let (executes, pred_ready) = match inst.pred {
                None => (true, dispatch),
                Some(p) => {
                    let v = m.read(p.reg, cur, false)?;
                    let t = avail[p.reg.index()] + config.operand_latency;
                    (((v != 0) == p.if_true), t.max(dispatch))
                }
            };

            if !executes {
                insts_nullified += 1;
                // Null token: the old value of dst forwards once the
                // predicate resolves.
                if let Some(d) = inst.def() {
                    if avail[d.index()] < pred_ready {
                        avail[d.index()] = pred_ready;
                        written_this_block.push(d.0);
                    }
                }
                continue;
            }

            insts_executed += 1;
            let mut ready = pred_ready.max(dispatch + 1);
            for o in [inst.a, inst.b].into_iter().flatten() {
                if let Operand::Reg(r) = o {
                    ready = ready.max(avail[r.index()] + config.operand_latency);
                }
            }
            // In-block memory ordering: a load may have to wait for earlier
            // stores, per the configured LSQ discipline.
            if inst.op == Opcode::Load {
                match config.memory_ordering {
                    MemoryOrdering::Oracle => {}
                    MemoryOrdering::Exact => {
                        let addr = m.operand(
                            inst.a
                                .ok_or(SimError::MalformedInstruction { block: cur })?,
                            cur,
                            false,
                        )?;
                        let wait = store_done.get(&addr).copied().unwrap_or(0);
                        #[cfg(debug_assertions)]
                        {
                            let mut scan = 0u64;
                            for &(sa, st) in &block_stores {
                                if sa == addr {
                                    scan = scan.max(st);
                                }
                            }
                            debug_assert_eq!(scan, wait, "LSQ map diverged from the legacy rescan");
                        }
                        ready = ready.max(wait);
                    }
                    MemoryOrdering::Conservative => {
                        ready = ready.max(any_store_done);
                    }
                }
            }
            let issue = slots.issue_at(ready);
            let done = issue + inst.op.latency();
            if inst.op == Opcode::Store {
                outputs_done = outputs_done.max(done);
                let addr = m.operand(
                    inst.a
                        .ok_or(SimError::MalformedInstruction { block: cur })?,
                    cur,
                    false,
                )?;
                if cfg!(debug_assertions) {
                    block_stores.push((addr, done));
                }
                let e = store_done.entry(addr).or_insert(0);
                *e = (*e).max(done);
                any_store_done = any_store_done.max(done);
            }
            if let Some(d) = inst.def() {
                avail[d.index()] = done;
                written_this_block.push(d.0);
            }
            exec_inst(&mut m, inst, cur, false)?;
        }

        // --- Resolve exits: find the fired exit and its resolve time. ---
        let mut resolve = dispatch + 1;
        let mut fired: Option<ExitTarget> = None;
        for e in blk.exits.iter() {
            match e.pred {
                None => {
                    fired = Some(e.target);
                    break;
                }
                Some(p) => {
                    let v = m.read(p.reg, cur, false)?;
                    let t = avail[p.reg.index()] + config.operand_latency;
                    resolve = resolve.max(t);
                    if (v != 0) == p.if_true {
                        fired = Some(e.target);
                        break;
                    }
                }
            }
        }
        // Verified IR always ends in an unpredicated default exit; injected
        // faults can leave the exit set non-total.
        let target = fired.ok_or(SimError::NoFiringExit { block: cur })?;
        // A returned value is a block output.
        if let ExitTarget::Return(Some(Operand::Reg(r))) = target {
            outputs_done = outputs_done.max(avail[r.index()]);
        }

        // --- Prediction: next-block target (static fallback: the first
        // exit's target, the compiler's most-likely-first ordering). ---
        let fallback = blk.exits[0].target;
        let correct = predictor.update(cur, fallback, target);
        if !correct {
            // Flush: the next block cannot even begin fetching until the
            // exit resolves, plus the flush penalty.
            fetch_ready = fetch_ready.max(resolve + config.mispredict_penalty);
        }

        // --- Commit (in order): branch decision, stores, and live-out
        // register writes must all have resolved. ---
        let live_out = liveness.live_out(cur);
        for &r in written_this_block.iter() {
            if live_out.contains(&chf_ir::ids::Reg(r)) {
                outputs_done = outputs_done.max(avail[r as usize]);
            }
        }
        let block_done = outputs_done.max(resolve);
        let commit = block_done.max(last_commit + config.commit_overhead);
        last_commit = commit;
        inflight.push_back(commit);

        // Cross-block register communication pays register-file latency.
        for r in written_this_block.drain(..) {
            avail[r as usize] += config.register_latency;
        }

        match target {
            ExitTarget::Block(next) => {
                cur = next;
            }
            ExitTarget::Return(v) => {
                let ret = match v {
                    None => None,
                    Some(op) => Some(m.operand(op, cur, false)?),
                };
                break 'outer ret;
            }
        }
    };

    Ok(TimingResult {
        cycles: last_commit,
        blocks_executed,
        predictions: predictor.predictions(),
        mispredictions: predictor.mispredictions(),
        insts_executed,
        insts_nullified,
        insts_fetched,
        ret,
        memory: m.mem,
    })
}

/// Tracks trip counts of active loop visits during execution (the original
/// `LoopForest` + hash-map tracker; the rewritten core uses dense bitsets
/// derived from the lowered CFG).
struct TripTracker {
    forest: LoopForest,
    /// `loop index → current consecutive iteration count`, absent = inactive.
    active: FxHashMap<usize, u64>,
}

impl TripTracker {
    fn new(f: &Function) -> TripTracker {
        TripTracker {
            forest: LoopForest::of(f),
            active: FxHashMap::default(),
        }
    }

    fn on_block(&mut self, b: BlockId, profile: &mut ProfileData) {
        // Close visits of loops we've left.
        let mut finished: Vec<usize> = Vec::new();
        for (&li, _) in self.active.iter() {
            if !self.forest.loops[li].body.contains(&b) {
                finished.push(li);
            }
        }
        for li in finished {
            let trips = self.active.remove(&li).unwrap();
            profile
                .trip_histograms
                .entry(self.forest.loops[li].header)
                .or_default()
                .record(trips);
        }
        // Count an iteration when control reaches a header.
        for (li, l) in self.forest.loops.iter().enumerate() {
            if l.header == b {
                *self.active.entry(li).or_insert(0) += 1;
            }
        }
    }

    fn finish(&mut self, profile: &mut ProfileData) {
        for (li, trips) in self.active.drain() {
            profile
                .trip_histograms
                .entry(self.forest.loops[li].header)
                .or_default()
                .record(trips);
        }
    }
}

/// The original direct-interpretation functional simulator. The rewritten
/// [`crate::functional::run`] must produce identical results (including the
/// full profile) on every input.
///
/// # Errors
/// Exactly the errors of [`crate::functional::run`], at the same execution
/// points.
pub fn run_legacy(
    f: &Function,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &RunConfig,
) -> Result<FuncResult, SimError> {
    let mut m = Machine::new(f, args, mem_init);
    let mut profile = ProfileData::default();
    let mut trips = if config.collect_trip_counts {
        Some(TripTracker::new(f))
    } else {
        None
    };

    let mut blocks_executed = 0u64;
    let mut insts_executed = 0u64;
    let mut insts_fetched = 0u64;
    let check = config.check_uninit;

    let mut cur = f.entry;
    let ret = 'outer: loop {
        if blocks_executed >= config.max_blocks {
            return Err(SimError::OutOfFuel {
                executed: blocks_executed,
            });
        }
        blocks_executed += 1;
        *profile.block_counts.entry(cur).or_insert(0) += 1;
        if let Some(t) = trips.as_mut() {
            t.on_block(cur, &mut profile);
        }

        let blk = f
            .try_block(cur)
            .ok_or(SimError::DanglingTarget { target: cur })?;
        insts_fetched += blk.size() as u64;

        for inst in &blk.insts {
            if let Some(p) = inst.pred {
                let v = m.read(p.reg, cur, check)?;
                if (v != 0) != p.if_true {
                    continue;
                }
            }
            insts_executed += 1;
            exec_inst(&mut m, inst, cur, check)?;
        }

        for (i, e) in blk.exits.iter().enumerate() {
            let fires = match e.pred {
                None => true,
                Some(p) => {
                    let v = m.read(p.reg, cur, check)?;
                    (v != 0) == p.if_true
                }
            };
            if !fires {
                continue;
            }
            *profile.exit_counts.entry((cur, i)).or_insert(0) += 1;
            match e.target {
                ExitTarget::Block(next) => {
                    cur = next;
                    continue 'outer;
                }
                ExitTarget::Return(v) => {
                    let ret = match v {
                        None => None,
                        Some(op) => Some(m.operand(op, cur, check)?),
                    };
                    break 'outer ret;
                }
            }
        }
        // Verified IR always ends in an unpredicated default exit, but
        // chaos-injected IR may not.
        return Err(SimError::NoFiringExit { block: cur });
    };

    if let Some(t) = trips.as_mut() {
        t.finish(&mut profile);
    }

    Ok(FuncResult {
        ret,
        blocks_executed,
        insts_executed,
        insts_fetched,
        memory: m.mem,
        profile,
    })
}
