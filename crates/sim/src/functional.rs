//! Functional simulator: executes IR, profiles it, and checks invariants.
//!
//! Semantics:
//!
//! * Registers are 64-bit signed integers; `r0..params` hold the arguments,
//!   all other registers start at 0 (reads of never-written registers can be
//!   flagged with [`RunConfig::check_uninit`]).
//! * Memory is a sparse word-addressed array of `i64`.
//! * Within a block, instructions execute in program order; a predicated
//!   instruction executes only if its predicate register's truth value
//!   matches the required polarity *at that point*.
//! * After the instructions, the exits are evaluated in order; the first
//!   whose predicate holds fires. The verifier guarantees the last exit is
//!   unpredicated, so some exit always fires.
//!
//! Division and remainder by zero produce 0, and all arithmetic wraps, so
//! execution is total: the only runtime errors are resource exhaustion and
//! (optionally) uninitialized reads.
//!
//! # Dispatch over the lowered form
//!
//! The interpreter executes the pre-decoded [`LoweredProgram`]: operands are
//! flat register indices with immediates pre-substituted, profile counters
//! are dense arrays indexed by block/exit position (converted to the sparse
//! [`ProfileData`] maps once at the end), and loop trip tracking walks the
//! precomputed dense loop bitsets instead of hash sets. The uninitialized-
//! read check is a const-generic parameter, so the default no-check path
//! compiles with zero residue of it. Irregular instructions — broken IR from
//! the fault-injection harness — take a cold slow path that replays the
//! original [`Instr`] with the legacy per-instruction semantics, preserving
//! the interpreter's *lazy* error discipline exactly (an error surfaces only
//! when control reaches it, at the same read, in the same order).
//!
//! [`run`] lowers internally per call; callers that execute the same
//! function repeatedly should lower once and use [`run_lowered`].

use crate::lower::{LExitKind, LKind, LoweredProgram, TripInfo, NONE};
use chf_ir::function::Function;
use chf_ir::fxhash::FxHashMap;
use chf_ir::ids::{BlockId, Reg};
use chf_ir::instr::{Instr, Opcode, Operand};
use chf_ir::profile::ProfileData;
use std::fmt;

/// Configuration for a functional run.
#[derive(Clone, Debug)]
pub struct RunConfig {
    /// Maximum number of blocks to execute before aborting.
    pub max_blocks: u64,
    /// Error on reads of registers that were never written (and are not
    /// parameters). Catches compiler bugs that reorder defs past uses.
    pub check_uninit: bool,
    /// Collect loop trip-count histograms (requires a loop analysis pass on
    /// entry, so slightly slower).
    pub collect_trip_counts: bool,
}

impl Default for RunConfig {
    fn default() -> Self {
        RunConfig {
            max_blocks: 20_000_000,
            check_uninit: false,
            collect_trip_counts: true,
        }
    }
}

impl RunConfig {
    /// Strict configuration used by the test suite: uninitialized reads are
    /// errors.
    pub fn strict() -> Self {
        RunConfig {
            check_uninit: true,
            ..RunConfig::default()
        }
    }
}

/// Runtime error during simulation (functional or timing).
///
/// The first two variants are *input* errors — legal programs that merely
/// run too long or read uninitialized state. The remaining variants are
/// *malformed-IR* errors: the simulators are total over verified IR, but the
/// fault-injection harness and the differential oracle deliberately feed
/// them broken functions, and a broken function must surface as an `Err`
/// the caller can classify — never as a panic.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SimError {
    /// The block budget was exhausted (probable infinite loop).
    OutOfFuel {
        /// Number of blocks that had executed when the budget ran out.
        executed: u64,
    },
    /// A register was read before any write (only with
    /// [`RunConfig::check_uninit`]).
    UninitializedRead {
        /// The block in which the read occurred.
        block: BlockId,
        /// The offending register.
        reg: Reg,
    },
    /// Control transferred to a removed or never-created block.
    DanglingTarget {
        /// The nonexistent block control tried to enter.
        target: BlockId,
    },
    /// An instruction or exit referenced a register outside the function's
    /// allocated register space.
    RegisterOutOfRange {
        /// The block containing the reference.
        block: BlockId,
        /// The out-of-range register number.
        reg: u32,
    },
    /// An instruction was missing a required operand or destination slot.
    MalformedInstruction {
        /// The block containing the instruction.
        block: BlockId,
    },
    /// No exit fired — every exit was predicated and none held (verified IR
    /// always ends in an unpredicated default).
    NoFiringExit {
        /// The block whose exit set was not total.
        block: BlockId,
    },
}

/// Former name of [`SimError`], kept as an alias for existing callers.
pub type ExecError = SimError;

impl fmt::Display for SimError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SimError::OutOfFuel { executed } => {
                write!(f, "out of fuel after executing {executed} blocks")
            }
            SimError::UninitializedRead { block, reg } => {
                write!(f, "uninitialized read of {reg} in block {block}")
            }
            SimError::DanglingTarget { target } => {
                write!(f, "control transferred to nonexistent block {target}")
            }
            SimError::RegisterOutOfRange { block, reg } => {
                write!(f, "block {block} references unallocated register r{reg}")
            }
            SimError::MalformedInstruction { block } => {
                write!(
                    f,
                    "block {block} contains an instruction missing a required operand"
                )
            }
            SimError::NoFiringExit { block } => {
                write!(f, "no exit of block {block} fired (exit set is not total)")
            }
        }
    }
}

impl std::error::Error for SimError {}

/// The observable outcome and metrics of one functional run.
#[derive(Clone, Debug)]
pub struct FuncResult {
    /// Value returned by the fired `Return` exit, if it carried one.
    pub ret: Option<i64>,
    /// Number of dynamic block executions (the paper's Table 3 metric).
    pub blocks_executed: u64,
    /// Instructions whose predicate held and that therefore executed.
    pub insts_executed: u64,
    /// All instruction slots fetched, including falsely-predicated ones and
    /// exits (branch slots).
    pub insts_fetched: u64,
    /// Final memory image (sparse).
    pub memory: FxHashMap<i64, i64>,
    /// Profile gathered during the run.
    pub profile: ProfileData,
}

impl FuncResult {
    /// A digest of observable behaviour: return value plus sorted non-zero
    /// memory. Two runs are *observably equivalent* iff their digests match.
    pub fn digest(&self) -> (Option<i64>, Vec<(i64, i64)>) {
        let mut mem: Vec<(i64, i64)> = self
            .memory
            .iter()
            .filter(|(_, v)| **v != 0)
            .map(|(k, v)| (*k, *v))
            .collect();
        mem.sort_unstable();
        (self.ret, mem)
    }
}

#[inline]
pub(crate) fn eval(op: Opcode, a: i64, b: i64) -> i64 {
    match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Opcode::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl((b & 63) as u32),
        Opcode::Shr => a.wrapping_shr((b & 63) as u32),
        Opcode::Not => !a,
        Opcode::Neg => a.wrapping_neg(),
        Opcode::Mov => a,
        Opcode::CmpEq => (a == b) as i64,
        Opcode::CmpNe => (a != b) as i64,
        Opcode::CmpLt => (a < b) as i64,
        Opcode::CmpLe => (a <= b) as i64,
        Opcode::CmpGt => (a > b) as i64,
        Opcode::CmpGe => (a >= b) as i64,
        Opcode::Load | Opcode::Store => unreachable!("memory ops handled separately"),
    }
}

pub(crate) struct Machine {
    pub(crate) regs: Vec<i64>,
    written: Vec<bool>,
    pub(crate) mem: FxHashMap<i64, i64>,
}

impl Machine {
    pub(crate) fn new(f: &Function, args: &[i64], mem_init: &[(i64, i64)]) -> Machine {
        Machine::with_layout(f.reg_count() as usize, f.params, args, mem_init)
    }

    pub(crate) fn with_layout(
        nregs: usize,
        params: u32,
        args: &[i64],
        mem_init: &[(i64, i64)],
    ) -> Machine {
        let mut regs = vec![0i64; nregs];
        let mut written = vec![false; nregs];
        for (i, a) in args.iter().enumerate().take(params as usize) {
            regs[i] = *a;
            written[i] = true;
        }
        let mem = mem_init.iter().copied().collect();
        Machine { regs, written, mem }
    }

    pub(crate) fn read(&self, r: Reg, block: BlockId, check: bool) -> Result<i64, SimError> {
        let i = r.index();
        if i >= self.regs.len() {
            return Err(SimError::RegisterOutOfRange { block, reg: r.0 });
        }
        if check && !self.written[i] {
            return Err(SimError::UninitializedRead { block, reg: r });
        }
        Ok(self.regs[i])
    }

    pub(crate) fn operand(
        &self,
        o: Operand,
        block: BlockId,
        check: bool,
    ) -> Result<i64, ExecError> {
        match o {
            Operand::Reg(r) => self.read(r, block, check),
            Operand::Imm(v) => Ok(v),
        }
    }

    pub(crate) fn write(&mut self, r: Reg, v: i64, block: BlockId) -> Result<(), SimError> {
        let i = r.index();
        if i >= self.regs.len() {
            return Err(SimError::RegisterOutOfRange { block, reg: r.0 });
        }
        self.regs[i] = v;
        self.written[i] = true;
        Ok(())
    }
}

/// Tracks trip counts of active loop visits over the dense [`TripInfo`]
/// bitsets: a vector of per-loop consecutive-iteration counts plus the
/// (small) list of currently active loops.
struct TripState<'a> {
    ti: &'a TripInfo,
    /// Per loop: current consecutive iteration count; `0` = inactive.
    count: Vec<u64>,
    /// Indices of loops with `count > 0`.
    active: Vec<u32>,
}

impl<'a> TripState<'a> {
    fn new(ti: &'a TripInfo) -> TripState<'a> {
        TripState {
            ti,
            count: vec![0; ti.n_loops],
            active: Vec::new(),
        }
    }

    #[inline]
    fn on_block(&mut self, b: usize, profile: &mut ProfileData) {
        // Close visits of loops we've left.
        let mut i = 0;
        while i < self.active.len() {
            let li = self.active[i];
            if !self.ti.contains(li, b) {
                let trips = std::mem::take(&mut self.count[li as usize]);
                profile
                    .trip_histograms
                    .entry(self.ti.headers[li as usize])
                    .or_default()
                    .record(trips);
                self.active.swap_remove(i);
            } else {
                i += 1;
            }
        }
        // Count an iteration when control reaches a header.
        let hl = self.ti.header_loop[b];
        if hl != NONE {
            if self.count[hl as usize] == 0 {
                self.active.push(hl);
            }
            self.count[hl as usize] += 1;
        }
    }

    fn finish(&mut self, profile: &mut ProfileData) {
        for li in self.active.drain(..) {
            profile
                .trip_histograms
                .entry(self.ti.headers[li as usize])
                .or_default()
                .record(self.count[li as usize]);
        }
    }
}

/// Execute `f` with the given arguments and initial memory (lowering it
/// internally; see [`run_lowered`] to amortize the decode over many runs).
///
/// # Errors
/// Returns [`ExecError::OutOfFuel`] if `config.max_blocks` dynamic blocks
/// execute without returning, or [`ExecError::UninitializedRead`] in strict
/// mode.
pub fn run(
    f: &Function,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &RunConfig,
) -> Result<FuncResult, ExecError> {
    let p = LoweredProgram::lower(f);
    run_lowered(&p, args, mem_init, config)
}

/// Execute an already-lowered program.
///
/// # Errors
/// As [`run`].
pub fn run_lowered(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &RunConfig,
) -> Result<FuncResult, ExecError> {
    if config.check_uninit {
        run_lowered_impl::<true>(p, args, mem_init, config)
    } else {
        run_lowered_impl::<false>(p, args, mem_init, config)
    }
}

fn run_lowered_impl<const CHECK: bool>(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &RunConfig,
) -> Result<FuncResult, ExecError> {
    let mut m = Machine::with_layout(p.nregs, p.params, args, mem_init);
    let mut profile = ProfileData::default();
    // Dense counters; folded into `profile`'s sparse maps at the end.
    let mut block_counts = vec![0u64; p.n_blocks()];
    let mut exit_counts = vec![0u64; p.n_exits()];
    let mut trips = if config.collect_trip_counts {
        Some(TripState::new(p.trip_info()))
    } else {
        None
    };

    let mut blocks_executed = 0u64;
    let mut insts_executed = 0u64;
    let mut insts_fetched = 0u64;

    let mut cur = p.entry;
    let ret = 'outer: loop {
        if blocks_executed >= config.max_blocks {
            return Err(ExecError::OutOfFuel {
                executed: blocks_executed,
            });
        }
        blocks_executed += 1;
        block_counts[cur as usize] += 1;
        if let Some(t) = trips.as_mut() {
            t.on_block(cur as usize, &mut profile);
        }

        let lb = &p.blocks[cur as usize];
        insts_fetched += lb.size as u64;

        for inst in &p.insts[lb.inst_start as usize..lb.inst_end as usize] {
            if let LKind::Slow(si) = inst.kind {
                // Cold path: replay the original instruction with the legacy
                // per-instruction semantics (same reads, same error order).
                let s = &p.slow[si as usize];
                if let Some(pr) = s.inst.pred {
                    let v = m.read(pr.reg, lb.id, CHECK)?;
                    if (v != 0) != pr.if_true {
                        continue;
                    }
                }
                insts_executed += 1;
                exec_inst(&mut m, &s.inst, lb.id, CHECK)?;
                continue;
            }
            if inst.pred_reg != NONE {
                let pi = inst.pred_reg as usize;
                if CHECK && !m.written[pi] {
                    return Err(SimError::UninitializedRead {
                        block: lb.id,
                        reg: Reg(inst.pred_reg),
                    });
                }
                if (m.regs[pi] != 0) != inst.pred_if_true {
                    continue;
                }
            }
            insts_executed += 1;
            match inst.kind {
                LKind::Alu => {
                    let a = if inst.a_reg != NONE {
                        let ai = inst.a_reg as usize;
                        if CHECK && !m.written[ai] {
                            return Err(SimError::UninitializedRead {
                                block: lb.id,
                                reg: Reg(inst.a_reg),
                            });
                        }
                        m.regs[ai]
                    } else {
                        inst.a_imm
                    };
                    let b = if inst.b_reg != NONE {
                        let bi = inst.b_reg as usize;
                        if CHECK && !m.written[bi] {
                            return Err(SimError::UninitializedRead {
                                block: lb.id,
                                reg: Reg(inst.b_reg),
                            });
                        }
                        m.regs[bi]
                    } else {
                        inst.b_imm
                    };
                    let di = inst.dst as usize;
                    m.regs[di] = eval(inst.op, a, b);
                    if CHECK {
                        m.written[di] = true;
                    }
                }
                LKind::Load => {
                    // The interpreter reads only the address operand for a
                    // load (a present-but-unused `b` is never touched).
                    let addr = if inst.a_reg != NONE {
                        let ai = inst.a_reg as usize;
                        if CHECK && !m.written[ai] {
                            return Err(SimError::UninitializedRead {
                                block: lb.id,
                                reg: Reg(inst.a_reg),
                            });
                        }
                        m.regs[ai]
                    } else {
                        inst.a_imm
                    };
                    let di = inst.dst as usize;
                    m.regs[di] = m.mem.get(&addr).copied().unwrap_or(0);
                    if CHECK {
                        m.written[di] = true;
                    }
                }
                LKind::Store => {
                    let addr = if inst.a_reg != NONE {
                        let ai = inst.a_reg as usize;
                        if CHECK && !m.written[ai] {
                            return Err(SimError::UninitializedRead {
                                block: lb.id,
                                reg: Reg(inst.a_reg),
                            });
                        }
                        m.regs[ai]
                    } else {
                        inst.a_imm
                    };
                    let v = if inst.b_reg != NONE {
                        let bi = inst.b_reg as usize;
                        if CHECK && !m.written[bi] {
                            return Err(SimError::UninitializedRead {
                                block: lb.id,
                                reg: Reg(inst.b_reg),
                            });
                        }
                        m.regs[bi]
                    } else {
                        inst.b_imm
                    };
                    m.mem.insert(addr, v);
                }
                LKind::Slow(_) => unreachable!("handled above"),
            }
        }

        for j in lb.exit_start..lb.exit_end {
            let e = &p.exits[j as usize];
            if let Some(r) = e.pred_oor {
                return Err(SimError::RegisterOutOfRange {
                    block: lb.id,
                    reg: r,
                });
            }
            if e.pred_reg != NONE {
                let pi = e.pred_reg as usize;
                if CHECK && !m.written[pi] {
                    return Err(SimError::UninitializedRead {
                        block: lb.id,
                        reg: Reg(e.pred_reg),
                    });
                }
                if (m.regs[pi] != 0) != e.pred_if_true {
                    continue;
                }
            }
            exit_counts[j as usize] += 1;
            match e.kind {
                LExitKind::Goto(next) => {
                    cur = next;
                    continue 'outer;
                }
                LExitKind::Dangling(target) => {
                    // The legacy loop only discovers the dangling target at
                    // the top of the next iteration, after the fuel check.
                    if blocks_executed >= config.max_blocks {
                        return Err(ExecError::OutOfFuel {
                            executed: blocks_executed,
                        });
                    }
                    return Err(SimError::DanglingTarget { target });
                }
                LExitKind::RetNone => break 'outer None,
                LExitKind::RetImm(v) => break 'outer Some(v),
                LExitKind::RetReg(r) => {
                    let ri = r as usize;
                    if CHECK && !m.written[ri] {
                        return Err(SimError::UninitializedRead {
                            block: lb.id,
                            reg: Reg(r),
                        });
                    }
                    break 'outer Some(m.regs[ri]);
                }
                LExitKind::RetRegOor(r) => {
                    return Err(SimError::RegisterOutOfRange {
                        block: lb.id,
                        reg: r,
                    });
                }
            }
        }
        // Verified IR always ends in an unpredicated default exit, but
        // chaos-injected IR may not.
        return Err(SimError::NoFiringExit { block: lb.id });
    };

    if let Some(t) = trips.as_mut() {
        t.finish(&mut profile);
    }
    // Fold the dense counters into the sparse profile maps (only touched
    // entries, matching the legacy entry-on-first-increment behaviour).
    for (bi, &c) in block_counts.iter().enumerate() {
        if c != 0 {
            profile.block_counts.insert(p.blocks[bi].id, c);
        }
    }
    for lb in &p.blocks {
        for (j, idx) in (lb.exit_start..lb.exit_end).enumerate() {
            let c = exit_counts[idx as usize];
            if c != 0 {
                profile.exit_counts.insert((lb.id, j), c);
            }
        }
    }

    Ok(FuncResult {
        ret,
        blocks_executed,
        insts_executed,
        insts_fetched,
        memory: m.mem,
        profile,
    })
}

pub(crate) fn exec_inst(
    m: &mut Machine,
    inst: &Instr,
    cur: BlockId,
    check: bool,
) -> Result<(), SimError> {
    let malformed = || SimError::MalformedInstruction { block: cur };
    match inst.op {
        Opcode::Load => {
            let addr = m.operand(inst.a.ok_or_else(malformed)?, cur, check)?;
            let v = m.mem.get(&addr).copied().unwrap_or(0);
            m.write(inst.dst.ok_or_else(malformed)?, v, cur)?;
        }
        Opcode::Store => {
            let addr = m.operand(inst.a.ok_or_else(malformed)?, cur, check)?;
            let v = m.operand(inst.b.ok_or_else(malformed)?, cur, check)?;
            m.mem.insert(addr, v);
        }
        op => {
            let a = m.operand(inst.a.ok_or_else(malformed)?, cur, check)?;
            let b = match inst.b {
                Some(o) => m.operand(o, cur, check)?,
                None => 0,
            };
            m.write(inst.dst.ok_or_else(malformed)?, eval(op, a, b), cur)?;
        }
    }
    Ok(())
}

/// Run `f` on the given inputs and return its profile, for stamping onto the
/// function with [`ProfileData::apply`]. Convenience wrapper used by
/// workload constructors.
///
/// # Errors
/// Propagates any [`ExecError`] from the underlying run.
pub fn profile_run(
    f: &Function,
    args: &[i64],
    mem_init: &[(i64, i64)],
) -> Result<ProfileData, ExecError> {
    Ok(run(f, args, mem_init, &RunConfig::default())?.profile)
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::{Instr, Operand, Pred};

    fn reg(r: Reg) -> Operand {
        Operand::Reg(r)
    }

    /// sum of 0..n via a while loop
    fn sum_loop() -> Function {
        let mut fb = FunctionBuilder::new("sum", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let body = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        let acc = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(reg(i), reg(Reg(0)));
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let acc2 = fb.add(reg(acc), reg(i));
        fb.mov_to(acc, reg(acc2));
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(reg(acc)));
        fb.build().unwrap()
    }

    #[test]
    fn computes_loop_sum() {
        let f = sum_loop();
        let r = run(&f, &[10], &[], &RunConfig::strict()).unwrap();
        assert_eq!(r.ret, Some(45));
        // entry + 11 header + 10 body + exit
        assert_eq!(r.blocks_executed, 23);
    }

    #[test]
    fn profile_counts_blocks_and_exits() {
        let f = sum_loop();
        let r = run(&f, &[4], &[], &RunConfig::default()).unwrap();
        let h = BlockId(1);
        assert_eq!(r.profile.block_counts[&h], 5);
        assert_eq!(r.profile.exit_counts[&(h, 0)], 4); // taken into body
        assert_eq!(r.profile.exit_counts[&(h, 1)], 1); // loop exit
    }

    #[test]
    fn trip_histogram_recorded() {
        let f = sum_loop();
        let r = run(&f, &[7], &[], &RunConfig::default()).unwrap();
        let hist = r.profile.trip_histograms.get(&BlockId(1)).unwrap();
        // header visited 8 times in one visit (7 body iterations + exit test)
        assert_eq!(hist.visits(), 1);
        assert_eq!(hist.mode(), Some(8));
    }

    #[test]
    fn memory_semantics() {
        let mut fb = FunctionBuilder::new("memtest", 0);
        let e = fb.create_block();
        fb.switch_to(e);
        let v = fb.load(Operand::Imm(100));
        let v2 = fb.add(reg(v), Operand::Imm(5));
        fb.store(Operand::Imm(101), reg(v2));
        fb.ret(Some(reg(v2)));
        let f = fb.build().unwrap();
        let r = run(&f, &[], &[(100, 37)], &RunConfig::default()).unwrap();
        assert_eq!(r.ret, Some(42));
        assert_eq!(r.memory[&101], 42);
        assert_eq!(r.digest().1, vec![(100, 37), (101, 42)]);
    }

    #[test]
    fn predicated_instruction_skipped() {
        let mut fb = FunctionBuilder::new("predtest", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let out = fb.mov(Operand::Imm(0));
        let p = fb.cmp_gt(reg(Reg(0)), Operand::Imm(5));
        fb.push(Instr::mov(out, Operand::Imm(1)).predicated(Pred::on_true(p)));
        fb.push(Instr::mov(out, Operand::Imm(2)).predicated(Pred::on_false(p)));
        fb.ret(Some(reg(out)));
        let f = fb.build().unwrap();
        assert_eq!(
            run(&f, &[9], &[], &RunConfig::strict()).unwrap().ret,
            Some(1)
        );
        assert_eq!(
            run(&f, &[3], &[], &RunConfig::strict()).unwrap().ret,
            Some(2)
        );
    }

    #[test]
    fn out_of_fuel_detected() {
        let mut fb = FunctionBuilder::new("spin", 0);
        let e = fb.create_block();
        fb.switch_to(e);
        fb.jump(e);
        let f = fb.build().unwrap();
        let cfg = RunConfig {
            max_blocks: 100,
            ..RunConfig::default()
        };
        assert_eq!(
            run(&f, &[], &[], &cfg).unwrap_err(),
            ExecError::OutOfFuel { executed: 100 }
        );
    }

    #[test]
    fn uninitialized_read_detected_in_strict_mode() {
        let mut fb = FunctionBuilder::new("uninit", 0);
        let e = fb.create_block();
        fb.switch_to(e);
        let ghost = fb.fresh_reg();
        let x = fb.add(reg(ghost), Operand::Imm(1));
        fb.ret(Some(reg(x)));
        let f = fb.build().unwrap();
        assert!(matches!(
            run(&f, &[], &[], &RunConfig::strict()),
            Err(ExecError::UninitializedRead { .. })
        ));
        // Non-strict mode reads 0.
        assert_eq!(
            run(&f, &[], &[], &RunConfig::default()).unwrap().ret,
            Some(1)
        );
    }

    #[test]
    fn division_by_zero_yields_zero() {
        let mut fb = FunctionBuilder::new("divz", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let d = fb.div(Operand::Imm(10), reg(Reg(0)));
        let r = fb.rem(Operand::Imm(10), reg(Reg(0)));
        let s = fb.add(reg(d), reg(r));
        fb.ret(Some(reg(s)));
        let f = fb.build().unwrap();
        assert_eq!(
            run(&f, &[0], &[], &RunConfig::default()).unwrap().ret,
            Some(0)
        );
        assert_eq!(
            run(&f, &[3], &[], &RunConfig::default()).unwrap().ret,
            Some(4)
        );
    }

    #[test]
    fn fetched_counts_include_false_predicates_and_exits() {
        let f = sum_loop();
        let r = run(&f, &[1], &[], &RunConfig::default()).unwrap();
        assert!(r.insts_fetched > r.insts_executed);
    }

    #[test]
    fn lowered_handle_reuse_matches_per_call_lowering() {
        let f = sum_loop();
        let p = LoweredProgram::lower(&f);
        let a = run_lowered(&p, &[9], &[], &RunConfig::default()).unwrap();
        let b = run(&f, &[9], &[], &RunConfig::default()).unwrap();
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.blocks_executed, b.blocks_executed);
        assert_eq!(a.profile.block_counts, b.profile.block_counts);
        assert_eq!(a.profile.exit_counts, b.profile.exit_counts);
    }

    #[test]
    fn broken_ir_errors_stay_lazy() {
        // A malformed instruction on a never-taken path must not error; the
        // same instruction on the taken path errors with the legacy variant.
        let mut fb = FunctionBuilder::new("lazy", 1);
        let e = fb.create_block();
        let cold = fb.create_block();
        let hot = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_gt(reg(Reg(0)), Operand::Imm(10));
        fb.branch(c, cold, hot);
        fb.switch_to(cold);
        let x = fb.add(reg(Reg(0)), Operand::Imm(1));
        fb.ret(Some(reg(x)));
        fb.switch_to(hot);
        fb.ret(Some(Operand::Imm(7)));
        let mut f = fb.build().unwrap();
        // Corrupt the cold block: missing operand.
        f.block_mut(BlockId(1)).insts[0].a = None;
        // Not reached: runs fine.
        assert_eq!(
            run(&f, &[0], &[], &RunConfig::default()).unwrap().ret,
            Some(7)
        );
        // Reached: the legacy error, lazily.
        assert_eq!(
            run(&f, &[99], &[], &RunConfig::default()).unwrap_err(),
            SimError::MalformedInstruction { block: BlockId(1) }
        );
    }
}
