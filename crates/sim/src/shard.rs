//! Sharded whole-program timing simulation with a deterministic stitch.
//!
//! Execution model (see [`crate::checkpoint`] for the plan pass):
//!
//! 1. [`plan_shards`] runs one fast functional pass, recording per-shard
//!    architectural checkpoints and ground-truth expectations.
//! 2. Each shard is cycle-simulated independently ([`simulate_shard`] —
//!    embarrassingly parallel, the caller picks the thread pool): the
//!    engine starts from the shard's checkpoint with *drained*
//!    microarchitectural state, warms up for `W` blocks to reconstruct the
//!    pipeline (in-flight commits, issue-ring occupancy, register
//!    availability), then simulates its `S`-block range and reports the
//!    cycle/counter *deltas* over that range plus normalized
//!    [`TimingDigest`]s at its entry and exit boundaries.
//! 3. [`stitch`] validates the chain — every shard's exit digest must
//!    equal the next shard's entry digest, every shard's architectural
//!    replay must match the plan's expectations — and sums the deltas.
//!
//! **Exactness.** The engine's cycle arithmetic is shift-invariant
//! (max/+constant only), so equal boundary digests imply equal future
//! cycle deltas: a validated stitch reproduces the sequential run's cycle
//! count *exactly*, not approximately. Shard 0 needs no warm-up (it *is*
//! the sequential prefix), and the chain check extends exactness shard by
//! shard.
//!
//! **Unconditional correctness.** Warm-up convergence is a performance
//! property, never a correctness assumption: any validation failure — a
//! digest mismatch, a counter delta off the plan, a corrupted checkpoint
//! (see [`corrupt_checkpoint`] and the chaos harness) — degrades to a full
//! sequential re-simulation, whose result is returned verbatim. The
//! sharded entry points therefore return byte-identical results at any
//! worker count, shard size, or warm-up length.

use crate::checkpoint::{plan_shards, ShardConfig, ShardPlan};
use crate::functional::SimError;
use crate::timing::{
    simulate_timing_lowered, Cycle, Engine, EngineStart, EngineStep, RegInit, TimingConfig,
    TimingDigest, TimingResult,
};
use chf_ir::fxhash::FxHashMap;

/// Margin for selecting 32-bit cycle timestamps: the conservative bound
/// must stay a factor of 4 under the wrap point. (Even a bound violation
/// is safe — a wrapped timestamp desynchronizes the boundary digest and
/// the stitcher falls back — but the margin keeps that path theoretical.)
const NARROW_LIMIT: u64 = (u32::MAX as u64) / 4;

/// One shard's timing replay: deltas over its range and boundary digests.
#[derive(Clone, Debug)]
pub struct ShardRun {
    pub(crate) cycles_delta: u64,
    pub(crate) predictions: u64,
    pub(crate) mispredictions: u64,
    pub(crate) insts_executed: u64,
    pub(crate) insts_nullified: u64,
    pub(crate) insts_fetched: u64,
    /// Prediction-outcome hash over the range.
    pub(crate) outcome_hash: u64,
    /// Normalized state entering the range (`None` for shard 0).
    pub(crate) entry_digest: Option<TimingDigest>,
    /// Normalized state leaving the range (`None` for the last shard).
    pub(crate) exit_digest: Option<TimingDigest>,
    /// Mid-range architectural probe against the next shard's checkpoint.
    pub(crate) arch_ok: bool,
    /// `Some(ret)` on the last shard.
    pub(crate) ret: Option<Option<i64>>,
    /// Final memory image (last shard only).
    pub(crate) memory: Option<FxHashMap<i64, i64>>,
    /// Ran with 32-bit timestamps.
    pub(crate) narrow: bool,
}

/// A stitched sharded run: the (exact) timing result plus how it was
/// obtained.
#[derive(Clone, Debug)]
pub struct StitchedTiming {
    /// The whole-program result — identical to what
    /// [`simulate_timing_lowered`] returns on the same inputs.
    pub result: TimingResult,
    /// Shards in the plan.
    pub shards: usize,
    /// Approximate bytes of recorded checkpoint state.
    pub checkpoint_bytes: usize,
    /// Shards that ran with 32-bit cycle timestamps.
    pub narrow_shards: usize,
    /// `Some(reason)` when validation failed and the result came from the
    /// sequential fallback instead of the stitch.
    pub fallback: Option<String>,
}

/// Conservative per-run cycle bound for timestamp-width selection: every
/// block costs at most `map + resolve + commit_overhead +
/// mispredict_penalty + Σ_insts (issue-slot + latency + operand hop +
/// register-file latency)` cycles over its predecessor's bound, so
/// `budget` blocks stay under `(budget + 2) × max-block-cost`. `None` on
/// arithmetic overflow (caller falls back to 64-bit timestamps).
fn cycle_bound(p: &LoweredProgram, config: &TimingConfig, budget: u64) -> Option<u64> {
    let mut worst: u64 = 0;
    for b in p.blocks.iter() {
        let map = config.block_overhead + (b.size as u64).div_ceil(config.fetch_bandwidth as u64);
        let mut cost = map
            .checked_add(config.commit_overhead)?
            .checked_add(config.mispredict_penalty)?
            .checked_add(1)?;
        for inst in &p.insts[b.inst_start as usize..b.inst_end as usize] {
            cost = cost.checked_add(
                1 + u64::from(inst.latency) + config.operand_latency + config.register_latency,
            )?;
        }
        worst = worst.max(cost);
    }
    budget.checked_add(2)?.checked_mul(worst)
}

use crate::lower::LoweredProgram;

/// Cycle-simulate shard `k` of `plan`: warm up, replay the range, probe
/// the next checkpoint, digest the boundaries.
///
/// Pure and independent per shard — safe to run all shards concurrently.
/// Every way a shard can fail to reproduce the plan (early return, timing
/// error, warm-up running past the program) is an `Err(reason)`, which the
/// stitcher converts into a sequential fallback.
///
/// # Errors
/// A human-readable reason whenever the shard cannot replay its range
/// exactly as planned.
pub fn simulate_shard(
    p: &LoweredProgram,
    config: &TimingConfig,
    plan: &ShardPlan,
    k: usize,
) -> Result<ShardRun, String> {
    let spec = plan
        .shards
        .get(k)
        .ok_or_else(|| format!("shard {k}: out of range"))?;
    let budget = spec.warmup + spec.len;
    let narrow = cycle_bound(p, config, budget).is_some_and(|b| b <= NARROW_LIMIT);
    match (narrow, config.operand_latency == 0) {
        (true, true) => run_shard::<u32, true>(p, config, plan, k),
        (true, false) => run_shard::<u32, false>(p, config, plan, k),
        (false, true) => run_shard::<u64, true>(p, config, plan, k),
        (false, false) => run_shard::<u64, false>(p, config, plan, k),
    }
}

fn run_shard<C: Cycle, const ZERO_OPLAT: bool>(
    p: &LoweredProgram,
    config: &TimingConfig,
    plan: &ShardPlan,
    k: usize,
) -> Result<ShardRun, String> {
    let spec = &plan.shards[k];
    let last = k + 1 == plan.shards.len();
    let ck = &spec.checkpoint;
    let mut eng: Engine<'_, C, ZERO_OPLAT> = Engine::new(
        p,
        config,
        EngineStart {
            cur: ck.cur,
            regs: RegInit::Full(&ck.regs),
            mem_init: &ck.mem,
            predictor: ck.predictor.clone(),
            max_blocks: spec.warmup + spec.len,
        },
    )
    .map_err(|e| format!("shard {k}: init: {e}"))?;

    for i in 0..spec.warmup {
        match eng.step(None) {
            Ok(EngineStep::Continue) => {}
            Ok(EngineStep::Done(_)) => {
                return Err(format!("shard {k}: returned in warm-up block {i}"))
            }
            Err(e) => return Err(format!("shard {k}: warm-up block {i}: {e}")),
        }
    }

    let entry_digest = (k > 0).then(|| eng.state_digest());
    let base = eng.counters();
    eng.reset_outcome_hash();
    // Where the *next* shard's checkpoint sits inside this range: compare
    // full architectural state against the plan's ground truth there.
    let probe_at = (!last).then(|| spec.len - plan.shards[k + 1].warmup);
    let mut arch_ok = true;
    let mut ret: Option<Option<i64>> = None;

    for i in 0..spec.len {
        if probe_at == Some(i) {
            arch_ok = eng.arch_matches(&plan.shards[k + 1].checkpoint);
        }
        match eng.step(None) {
            Ok(EngineStep::Continue) => {}
            Ok(EngineStep::Done(r)) => {
                if last && i + 1 == spec.len {
                    ret = Some(r);
                } else {
                    return Err(format!(
                        "shard {k}: early return at block {} of [{}, {})",
                        spec.start + i,
                        spec.start,
                        spec.start + spec.len
                    ));
                }
            }
            Err(e) => return Err(format!("shard {k}: block {}: {e}", spec.start + i)),
        }
    }
    if last && ret.is_none() {
        return Err(format!("shard {k}: program did not return at range end"));
    }

    let end = eng.counters();
    let exit_digest = (!last).then(|| eng.state_digest());
    let outcome_hash = eng.outcome_hash;
    let memory = if last {
        // `into_result` builds the final memory map and recycles the
        // engine's scratch buffers.
        Some(eng.into_result(ret.flatten()).memory)
    } else {
        eng.recycle();
        None
    };

    Ok(ShardRun {
        cycles_delta: end.last_commit - base.last_commit,
        predictions: end.predictions - base.predictions,
        mispredictions: end.mispredictions - base.mispredictions,
        insts_executed: end.insts_executed - base.insts_executed,
        insts_nullified: end.insts_nullified - base.insts_nullified,
        insts_fetched: end.insts_fetched - base.insts_fetched,
        outcome_hash,
        entry_digest,
        exit_digest,
        arch_ok,
        ret,
        memory,
        narrow: std::mem::size_of::<C>() == 4,
    })
}

/// Validate the shard chain against the plan and sum the deltas; any
/// discrepancy is an `Err(reason)`.
fn try_stitch(
    plan: &ShardPlan,
    runs: Vec<Result<ShardRun, String>>,
) -> Result<TimingResult, String> {
    if runs.len() != plan.shards.len() {
        return Err(format!(
            "ran {} shards, plan has {}",
            runs.len(),
            plan.shards.len()
        ));
    }
    let runs: Vec<ShardRun> = runs.into_iter().collect::<Result<_, _>>()?;

    let mut total = TimingResult {
        cycles: 0,
        blocks_executed: plan.total_blocks,
        predictions: 0,
        mispredictions: 0,
        insts_executed: 0,
        insts_nullified: 0,
        insts_fetched: 0,
        ret: plan.ret,
        memory: FxHashMap::default(),
    };
    for (k, r) in runs.iter().enumerate() {
        let spec = &plan.shards[k];
        if !r.arch_ok {
            return Err(format!(
                "shard {k}: architectural state diverged from checkpoint {}",
                k + 1
            ));
        }
        if r.predictions != spec.len {
            return Err(format!(
                "shard {k}: {} predictions over a {}-block range",
                r.predictions, spec.len
            ));
        }
        if r.outcome_hash != spec.expect.outcome_hash {
            return Err(format!("shard {k}: prediction-outcome stream diverged"));
        }
        if r.mispredictions != spec.expect.mispredictions
            || r.insts_executed != spec.expect.insts_executed
            || r.insts_nullified != spec.expect.insts_nullified
            || r.insts_fetched != spec.expect.insts_fetched
        {
            return Err(format!("shard {k}: range counters diverged from plan"));
        }
        if k > 0 && runs[k - 1].exit_digest != r.entry_digest {
            return Err(format!(
                "boundary digest mismatch between shards {} and {k}",
                k - 1
            ));
        }
        total.cycles += r.cycles_delta;
        total.predictions += r.predictions;
        total.mispredictions += r.mispredictions;
        total.insts_executed += r.insts_executed;
        total.insts_nullified += r.insts_nullified;
        total.insts_fetched += r.insts_fetched;
    }

    let last = runs.len() - 1;
    if runs[last].ret != Some(plan.ret) {
        return Err(format!("shard {last}: return value diverged from plan"));
    }
    let memory = runs
        .into_iter()
        .next_back()
        .and_then(|r| r.memory)
        .ok_or_else(|| format!("shard {last}: missing final memory image"))?;
    let mut image: Vec<(i64, i64)> = memory.iter().map(|(&a, &v)| (a, v)).collect();
    image.sort_unstable();
    if image != plan.final_mem {
        return Err(format!("shard {last}: final memory diverged from plan"));
    }
    total.memory = memory;
    Ok(total)
}

/// Stitch per-shard runs into the whole-program [`TimingResult`].
///
/// On any validation failure the run degrades to a full sequential
/// re-simulation and returns *its* result (with the failure reason in
/// [`StitchedTiming::fallback`]) — wrong cycles are never emitted.
///
/// # Errors
/// Only the sequential fallback's [`SimError`] (a validated stitch cannot
/// fail; a fallback re-simulation fails exactly when the sequential run
/// does).
pub fn stitch(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
    plan: &ShardPlan,
    runs: Vec<Result<ShardRun, String>>,
) -> Result<StitchedTiming, SimError> {
    let narrow_shards = runs
        .iter()
        .filter_map(|r| r.as_ref().ok())
        .filter(|r| r.narrow)
        .count();
    match try_stitch(plan, runs) {
        Ok(result) => Ok(StitchedTiming {
            result,
            shards: plan.n_shards(),
            checkpoint_bytes: plan.checkpoint_bytes(),
            narrow_shards,
            fallback: None,
        }),
        Err(reason) => {
            let result = simulate_timing_lowered(p, args, mem_init, config)?;
            Ok(StitchedTiming {
                result,
                shards: plan.n_shards(),
                checkpoint_bytes: plan.checkpoint_bytes(),
                narrow_shards,
                fallback: Some(reason),
            })
        }
    }
}

/// Plan, simulate every shard on the calling thread, and stitch — the
/// pool-free sharded entry point (the parallel driver lives in
/// `chf-bench`, which owns the worker pool; the chaos harness uses this
/// one).
///
/// # Errors
/// As [`simulate_timing_lowered`]: planning mirrors the timing model's
/// error discipline, and validation failures fall back to the sequential
/// engine rather than erroring.
pub fn simulate_timing_sharded_seq(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
    shard: &ShardConfig,
) -> Result<StitchedTiming, SimError> {
    let plan = match plan_shards(p, args, mem_init, config, shard) {
        Ok(plan) => plan,
        Err(e) => {
            // Planning rejects exactly what the sequential engine rejects,
            // so this normally re-raises the same error; if the sequential
            // run somehow succeeds, its result is correct by definition.
            let result = simulate_timing_lowered(p, args, mem_init, config)?;
            return Ok(StitchedTiming {
                result,
                shards: 1,
                checkpoint_bytes: 0,
                narrow_shards: 0,
                fallback: Some(format!("plan: {e}")),
            });
        }
    };
    let runs = (0..plan.n_shards())
        .map(|k| simulate_shard(p, config, &plan, k))
        .collect();
    stitch(p, args, mem_init, config, &plan, runs)
}

/// Which piece of a recorded checkpoint to corrupt (fault injection; see
/// the chaos harness in `chf-core`).
#[derive(Copy, Clone, Debug)]
pub enum CheckpointFault {
    /// XOR a register slot (index taken modulo the file size).
    RegisterSlot {
        /// Register selector (reduced modulo the register-file size).
        reg: u64,
        /// Bit mask XORed into the slot's value (`0` is a no-op).
        xor: i64,
    },
    /// XOR a cell of the memory image (index taken modulo its length).
    MemoryCell {
        /// Cell selector (reduced modulo the image length).
        idx: u64,
        /// Bit mask XORed into the cell's value (`0` is a no-op).
        xor: i64,
    },
    /// Retarget a trained predictor entry (chosen by `seed`) to a bogus
    /// block at saturated confidence.
    PredictorEntry {
        /// Selects which trained entry to clobber.
        seed: u64,
    },
}

/// Apply `fault` to shard `shard`'s checkpoint. Returns `false` when
/// there is nothing to corrupt (no such shard, a zero XOR mask, an empty
/// memory image, an untrained predictor) — the caller should treat that
/// injection as a no-op rather than a survived fault.
pub fn corrupt_checkpoint(plan: &mut ShardPlan, shard: usize, fault: &CheckpointFault) -> bool {
    let Some(spec) = plan.shards.get_mut(shard) else {
        return false;
    };
    let ck = &mut spec.checkpoint;
    match *fault {
        CheckpointFault::RegisterSlot { reg, xor } => {
            if ck.regs.is_empty() || xor == 0 {
                return false;
            }
            let i = (reg % ck.regs.len() as u64) as usize;
            ck.regs[i] ^= xor;
            true
        }
        CheckpointFault::MemoryCell { idx, xor } => {
            if ck.mem.is_empty() || xor == 0 {
                return false;
            }
            let i = (idx % ck.mem.len() as u64) as usize;
            ck.mem[i].1 ^= xor;
            true
        }
        CheckpointFault::PredictorEntry { seed } => {
            if !ck.predictor.corrupt_entry(seed) {
                return false;
            }
            // Keep the checkpoint internally consistent (hash matches the
            // corrupted table) so detection must come from the replay
            // diverging, not from a stale cache.
            ck.pred_hash = ck.predictor.state_hash();
            true
        }
    }
}
