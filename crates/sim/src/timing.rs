//! TRIPS-like cycle-level timing model.
//!
//! The model executes the program functionally (so it is exact on control
//! flow and data) while charging cycles for the microarchitectural effects
//! the paper's evaluation depends on:
//!
//! * **Per-block overhead** — each dynamic block pays a fixed map/commit
//!   cost plus fetch-bandwidth-limited mapping of its instruction slots.
//!   This is the `blocks × overhead` term of the paper's §7.3 first-order
//!   model, and the reason block-count reduction correlates with cycle
//!   reduction (Figure 7).
//! * **Dataflow issue** — instructions become ready when their operands
//!   (including the predicate) arrive, contend for a 16-wide issue window,
//!   and communicate over an operand network with per-hop latency. A long
//!   falsely-predicated path does *not* delay block completion, matching
//!   EDGE dynamic issue; but a predicated instruction does wait for its
//!   predicate, which is exactly the tail-duplication penalty of §5
//!   ("Limiting tail duplication").
//! * **Nullification forwarding** — when a predicate is false, the guarded
//!   definition forwards the *old* value, but not before the predicate
//!   resolves. A duplicated merge point containing an induction-variable
//!   update therefore serializes on the exit test (the bzip2_3 effect).
//! * **Next-block prediction** — a predicted exit lets the next block fetch
//!   immediately; a misprediction stalls fetch until the exit resolves and
//!   adds a flush penalty (the parser_1 effect).
//! * **In-flight window** — at most `window_blocks` blocks in flight; blocks
//!   commit in order.

use crate::functional::{exec_inst, Machine, SimError};
use crate::predictor::{ExitPredictor, PredictorConfig};
use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::instr::{Opcode, Operand};
use chf_ir::fxhash::FxHashMap;
use std::collections::VecDeque;

/// How the load-store queue orders memory operations within a block.
///
/// TRIPS assigns every memory instruction a load/store ID and the LSQ
/// enforces program order between conflicting accesses; the variants model
/// different amounts of memory-dependence speculation.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum MemoryOrdering {
    /// Perfect memory-dependence prediction: loads never wait for stores
    /// (upper bound).
    Oracle,
    /// Loads wait only for earlier same-address stores in the block
    /// (ideal conflict detection; the default).
    #[default]
    Exact,
    /// Loads wait for *all* earlier stores in the block (no speculation).
    Conservative,
}

/// Microarchitectural parameters of the timing model.
#[derive(Clone, Debug)]
pub struct TimingConfig {
    /// Instructions that may begin execution per cycle (TRIPS: 16).
    pub issue_width: u32,
    /// Maximum blocks in flight (TRIPS: 8).
    pub window_blocks: usize,
    /// Instruction slots mapped onto the array per cycle (TRIPS: 16).
    pub fetch_bandwidth: u32,
    /// Fixed per-block map/dispatch cost in cycles.
    pub block_overhead: u64,
    /// Operand-network hop latency between dependent instructions.
    pub operand_latency: u64,
    /// Additional latency for values that cross blocks through the register
    /// file.
    pub register_latency: u64,
    /// Pipeline-flush penalty on a next-block misprediction.
    pub mispredict_penalty: u64,
    /// Minimum cycles between consecutive in-order block commits.
    pub commit_overhead: u64,
    /// Next-block predictor parameters.
    pub predictor: PredictorConfig,
    /// In-block load/store ordering discipline.
    pub memory_ordering: MemoryOrdering,
    /// Block budget, as in the functional simulator.
    pub max_blocks: u64,
}

impl TimingConfig {
    /// Parameters approximating the TRIPS prototype (16-wide, 8 blocks in
    /// flight, 128-instruction blocks).
    pub fn trips() -> Self {
        TimingConfig {
            issue_width: 16,
            window_blocks: 8,
            fetch_bandwidth: 16,
            block_overhead: 2,
            operand_latency: 0,
            register_latency: 2,
            mispredict_penalty: 12,
            commit_overhead: 1,
            predictor: PredictorConfig::default(),
            memory_ordering: MemoryOrdering::default(),
            max_blocks: 20_000_000,
        }
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::trips()
    }
}

/// Outcome and metrics of a timing simulation.
#[derive(Clone, Debug)]
pub struct TimingResult {
    /// Total cycles until the final block committed.
    pub cycles: u64,
    /// Dynamic block executions.
    pub blocks_executed: u64,
    /// Next-block predictions made (one per executed block).
    pub predictions: u64,
    /// Mispredictions (each costs a flush).
    pub mispredictions: u64,
    /// Instructions that executed (predicate held).
    pub insts_executed: u64,
    /// Predicated instructions that were nullified (predicate false).
    pub insts_nullified: u64,
    /// Instruction slots fetched (block sizes summed over dynamic blocks).
    pub insts_fetched: u64,
    /// Return value of the program.
    pub ret: Option<i64>,
    /// Final memory image, for equivalence checking against the functional
    /// simulator.
    pub memory: FxHashMap<i64, i64>,
}

impl TimingResult {
    /// Misprediction rate in `[0, 1]`.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Observable-behaviour digest (return value + sorted non-zero memory),
    /// comparable with [`crate::functional::FuncResult::digest`].
    pub fn digest(&self) -> (Option<i64>, Vec<(i64, i64)>) {
        let mut mem: Vec<(i64, i64)> = self
            .memory
            .iter()
            .filter(|(_, v)| **v != 0)
            .map(|(k, v)| (*k, *v))
            .collect();
        mem.sort_unstable();
        (self.ret, mem)
    }
}

/// Tracks issue-slot occupancy per cycle, pruned as time advances.
struct IssueSlots {
    used: FxHashMap<u64, u32>,
    width: u32,
    prune_floor: u64,
}

impl IssueSlots {
    fn new(width: u32) -> Self {
        IssueSlots {
            used: FxHashMap::default(),
            width,
            prune_floor: 0,
        }
    }

    /// First cycle ≥ `ready` with a free slot; claims it.
    fn issue_at(&mut self, ready: u64) -> u64 {
        let mut t = ready;
        loop {
            let n = self.used.entry(t).or_insert(0);
            if *n < self.width {
                *n += 1;
                return t;
            }
            t += 1;
        }
    }

    /// Drop bookkeeping for cycles before `floor` (nothing issues in the
    /// past).
    fn prune_before(&mut self, floor: u64) {
        if floor > self.prune_floor + 4096 {
            self.used.retain(|t, _| *t >= floor);
            self.prune_floor = floor;
        }
    }
}

/// One dynamic block execution, as recorded by
/// [`simulate_timing_traced`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockEvent {
    /// Which block executed.
    pub block: chf_ir::ids::BlockId,
    /// Cycle at which the block was dispatched onto the array.
    pub dispatch: u64,
    /// Cycle at which its branch decision resolved.
    pub resolve: u64,
    /// Cycle at which it committed (in order).
    pub commit: u64,
    /// Whether the next-block prediction made *from* this block was correct.
    pub predicted: bool,
    /// Instructions that executed in this instance.
    pub executed: u32,
    /// Instructions nullified in this instance.
    pub nullified: u32,
}

/// Per-block event trace of a timing simulation.
#[derive(Clone, Debug, Default)]
pub struct TimingTrace {
    /// Events in execution order.
    pub events: Vec<BlockEvent>,
}

impl TimingTrace {
    /// Check internal consistency: dispatches and commits are monotone, and
    /// every event has `dispatch ≤ resolve ≤ commit`-compatible ordering.
    pub fn check(&self) -> Result<(), String> {
        let mut last_commit = 0;
        let mut last_dispatch = 0;
        for (i, e) in self.events.iter().enumerate() {
            if e.dispatch < last_dispatch {
                return Err(format!("event {i}: dispatch went backwards"));
            }
            if e.commit < last_commit {
                return Err(format!("event {i}: commit went backwards"));
            }
            if e.commit < e.dispatch {
                return Err(format!("event {i}: committed before dispatch"));
            }
            last_commit = e.commit;
            last_dispatch = e.dispatch;
        }
        Ok(())
    }
}

/// Simulate `f` on the TRIPS-like timing model.
///
/// # Errors
/// Returns [`SimError::OutOfFuel`] if the block budget is exhausted, or a
/// malformed-IR [`SimError`] variant if `f` does not verify (the model is
/// total over verified IR but must degrade gracefully on broken input —
/// see the fault-injection harness in `chf-core`).
pub fn simulate_timing(
    f: &Function,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
) -> Result<TimingResult, SimError> {
    simulate_timing_impl(f, args, mem_init, config, None).map(|(r, _)| r)
}

/// Like [`simulate_timing`], additionally recording a per-block
/// [`TimingTrace`] (dispatch/resolve/commit cycles, prediction outcomes).
///
/// # Errors
/// Returns [`SimError::OutOfFuel`] if the block budget is exhausted, or a
/// malformed-IR [`SimError`] variant if `f` does not verify.
pub fn simulate_timing_traced(
    f: &Function,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
) -> Result<(TimingResult, TimingTrace), SimError> {
    let mut trace = TimingTrace::default();
    let r = simulate_timing_impl(f, args, mem_init, config, Some(&mut trace))?;
    Ok((r.0, trace))
}

fn simulate_timing_impl(
    f: &Function,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
    mut trace: Option<&mut TimingTrace>,
) -> Result<(TimingResult, ()), SimError> {
    let mut m = Machine::new(f, args, mem_init);
    let nregs = f.reg_count() as usize;
    // Reject out-of-range register references up front: the dense `avail`
    // vector below (and the liveness bitsets) index by register number, so
    // this single O(insts) sweep makes every later lookup in-bounds by
    // construction instead of a panic waiting for corrupted IR.
    for (id, blk) in f.blocks() {
        for inst in &blk.insts {
            for r in inst.uses().chain(inst.def()) {
                if r.index() >= nregs {
                    return Err(SimError::RegisterOutOfRange { block: id, reg: r.0 });
                }
            }
        }
        for e in &blk.exits {
            if let Some(p) = e.pred {
                if p.reg.index() >= nregs {
                    return Err(SimError::RegisterOutOfRange {
                        block: id,
                        reg: p.reg.0,
                    });
                }
            }
            if let ExitTarget::Return(Some(Operand::Reg(r))) = e.target {
                if r.index() >= nregs {
                    return Err(SimError::RegisterOutOfRange { block: id, reg: r.0 });
                }
            }
        }
    }
    // Block outputs: a TRIPS block commits once it has produced its stores,
    // its (live-out) register writes, and a branch decision — instructions
    // feeding nothing observable never delay commit (paper §5: EDGE commits
    // as soon as outputs are produced, so a long falsely-predicated or dead
    // path does not stretch the schedule).
    let liveness = chf_ir::liveness::Liveness::compute(f);
    // Cycle at which each register's current value becomes available.
    let mut avail: Vec<u64> = vec![0; nregs];
    let mut predictor = ExitPredictor::new(&config.predictor);
    let mut slots = IssueSlots::new(config.issue_width);

    // In-order commit times of in-flight blocks.
    let mut inflight: VecDeque<u64> = VecDeque::new();
    let mut last_commit: u64 = 0;
    let mut fetch_ready: u64 = 0;

    let mut blocks_executed = 0u64;
    let mut insts_executed = 0u64;
    let mut insts_nullified = 0u64;
    let mut insts_fetched = 0u64;

    let mut written_this_block: Vec<u32> = Vec::new();
    let mut cur = f.entry;

    let ret = 'outer: loop {
        if blocks_executed >= config.max_blocks {
            return Err(SimError::OutOfFuel {
                executed: blocks_executed,
            });
        }
        blocks_executed += 1;
        let (exec_before, null_before) = (insts_executed, insts_nullified);

        let blk = f
            .try_block(cur)
            .ok_or(SimError::DanglingTarget { target: cur })?;
        let size = blk.size() as u64;
        insts_fetched += size;

        // --- Dispatch: wait for fetch, and for a window slot. ---
        let mut dispatch = fetch_ready;
        if inflight.len() >= config.window_blocks {
            let oldest = inflight.pop_front().unwrap();
            dispatch = dispatch.max(oldest);
        }
        slots.prune_before(dispatch);

        // Fetch/map of the *next* block is serialized behind this one.
        let map_cycles = config.block_overhead + size.div_ceil(config.fetch_bandwidth as u64);
        fetch_ready = dispatch + map_cycles;

        // --- Execute instructions in dataflow order. ---
        written_this_block.clear();
        // Executed stores in this block instance: (address, completion).
        let mut block_stores: Vec<(i64, u64)> = Vec::new();
        let mut outputs_done = dispatch;
        for inst in &blk.insts {
            // Resolve the predicate functionally and find its ready time.
            let (executes, pred_ready) = match inst.pred {
                None => (true, dispatch),
                Some(p) => {
                    let v = m.read(p.reg, cur, false)?;
                    let t = avail[p.reg.index()] + config.operand_latency;
                    (((v != 0) == p.if_true), t.max(dispatch))
                }
            };

            if !executes {
                insts_nullified += 1;
                // Null token: the old value of dst forwards once the
                // predicate resolves.
                if let Some(d) = inst.def() {
                    if avail[d.index()] < pred_ready {
                        avail[d.index()] = pred_ready;
                        written_this_block.push(d.0);
                    }
                }
                continue;
            }

            insts_executed += 1;
            let mut ready = pred_ready.max(dispatch + 1);
            for o in [inst.a, inst.b].into_iter().flatten() {
                if let Operand::Reg(r) = o {
                    ready = ready.max(avail[r.index()] + config.operand_latency);
                }
            }
            // In-block memory ordering: a load may have to wait for earlier
            // stores, per the configured LSQ discipline.
            if inst.op == Opcode::Load {
                match config.memory_ordering {
                    MemoryOrdering::Oracle => {}
                    MemoryOrdering::Exact => {
                        let addr = m.operand(
                            inst.a
                                .ok_or(SimError::MalformedInstruction { block: cur })?,
                            cur,
                            false,
                        )?;
                        for &(sa, st) in &block_stores {
                            if sa == addr {
                                ready = ready.max(st);
                            }
                        }
                    }
                    MemoryOrdering::Conservative => {
                        for &(_, st) in &block_stores {
                            ready = ready.max(st);
                        }
                    }
                }
            }
            let issue = slots.issue_at(ready);
            let done = issue + inst.op.latency();
            if inst.op == Opcode::Store {
                outputs_done = outputs_done.max(done);
                let addr = m.operand(
                    inst.a
                        .ok_or(SimError::MalformedInstruction { block: cur })?,
                    cur,
                    false,
                )?;
                block_stores.push((addr, done));
            }
            if let Some(d) = inst.def() {
                avail[d.index()] = done;
                written_this_block.push(d.0);
            }
            exec_inst(&mut m, inst, cur, false)?;
        }

        // --- Resolve exits: find the fired exit and its resolve time. ---
        let mut resolve = dispatch + 1;
        let mut fired: Option<(usize, ExitTarget)> = None;
        for (i, e) in blk.exits.iter().enumerate() {
            match e.pred {
                None => {
                    fired = Some((i, e.target));
                    break;
                }
                Some(p) => {
                    let v = m.read(p.reg, cur, false)?;
                    let t = avail[p.reg.index()] + config.operand_latency;
                    resolve = resolve.max(t);
                    if (v != 0) == p.if_true {
                        fired = Some((i, e.target));
                        break;
                    }
                }
            }
        }
        // Verified IR always ends in an unpredicated default exit; injected
        // faults can leave the exit set non-total.
        let (exit_idx, target) = fired.ok_or(SimError::NoFiringExit { block: cur })?;
        // A returned value is a block output.
        if let ExitTarget::Return(Some(Operand::Reg(r))) = target {
            outputs_done = outputs_done.max(avail[r.index()]);
        }

        // --- Prediction: next-block target (static fallback: the first
        // exit's target, the compiler's most-likely-first ordering). ---
        let _ = exit_idx;
        let fallback = blk.exits[0].target;
        let correct = predictor.update(cur, fallback, target);
        if !correct {
            // Flush: the next block cannot even begin fetching until the
            // exit resolves, plus the flush penalty.
            fetch_ready = fetch_ready.max(resolve + config.mispredict_penalty);
        }

        // --- Commit (in order): branch decision, stores, and live-out
        // register writes must all have resolved. ---
        let live_out = liveness.live_out(cur);
        for &r in written_this_block.iter() {
            if live_out.contains(&chf_ir::ids::Reg(r)) {
                outputs_done = outputs_done.max(avail[r as usize]);
            }
        }
        let block_done = outputs_done.max(resolve);
        let commit = block_done.max(last_commit + config.commit_overhead);
        last_commit = commit;
        inflight.push_back(commit);

        // Cross-block register communication pays register-file latency.
        for r in written_this_block.drain(..) {
            avail[r as usize] += config.register_latency;
        }

        if let Some(t) = trace.as_deref_mut() {
            t.events.push(BlockEvent {
                block: cur,
                dispatch,
                resolve,
                commit,
                predicted: correct,
                executed: (insts_executed - exec_before) as u32,
                nullified: (insts_nullified - null_before) as u32,
            });
        }

        match target {
            ExitTarget::Block(next) => {
                cur = next;
            }
            ExitTarget::Return(v) => {
                let ret = match v {
                    None => None,
                    Some(op) => Some(m.operand(op, cur, false)?),
                };
                break 'outer ret;
            }
        }
    };

    Ok((
        TimingResult {
            cycles: last_commit,
            blocks_executed,
            predictions: predictor.predictions(),
            mispredictions: predictor.mispredictions(),
            insts_executed,
            insts_nullified,
            insts_fetched,
            ret,
            memory: m.mem,
        },
        (),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::{run, RunConfig};
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::ids::Reg;
    use chf_ir::instr::{Instr, Operand, Pred};

    fn reg(r: Reg) -> Operand {
        Operand::Reg(r)
    }

    fn sum_loop() -> Function {
        let mut fb = FunctionBuilder::new("sum", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let body = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        let acc = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(reg(i), reg(Reg(0)));
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let acc2 = fb.add(reg(acc), reg(i));
        fb.mov_to(acc, reg(acc2));
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(reg(acc)));
        fb.build().unwrap()
    }

    #[test]
    fn matches_functional_observables() {
        let f = sum_loop();
        let fr = run(&f, &[25], &[], &RunConfig::default()).unwrap();
        let tr = simulate_timing(&f, &[25], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(fr.digest(), tr.digest());
        assert_eq!(fr.blocks_executed, tr.blocks_executed);
        assert_eq!(fr.insts_executed, tr.insts_executed);
    }

    #[test]
    fn cycles_grow_with_work() {
        let f = sum_loop();
        let short = simulate_timing(&f, &[5], &[], &TimingConfig::trips()).unwrap();
        let long = simulate_timing(&f, &[50], &[], &TimingConfig::trips()).unwrap();
        assert!(long.cycles > short.cycles);
        assert!(short.cycles > 0);
    }

    #[test]
    fn fewer_blocks_means_fewer_cycles_for_same_work() {
        // Same computation as two chained blocks vs one fused block: the
        // fused version must not be slower (per-block overhead dominates).
        let mut fb = FunctionBuilder::new("two", 1);
        let a = fb.create_block();
        let b = fb.create_block();
        fb.switch_to(a);
        let x = fb.add(reg(Reg(0)), Operand::Imm(1));
        fb.jump(b);
        fb.switch_to(b);
        let y = fb.mul(reg(x), Operand::Imm(3));
        fb.ret(Some(reg(y)));
        let two = fb.build().unwrap();

        let mut fb = FunctionBuilder::new("one", 1);
        let a = fb.create_block();
        fb.switch_to(a);
        let x = fb.add(reg(Reg(0)), Operand::Imm(1));
        let y = fb.mul(reg(x), Operand::Imm(3));
        fb.ret(Some(reg(y)));
        let one = fb.build().unwrap();

        let t2 = simulate_timing(&two, &[4], &[], &TimingConfig::trips()).unwrap();
        let t1 = simulate_timing(&one, &[4], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(t1.ret, t2.ret);
        assert!(t1.cycles < t2.cycles, "{} !< {}", t1.cycles, t2.cycles);
    }

    #[test]
    fn unpredictable_branches_cost_cycles() {
        // Loop whose branch alternates pseudo-randomly vs one that is
        // monotone; same block counts, different cycle counts.
        fn branchy(seed_mul: i64) -> Function {
            let mut fb = FunctionBuilder::new("branchy", 1);
            let e = fb.create_block();
            let h = fb.create_block();
            let t = fb.create_block();
            let z = fb.create_block();
            let latch = fb.create_block();
            let exit = fb.create_block();
            fb.switch_to(e);
            let i = fb.mov(Operand::Imm(0));
            let acc = fb.mov(Operand::Imm(0));
            let x = fb.mov(Operand::Imm(12345));
            fb.jump(h);
            fb.switch_to(h);
            // x = x * seed_mul + 1; c = (x >> 4) & 1
            let x2 = fb.mul(reg(x), Operand::Imm(seed_mul));
            let x3 = fb.add(reg(x2), Operand::Imm(1));
            fb.mov_to(x, reg(x3));
            let sh = fb.shr(reg(x), Operand::Imm(4));
            let c = fb.and(reg(sh), Operand::Imm(1));
            fb.branch(c, t, z);
            fb.switch_to(t);
            let a1 = fb.add(reg(acc), Operand::Imm(3));
            fb.mov_to(acc, reg(a1));
            fb.jump(latch);
            fb.switch_to(z);
            let a2 = fb.add(reg(acc), Operand::Imm(5));
            fb.mov_to(acc, reg(a2));
            fb.jump(latch);
            fb.switch_to(latch);
            let i2 = fb.add(reg(i), Operand::Imm(1));
            fb.mov_to(i, reg(i2));
            let lc = fb.cmp_lt(reg(i), Operand::Imm(200));
            fb.branch(lc, h, exit);
            fb.switch_to(exit);
            fb.ret(Some(reg(acc)));
            fb.build().unwrap()
        }
        // seed_mul = 1 makes x monotone (+1 each time) so the branch bit
        // alternates slowly and predictably; a large odd multiplier makes it
        // effectively random.
        let predictable = branchy(1);
        let random = branchy(6364136223846793_i64);
        let tp = simulate_timing(&predictable, &[0], &[], &TimingConfig::trips()).unwrap();
        let tr = simulate_timing(&random, &[0], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(tp.blocks_executed, tr.blocks_executed);
        assert!(tr.mispredictions > tp.mispredictions);
        assert!(tr.cycles > tp.cycles);
    }

    #[test]
    fn predicated_dependence_serializes() {
        // A predicated chain must wait for its predicate; an unpredicated
        // one need not.
        fn chain(predicated: bool) -> Function {
            let mut fb = FunctionBuilder::new("chain", 2);
            let e = fb.create_block();
            fb.switch_to(e);
            // Slow predicate: a chain of multiplies.
            let mut p = fb.param(1);
            for _ in 0..6 {
                p = fb.mul(reg(p), Operand::Imm(3));
            }
            let cond = fb.cmp_ne(reg(p), Operand::Imm(0));
            let out = fb.fresh_reg();
            let mut inst = Instr::add(out, reg(Reg(0)), Operand::Imm(7));
            if predicated {
                inst = inst.predicated(Pred::on_true(cond));
            }
            fb.push(inst);
            fb.ret(Some(reg(out)));
            fb.build().unwrap()
        }
        let cfgs = TimingConfig::trips();
        let with = simulate_timing(&chain(true), &[1, 1], &[], &cfgs).unwrap();
        let without = simulate_timing(&chain(false), &[1, 1], &[], &cfgs).unwrap();
        assert_eq!(with.ret, without.ret);
        assert!(with.cycles > without.cycles);
    }

    #[test]
    fn nullified_instructions_counted() {
        let mut fb = FunctionBuilder::new("nullify", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let out = fb.mov(Operand::Imm(0));
        let c = fb.cmp_gt(reg(Reg(0)), Operand::Imm(100));
        fb.push(Instr::mov(out, Operand::Imm(1)).predicated(Pred::on_true(c)));
        fb.ret(Some(reg(out)));
        let f = fb.build().unwrap();
        let t = simulate_timing(&f, &[1], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(t.insts_nullified, 1);
        assert_eq!(t.ret, Some(0));
    }

    #[test]
    fn trace_records_every_block_with_consistent_times() {
        let f = sum_loop();
        let (r, trace) = simulate_timing_traced(&f, &[12], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(trace.events.len() as u64, r.blocks_executed);
        trace.check().unwrap();
        // Per-event counters sum to the totals.
        let exec: u64 = trace.events.iter().map(|e| e.executed as u64).sum();
        assert_eq!(exec, r.insts_executed);
        let mispredicted = trace.events.iter().filter(|e| !e.predicted).count() as u64;
        assert_eq!(mispredicted, r.mispredictions);
        // The last commit is the cycle count.
        assert_eq!(trace.events.last().unwrap().commit, r.cycles);
    }

    #[test]
    fn traced_and_untraced_agree() {
        let f = sum_loop();
        let a = simulate_timing(&f, &[20], &[], &TimingConfig::trips()).unwrap();
        let (b, _) = simulate_timing_traced(&f, &[20], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn memory_ordering_disciplines_are_ordered() {
        // A block with a store feeding a later same-address load: Oracle
        // lets the load fly, Exact makes it wait for that store, and
        // Conservative additionally serializes unrelated loads.
        let mut fb = FunctionBuilder::new("mem", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        // Slow value: chain of multiplies.
        let mut v = fb.param(0);
        for _ in 0..6 {
            v = fb.mul(reg(v), Operand::Imm(3));
        }
        fb.store(Operand::Imm(100), reg(v)); // slow store
        let same = fb.load(Operand::Imm(100)); // conflicts
        let other = fb.load(Operand::Imm(200)); // unrelated
        let s = fb.add(reg(same), reg(other));
        fb.ret(Some(reg(s)));
        let f = fb.build().unwrap();

        let cycles = |ord: MemoryOrdering| {
            simulate_timing(
                &f,
                &[3],
                &[(200, 9)],
                &TimingConfig {
                    memory_ordering: ord,
                    ..TimingConfig::trips()
                },
            )
            .unwrap()
            .cycles
        };
        let oracle = cycles(MemoryOrdering::Oracle);
        let exact = cycles(MemoryOrdering::Exact);
        let conservative = cycles(MemoryOrdering::Conservative);
        assert!(oracle < exact, "{oracle} !< {exact}");
        assert!(exact <= conservative, "{exact} !<= {conservative}");
        // All disciplines compute the same result (timing-only knob).
        for ord in [
            MemoryOrdering::Oracle,
            MemoryOrdering::Exact,
            MemoryOrdering::Conservative,
        ] {
            let r = simulate_timing(
                &f,
                &[3],
                &[(200, 9)],
                &TimingConfig {
                    memory_ordering: ord,
                    ..TimingConfig::trips()
                },
            )
            .unwrap();
            assert_eq!(r.ret, Some(3 * 729 + 9));
        }
    }

    #[test]
    fn out_of_fuel() {
        let mut fb = FunctionBuilder::new("spin", 0);
        let e = fb.create_block();
        fb.switch_to(e);
        fb.jump(e);
        let f = fb.build().unwrap();
        let cfg = TimingConfig {
            max_blocks: 50,
            ..TimingConfig::trips()
        };
        assert!(matches!(
            simulate_timing(&f, &[], &[], &cfg),
            Err(SimError::OutOfFuel { .. })
        ));
    }
}
