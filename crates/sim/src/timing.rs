//! TRIPS-like cycle-level timing model, event-driven over the pre-decoded
//! [`LoweredProgram`] representation.
//!
//! The model executes the program functionally (so it is exact on control
//! flow and data) while charging cycles for the microarchitectural effects
//! the paper's evaluation depends on:
//!
//! * **Per-block overhead** — each dynamic block pays a fixed map/commit
//!   cost plus fetch-bandwidth-limited mapping of its instruction slots.
//!   This is the `blocks × overhead` term of the paper's §7.3 first-order
//!   model, and the reason block-count reduction correlates with cycle
//!   reduction (Figure 7).
//! * **Dataflow issue** — instructions become ready when their operands
//!   (including the predicate) arrive, contend for a 16-wide issue window,
//!   and communicate over an operand network with per-hop latency. A long
//!   falsely-predicated path does *not* delay block completion, matching
//!   EDGE dynamic issue; but a predicated instruction does wait for its
//!   predicate, which is exactly the tail-duplication penalty of §5
//!   ("Limiting tail duplication").
//! * **Nullification forwarding** — when a predicate is false, the guarded
//!   definition forwards the *old* value, but not before the predicate
//!   resolves. A duplicated merge point containing an induction-variable
//!   update therefore serializes on the exit test (the bzip2_3 effect).
//! * **Next-block prediction** — a predicted exit lets the next block fetch
//!   immediately; a misprediction stalls fetch until the exit resolves and
//!   adds a flush penalty (the parser_1 effect).
//! * **In-flight window** — at most `window_blocks` blocks in flight; blocks
//!   commit in order.
//!
//! # The event-driven core
//!
//! The engine processes three kinds of events, all in cycle order:
//!
//! * **Operand wake-up.** Each instruction is enqueued for issue at the
//!   cycle its *last* operand or predicate arrives (`ready`, the max of the
//!   producing availability times). Wake-ups are inserted into a calendar
//!   **bucket queue** keyed by cycle ([`IssueRing`], a power-of-two ring of
//!   per-cycle slot counters whose base rotates forward with block
//!   dispatch); claiming an issue slot is a forward probe from the wake-up
//!   bucket, O(1) amortized, replacing the legacy per-instruction hash-map
//!   probe. Within a cycle, slots are granted in program order — exactly
//!   the order the legacy first-fit scan granted them — so issue times are
//!   identical by construction.
//! * **Block fetch/dispatch.** The next block's dispatch event fires at
//!   `fetch_ready`, delayed by the window-slot release event (the oldest
//!   in-flight block's commit) when the 8-block window is full, and by the
//!   flush event (`resolve + mispredict_penalty`) after a misprediction.
//! * **Commit.** In-order: a block's commit event fires once its stores,
//!   live-out register writes, and branch decision have all resolved, no
//!   earlier than the previous commit plus the commit overhead.
//!
//! Because every event time is the max of already-known event times, the
//! calendar never needs to revisit a bucket: the simulation advances
//! monotonically, one pass over the dynamic instruction stream. The result
//! is **cycle-for-cycle identical** to the legacy model
//! ([`crate::timing_legacy::simulate_timing_legacy`], behind the
//! `legacy-sim` feature), which `tests/differential.rs` and the table-1
//! golden cycle snapshot enforce.
//!
//! Callers that simulate the same function many times should lower once
//! via [`LoweredProgram::lower`] and call [`simulate_timing_lowered`];
//! [`simulate_timing`] lowers internally per call.

use crate::functional::{eval, SimError};
use crate::lower::{LExitKind, LKind, LoweredProgram, NONE};
use crate::predictor::{ExitPredictor, PredictorConfig};
use chf_ir::function::Function;
use chf_ir::fxhash::FxHashMap;
use std::collections::VecDeque;

/// How the load-store queue orders memory operations within a block.
///
/// TRIPS assigns every memory instruction a load/store ID and the LSQ
/// enforces program order between conflicting accesses; the variants model
/// different amounts of memory-dependence speculation.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum MemoryOrdering {
    /// Perfect memory-dependence prediction: loads never wait for stores
    /// (upper bound).
    Oracle,
    /// Loads wait only for earlier same-address stores in the block
    /// (ideal conflict detection; the default). Implemented with a
    /// per-address last-store map — O(1) per load, not a rescan of the
    /// block's earlier stores.
    #[default]
    Exact,
    /// Loads wait for *all* earlier stores in the block (no speculation).
    Conservative,
}

/// Microarchitectural parameters of the timing model.
#[derive(Clone, Debug)]
pub struct TimingConfig {
    /// Instructions that may begin execution per cycle (TRIPS: 16).
    pub issue_width: u32,
    /// Maximum blocks in flight (TRIPS: 8).
    pub window_blocks: usize,
    /// Instruction slots mapped onto the array per cycle (TRIPS: 16).
    pub fetch_bandwidth: u32,
    /// Fixed per-block map/dispatch cost in cycles.
    pub block_overhead: u64,
    /// Operand-network hop latency between dependent instructions.
    pub operand_latency: u64,
    /// Additional latency for values that cross blocks through the register
    /// file.
    pub register_latency: u64,
    /// Pipeline-flush penalty on a next-block misprediction.
    pub mispredict_penalty: u64,
    /// Minimum cycles between consecutive in-order block commits.
    pub commit_overhead: u64,
    /// Next-block predictor parameters.
    pub predictor: PredictorConfig,
    /// In-block load/store ordering discipline.
    pub memory_ordering: MemoryOrdering,
    /// Block budget, as in the functional simulator.
    pub max_blocks: u64,
}

impl TimingConfig {
    /// Parameters approximating the TRIPS prototype (16-wide, 8 blocks in
    /// flight, 128-instruction blocks).
    pub fn trips() -> Self {
        TimingConfig {
            issue_width: 16,
            window_blocks: 8,
            fetch_bandwidth: 16,
            block_overhead: 2,
            operand_latency: 0,
            register_latency: 2,
            mispredict_penalty: 12,
            commit_overhead: 1,
            predictor: PredictorConfig::default(),
            memory_ordering: MemoryOrdering::default(),
            max_blocks: 20_000_000,
        }
    }
}

impl Default for TimingConfig {
    fn default() -> Self {
        Self::trips()
    }
}

/// Outcome and metrics of a timing simulation.
#[derive(Clone, Debug)]
pub struct TimingResult {
    /// Total cycles until the final block committed.
    pub cycles: u64,
    /// Dynamic block executions.
    pub blocks_executed: u64,
    /// Next-block predictions made (one per executed block).
    pub predictions: u64,
    /// Mispredictions (each costs a flush).
    pub mispredictions: u64,
    /// Instructions that executed (predicate held).
    pub insts_executed: u64,
    /// Predicated instructions that were nullified (predicate false).
    pub insts_nullified: u64,
    /// Instruction slots fetched (block sizes summed over dynamic blocks).
    pub insts_fetched: u64,
    /// Return value of the program.
    pub ret: Option<i64>,
    /// Final memory image, for equivalence checking against the functional
    /// simulator.
    pub memory: FxHashMap<i64, i64>,
}

impl TimingResult {
    /// Misprediction rate in `[0, 1]`.
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Observable-behaviour digest (return value + sorted non-zero memory),
    /// comparable with [`crate::functional::FuncResult::digest`].
    pub fn digest(&self) -> (Option<i64>, Vec<(i64, i64)>) {
        let mut mem: Vec<(i64, i64)> = self
            .memory
            .iter()
            .filter(|(_, v)| **v != 0)
            .map(|(k, v)| (*k, *v))
            .collect();
        mem.sort_unstable();
        (self.ret, mem)
    }
}

/// A register's current value together with the cycle it becomes
/// available. Keeping both in one slot means each operand read performs a
/// single (bounds-checked) array access and pulls value + timestamp in the
/// same cache line.
#[derive(Copy, Clone)]
pub(crate) struct RegSlot<C: Cycle> {
    pub(crate) val: i64,
    pub(crate) t: C,
}

thread_local! {
    /// Recycled register-file backing for the (dominant) `u64` engine: the
    /// benchmark harness simulates thousands of short programs per thread,
    /// and the register file is the one per-call allocation left on that
    /// path. Reused like [`MEM_SCRATCH`]/[`LSQ_SCRATCH`]; slots are
    /// re-zeroed on take, so recycling is never observable.
    static RF_SCRATCH: std::cell::RefCell<Option<Vec<RegSlot<u64>>>> =
        const { std::cell::RefCell::new(None) };
}

/// Width of the engine's cycle timestamps.
///
/// The sequential entry points instantiate the engine at `u64` (cycle
/// counts on whole-program runs exceed 2^32). Bounded shard runs whose
/// conservative cycle bound fits comfortably instantiate at `u32`, halving
/// the timestamp footprint of the in-flight state. All arithmetic the
/// engine performs is `max` and `+ small-constant`, so the two widths
/// compute identical values whenever the `u32` run stays below the wrap
/// point — and the shard planner only selects `u32` under a conservative
/// bound ([`crate::shard`]). Even a bound violation is safe: a wrapped
/// timestamp desynchronizes the boundary state digest and the stitcher
/// falls back to the sequential engine.
pub(crate) trait Cycle: Copy + Ord + std::fmt::Debug + 'static {
    /// Cycle zero.
    const ZERO: Self;
    /// Narrow from `u64` (the planner guarantees the value fits).
    fn of(x: u64) -> Self;
    /// Widen to `u64`.
    fn get(self) -> u64;
    /// `self + d`.
    #[inline]
    fn plus(self, d: u64) -> Self {
        Self::of(self.get().wrapping_add(d))
    }
    /// `self + 1`.
    #[inline]
    fn inc(self) -> Self {
        self.plus(1)
    }
    /// A zeroed register file of `n` slots, possibly recycled.
    fn take_rf(n: usize) -> Vec<RegSlot<Self>> {
        vec![
            RegSlot {
                val: 0,
                t: Self::ZERO
            };
            n
        ]
    }
    /// Return a register file to the scratch pool (no-op by default).
    fn recycle_rf(_rf: Vec<RegSlot<Self>>) {}
}

impl Cycle for u64 {
    const ZERO: Self = 0;
    #[inline]
    fn of(x: u64) -> Self {
        x
    }
    #[inline]
    fn get(self) -> u64 {
        self
    }
    fn take_rf(n: usize) -> Vec<RegSlot<u64>> {
        let mut rf = RF_SCRATCH
            .with(|s| s.borrow_mut().take())
            .unwrap_or_default();
        rf.clear();
        rf.resize(n, RegSlot { val: 0, t: 0 });
        rf
    }
    fn recycle_rf(rf: Vec<RegSlot<u64>>) {
        RF_SCRATCH.with(|s| *s.borrow_mut() = Some(rf));
    }
}

impl Cycle for u32 {
    const ZERO: Self = 0;
    #[inline]
    fn of(x: u64) -> Self {
        debug_assert!(x <= u64::from(u32::MAX), "u32 cycle bound violated");
        x as u32
    }
    #[inline]
    fn get(self) -> u64 {
        u64::from(self)
    }
}

/// Calendar bucket queue of issue-slot occupancy: one counter per cycle in
/// a power-of-two ring whose `base` rotates forward with block dispatch.
///
/// Every wake-up is enqueued at a cycle ≥ the current dispatch (readiness
/// is clamped to `dispatch + 1`), and dispatch is monotone, so buckets
/// behind `base` can never be probed again. Each bucket is *cycle-stamped*
/// — the claimed-slot count packs with the cycle it belongs to, and a
/// stamp mismatch reads as an empty bucket — so rotating the window
/// forward is O(1): stale buckets are never cleared, merely reinterpreted.
/// `issue_at` is the wake-up insertion: probe forward from the ready
/// bucket for the first cycle with a free slot and claim it.
struct IssueRing {
    /// `(cycle << 8) | claimed` per bucket; the stamp makes stale buckets
    /// self-invalidating. Valid for `claimed < 256` (issue widths are far
    /// narrower) and cycles below 2^56.
    slots: Vec<u64>,
    mask: u64,
    /// First cycle probeable; buckets logically cover
    /// `[base, base + slots.len())`.
    base: u64,
    width: u64,
}

impl IssueRing {
    fn new(width: u32) -> Self {
        IssueRing {
            slots: vec![0; 1024],
            mask: 1023,
            base: 0,
            // Clamp into the packed-count range; issue widths are single
            // digits to low tens in practice.
            width: u64::from(width).min(255),
        }
    }

    /// Rotate the window forward so it starts at `floor`. Stale buckets
    /// invalidate themselves via their stamps, so this is O(1).
    #[inline]
    fn advance_to(&mut self, floor: u64) {
        if floor > self.base {
            self.base = floor;
        }
    }

    /// Double the ring until cycle `t` fits, re-placing live buckets (the
    /// ones stamped within the current window).
    #[cold]
    fn grow_to(&mut self, t: u64) {
        while t - self.base > self.mask {
            let doubled = vec![0; self.slots.len() * 2];
            let old = std::mem::replace(&mut self.slots, doubled);
            self.mask = self.mask * 2 + 1;
            for s in old {
                let c = s >> 8;
                if c >= self.base {
                    self.slots[(c & self.mask) as usize] = s;
                }
            }
        }
    }

    /// First cycle ≥ `ready` with a free slot; claims it.
    #[inline]
    fn issue_at(&mut self, ready: u64) -> u64 {
        let mut t = ready.max(self.base);
        loop {
            if t - self.base > self.mask {
                self.grow_to(t);
            }
            // Masking with `len - 1` (the ring is a power of two) keeps
            // the index provably in bounds.
            let m = self.slots.len() - 1;
            let s = &mut self.slots[(t as usize) & m];
            // A stamp from another cycle means the bucket is logically
            // empty. Within the window the stamp can only equal `t` or
            // belong to a rotated-out past cycle, never a future one.
            let claimed = if *s >> 8 == t { *s & 0xff } else { 0 };
            if claimed < self.width {
                *s = (t << 8) | (claimed + 1);
                return t;
            }
            t += 1;
        }
    }

    /// The claims that can still influence a future issue probe: buckets
    /// stamped at a cycle `≥ max(base, threshold)`, as `(cycle, count)`
    /// sorted by cycle. Claims below the threshold are dead — every future
    /// probe starts at `ready ≥ threshold` — and are dropped so that
    /// independently-reached ring states compare equal.
    fn live_claims(&self, threshold: u64) -> Vec<(u64, u32)> {
        let floor = threshold.max(self.base);
        let mut out: Vec<(u64, u32)> = self
            .slots
            .iter()
            .filter_map(|&s| {
                let (c, n) = (s >> 8, (s & 0xff) as u32);
                (n > 0 && c >= floor).then_some((c, n))
            })
            .collect();
        out.sort_unstable();
        out
    }
}

/// One dynamic block execution, as recorded by
/// [`simulate_timing_traced`].
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct BlockEvent {
    /// Which block executed.
    pub block: chf_ir::ids::BlockId,
    /// Cycle at which the block was dispatched onto the array.
    pub dispatch: u64,
    /// Cycle at which its branch decision resolved.
    pub resolve: u64,
    /// Cycle at which it committed (in order).
    pub commit: u64,
    /// Whether the next-block prediction made *from* this block was correct.
    pub predicted: bool,
    /// Instructions that executed in this instance.
    pub executed: u32,
    /// Instructions nullified in this instance.
    pub nullified: u32,
}

/// Per-block event trace of a timing simulation.
#[derive(Clone, Debug, Default)]
pub struct TimingTrace {
    /// Events in execution order.
    pub events: Vec<BlockEvent>,
}

impl TimingTrace {
    /// Check internal consistency: dispatches and commits are monotone, and
    /// every event has `dispatch ≤ resolve ≤ commit`-compatible ordering.
    pub fn check(&self) -> Result<(), String> {
        let mut last_commit = 0;
        let mut last_dispatch = 0;
        for (i, e) in self.events.iter().enumerate() {
            if e.dispatch < last_dispatch {
                return Err(format!("event {i}: dispatch went backwards"));
            }
            if e.commit < last_commit {
                return Err(format!("event {i}: commit went backwards"));
            }
            if e.commit < e.dispatch {
                return Err(format!("event {i}: committed before dispatch"));
            }
            last_commit = e.commit;
            last_dispatch = e.dispatch;
        }
        Ok(())
    }
}

/// Simulate `f` on the TRIPS-like timing model (lowering it internally;
/// see [`simulate_timing_lowered`] to amortize the decode over many runs).
///
/// # Errors
/// Returns [`SimError::OutOfFuel`] if the block budget is exhausted, or a
/// malformed-IR [`SimError`] variant if `f` does not verify (the model is
/// total over verified IR but must degrade gracefully on broken input —
/// see the fault-injection harness in `chf-core`).
pub fn simulate_timing(
    f: &Function,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
) -> Result<TimingResult, SimError> {
    let p = LoweredProgram::lower(f);
    simulate_timing_lowered(&p, args, mem_init, config)
}

/// Like [`simulate_timing`], additionally recording a per-block
/// [`TimingTrace`] (dispatch/resolve/commit cycles, prediction outcomes).
///
/// # Errors
/// Returns [`SimError::OutOfFuel`] if the block budget is exhausted, or a
/// malformed-IR [`SimError`] variant if `f` does not verify.
pub fn simulate_timing_traced(
    f: &Function,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
) -> Result<(TimingResult, TimingTrace), SimError> {
    let p = LoweredProgram::lower(f);
    simulate_timing_lowered_traced(&p, args, mem_init, config)
}

/// Simulate an already-lowered program on the timing model.
///
/// # Errors
/// As [`simulate_timing`].
pub fn simulate_timing_lowered(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
) -> Result<TimingResult, SimError> {
    simulate_lowered_impl(p, args, mem_init, config, None)
}

/// [`simulate_timing_lowered`] with a per-block [`TimingTrace`].
///
/// # Errors
/// As [`simulate_timing`].
pub fn simulate_timing_lowered_traced(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
) -> Result<(TimingResult, TimingTrace), SimError> {
    let mut trace = TimingTrace::default();
    let r = simulate_lowered_impl(p, args, mem_init, config, Some(&mut trace))?;
    Ok((r, trace))
}

/// Number of words in [`SimMemory`]'s dense window. Sized to cover the
/// address ranges the workloads actually touch (data segments at
/// 1000/2000/3000 plus up to a few hundred words each).
const DENSE_WORDS: usize = 1 << 12;

/// Words per [`SimMemory`] touched-bitmap entry array.
const TOUCHED_WORDS: usize = DENSE_WORDS / 64;

/// Recycled [`SimMemory`] backing: dense window + touched bitmap.
type MemScratch = (Box<[i64; DENSE_WORDS]>, Box<[u64; TOUCHED_WORDS]>);

thread_local! {
    /// Reusable [`SimMemory`] backing buffers. The dense window is *not*
    /// zeroed between runs — the touched bitmap gates every read, so only
    /// the bitmap (64 words) is cleared per simulation. Fixed-size boxed
    /// arrays so dense indexing after the window range check is provably
    /// in bounds.
    static MEM_SCRATCH: std::cell::RefCell<Option<MemScratch>> =
        const { std::cell::RefCell::new(None) };
}

/// A zeroed fixed-size boxed array, heap-constructed (no large stack
/// temporary).
fn boxed_zeroed<T: Copy + Default, const N: usize>() -> Box<[T; N]> {
    vec![T::default(); N]
        .into_boxed_slice()
        .try_into()
        .unwrap_or_else(|_| unreachable!("length matches"))
}

/// Simulated data memory: a dense window over small non-negative addresses
/// (the layout the workload generators and testgen programs overwhelmingly
/// use) backed by a hash-map spill for everything else. Behaviourally
/// identical to a plain map — unwritten cells read as zero and
/// [`SimMemory::to_map`] reports exactly the written cells, including
/// written zeros. Dense cells are only valid under their touched bit, so
/// the buffers can be recycled across runs (see [`MEM_SCRATCH`]) without
/// zeroing the window.
pub(crate) struct SimMemory {
    dense: Box<[i64; DENSE_WORDS]>,
    /// Bitmap of dense cells written (or initialized) *this run*: the
    /// final memory image distinguishes "wrote 0" from "never wrote", and
    /// stale values from a recycled buffer are never observable.
    touched: Box<[u64; TOUCHED_WORDS]>,
    spill: FxHashMap<i64, i64>,
}

impl SimMemory {
    pub(crate) fn new(init: &[(i64, i64)]) -> Self {
        let (dense, mut touched) = MEM_SCRATCH
            .with(|s| s.borrow_mut().take())
            .unwrap_or_else(|| (boxed_zeroed(), boxed_zeroed()));
        touched.iter_mut().for_each(|w| *w = 0);
        let mut m = SimMemory {
            dense,
            touched,
            spill: FxHashMap::default(),
        };
        for &(a, v) in init {
            m.store(a, v);
        }
        m
    }

    /// Read `addr` (zero when unwritten). The `as u64` compare folds the
    /// negative-address case into the spill path.
    #[inline]
    pub(crate) fn load(&self, addr: i64) -> i64 {
        if (addr as u64) < DENSE_WORDS as u64 {
            let a = addr as usize;
            if self.touched[a >> 6] & (1u64 << (a & 63)) != 0 {
                self.dense[a]
            } else {
                0
            }
        } else {
            self.spill.get(&addr).copied().unwrap_or(0)
        }
    }

    #[inline]
    pub(crate) fn store(&mut self, addr: i64, v: i64) {
        if (addr as u64) < DENSE_WORDS as u64 {
            let a = addr as usize;
            self.dense[a] = v;
            self.touched[a >> 6] |= 1u64 << (a & 63);
        } else {
            self.spill.insert(addr, v);
        }
    }

    /// The full memory image as a sorted list — every written cell,
    /// including written zeros. This is the canonical form checkpoints
    /// store and boundary probes compare: two `SimMemory`s that performed
    /// the same writes produce identical images regardless of how they
    /// were seeded.
    pub(crate) fn image(&self) -> Vec<(i64, i64)> {
        let dense_cells: usize = self.touched.iter().map(|w| w.count_ones() as usize).sum();
        let mut out = Vec::with_capacity(dense_cells + self.spill.len());
        for (w, &word) in self.touched.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let a = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.push((a as i64, self.dense[a]));
            }
        }
        out.extend(self.spill.iter().map(|(&a, &v)| (a, v)));
        out.sort_unstable();
        out
    }

    /// The final memory image, exactly as a map-backed simulation would
    /// have produced it. Sized up front (popcount of the touched bitmap)
    /// so the build never rehashes.
    pub(crate) fn to_map(&self) -> FxHashMap<i64, i64> {
        let dense_cells: usize = self.touched.iter().map(|w| w.count_ones() as usize).sum();
        let mut out =
            FxHashMap::with_capacity_and_hasher(dense_cells + self.spill.len(), Default::default());
        out.extend(self.spill.iter().map(|(&a, &v)| (a, v)));
        for (w, &word) in self.touched.iter().enumerate() {
            let mut bits = word;
            while bits != 0 {
                let a = (w << 6) | bits.trailing_zeros() as usize;
                bits &= bits - 1;
                out.insert(a as i64, self.dense[a]);
            }
        }
        out
    }

    /// Return the backing buffers to the thread-local scratch pool. Called
    /// on the successful simulation path; error paths simply drop (and the
    /// next run allocates fresh zeroed buffers — rare, and a fresh zeroed
    /// buffer is always valid).
    pub(crate) fn recycle(self) {
        let SimMemory { dense, touched, .. } = self;
        MEM_SCRATCH.with(|s| *s.borrow_mut() = Some((dense, touched)));
    }
}

/// Recycled [`Lsq`] backing: stamp array, done array, next free epoch.
type LsqScratch = (Box<[u64; DENSE_WORDS]>, Box<[u64; DENSE_WORDS]>, u64);

thread_local! {
    /// Reusable [`Lsq`] backing buffers plus the next free epoch token.
    /// Tokens increase strictly across recycled runs, so a recycled stamp
    /// array never needs clearing: stale stamps can never equal a live
    /// token.
    static LSQ_SCRATCH: std::cell::RefCell<Option<LsqScratch>> =
        const { std::cell::RefCell::new(None) };
}

/// Per-address completion times of the current block's executed stores —
/// the exact-LSQ wait discipline. A dense window over the same address
/// range as [`SimMemory`] (epoch-stamped per dynamic block, so neither
/// block transitions nor run boundaries ever clear it) with a hash-map
/// spill for out-of-window addresses.
struct Lsq {
    stamp: Box<[u64; DENSE_WORDS]>,
    done: Box<[u64; DENSE_WORDS]>,
    spill: FxHashMap<i64, (u64, u64)>,
    /// Token base for this run; block `gen` uses token `base + gen`.
    base: u64,
    /// Highest token handed out (sets the next run's `base`).
    hi: u64,
}

impl Lsq {
    fn new() -> Self {
        let (stamp, done, base) = LSQ_SCRATCH
            .with(|s| s.borrow_mut().take())
            .unwrap_or_else(|| (boxed_zeroed(), boxed_zeroed(), 0));
        Lsq {
            stamp,
            done,
            spill: FxHashMap::default(),
            base,
            hi: base,
        }
    }

    /// The epoch token for dynamic block number `gen` (`gen >= 1`).
    #[inline]
    fn token(&mut self, gen: u64) -> u64 {
        let tok = self.base + gen;
        self.hi = self.hi.max(tok);
        tok
    }

    /// Record a store to `addr` completing at `done` under block token
    /// `tok`; same-address stores within a block keep the latest time.
    #[inline]
    fn record(&mut self, addr: i64, tok: u64, done: u64) {
        if (addr as u64) < DENSE_WORDS as u64 {
            let a = addr as usize;
            if self.stamp[a] == tok {
                self.done[a] = self.done[a].max(done);
            } else {
                self.stamp[a] = tok;
                self.done[a] = done;
            }
        } else {
            let e = self.spill.entry(addr).or_insert((0, 0));
            if e.0 == tok {
                e.1 = e.1.max(done);
            } else {
                *e = (tok, done);
            }
        }
    }

    /// Completion time of this block's last store to `addr`, if any.
    #[inline]
    fn wait_for(&self, addr: i64, tok: u64) -> Option<u64> {
        if (addr as u64) < DENSE_WORDS as u64 {
            let a = addr as usize;
            if self.stamp[a] == tok {
                Some(self.done[a])
            } else {
                None
            }
        } else {
            match self.spill.get(&addr) {
                Some(&(g, t)) if g == tok => Some(t),
                _ => None,
            }
        }
    }
}

impl Lsq {
    /// As [`SimMemory::recycle`]: return the buffers (and the next free
    /// epoch) to the scratch pool on the successful path. A dropped `Lsq`
    /// (error path) costs the next run a fresh zeroed allocation, which
    /// restarts the epoch space consistently (zero stamps never match a
    /// token, since tokens start at `base + 1`).
    fn recycle(self) {
        let Lsq {
            stamp, done, hi, ..
        } = self;
        LSQ_SCRATCH.with(|s| *s.borrow_mut() = Some((stamp, done, hi + 1)));
    }
}

/// Tag bit marking a `written` entry as a live-out definition. Register
/// indices are always well below 2^31 (they are bounded by `nregs`), so the
/// top bit is free to carry the commit-rule flag and each write event packs
/// into a single word.
const LIVE_OUT_BIT: u32 = 1 << 31;

/// Seed of the per-range prediction-outcome accumulator (FNV-1a offset).
pub(crate) const OUTCOME_HASH_INIT: u64 = 0xcbf2_9ce4_8422_2325;

/// One prediction outcome folded into the accumulator (FNV-style). The
/// plan pass and the timing engine must fold identically — the sharded
/// stitcher compares the two streams to detect any divergence in the
/// control-flow/predictor interaction over a shard range.
#[inline]
pub(crate) fn outcome_hash_step(h: u64, correct: bool) -> u64 {
    h.wrapping_mul(0x0000_0100_0000_01b3) ^ (0x9e + u64::from(correct))
}

/// How an [`Engine`]'s register file is initialized.
pub(crate) enum RegInit<'a> {
    /// Program entry: argument values land in the parameter registers.
    Args(&'a [i64]),
    /// Mid-program resume: a full architectural register file recorded by
    /// the checkpoint plan pass ([`crate::checkpoint`]).
    Full(&'a [i64]),
}

/// Initial state for an [`Engine`] — either program entry or a recorded
/// checkpoint.
pub(crate) struct EngineStart<'a> {
    /// Dense index of the first block to execute.
    pub(crate) cur: u32,
    pub(crate) regs: RegInit<'a>,
    /// Initial memory image, applied in order.
    pub(crate) mem_init: &'a [(i64, i64)],
    /// Predictor state at the start point (fresh at program entry; cloned
    /// from the plan pass for a shard).
    pub(crate) predictor: ExitPredictor,
    /// Block budget for this engine instance.
    pub(crate) max_blocks: u64,
}

/// Outcome of one [`Engine::step`].
pub(crate) enum EngineStep {
    /// The block committed and control transferred to `engine.cur`.
    Continue,
    /// The block committed by returning from the program.
    Done(Option<i64>),
}

/// Counter snapshot used to form per-shard deltas.
#[derive(Copy, Clone, Debug, Default)]
pub(crate) struct EngineCounters {
    pub(crate) last_commit: u64,
    pub(crate) predictions: u64,
    pub(crate) mispredictions: u64,
    pub(crate) insts_executed: u64,
    pub(crate) insts_nullified: u64,
    pub(crate) insts_fetched: u64,
}

/// Normalized timing state at a block-commit boundary, expressed relative
/// to the commit cycle of the block just committed.
///
/// The engine's cycle arithmetic is built from `max` and `+ constant`
/// only, so its evolution is invariant under a uniform time shift — two
/// engine states that agree on this *relative* digest produce identical
/// cycle *deltas* forever after. That is the exactness argument of the
/// sharded simulator ([`crate::shard`]): if a warmed-up shard's entry
/// digest equals the previous shard's exit digest, their stitched deltas
/// reproduce the sequential run's cycle count exactly.
///
/// Dead state is normalized away so that independently-reached states
/// compare equal:
///
/// * register timestamps are clamped to `fetch_ready − operand_latency` —
///   every future use of a register timestamp is `max`ed against a value
///   `≥ fetch_ready − operand_latency` (all future dispatches are
///   `≥ fetch_ready`), so anything older is indistinguishable from the
///   clamp floor;
/// * issue-ring claims strictly below `fetch_ready + 1` are dropped —
///   future issue probes start at `ready ≥ dispatch + 1 ≥ fetch_ready + 1`;
/// * the LSQ and the per-block `written` set reset every block and carry
///   nothing across a boundary.
#[derive(Clone, Debug, PartialEq, Eq)]
pub(crate) struct TimingDigest {
    /// `fetch_ready − last_commit`.
    rel_fetch_ready: i64,
    /// In-flight commit events, relative to `last_commit`.
    inflight: Vec<i64>,
    /// `(value, clamped availability − last_commit)` per register.
    rf: Vec<(i64, i64)>,
    /// Live issue-ring claims `(cycle − last_commit, count)`, sorted.
    ring: Vec<(i64, u32)>,
    /// Exit-predictor state hash (tables + global history).
    predictor: u64,
}

/// The event-driven timing core, reified as a steppable engine.
///
/// [`simulate_timing_lowered`] drives it from program entry to return; the
/// sharded simulator ([`crate::shard`]) drives one instance per shard from
/// a recorded checkpoint and stitches the per-shard deltas. `C` selects
/// the cycle-timestamp width (see [`Cycle`]); `ZERO_OPLAT` specializes the
/// wake-up arithmetic for the default free operand network.
pub(crate) struct Engine<'p, C: Cycle, const ZERO_OPLAT: bool> {
    p: &'p LoweredProgram,
    config: &'p TimingConfig,
    rf: Vec<RegSlot<C>>,
    mem: SimMemory,
    predictor: ExitPredictor,
    ring: IssueRing,
    /// Pending commit events of in-flight blocks (in order).
    inflight: VecDeque<C>,
    last_commit: C,
    fetch_ready: C,
    pub(crate) blocks_executed: u64,
    pub(crate) insts_executed: u64,
    pub(crate) insts_nullified: u64,
    pub(crate) insts_fetched: u64,
    /// Registers written (or null-forwarded) this block, each packed with
    /// its def-is-live-out bit ([`LIVE_OUT_BIT`]) for the commit rule.
    written: Vec<u32>,
    /// Per-address completion time of the current block's executed stores,
    /// epoch-stamped with the dynamic block number so it never needs
    /// clearing between blocks (or runs).
    lsq: Lsq,
    exact: bool,
    op_lat: u64,
    /// Per-block fetch/map latency, precomputed so the block loop never
    /// divides.
    map_cycles: Vec<u64>,
    /// Dense index of the next block to execute.
    pub(crate) cur: u32,
    /// Running hash of prediction outcomes since the last
    /// [`Engine::reset_outcome_hash`] — a cheap fingerprint of the
    /// control-flow/predictor interaction over a shard range.
    pub(crate) outcome_hash: u64,
    max_blocks: u64,
}

impl<'p, C: Cycle, const ZERO_OPLAT: bool> Engine<'p, C, ZERO_OPLAT> {
    pub(crate) fn new(
        p: &'p LoweredProgram,
        config: &'p TimingConfig,
        start: EngineStart<'_>,
    ) -> Result<Self, SimError> {
        // The legacy model's eager out-of-range sweep, precomputed at
        // lowering in the same scan order: reject before executing
        // anything.
        if let Some(e) = &p.timing_reject {
            return Err(e.clone());
        }
        // One slot per architectural register holding both the current
        // value and the cycle it becomes available: every operand read
        // touches (and bounds-checks) a single array instead of parallel
        // `regs`/`avail` vectors. Padded to at least one slot so the
        // clamped (branchless) operand reads always have a valid index to
        // land on, even for register-free functions.
        let mut rf = C::take_rf(p.nregs.max(1));
        match start.regs {
            RegInit::Args(args) => {
                for (i, a) in args.iter().enumerate().take(p.params as usize) {
                    rf[i].val = *a;
                }
            }
            RegInit::Full(vals) => {
                for (s, v) in rf.iter_mut().zip(vals) {
                    s.val = *v;
                }
            }
        }
        let map_cycles = p
            .blocks
            .iter()
            .map(|b| {
                config.block_overhead + (b.size as u64).div_ceil(config.fetch_bandwidth as u64)
            })
            .collect();
        Ok(Engine {
            p,
            config,
            rf,
            mem: SimMemory::new(start.mem_init),
            predictor: start.predictor,
            ring: IssueRing::new(config.issue_width),
            inflight: VecDeque::with_capacity(config.window_blocks + 1),
            last_commit: C::ZERO,
            fetch_ready: C::ZERO,
            blocks_executed: 0,
            insts_executed: 0,
            insts_nullified: 0,
            insts_fetched: 0,
            written: Vec::new(),
            lsq: Lsq::new(),
            exact: config.memory_ordering == MemoryOrdering::Exact,
            op_lat: config.operand_latency,
            map_cycles,
            cur: start.cur,
            outcome_hash: OUTCOME_HASH_INIT,
            max_blocks: start.max_blocks,
        })
    }

    /// Execute one dynamic block: dispatch, operand wake-up, exit
    /// resolution, prediction, and in-order commit.
    pub(crate) fn step(&mut self, trace: Option<&mut TimingTrace>) -> Result<EngineStep, SimError> {
        if self.blocks_executed >= self.max_blocks {
            return Err(SimError::OutOfFuel {
                executed: self.blocks_executed,
            });
        }
        self.blocks_executed += 1;
        let tok = self.lsq.token(self.blocks_executed);
        let (exec_before, null_before) = (self.insts_executed, self.insts_nullified);
        let op_lat = if ZERO_OPLAT { 0 } else { self.op_lat };
        let p = self.p;

        let lb = &p.blocks[self.cur as usize];
        self.insts_fetched += lb.size as u64;

        // --- Dispatch event: fetch-ready, delayed by the window-slot
        // release (oldest in-flight commit) when the window is full. ---
        let mut dispatch = self.fetch_ready;
        if self.inflight.len() >= self.config.window_blocks {
            if let Some(oldest) = self.inflight.pop_front() {
                dispatch = dispatch.max(oldest);
            }
        }
        self.ring.advance_to(dispatch.get());

        // Fetch/map of the *next* block is serialized behind this one.
        self.fetch_ready = dispatch.plus(self.map_cycles[self.cur as usize]);

        // --- Operand wake-up: one pass in program order, enqueueing each
        // instruction at its last-operand-arrival cycle and claiming its
        // issue slot from the calendar. ---
        let rf = &mut self.rf;
        let ring = &mut self.ring;
        let written = &mut self.written;
        written.clear();
        let mut any_store_done = C::ZERO;
        let mut outputs_done = dispatch;
        // `rf` is never resized, so the clamp bound is loop-invariant.
        let last = rf.len() - 1;
        for inst in &p.insts[lb.inst_start as usize..lb.inst_end as usize] {
            // Resolve the predicate functionally and find its ready time.
            // As with the operand reads below, the slot access is clamped
            // to a valid index (lowering guarantees in-range registers, so
            // the clamp is an identity) — the bounds check disappears and
            // the unpredicated case becomes a select.
            let sp = rf[(inst.pred_reg as usize).min(last)];
            let (executes, pred_ready) = if inst.pred_reg == NONE {
                (true, dispatch)
            } else {
                (
                    (sp.val != 0) == inst.pred_if_true,
                    sp.t.plus(op_lat).max(dispatch),
                )
            };

            if !executes {
                self.insts_nullified += 1;
                // Null token: the old value of dst forwards once the
                // predicate resolves.
                if inst.dst != NONE {
                    let s = &mut rf[(inst.dst as usize).min(last)];
                    if s.t < pred_ready {
                        s.t = pred_ready;
                        written.push(inst.dst | (u32::from(inst.def_live_out) << 31));
                    }
                }
                continue;
            }

            self.insts_executed += 1;
            // Both operands' values and arrival times in one read each;
            // immediates arrive at cycle 0 (never the max). The slot read
            // is unconditional (clamped to a valid index) so the
            // reg-vs-immediate selects lower to branchless moves instead of
            // a data-dependent branch per operand.
            let sa = rf[(inst.a_reg as usize).min(last)];
            let (a, ta) = if inst.a_reg != NONE {
                (sa.val, sa.t.plus(op_lat))
            } else {
                (inst.a_imm, C::ZERO)
            };
            let sb = rf[(inst.b_reg as usize).min(last)];
            let (b, tb) = if inst.b_reg != NONE {
                (sb.val, sb.t.plus(op_lat))
            } else {
                (inst.b_imm, C::ZERO)
            };
            let mut ready = pred_ready.max(dispatch.inc()).max(ta).max(tb);

            match inst.kind {
                LKind::Alu => {
                    let issue = C::of(ring.issue_at(ready.get()));
                    let done = issue.plus(u64::from(inst.latency));
                    rf[(inst.dst as usize).min(last)] = RegSlot {
                        val: eval(inst.op, a, b),
                        t: done,
                    };
                    written.push(inst.dst | (u32::from(inst.def_live_out) << 31));
                }
                LKind::Load => {
                    // LSQ wait event, per the configured discipline (`a` is
                    // the effective address).
                    match self.config.memory_ordering {
                        MemoryOrdering::Oracle => {}
                        MemoryOrdering::Exact => {
                            if inst.stores_before > 0 {
                                if let Some(t) = self.lsq.wait_for(a, tok) {
                                    ready = ready.max(C::of(t));
                                }
                            }
                        }
                        MemoryOrdering::Conservative => {
                            ready = ready.max(any_store_done);
                        }
                    }
                    let issue = C::of(ring.issue_at(ready.get()));
                    let done = issue.plus(u64::from(inst.latency));
                    rf[(inst.dst as usize).min(last)] = RegSlot {
                        val: self.mem.load(a),
                        t: done,
                    };
                    written.push(inst.dst | (u32::from(inst.def_live_out) << 31));
                }
                LKind::Store => {
                    let issue = C::of(ring.issue_at(ready.get()));
                    let done = issue.plus(u64::from(inst.latency));
                    outputs_done = outputs_done.max(done);
                    self.mem.store(a, b);
                    if self.exact {
                        self.lsq.record(a, tok, done.get());
                    }
                    any_store_done = any_store_done.max(done);
                }
                LKind::Slow(_) => {
                    // An executed irregular instruction is missing a
                    // required operand (out-of-range registers were
                    // rejected eagerly above): the legacy model errors
                    // inside its execution step, discarding all state, so
                    // the error value is the only observable — the operand
                    // reads and counter bumps above are pure and die with
                    // the run.
                    return Err(SimError::MalformedInstruction { block: lb.id });
                }
            }
        }

        // --- Resolve exits: find the fired exit and its resolve time. ---
        let exits = &p.exits[lb.exit_start as usize..lb.exit_end as usize];
        let mut resolve = dispatch.inc();
        let fe = if lb.single_uncond_exit {
            // Batched fast path: a lone unpredicated exit fires
            // unconditionally and resolves at `dispatch + 1` — no predicate
            // scan, no per-exit branch. Lowering only sets the flag when
            // the scan below would reach the same exit with `resolve`
            // untouched.
            exits[0]
        } else {
            let mut fired = None;
            for e in exits {
                if let Some(r) = e.pred_oor {
                    // Unreachable when `timing_reject` is honored (the
                    // sweep found it first), but degrade identically
                    // regardless.
                    return Err(SimError::RegisterOutOfRange {
                        block: lb.id,
                        reg: r,
                    });
                }
                if e.pred_reg == NONE {
                    fired = Some(e);
                    break;
                }
                let s = rf[e.pred_reg as usize];
                resolve = resolve.max(s.t.plus(op_lat));
                if (s.val != 0) == e.pred_if_true {
                    fired = Some(e);
                    break;
                }
            }
            // Verified IR always ends in an unpredicated default exit;
            // injected faults can leave the exit set non-total.
            *fired.ok_or(SimError::NoFiringExit { block: lb.id })?
        };
        // A returned value is a block output.
        match fe.kind {
            LExitKind::RetReg(r) => outputs_done = outputs_done.max(rf[r as usize].t),
            LExitKind::RetRegOor(r) => {
                // As with `pred_oor`: the eager sweep fires first.
                return Err(SimError::RegisterOutOfRange {
                    block: lb.id,
                    reg: r,
                });
            }
            _ => {}
        }

        // --- Prediction: next-block target (static fallback: the first
        // exit's target, the compiler's most-likely-first ordering). ---
        let fallback = lb.fallback.unwrap_or(fe.orig);
        let correct = self
            .predictor
            .update_tagged(lb.id, fallback, fe.orig, fe.hist_tag);
        self.outcome_hash = outcome_hash_step(self.outcome_hash, correct);
        if !correct {
            // Flush event: the next block cannot even begin fetching until
            // the exit resolves, plus the flush penalty.
            self.fetch_ready = self
                .fetch_ready
                .max(resolve.plus(self.config.mispredict_penalty));
        }

        // --- Commit event (in order): branch decision, stores, and
        // live-out register writes must all have resolved. ---
        for &w in written.iter() {
            if w & LIVE_OUT_BIT != 0 {
                outputs_done = outputs_done.max(rf[((w & !LIVE_OUT_BIT) as usize).min(last)].t);
            }
        }
        let block_done = outputs_done.max(resolve);
        let commit = block_done.max(self.last_commit.plus(self.config.commit_overhead));
        self.last_commit = commit;
        self.inflight.push_back(commit);

        // Cross-block register communication pays register-file latency
        // (once per write event, as in the legacy model).
        let register_latency = self.config.register_latency;
        for w in written.drain(..) {
            let s = &mut rf[((w & !LIVE_OUT_BIT) as usize).min(last)];
            s.t = s.t.plus(register_latency);
        }

        if let Some(t) = trace {
            t.events.push(BlockEvent {
                block: lb.id,
                dispatch: dispatch.get(),
                resolve: resolve.get(),
                commit: commit.get(),
                predicted: correct,
                executed: (self.insts_executed - exec_before) as u32,
                nullified: (self.insts_nullified - null_before) as u32,
            });
        }

        match fe.kind {
            LExitKind::Goto(next) => {
                self.cur = next;
                Ok(EngineStep::Continue)
            }
            LExitKind::Dangling(target) => {
                // The legacy model only discovers a dangling target at the
                // top of the next iteration, after the fuel check.
                if self.blocks_executed >= self.max_blocks {
                    return Err(SimError::OutOfFuel {
                        executed: self.blocks_executed,
                    });
                }
                Err(SimError::DanglingTarget { target })
            }
            LExitKind::RetNone => Ok(EngineStep::Done(None)),
            LExitKind::RetImm(v) => Ok(EngineStep::Done(Some(v))),
            LExitKind::RetReg(r) => Ok(EngineStep::Done(Some(rf[r as usize].val))),
            LExitKind::RetRegOor(_) => unreachable!("handled at resolve"),
        }
    }

    /// Finish a run: build the [`TimingResult`] and return the scratch
    /// buffers to their pools.
    pub(crate) fn into_result(self, ret: Option<i64>) -> TimingResult {
        let Engine {
            rf,
            mem,
            lsq,
            predictor,
            last_commit,
            blocks_executed,
            insts_executed,
            insts_nullified,
            insts_fetched,
            ..
        } = self;
        let memory = mem.to_map();
        mem.recycle();
        lsq.recycle();
        C::recycle_rf(rf);
        TimingResult {
            cycles: last_commit.get(),
            blocks_executed,
            predictions: predictor.predictions(),
            mispredictions: predictor.mispredictions(),
            insts_executed,
            insts_nullified,
            insts_fetched,
            ret,
            memory,
        }
    }

    /// Counter snapshot (for forming per-shard deltas).
    pub(crate) fn counters(&self) -> EngineCounters {
        EngineCounters {
            last_commit: self.last_commit.get(),
            predictions: self.predictor.predictions(),
            mispredictions: self.predictor.mispredictions(),
            insts_executed: self.insts_executed,
            insts_nullified: self.insts_nullified,
            insts_fetched: self.insts_fetched,
        }
    }

    /// Restart the prediction-outcome accumulator (at a shard-range entry).
    pub(crate) fn reset_outcome_hash(&mut self) {
        self.outcome_hash = OUTCOME_HASH_INIT;
    }

    /// The normalized boundary digest; see [`TimingDigest`]. Call only
    /// between blocks (after a [`EngineStep::Continue`]).
    pub(crate) fn state_digest(&self) -> TimingDigest {
        let l = self.last_commit.get() as i64;
        let f = self.fetch_ready.get();
        let op_lat = if ZERO_OPLAT { 0 } else { self.op_lat };
        let floor = C::of(f.saturating_sub(op_lat));
        TimingDigest {
            rel_fetch_ready: f as i64 - l,
            inflight: self.inflight.iter().map(|c| c.get() as i64 - l).collect(),
            rf: self
                .rf
                .iter()
                .map(|s| (s.val, s.t.max(floor).get() as i64 - l))
                .collect(),
            ring: self
                .ring
                .live_claims(f + 1)
                .into_iter()
                .map(|(c, n)| (c as i64 - l, n))
                .collect(),
            predictor: self.predictor.state_hash(),
        }
    }

    /// Does the engine's *architectural* state (next block, register
    /// values, memory image, predictor state) match checkpoint `ck`? Used
    /// mid-shard to cross-validate against the plan pass's ground truth.
    pub(crate) fn arch_matches(&self, ck: &crate::checkpoint::Checkpoint) -> bool {
        self.cur == ck.cur
            && self.rf.len() == ck.regs.len()
            && self.rf.iter().zip(&ck.regs).all(|(s, v)| s.val == *v)
            && self.predictor.state_hash() == ck.pred_hash
            && self.mem.image() == ck.mem
    }

    /// Return the engine's scratch buffers to the thread-local pools
    /// without building a result (non-final shards discard their state
    /// after digesting it).
    pub(crate) fn recycle(self) {
        let Engine { rf, mem, lsq, .. } = self;
        mem.recycle();
        lsq.recycle();
        C::recycle_rf(rf);
    }
}

fn simulate_lowered_impl(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
    trace: Option<&mut TimingTrace>,
) -> Result<TimingResult, SimError> {
    // TRIPS forwards operands over the operand network for free
    // (`operand_latency == 0`, the default configuration). Specializing
    // the hot loop on that case lets every `+ op_lat` in the per-operand
    // wake-up arithmetic constant-fold away.
    if config.operand_latency == 0 {
        simulate_lowered_generic::<true>(p, args, mem_init, config, trace)
    } else {
        simulate_lowered_generic::<false>(p, args, mem_init, config, trace)
    }
}

fn simulate_lowered_generic<const ZERO_OPLAT: bool>(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
    mut trace: Option<&mut TimingTrace>,
) -> Result<TimingResult, SimError> {
    let mut eng: Engine<'_, u64, ZERO_OPLAT> = Engine::new(
        p,
        config,
        EngineStart {
            cur: p.entry,
            regs: RegInit::Args(args),
            mem_init,
            predictor: ExitPredictor::new(&config.predictor),
            max_blocks: config.max_blocks,
        },
    )?;
    let ret = loop {
        match eng.step(trace.as_deref_mut())? {
            EngineStep::Continue => {}
            EngineStep::Done(r) => break r,
        }
    };
    Ok(eng.into_result(ret))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::functional::{run, RunConfig};
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::ids::Reg;
    use chf_ir::instr::{Instr, Operand, Pred};

    fn reg(r: Reg) -> Operand {
        Operand::Reg(r)
    }

    fn sum_loop() -> Function {
        let mut fb = FunctionBuilder::new("sum", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let body = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        let acc = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(reg(i), reg(Reg(0)));
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let acc2 = fb.add(reg(acc), reg(i));
        fb.mov_to(acc, reg(acc2));
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(reg(acc)));
        fb.build().unwrap()
    }

    #[test]
    fn matches_functional_observables() {
        let f = sum_loop();
        let fr = run(&f, &[25], &[], &RunConfig::default()).unwrap();
        let tr = simulate_timing(&f, &[25], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(fr.digest(), tr.digest());
        assert_eq!(fr.blocks_executed, tr.blocks_executed);
        assert_eq!(fr.insts_executed, tr.insts_executed);
    }

    #[test]
    fn cycles_grow_with_work() {
        let f = sum_loop();
        let short = simulate_timing(&f, &[5], &[], &TimingConfig::trips()).unwrap();
        let long = simulate_timing(&f, &[50], &[], &TimingConfig::trips()).unwrap();
        assert!(long.cycles > short.cycles);
        assert!(short.cycles > 0);
    }

    #[test]
    fn fewer_blocks_means_fewer_cycles_for_same_work() {
        // Same computation as two chained blocks vs one fused block: the
        // fused version must not be slower (per-block overhead dominates).
        let mut fb = FunctionBuilder::new("two", 1);
        let a = fb.create_block();
        let b = fb.create_block();
        fb.switch_to(a);
        let x = fb.add(reg(Reg(0)), Operand::Imm(1));
        fb.jump(b);
        fb.switch_to(b);
        let y = fb.mul(reg(x), Operand::Imm(3));
        fb.ret(Some(reg(y)));
        let two = fb.build().unwrap();

        let mut fb = FunctionBuilder::new("one", 1);
        let a = fb.create_block();
        fb.switch_to(a);
        let x = fb.add(reg(Reg(0)), Operand::Imm(1));
        let y = fb.mul(reg(x), Operand::Imm(3));
        fb.ret(Some(reg(y)));
        let one = fb.build().unwrap();

        let t2 = simulate_timing(&two, &[4], &[], &TimingConfig::trips()).unwrap();
        let t1 = simulate_timing(&one, &[4], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(t1.ret, t2.ret);
        assert!(t1.cycles < t2.cycles, "{} !< {}", t1.cycles, t2.cycles);
    }

    #[test]
    fn unpredictable_branches_cost_cycles() {
        // Loop whose branch alternates pseudo-randomly vs one that is
        // monotone; same block counts, different cycle counts.
        fn branchy(seed_mul: i64) -> Function {
            let mut fb = FunctionBuilder::new("branchy", 1);
            let e = fb.create_block();
            let h = fb.create_block();
            let t = fb.create_block();
            let z = fb.create_block();
            let latch = fb.create_block();
            let exit = fb.create_block();
            fb.switch_to(e);
            let i = fb.mov(Operand::Imm(0));
            let acc = fb.mov(Operand::Imm(0));
            let x = fb.mov(Operand::Imm(12345));
            fb.jump(h);
            fb.switch_to(h);
            // x = x * seed_mul + 1; c = (x >> 4) & 1
            let x2 = fb.mul(reg(x), Operand::Imm(seed_mul));
            let x3 = fb.add(reg(x2), Operand::Imm(1));
            fb.mov_to(x, reg(x3));
            let sh = fb.shr(reg(x), Operand::Imm(4));
            let c = fb.and(reg(sh), Operand::Imm(1));
            fb.branch(c, t, z);
            fb.switch_to(t);
            let a1 = fb.add(reg(acc), Operand::Imm(3));
            fb.mov_to(acc, reg(a1));
            fb.jump(latch);
            fb.switch_to(z);
            let a2 = fb.add(reg(acc), Operand::Imm(5));
            fb.mov_to(acc, reg(a2));
            fb.jump(latch);
            fb.switch_to(latch);
            let i2 = fb.add(reg(i), Operand::Imm(1));
            fb.mov_to(i, reg(i2));
            let lc = fb.cmp_lt(reg(i), Operand::Imm(200));
            fb.branch(lc, h, exit);
            fb.switch_to(exit);
            fb.ret(Some(reg(acc)));
            fb.build().unwrap()
        }
        // seed_mul = 1 makes x monotone (+1 each time) so the branch bit
        // alternates slowly and predictably; a large odd multiplier makes it
        // effectively random.
        let predictable = branchy(1);
        let random = branchy(6364136223846793_i64);
        let tp = simulate_timing(&predictable, &[0], &[], &TimingConfig::trips()).unwrap();
        let tr = simulate_timing(&random, &[0], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(tp.blocks_executed, tr.blocks_executed);
        assert!(tr.mispredictions > tp.mispredictions);
        assert!(tr.cycles > tp.cycles);
    }

    #[test]
    fn predicated_dependence_serializes() {
        // A predicated chain must wait for its predicate; an unpredicated
        // one need not.
        fn chain(predicated: bool) -> Function {
            let mut fb = FunctionBuilder::new("chain", 2);
            let e = fb.create_block();
            fb.switch_to(e);
            // Slow predicate: a chain of multiplies.
            let mut p = fb.param(1);
            for _ in 0..6 {
                p = fb.mul(reg(p), Operand::Imm(3));
            }
            let cond = fb.cmp_ne(reg(p), Operand::Imm(0));
            let out = fb.fresh_reg();
            let mut inst = Instr::add(out, reg(Reg(0)), Operand::Imm(7));
            if predicated {
                inst = inst.predicated(Pred::on_true(cond));
            }
            fb.push(inst);
            fb.ret(Some(reg(out)));
            fb.build().unwrap()
        }
        let cfgs = TimingConfig::trips();
        let with = simulate_timing(&chain(true), &[1, 1], &[], &cfgs).unwrap();
        let without = simulate_timing(&chain(false), &[1, 1], &[], &cfgs).unwrap();
        assert_eq!(with.ret, without.ret);
        assert!(with.cycles > without.cycles);
    }

    #[test]
    fn nullified_instructions_counted() {
        let mut fb = FunctionBuilder::new("nullify", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let out = fb.mov(Operand::Imm(0));
        let c = fb.cmp_gt(reg(Reg(0)), Operand::Imm(100));
        fb.push(Instr::mov(out, Operand::Imm(1)).predicated(Pred::on_true(c)));
        fb.ret(Some(reg(out)));
        let f = fb.build().unwrap();
        let t = simulate_timing(&f, &[1], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(t.insts_nullified, 1);
        assert_eq!(t.ret, Some(0));
    }

    #[test]
    fn trace_records_every_block_with_consistent_times() {
        let f = sum_loop();
        let (r, trace) = simulate_timing_traced(&f, &[12], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(trace.events.len() as u64, r.blocks_executed);
        trace.check().unwrap();
        // Per-event counters sum to the totals.
        let exec: u64 = trace.events.iter().map(|e| e.executed as u64).sum();
        assert_eq!(exec, r.insts_executed);
        let mispredicted = trace.events.iter().filter(|e| !e.predicted).count() as u64;
        assert_eq!(mispredicted, r.mispredictions);
        // The last commit is the cycle count.
        assert_eq!(trace.events.last().unwrap().commit, r.cycles);
    }

    #[test]
    fn traced_and_untraced_agree() {
        let f = sum_loop();
        let a = simulate_timing(&f, &[20], &[], &TimingConfig::trips()).unwrap();
        let (b, _) = simulate_timing_traced(&f, &[20], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn memory_ordering_disciplines_are_ordered() {
        // A block with a store feeding a later same-address load: Oracle
        // lets the load fly, Exact makes it wait for that store, and
        // Conservative additionally serializes unrelated loads.
        let mut fb = FunctionBuilder::new("mem", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        // Slow value: chain of multiplies.
        let mut v = fb.param(0);
        for _ in 0..6 {
            v = fb.mul(reg(v), Operand::Imm(3));
        }
        fb.store(Operand::Imm(100), reg(v)); // slow store
        let same = fb.load(Operand::Imm(100)); // conflicts
        let other = fb.load(Operand::Imm(200)); // unrelated
        let s = fb.add(reg(same), reg(other));
        fb.ret(Some(reg(s)));
        let f = fb.build().unwrap();

        let cycles = |ord: MemoryOrdering| {
            simulate_timing(
                &f,
                &[3],
                &[(200, 9)],
                &TimingConfig {
                    memory_ordering: ord,
                    ..TimingConfig::trips()
                },
            )
            .unwrap()
            .cycles
        };
        let oracle = cycles(MemoryOrdering::Oracle);
        let exact = cycles(MemoryOrdering::Exact);
        let conservative = cycles(MemoryOrdering::Conservative);
        assert!(oracle < exact, "{oracle} !< {exact}");
        assert!(exact <= conservative, "{exact} !<= {conservative}");
        // All disciplines compute the same result (timing-only knob).
        for ord in [
            MemoryOrdering::Oracle,
            MemoryOrdering::Exact,
            MemoryOrdering::Conservative,
        ] {
            let r = simulate_timing(
                &f,
                &[3],
                &[(200, 9)],
                &TimingConfig {
                    memory_ordering: ord,
                    ..TimingConfig::trips()
                },
            )
            .unwrap();
            assert_eq!(r.ret, Some(3 * 729 + 9));
        }
    }

    #[test]
    fn out_of_fuel() {
        let mut fb = FunctionBuilder::new("spin", 0);
        let e = fb.create_block();
        fb.switch_to(e);
        fb.jump(e);
        let f = fb.build().unwrap();
        let cfg = TimingConfig {
            max_blocks: 50,
            ..TimingConfig::trips()
        };
        assert!(matches!(
            simulate_timing(&f, &[], &[], &cfg),
            Err(SimError::OutOfFuel { .. })
        ));
    }

    #[test]
    fn lowered_handle_is_reusable_and_deterministic() {
        let f = sum_loop();
        let p = LoweredProgram::lower(&f);
        let a = simulate_timing_lowered(&p, &[30], &[], &TimingConfig::trips()).unwrap();
        let b = simulate_timing_lowered(&p, &[30], &[], &TimingConfig::trips()).unwrap();
        let c = simulate_timing(&f, &[30], &[], &TimingConfig::trips()).unwrap();
        assert_eq!(a.cycles, b.cycles);
        assert_eq!(a.cycles, c.cycles);
        assert_eq!(a.digest(), c.digest());
    }

    #[test]
    fn issue_ring_matches_first_fit_semantics() {
        // Saturate a cycle and confirm spill to the next; then grow far
        // beyond the initial capacity and confirm claims survive.
        let mut ring = IssueRing::new(2);
        assert_eq!(ring.issue_at(5), 5);
        assert_eq!(ring.issue_at(5), 5);
        assert_eq!(ring.issue_at(5), 6);
        assert_eq!(ring.issue_at(3), 3);
        // Far-future claim forces growth; earlier claims must persist.
        assert_eq!(ring.issue_at(5000), 5000);
        assert_eq!(ring.issue_at(5), 6, "cycle 5/6 claims survived the grow");
        assert_eq!(ring.issue_at(5), 7, "cycle 6 is now saturated too");
        ring.advance_to(5000);
        assert_eq!(ring.issue_at(5000), 5000, "bucket 5000 kept one claim");
        assert_eq!(ring.issue_at(5000), 5001);
    }
}
