#![warn(missing_docs)]
//! # chf-sim — simulators for EDGE hyperblock programs
//!
//! Both simulators execute a pre-decoded program representation
//! ([`lower::LoweredProgram`]): a [`chf_ir::function::Function`] is decoded
//! **once** into dense blocks with flat operand indices, packed dependence
//! metadata, LSQ store maps, and exit tables, and the handle is reusable
//! across runs (the oracle, the benchmark harness, and whole-program
//! simulation all lower once and simulate many times).
//!
//! * [`functional`] — a fast interpreter that executes a program, checks
//!   dynamic invariants, collects execution profiles (block counts, edge
//!   counts, loop trip-count histograms), and reports the observable outcome
//!   (return value plus final memory). It is both the *correctness oracle*
//!   for every compiler transformation and the source of the block-count
//!   metric used for the paper's SPEC2000 evaluation (Table 3).
//!
//! * [`timing`] — a TRIPS-like cycle-level model (paper §7), event-driven
//!   over the lowered form: per-block fetch/map overhead, dataflow issue
//!   with an operand wake-up calendar queue, issue-width contention and
//!   operand-network latency, an 8-block in-flight window, next-block
//!   prediction with misprediction flushes, and in-order block commit. It
//!   reproduces the first-order effects the paper's analysis rests on, not
//!   the authors' exact cycle counts (see DESIGN.md, substitution 1).
//!
//! * [`timing_legacy`] (feature `legacy-sim`, default-on for one release) —
//!   the original direct-interpretation cores, kept as the differential
//!   reference: the rewritten engines must agree with them cycle-for-cycle
//!   and bit-for-bit (`tests/differential.rs`).
//!
//! The [`predictor`] module provides the next-block (exit) predictor shared
//! by the timing model.

pub mod checkpoint;
pub mod functional;
pub mod lower;
pub mod predictor;
pub mod shard;
pub mod timing;
#[cfg(feature = "legacy-sim")]
pub mod timing_legacy;

pub use checkpoint::{plan_shards, Checkpoint, ShardConfig, ShardPlan};
pub use functional::{run, run_lowered, ExecError, FuncResult, RunConfig, SimError};
pub use lower::LoweredProgram;
pub use predictor::{ExitPredictor, PredictorConfig, PredictorKind};
pub use shard::{
    corrupt_checkpoint, simulate_shard, simulate_timing_sharded_seq, stitch, CheckpointFault,
    ShardRun, StitchedTiming,
};
pub use timing::{
    simulate_timing, simulate_timing_lowered, simulate_timing_lowered_traced,
    simulate_timing_traced, BlockEvent, MemoryOrdering, TimingConfig, TimingResult, TimingTrace,
};
