#![warn(missing_docs)]
//! # chf-sim — simulators for EDGE hyperblock programs
//!
//! Two simulators over the `chf-ir` representation:
//!
//! * [`functional`] — a fast interpreter that executes a program, checks
//!   dynamic invariants, collects execution profiles (block counts, edge
//!   counts, loop trip-count histograms), and reports the observable outcome
//!   (return value plus final memory). It is both the *correctness oracle*
//!   for every compiler transformation and the source of the block-count
//!   metric used for the paper's SPEC2000 evaluation (Table 3).
//!
//! * [`timing`] — a TRIPS-like cycle-level model (paper §7): per-block
//!   fetch/map overhead, dataflow issue within blocks with issue-width
//!   contention and operand-network latency, an 8-block in-flight window,
//!   next-block prediction with misprediction flushes, and in-order block
//!   commit. It reproduces the first-order effects the paper's analysis
//!   rests on, not the authors' exact cycle counts (see DESIGN.md,
//!   substitution 1).
//!
//! The [`predictor`] module provides the next-block (exit) predictor shared
//! by the timing model.

pub mod functional;
pub mod predictor;
pub mod timing;

pub use functional::{run, ExecError, FuncResult, RunConfig, SimError};
pub use predictor::{ExitPredictor, PredictorConfig, PredictorKind};
pub use timing::{simulate_timing, simulate_timing_traced, BlockEvent, MemoryOrdering, TimingConfig, TimingResult, TimingTrace};
