//! Pre-decoded (lowered) program representation shared by both simulators.
//!
//! The interpreters used to walk `chf_ir` structures directly: every dynamic
//! instruction re-matched `Option<Operand>` slots, re-bounds-checked register
//! numbers through `Machine::read`, and the timing model probed a hash map
//! per issued instruction. [`LoweredProgram`] decodes a [`Function`] **once**
//! into a dense, cache-friendly form in the spirit of a CFG-machine lowering
//! (Garbuzov et al., *Structural Operational Semantics for CFG Machines*):
//!
//! * blocks are renumbered densely (slot holes disappear), instructions and
//!   exits live in flat arenas with per-block ranges;
//! * operands are resolved to flat register indices (`u32::MAX` = absent /
//!   immediate) with immediates pre-substituted, so the execution loops index
//!   arrays instead of matching enums;
//! * per-block metadata is precomputed: instruction-slot counts, the static
//!   next-block prediction fallback, store ordinals and earlier-store counts
//!   for the LSQ, and the per-instruction *def-is-live-out* bit the timing
//!   model's commit rule needs (this replaces a `Liveness::compute` +
//!   hash-set probe per simulated block commit);
//! * the timing model's eager register-range sweep is folded into decoding
//!   ([`LoweredProgram::timing_reject`]), preserving its exact scan order;
//! * loop structure for trip-count profiling is derived lazily from the
//!   lowered CFG ([`TripInfo`]), so a pure timing simulation never pays for
//!   a dominator analysis.
//!
//! # Degenerate IR and lazy error semantics
//!
//! The simulators are deliberately total over *broken* IR (the chaos
//! harness feeds them corrupted functions), and the functional interpreter's
//! errors are **lazy**: a malformed instruction only errs when control
//! reaches it with a true predicate. Lowering must not make those errors
//! eager, so any instruction that statically cannot take the fast path — a
//! missing required operand or an out-of-range register anywhere in it — is
//! lowered to [`LKind::Slow`], an index into a side table holding the
//! original [`Instr`]. The slow path replays the legacy per-instruction
//! semantics (including predication and error order) exactly; well-formed
//! programs never contain a slow instruction. Exits get the same treatment
//! via [`LExitKind::Dangling`] / [`LExit::pred_oor`] / out-of-range return
//! registers.

use crate::functional::SimError;
use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::ids::BlockId;
use chf_ir::instr::{Instr, Opcode, Operand};
use std::sync::OnceLock;

/// Sentinel for "no register in this slot" in the packed fields.
pub(crate) const NONE: u32 = u32::MAX;

/// How a lowered instruction executes.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum LKind {
    /// Register-writing ALU/compare/move op: `regs[dst] = eval(op, a, b)`.
    Alu,
    /// `regs[dst] = mem[a]` (subject to the LSQ discipline in timing).
    Load,
    /// `mem[a] = b`.
    Store,
    /// Irregular instruction (missing operand or out-of-range register):
    /// index into [`LoweredProgram::slow`], replayed via the legacy
    /// per-instruction semantics.
    Slow(u32),
}

/// One pre-decoded instruction. All register fields are flat indices,
/// guaranteed in-bounds unless `kind` is [`LKind::Slow`].
#[derive(Clone, Debug)]
pub(crate) struct LInst {
    /// Original opcode (drives `eval` and the latency charge).
    pub op: Opcode,
    pub kind: LKind,
    /// Destination register or [`NONE`].
    pub dst: u32,
    /// First operand register, or [`NONE`] to use `a_imm`.
    pub a_reg: u32,
    pub a_imm: i64,
    /// Second operand register, or [`NONE`] to use `b_imm` (absent operands
    /// lower to immediate 0, matching the interpreter's `None => 0`).
    pub b_reg: u32,
    pub b_imm: i64,
    /// Predicate register or [`NONE`] for unpredicated.
    pub pred_reg: u32,
    /// Required predicate polarity.
    pub pred_if_true: bool,
    /// Precomputed `op.latency()` (single-digit cycle counts; narrow so
    /// the decoded instruction stays within 48 bytes).
    pub latency: u8,
    /// Whether `dst` is in this block's live-out set — the timing model's
    /// commit rule only waits for live-out register writes.
    pub def_live_out: bool,
    /// Number of stores earlier in this block (LSQ fast-skip: a load with
    /// `stores_before == 0` can never conflict). Blocks hold at most a few
    /// hundred slots, so `u16` cannot saturate.
    pub stores_before: u16,
}

/// Side-table entry for an irregular instruction. (The corresponding
/// [`LInst`] still carries the packed predicate/def/liveness fields the
/// timing model needs; the slow table holds only the original instruction
/// for the functional replay.)
#[derive(Clone, Debug)]
pub(crate) struct SlowInst {
    /// The original instruction, replayed by the slow path.
    pub inst: Instr,
}

/// Lowered control transfer of an exit.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub(crate) enum LExitKind {
    /// Jump to a dense block index.
    Goto(u32),
    /// Jump to a removed/never-created block: taking this exit raises
    /// [`SimError::DanglingTarget`] (after the next block's fuel check,
    /// matching the interpreter's error point).
    Dangling(BlockId),
    /// `return` with no value.
    RetNone,
    /// `return #imm`.
    RetImm(i64),
    /// `return r` with an in-range register.
    RetReg(u32),
    /// `return r` with an out-of-range register: firing raises
    /// [`SimError::RegisterOutOfRange`] after the exit is counted.
    RetRegOor(u32),
}

/// One pre-decoded exit.
#[derive(Copy, Clone, Debug)]
pub(crate) struct LExit {
    /// Predicate register or [`NONE`]; guaranteed in range.
    pub pred_reg: u32,
    pub pred_if_true: bool,
    /// Set when the predicate register is out of range: evaluating this exit
    /// raises [`SimError::RegisterOutOfRange`] (the read comes first).
    pub pred_oor: Option<u32>,
    pub kind: LExitKind,
    /// The original target, kept for the next-block predictor so its hashed
    /// history and table keys are bit-identical to the legacy model's.
    pub orig: ExitTarget,
    /// The target's cached [`ExitPredictor::history_tag`]
    /// (`crate::predictor::ExitPredictor::history_tag`): the predictor's
    /// global-history hash is precomputed at decode so the per-block hot
    /// path never runs a hasher.
    pub hist_tag: u8,
}

/// Per-block metadata.
#[derive(Clone, Debug)]
pub(crate) struct LBlock {
    /// Original block id (diagnostics, profiles, predictor keys).
    pub id: BlockId,
    pub inst_start: u32,
    pub inst_end: u32,
    pub exit_start: u32,
    pub exit_end: u32,
    /// `Block::size()`: instruction slots incl. exits (fetch accounting).
    pub size: u32,
    /// Static next-block prediction: the first exit's target (`None` iff
    /// the block has no exits, in which case `NoFiringExit` fires first).
    pub fallback: Option<ExitTarget>,
    /// The block ends in exactly one exit, unpredicated and with an
    /// in-range (or absent) predicate register: the timing model's exit
    /// scan degenerates to "exit 0 fires at `dispatch + 1`", so it can be
    /// resolved in one batched step with no predicate reads.
    pub single_uncond_exit: bool,
}

/// A [`Function`] decoded once for repeated simulation.
///
/// Build with [`LoweredProgram::lower`]; both simulators accept it directly
/// ([`crate::functional::run_lowered`], [`crate::timing::simulate_timing_lowered`]),
/// so callers that simulate the same function many times — the differential
/// oracle, the benchmark harness, whole-program runs — decode once and share
/// the handle. The convenience entry points [`crate::functional::run`] and
/// [`crate::timing::simulate_timing`] lower internally per call.
#[derive(Debug)]
pub struct LoweredProgram {
    pub(crate) blocks: Vec<LBlock>,
    pub(crate) insts: Vec<LInst>,
    pub(crate) exits: Vec<LExit>,
    pub(crate) slow: Vec<SlowInst>,
    /// Dense index of the entry block.
    pub(crate) entry: u32,
    /// Register-space size; all fast-path register fields are `< nregs`.
    pub(crate) nregs: usize,
    pub(crate) params: u32,
    /// The timing model's eager out-of-range sweep result, computed in the
    /// legacy scan order (blocks ascending; per instruction uses then def;
    /// per exit predicate then return register). `Some` makes
    /// `simulate_timing` fail immediately, exactly as before.
    pub(crate) timing_reject: Option<SimError>,
    /// `BlockId::index() → dense index` (or [`NONE`] for holes).
    pub(crate) block_index: Vec<u32>,
    trip_info: OnceLock<TripInfo>,
}

impl LoweredProgram {
    /// Decode `f` into the dense representation. Total: broken IR lowers to
    /// slow instructions / dangling exits whose errors surface lazily at
    /// execution, never here.
    pub fn lower(f: &Function) -> LoweredProgram {
        let nregs = f.reg_count();
        // The timing model's eager out-of-range sweep, in its exact legacy
        // scan order (blocks ascending; per instruction uses then def; per
        // exit predicate then return register). Run it *before* liveness:
        // the liveness bit-matrix indexes by register number and is only
        // safe — and only needed — on register-clean programs (the timing
        // model rejects dirty ones before simulating, and the functional
        // interpreter never reads `def_live_out`).
        let mut timing_reject = None;
        'sweep: for (id, blk) in f.blocks() {
            for inst in &blk.insts {
                for r in inst.uses().chain(inst.def()) {
                    if r.index() >= nregs as usize {
                        timing_reject = Some(SimError::RegisterOutOfRange {
                            block: id,
                            reg: r.0,
                        });
                        break 'sweep;
                    }
                }
            }
            for e in &blk.exits {
                if let Some(pr) = e.pred {
                    if pr.reg.index() >= nregs as usize {
                        timing_reject = Some(SimError::RegisterOutOfRange {
                            block: id,
                            reg: pr.reg.0,
                        });
                        break 'sweep;
                    }
                }
                if let ExitTarget::Return(Some(Operand::Reg(r))) = e.target {
                    if r.index() >= nregs as usize {
                        timing_reject = Some(SimError::RegisterOutOfRange {
                            block: id,
                            reg: r.0,
                        });
                        break 'sweep;
                    }
                }
            }
        }
        let liveness = if timing_reject.is_none() {
            Some(chf_ir::liveness::Liveness::compute(f))
        } else {
            None
        };

        // Pass 1: dense renumbering.
        let mut block_index = vec![NONE; f.block_slots()];
        let mut ids = Vec::new();
        for id in f.block_ids() {
            block_index[id.index()] = ids.len() as u32;
            ids.push(id);
        }

        let mut p = LoweredProgram {
            blocks: Vec::with_capacity(ids.len()),
            insts: Vec::new(),
            exits: Vec::new(),
            slow: Vec::new(),
            entry: block_index[f.entry.index()],
            nregs: nregs as usize,
            params: f.params,
            timing_reject,
            block_index,
            trip_info: OnceLock::new(),
        };

        // Pass 2: decode blocks in id order (the timing sweep's order).
        for &id in &ids {
            let blk = f.block(id);
            let live_out = liveness.as_ref().map(|lv| lv.live_out(id));
            let inst_start = p.insts.len() as u32;
            let mut stores = 0u16;
            for inst in &blk.insts {
                let def_live_out = match (&live_out, inst.def()) {
                    (Some(lo), Some(d)) => lo.contains(&d),
                    _ => false,
                };
                let kind = if irregular(inst, nregs) {
                    p.slow.push(SlowInst { inst: inst.clone() });
                    LKind::Slow(p.slow.len() as u32 - 1)
                } else {
                    match inst.op {
                        Opcode::Load => LKind::Load,
                        Opcode::Store => LKind::Store,
                        _ => LKind::Alu,
                    }
                };
                let (a_reg, a_imm) = lower_operand(inst.a);
                let (b_reg, b_imm) = lower_operand(inst.b);
                let (pred_reg, pred_if_true) = match inst.pred {
                    Some(pr) => (pr.reg.0, pr.if_true),
                    None => (NONE, true),
                };
                p.insts.push(LInst {
                    op: inst.op,
                    kind,
                    dst: inst.dst.map(|d| d.0).unwrap_or(NONE),
                    a_reg,
                    a_imm,
                    b_reg,
                    b_imm,
                    pred_reg,
                    pred_if_true,
                    latency: inst.op.latency() as u8,
                    def_live_out,
                    stores_before: stores,
                });
                if inst.op == Opcode::Store {
                    stores += 1;
                }
            }
            let exit_start = p.exits.len() as u32;
            for e in &blk.exits {
                let (pred_reg, pred_if_true, pred_oor) = match e.pred {
                    None => (NONE, true, None),
                    Some(pr) if pr.reg.index() >= nregs as usize => {
                        (NONE, pr.if_true, Some(pr.reg.0))
                    }
                    Some(pr) => (pr.reg.0, pr.if_true, None),
                };
                let kind = match e.target {
                    ExitTarget::Block(t) => match p.block_index.get(t.index()) {
                        Some(&d) if d != NONE => LExitKind::Goto(d),
                        _ => LExitKind::Dangling(t),
                    },
                    ExitTarget::Return(None) => LExitKind::RetNone,
                    ExitTarget::Return(Some(Operand::Imm(v))) => LExitKind::RetImm(v),
                    ExitTarget::Return(Some(Operand::Reg(r))) => {
                        if r.index() >= nregs as usize {
                            LExitKind::RetRegOor(r.0)
                        } else {
                            LExitKind::RetReg(r.0)
                        }
                    }
                };
                p.exits.push(LExit {
                    pred_reg,
                    pred_if_true,
                    pred_oor,
                    kind,
                    orig: e.target,
                    hist_tag: crate::predictor::ExitPredictor::history_tag(&e.target),
                });
            }
            let exit_end = p.exits.len() as u32;
            let single_uncond_exit = exit_end == exit_start + 1 && {
                let e = &p.exits[exit_start as usize];
                e.pred_reg == NONE && e.pred_oor.is_none()
            };
            p.blocks.push(LBlock {
                id,
                inst_start,
                inst_end: p.insts.len() as u32,
                exit_start,
                exit_end,
                size: blk.size() as u32,
                fallback: blk.exits.first().map(|e| e.target),
                single_uncond_exit,
            });
        }
        p
    }

    /// Number of (live) blocks.
    pub fn n_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of decoded instructions (excluding exits).
    pub fn n_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of decoded exits.
    pub fn n_exits(&self) -> usize {
        self.exits.len()
    }

    /// Loop structure for trip-count profiling, computed on first use from
    /// the lowered CFG (dominator bitsets over dense blocks — no dependence
    /// on the original [`Function`]).
    pub(crate) fn trip_info(&self) -> &TripInfo {
        self.trip_info.get_or_init(|| TripInfo::compute(self))
    }
}

/// Split an optional operand into `(reg_or_NONE, imm)`; absent operands
/// become immediate 0 (the interpreter substitutes 0 for a missing second
/// operand).
fn lower_operand(o: Option<Operand>) -> (u32, i64) {
    match o {
        Some(Operand::Reg(r)) => (r.0, 0),
        Some(Operand::Imm(v)) => (NONE, v),
        None => (NONE, 0),
    }
}

/// Whether `inst` must take the slow path: any out-of-range register, or a
/// missing *required* operand (`a`/`dst` for value ops, `a`/`b` for stores).
/// A missing `b` on a value op is regular (reads as 0); a present-but-unused
/// operand (e.g. `b` on a `mov`) is regular too — the fast paths read it
/// exactly where the interpreter would.
fn irregular(inst: &Instr, nregs: u32) -> bool {
    if inst.uses().chain(inst.def()).any(|r| r.0 >= nregs) {
        return true;
    }
    match inst.op {
        Opcode::Store => inst.a.is_none() || inst.b.is_none(),
        _ => inst.a.is_none() || inst.dst.is_none(),
    }
}

/// Natural-loop structure over the dense CFG, for trip-count profiling.
///
/// Derived from the lowered `Goto` edges with the textbook definitions the
/// IR-level `LoopForest` uses — back edges `u → v` where `v` dominates `u`,
/// loops merged by header, bodies by reverse reachability from the latches —
/// so the resulting trip histograms are identical. Membership is stored as
/// one bitset row per block (loops are few), and each block records the loop
/// it heads, which is what the execution-time tracker consults per block.
#[derive(Debug)]
pub(crate) struct TripInfo {
    /// Number of loops.
    pub n_loops: usize,
    /// Words per membership row.
    words: usize,
    /// `block × loop` membership bitsets, row-major.
    member: Vec<u64>,
    /// Per block: index of the loop it heads, or [`NONE`].
    pub header_loop: Vec<u32>,
    /// Per loop: original header block id (the histogram key).
    pub headers: Vec<BlockId>,
}

impl TripInfo {
    /// Whether dense block `b` is inside loop `li`.
    #[inline]
    pub fn contains(&self, li: u32, b: usize) -> bool {
        let w = self.member[b * self.words + li as usize / 64];
        w >> (li % 64) & 1 != 0
    }

    fn compute(p: &LoweredProgram) -> TripInfo {
        let n = p.blocks.len();
        let mut succs: Vec<Vec<u32>> = vec![Vec::new(); n];
        let mut preds: Vec<Vec<u32>> = vec![Vec::new(); n];
        for (bi, lb) in p.blocks.iter().enumerate() {
            for e in &p.exits[lb.exit_start as usize..lb.exit_end as usize] {
                if let LExitKind::Goto(t) = e.kind {
                    succs[bi].push(t);
                    preds[t as usize].push(bi as u32);
                }
            }
        }
        // Reachability from the entry.
        let mut reach = vec![false; n];
        reach[p.entry as usize] = true;
        let mut stack = vec![p.entry];
        while let Some(b) = stack.pop() {
            for &s in &succs[b as usize] {
                if !reach[s as usize] {
                    reach[s as usize] = true;
                    stack.push(s);
                }
            }
        }
        // Iterative bitset dominators: dom(entry) = {entry}; for reachable
        // b ≠ entry, dom(b) = {b} ∪ ⋂ dom(reachable preds).
        let bw = n.div_ceil(64).max(1);
        let mut dom = vec![!0u64; n * bw];
        let set_single = |dom: &mut [u64], b: usize| {
            for w in 0..bw {
                dom[b * bw + w] = 0;
            }
            dom[b * bw + b / 64] = 1u64 << (b % 64);
        };
        set_single(&mut dom, p.entry as usize);
        let mut changed = true;
        let mut scratch = vec![0u64; bw];
        while changed {
            changed = false;
            for b in 0..n {
                if !reach[b] || b == p.entry as usize {
                    continue;
                }
                scratch.copy_from_slice(&vec![!0u64; bw]);
                for &q in &preds[b] {
                    if !reach[q as usize] {
                        continue;
                    }
                    for w in 0..bw {
                        scratch[w] &= dom[q as usize * bw + w];
                    }
                }
                scratch[b / 64] |= 1u64 << (b % 64);
                if dom[b * bw..b * bw + bw] != scratch[..] {
                    dom[b * bw..b * bw + bw].copy_from_slice(&scratch);
                    changed = true;
                }
            }
        }
        let dominates = |dom: &[u64], v: usize, u: usize| dom[u * bw + v / 64] >> (v % 64) & 1 != 0;
        // Back edges and loops merged by header (headers ascending).
        let mut header_loop = vec![NONE; n];
        let mut headers: Vec<u32> = Vec::new();
        let mut latches: Vec<Vec<u32>> = Vec::new();
        for u in 0..n {
            if !reach[u] {
                continue;
            }
            for &v in &succs[u] {
                if reach[v as usize] && dominates(&dom, v as usize, u) {
                    let li = if header_loop[v as usize] == NONE {
                        header_loop[v as usize] = headers.len() as u32;
                        headers.push(v);
                        latches.push(Vec::new());
                        headers.len() as u32 - 1
                    } else {
                        header_loop[v as usize]
                    };
                    latches[li as usize].push(u as u32);
                }
            }
        }
        // Loop bodies: reverse walk from each latch, not crossing the header.
        let n_loops = headers.len();
        let words = n_loops.div_ceil(64).max(1);
        let mut member = vec![0u64; n * words];
        for (li, (&h, ls)) in headers.iter().zip(&latches).enumerate() {
            let bit = |member: &mut [u64], b: usize| {
                member[b * words + li / 64] |= 1u64 << (li % 64);
            };
            let in_body =
                |member: &[u64], b: usize| member[b * words + li / 64] >> (li % 64) & 1 != 0;
            bit(&mut member, h as usize);
            let mut stack: Vec<u32> = ls.clone();
            while let Some(b) = stack.pop() {
                if b == h {
                    continue;
                }
                if in_body(&member, b as usize) {
                    continue;
                }
                bit(&mut member, b as usize);
                for &q in &preds[b as usize] {
                    if reach[q as usize] {
                        stack.push(q);
                    }
                }
            }
        }
        TripInfo {
            n_loops,
            words,
            member,
            header_loop,
            headers: headers
                .into_iter()
                .map(|d| p.blocks[d as usize].id)
                .collect(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::ids::Reg;
    use chf_ir::loops::LoopForest;
    use chf_ir::testgen::{generate, GenConfig};

    fn reg(r: Reg) -> Operand {
        Operand::Reg(r)
    }

    #[test]
    fn lowering_is_dense_and_regular_on_wellformed_ir() {
        let f = generate(11, &GenConfig::default());
        let p = LoweredProgram::lower(&f);
        assert_eq!(p.n_blocks(), f.block_count());
        assert!(p.slow.is_empty(), "well-formed IR has no slow instructions");
        assert!(p.timing_reject.is_none());
        // Every register field in bounds.
        for i in &p.insts {
            for r in [i.dst, i.a_reg, i.b_reg, i.pred_reg] {
                assert!(r == NONE || (r as usize) < p.nregs);
            }
        }
        // Sizes match.
        let total: u32 = p.blocks.iter().map(|b| b.size).sum();
        assert_eq!(total as usize, f.static_size());
    }

    #[test]
    fn broken_references_lower_to_slow_and_dangling() {
        let mut fb = FunctionBuilder::new("broken", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.add(reg(Reg(0)), Operand::Imm(1));
        fb.ret(Some(reg(x)));
        let mut f = fb.build().unwrap();
        // Corrupt: out-of-range operand and a dangling exit target.
        let entry = f.entry;
        f.block_mut(entry).insts[0].a = Some(Operand::Reg(Reg(999)));
        f.block_mut(entry)
            .exits
            .push(chf_ir::block::Exit::jump(BlockId(77)));
        let p = LoweredProgram::lower(&f);
        assert_eq!(p.slow.len(), 1);
        assert!(matches!(
            p.timing_reject,
            Some(SimError::RegisterOutOfRange { reg: 999, .. })
        ));
        assert!(p
            .exits
            .iter()
            .any(|e| matches!(e.kind, LExitKind::Dangling(BlockId(77)))));
    }

    /// The lazily-computed dense loop structure must agree with the IR-level
    /// `LoopForest` — headers, membership, and who-heads-what — since trip
    /// histograms feed formation decisions and must not drift.
    #[test]
    fn trip_info_matches_loop_forest() {
        for seed in [1u64, 2, 3, 5, 8, 13, 21, 34] {
            let f = generate(seed, &GenConfig::default());
            let p = LoweredProgram::lower(&f);
            let ti = p.trip_info();
            let forest = LoopForest::of(&f);
            assert_eq!(ti.n_loops, forest.loops.len(), "seed {seed}");
            for l in &forest.loops {
                let hd = p.block_index[l.header.index()] as usize;
                let li = ti.header_loop[hd];
                assert_ne!(li, NONE, "seed {seed}: header {:?} unheaded", l.header);
                assert_eq!(ti.headers[li as usize], l.header);
                for (bi, lb) in p.blocks.iter().enumerate() {
                    assert_eq!(
                        ti.contains(li, bi),
                        l.body.contains(&lb.id),
                        "seed {seed}: membership of {:?} in loop {:?}",
                        lb.id,
                        l.header
                    );
                }
            }
        }
    }
}
