//! Next-block (exit) predictor.
//!
//! TRIPS fetches speculatively down the predicted block chain; a wrong
//! next-block prediction flushes the pipeline (paper §5, "Branch
//! predictability"). We model a local/global hybrid: each `(block, global
//! exit history)` pair maps to the last exit taken from that block with a
//! saturating confidence counter, approximating the prototype's exit
//! predictor well enough to reproduce the paper's predictability effects
//! (e.g., parser_1's 11× misprediction-rate swing between heuristics).

use chf_ir::block::ExitTarget;
use chf_ir::fxhash::FxHashMap;
use chf_ir::ids::BlockId;
use std::collections::hash_map::DefaultHasher;
use std::hash::{Hash, Hasher};

/// Which prediction scheme to model.
#[derive(Copy, Clone, PartialEq, Eq, Debug, Default)]
pub enum PredictorKind {
    /// Per-block entries indexed by global target history (default).
    #[default]
    Hybrid,
    /// Per-block entries only, no history (a bimodal predictor).
    Bimodal,
    /// Always the static prediction (the compiler's most-likely-first exit
    /// ordering); models a machine without dynamic next-block prediction.
    Static,
}

/// Predictor sizing/behaviour knobs.
#[derive(Clone, Debug)]
pub struct PredictorConfig {
    /// The prediction scheme.
    pub kind: PredictorKind,
    /// Number of global-history bits (each exit event contributes 2 bits).
    pub history_bits: u32,
    /// Maximum confidence of the per-entry saturating counter.
    pub max_confidence: u8,
}

impl Default for PredictorConfig {
    fn default() -> Self {
        PredictorConfig {
            kind: PredictorKind::Hybrid,
            history_bits: 8,
            max_confidence: 3,
        }
    }
}

impl PredictorConfig {
    /// A configuration for the given scheme with default sizing.
    pub fn of_kind(kind: PredictorKind) -> Self {
        PredictorConfig {
            kind,
            ..PredictorConfig::default()
        }
    }
}

#[derive(Clone, Debug)]
struct Entry {
    target: ExitTarget,
    confidence: u8,
}

/// Storage behind the `(block, history)` → [`Entry`] mapping.
///
/// Both variants implement the *same exact map*: an entry exists for a key
/// iff it was trained, so the prediction/misprediction trajectory — and
/// with it every golden cycle count — is identical regardless of which
/// variant backs a run. The direct variant exists purely because the
/// timing core probes the table once per dynamic block, and two array
/// indexes beat hashing a 12-byte key.
#[derive(Clone, Debug)]
enum Table {
    /// `history_bits` small enough that each block's entries fit a dense
    /// array indexed by the raw (already-masked) history value. Block rows
    /// are allocated lazily on first training so a fresh predictor costs
    /// nothing for untouched blocks.
    Direct {
        blocks: Vec<Option<Box<[Option<Entry>]>>>,
        row_len: usize,
    },
    /// Wider histories fall back to the general hash map.
    Map(FxHashMap<(BlockId, u64), Entry>),
}

/// Widest global history (bits) served by the dense [`Table::Direct`]
/// rows; 2^8 entries per touched block is a few KiB.
const DIRECT_BITS_MAX: u32 = 8;

/// Predicts which exit a block will take next.
#[derive(Clone, Debug)]
pub struct ExitPredictor {
    kind: PredictorKind,
    table: Table,
    history: u64,
    history_mask: u64,
    max_confidence: u8,
    predictions: u64,
    mispredictions: u64,
}

impl ExitPredictor {
    /// Create a predictor with the given configuration.
    pub fn new(config: &PredictorConfig) -> Self {
        let bits = match config.kind {
            PredictorKind::Hybrid => config.history_bits.min(62),
            PredictorKind::Bimodal | PredictorKind::Static => 0,
        };
        let table = if bits <= DIRECT_BITS_MAX {
            Table::Direct {
                blocks: Vec::new(),
                row_len: 1usize << bits,
            }
        } else {
            // Preallocated so the steady-state table (typically a few
            // hundred `(block, history)` pairs) never rehashes mid-run.
            Table::Map(FxHashMap::with_capacity_and_hasher(
                1024,
                Default::default(),
            ))
        };
        ExitPredictor {
            kind: config.kind,
            table,
            history: 0,
            history_mask: (1u64 << bits) - 1,
            max_confidence: config.max_confidence,
            predictions: 0,
            mispredictions: 0,
        }
    }

    /// Predict the next-block *target* `block` will branch to (TRIPS
    /// predicts the next block address, not an exit slot — several exits to
    /// the same successor are one prediction). Untrained entries return
    /// `None`; callers treat the first exit's target as the static
    /// prediction.
    pub fn predict(&self, block: BlockId) -> Option<ExitTarget> {
        if self.kind == PredictorKind::Static {
            return None;
        }
        match &self.table {
            Table::Direct { blocks, .. } => blocks
                .get(block.0 as usize)
                .and_then(|row| row.as_ref())
                .and_then(|row| row[self.history as usize].as_ref())
                .map(|e| e.target),
            Table::Map(m) => m.get(&(block, self.history)).map(|e| e.target),
        }
    }

    /// The 2-bit global-history contribution of a taken target.
    ///
    /// The hash function is load-bearing: history values key every table
    /// entry, so changing it changes the misprediction trajectory (and
    /// with it the golden cycle counts). It is therefore exposed so the
    /// lowered program representation can cache the tag per exit and the
    /// hot path can skip the hasher ([`Self::update_tagged`]).
    pub fn history_tag(target: &ExitTarget) -> u8 {
        let mut h = DefaultHasher::new();
        target.hash(&mut h);
        (h.finish() & 0b11) as u8
    }

    /// Record the actual target taken and update state, given the static
    /// fallback prediction for untrained entries. Returns whether the
    /// prediction was correct.
    pub fn update(&mut self, block: BlockId, fallback: ExitTarget, actual: ExitTarget) -> bool {
        let tag = Self::history_tag(&actual);
        self.update_tagged(block, fallback, actual, tag)
    }

    /// [`Self::update`] with the target's [`Self::history_tag`]
    /// precomputed. One table probe serves both the prediction read and
    /// the training write; the outcome is identical to `update`.
    pub fn update_tagged(
        &mut self,
        block: BlockId,
        fallback: ExitTarget,
        actual: ExitTarget,
        tag: u8,
    ) -> bool {
        let is_static = self.kind == PredictorKind::Static;
        let max_conf = self.max_confidence;
        // Train an occupied slot; returns whether the dynamic prediction
        // (the entry's target) was correct. Identical under both table
        // variants.
        let train = |entry: &mut Entry| {
            let predicted = if is_static { fallback } else { entry.target };
            let correct = predicted == actual;
            if entry.target == actual {
                entry.confidence = (entry.confidence + 1).min(max_conf);
            } else if entry.confidence > 0 {
                entry.confidence -= 1;
            } else {
                entry.target = actual;
            }
            correct
        };
        // A fresh entry trains on `actual` immediately (insert at
        // confidence 0, then the `target == actual` bump).
        let fresh = || Entry {
            target: actual,
            confidence: 1u8.min(max_conf),
        };
        let correct = match &mut self.table {
            Table::Direct { blocks, row_len } => {
                let bi = block.0 as usize;
                if bi >= blocks.len() {
                    blocks.resize_with(bi + 1, || None);
                }
                let row = blocks[bi].get_or_insert_with(|| vec![None; *row_len].into_boxed_slice());
                // `history` is kept masked, so it always indexes in range.
                match &mut row[self.history as usize] {
                    Some(entry) => train(entry),
                    slot @ None => {
                        *slot = Some(fresh());
                        fallback == actual
                    }
                }
            }
            Table::Map(m) => {
                use std::collections::hash_map::Entry as MapEntry;
                match m.entry((block, self.history)) {
                    MapEntry::Occupied(mut o) => train(o.get_mut()),
                    MapEntry::Vacant(v) => {
                        v.insert(fresh());
                        fallback == actual
                    }
                }
            }
        };
        self.predictions += 1;
        if !correct {
            self.mispredictions += 1;
        }
        self.history = ((self.history << 2) ^ u64::from(tag)) & self.history_mask;
        correct
    }

    /// Total predictions made.
    pub fn predictions(&self) -> u64 {
        self.predictions
    }

    /// Total mispredictions.
    pub fn mispredictions(&self) -> u64 {
        self.mispredictions
    }

    /// Misprediction rate in `[0, 1]` (0 when nothing was predicted).
    pub fn misprediction_rate(&self) -> f64 {
        if self.predictions == 0 {
            0.0
        } else {
            self.mispredictions as f64 / self.predictions as f64
        }
    }

    /// Deterministic hash of the *predictive* state: the trained table and
    /// the global history (not the prediction counters). Two predictors
    /// with equal hashes make the same predictions forever after, so the
    /// sharded simulator uses this to compare predictor state at shard
    /// boundaries. Entries are visited in a canonical order (dense rows by
    /// index; map entries sorted by key), so the hash is independent of
    /// table variant internals and insertion order.
    pub fn state_hash(&self) -> u64 {
        let mut h = DefaultHasher::new();
        self.history.hash(&mut h);
        let entry = |h: &mut DefaultHasher, bi: u64, key: u64, e: &Entry| {
            bi.hash(h);
            key.hash(h);
            e.target.hash(h);
            e.confidence.hash(h);
        };
        match &self.table {
            Table::Direct { blocks, .. } => {
                for (bi, row) in blocks.iter().enumerate() {
                    let Some(row) = row else { continue };
                    for (key, slot) in row.iter().enumerate() {
                        if let Some(e) = slot {
                            entry(&mut h, bi as u64, key as u64, e);
                        }
                    }
                }
            }
            Table::Map(m) => {
                let mut keys: Vec<(BlockId, u64)> = m.keys().copied().collect();
                keys.sort_unstable_by_key(|(b, k)| (b.0, *k));
                for (b, k) in keys {
                    entry(&mut h, u64::from(b.0), k, &m[&(b, k)]);
                }
            }
        }
        h.finish()
    }

    /// Approximate heap footprint of the trained table, for checkpoint
    /// accounting.
    pub fn state_bytes(&self) -> usize {
        let entry_size = std::mem::size_of::<Option<Entry>>();
        match &self.table {
            Table::Direct { blocks, row_len } => {
                blocks.len() * std::mem::size_of::<Option<Box<[Option<Entry>]>>>()
                    + blocks.iter().flatten().count() * row_len * entry_size
            }
            Table::Map(m) => m.len() * (std::mem::size_of::<(BlockId, u64)>() + entry_size),
        }
    }

    /// Fault-injection hook: flip one trained entry, chosen by `seed`, to
    /// a bogus target with saturated confidence (so retraining is slow and
    /// the corruption stays observable). Returns `false` when the table
    /// has no trained entries to corrupt. Used by the chaos harness to
    /// verify the sharded stitcher detects checkpoint corruption.
    pub fn corrupt_entry(&mut self, seed: u64) -> bool {
        let bogus = ExitTarget::Block(BlockId(u32::MAX - 1));
        let max_conf = self.max_confidence;
        match &mut self.table {
            Table::Direct { blocks, .. } => {
                let mut trained: Vec<&mut Entry> = blocks
                    .iter_mut()
                    .flatten()
                    .flat_map(|row| row.iter_mut().flatten())
                    .collect();
                if trained.is_empty() {
                    return false;
                }
                let pick = (seed % trained.len() as u64) as usize;
                *trained[pick] = Entry {
                    target: bogus,
                    confidence: max_conf,
                };
                true
            }
            Table::Map(m) => {
                if m.is_empty() {
                    return false;
                }
                let mut keys: Vec<(BlockId, u64)> = m.keys().copied().collect();
                keys.sort_unstable_by_key(|(b, k)| (b.0, *k));
                let pick = keys[(seed % keys.len() as u64) as usize];
                m.insert(
                    pick,
                    Entry {
                        target: bogus,
                        confidence: max_conf,
                    },
                );
                true
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn b(i: u32) -> BlockId {
        BlockId(i)
    }

    fn t(i: u32) -> ExitTarget {
        ExitTarget::Block(BlockId(i))
    }

    #[test]
    fn learns_stable_pattern() {
        let mut p = ExitPredictor::new(&PredictorConfig::default());
        // Warm up: block 0 always branches to block 11.
        for _ in 0..10 {
            p.update(b(0), t(10), t(11));
        }
        assert_eq!(p.predict(b(0)), Some(t(11)));
        assert!(p.update(b(0), t(10), t(11)));
    }

    #[test]
    fn single_target_blocks_always_predicted() {
        let mut p = ExitPredictor::new(&PredictorConfig::default());
        for _ in 0..100 {
            p.update(b(3), t(4), t(4));
        }
        assert_eq!(p.mispredictions(), 0);
        assert_eq!(p.misprediction_rate(), 0.0);
    }

    #[test]
    fn same_target_exits_cannot_mispredict() {
        // Exits 0 and 1 both go to block 5: the next-block prediction is
        // identical regardless of which fires.
        let mut p = ExitPredictor::new(&PredictorConfig::default());
        for _ in 0..50 {
            assert!(p.update(b(2), t(5), t(5)));
        }
        assert_eq!(p.mispredictions(), 0);
    }

    #[test]
    fn history_disambiguates_alternation() {
        // Target pattern A,B,A,B,... becomes predictable once trained.
        let mut p = ExitPredictor::new(&PredictorConfig::default());
        let mut late_miss = 0;
        for i in 0..400 {
            let actual = t(10 + (i % 2));
            let correct = p.update(b(7), t(10), actual);
            if i >= 200 && !correct {
                late_miss += 1;
            }
        }
        assert_eq!(late_miss, 0, "alternating pattern should be learned");
    }

    #[test]
    fn random_pattern_mispredicts_often() {
        // A pseudo-random target sequence should hurt.
        let mut p = ExitPredictor::new(&PredictorConfig::default());
        let mut x = 12345u64;
        for _ in 0..1000 {
            x = x
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            let actual = t(10 + ((x >> 33) % 2) as u32);
            p.update(b(9), t(10), actual);
        }
        assert!(p.misprediction_rate() > 0.2);
    }

    #[test]
    fn static_predictor_never_learns() {
        let mut p = ExitPredictor::new(&PredictorConfig::of_kind(PredictorKind::Static));
        // Block always branches to 5, but the static fallback says 4: every
        // prediction misses, forever.
        for _ in 0..20 {
            p.update(b(1), t(4), t(5));
        }
        assert_eq!(p.mispredictions(), 20);
        assert_eq!(p.predict(b(1)), None);
    }

    #[test]
    fn bimodal_learns_but_cannot_track_alternation() {
        let mut p = ExitPredictor::new(&PredictorConfig::of_kind(PredictorKind::Bimodal));
        let mut late_miss = 0;
        for i in 0..200 {
            let actual = t(10 + (i % 2));
            let correct = p.update(b(7), t(10), actual);
            if i >= 100 && !correct {
                late_miss += 1;
            }
        }
        assert!(late_miss > 0, "bimodal should not learn alternation");
    }

    #[test]
    fn hysteresis_resists_single_anomaly() {
        // No history bits: a single table entry per block, so the anomaly
        // hits the trained entry directly.
        let mut p = ExitPredictor::new(&PredictorConfig {
            kind: PredictorKind::Bimodal,
            history_bits: 0,
            max_confidence: 3,
        });
        for _ in 0..8 {
            p.update(b(1), t(2), t(2));
        }
        // One anomaly under the same history key must not flip the entry.
        p.update(b(1), t(2), t(3));
        assert_eq!(p.predict(b(1)), Some(t(2)));
    }
}
