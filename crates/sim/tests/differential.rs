//! Differential oracle for the event-driven rewrite: the new engines must
//! agree with the retained legacy cores *exactly* — cycle-for-cycle on the
//! timing side, bit-for-bit on the functional side — over generated
//! programs, all memory orderings, corrupted IR, and fuel exhaustion.
//!
//! This suite is the contract that lets `legacy-sim` be dropped after one
//! release: any divergence here is a bug in the rewrite, never a "new
//! behaviour".
#![cfg(feature = "legacy-sim")]

use chf_ir::function::Function;
use chf_ir::ids::{BlockId, Reg};
use chf_ir::instr::Operand;
use chf_ir::testgen::{generate, GenConfig};
use chf_sim::functional::{run, RunConfig, SimError};
use chf_sim::timing::{simulate_timing, MemoryOrdering, TimingConfig};
use chf_sim::timing_legacy::{run_legacy, simulate_timing_legacy};
use proptest::prelude::*;

const ORDERINGS: [MemoryOrdering; 3] = [
    MemoryOrdering::Exact,
    MemoryOrdering::Conservative,
    MemoryOrdering::Oracle,
];

/// Assert every observable field of two timing results is identical.
fn assert_timing_eq(
    f: &Function,
    ordering: MemoryOrdering,
    ev: &chf_sim::timing::TimingResult,
    lg: &chf_sim::timing::TimingResult,
) {
    let ctx = format!("fn {:?}, ordering {ordering:?}", f.name);
    assert_eq!(ev.cycles, lg.cycles, "cycles diverged: {ctx}");
    assert_eq!(ev.blocks_executed, lg.blocks_executed, "blocks: {ctx}");
    assert_eq!(ev.predictions, lg.predictions, "predictions: {ctx}");
    assert_eq!(
        ev.mispredictions, lg.mispredictions,
        "mispredictions: {ctx}"
    );
    assert_eq!(ev.insts_executed, lg.insts_executed, "executed: {ctx}");
    assert_eq!(ev.insts_nullified, lg.insts_nullified, "nullified: {ctx}");
    assert_eq!(ev.insts_fetched, lg.insts_fetched, "fetched: {ctx}");
    assert_eq!(ev.ret, lg.ret, "ret: {ctx}");
    assert_eq!(ev.digest(), lg.digest(), "memory digest: {ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Event-driven timing is cycle-identical to the legacy core on every
    /// generated program, under all three memory-ordering models.
    #[test]
    fn timing_event_matches_legacy(
        seed in any::<u64>(),
        a in -100i64..100,
        b in -100i64..100,
    ) {
        let f = generate(seed, &GenConfig::default());
        for ordering in ORDERINGS {
            let cfg = TimingConfig { memory_ordering: ordering, ..TimingConfig::trips() };
            let ev = simulate_timing(&f, &[a, b], &[], &cfg);
            let lg = simulate_timing_legacy(&f, &[a, b], &[], &cfg);
            match (ev, lg) {
                (Ok(ev), Ok(lg)) => assert_timing_eq(&f, ordering, &ev, &lg),
                (ev, lg) => prop_assert_eq!(ev.err(), lg.err()),
            }
        }
    }

    /// The lowered functional interpreter reproduces the legacy run loop
    /// bit-for-bit, including the full execution profile.
    #[test]
    fn functional_event_matches_legacy(
        seed in any::<u64>(),
        a in -100i64..100,
        b in -100i64..100,
    ) {
        let cfg = RunConfig::default();
        let f = generate(seed, &GenConfig::default());
        let ev = run(&f, &[a, b], &[], &cfg).unwrap();
        let lg = run_legacy(&f, &[a, b], &[], &cfg).unwrap();
        prop_assert_eq!(ev.digest(), lg.digest());
        prop_assert_eq!(ev.blocks_executed, lg.blocks_executed);
        prop_assert_eq!(ev.insts_executed, lg.insts_executed);
        prop_assert_eq!(ev.insts_fetched, lg.insts_fetched);
        // ProfileData has no PartialEq; compare each map.
        prop_assert_eq!(&ev.profile.block_counts, &lg.profile.block_counts);
        prop_assert_eq!(&ev.profile.exit_counts, &lg.profile.exit_counts);
        prop_assert_eq!(&ev.profile.trip_histograms, &lg.profile.trip_histograms);
    }

    /// Fuel exhaustion carries the same payload through both engines.
    #[test]
    fn fuel_exhaustion_agrees(seed in any::<u64>()) {
        let full = {
            let f = generate(seed, &GenConfig::default());
            run(&f, &[3, 7], &[], &RunConfig::default()).unwrap()
        };
        if full.blocks_executed < 4 {
            return Ok(());
        }
        let budget = full.blocks_executed / 2;
        let f = generate(seed, &GenConfig::default());
        let rc = RunConfig { max_blocks: budget, ..RunConfig::default() };
        let tc = TimingConfig { max_blocks: budget, ..TimingConfig::trips() };
        prop_assert_eq!(
            run(&f, &[3, 7], &[], &rc).err(),
            run_legacy(&f, &[3, 7], &[], &rc).err()
        );
        prop_assert_eq!(
            simulate_timing(&f, &[3, 7], &[], &tc).err(),
            simulate_timing_legacy(&f, &[3, 7], &[], &tc).err()
        );
    }
}

/// A small program with a data-dependent loop, for the corruption cases:
/// `i = r0; do { mem[i] = i; i -= 1 } while i > 0; return r0`.
fn looped() -> Function {
    use chf_ir::builder::FunctionBuilder;
    let mut fb = FunctionBuilder::new("diff-loop", 2);
    let entry = fb.create_block();
    let body = fb.create_block();
    let done = fb.create_block();
    fb.switch_to(entry);
    let i = fb.add(Operand::Reg(Reg(0)), Operand::Imm(0));
    fb.jump(body);
    fb.switch_to(body);
    fb.store(Operand::Reg(i), Operand::Reg(i));
    let t = fb.sub(Operand::Reg(i), Operand::Imm(1));
    fb.mov_to(i, Operand::Reg(t));
    let z = fb.cmp_le(Operand::Reg(i), Operand::Imm(0));
    fb.branch(z, done, body);
    fb.switch_to(done);
    fb.ret(Some(Operand::Reg(Reg(0))));
    fb.build().unwrap()
}

/// Corrupted programs (the chaos suite's bread and butter) must surface the
/// *same* lazy error, at the same point, from old and new engines.
#[test]
fn corrupted_ir_errors_agree() {
    type Corrupt = fn(&mut Function);
    let cases: [(&str, Corrupt); 4] = [
        ("oor-operand", |f| {
            let e = f.entry;
            f.block_mut(e).insts[0].a = Some(Operand::Reg(Reg(999)));
        }),
        ("missing-operand", |f| {
            let e = f.entry;
            f.block_mut(e).insts[0].a = None;
        }),
        ("dangling-exit", |f| {
            let e = f.entry;
            f.block_mut(e).exits.clear();
            f.block_mut(e)
                .exits
                .push(chf_ir::block::Exit::jump(BlockId(77)));
        }),
        ("oor-return", |f| {
            let e = f.entry;
            f.block_mut(e).exits.clear();
            f.block_mut(e)
                .exits
                .push(chf_ir::block::Exit::ret(Some(Operand::Reg(Reg(4444)))));
        }),
    ];
    for (name, corrupt) in cases {
        let mut f = looped();
        corrupt(&mut f);
        // Trip-count collection is off here: the legacy engine runs
        // `LoopForest::of` eagerly, which is not total over dangling exits
        // (it panics), whereas the lowered `TripInfo` tolerates them. The
        // comparison below is about *execution* semantics.
        let rc = RunConfig {
            collect_trip_counts: false,
            ..RunConfig::default()
        };
        let tc = TimingConfig::trips();
        for args in [[0i64, 0], [5, 0]] {
            let ev_f = run(&f, &args, &[], &rc);
            let lg_f = run_legacy(&f, &args, &[], &rc);
            assert_eq!(
                ev_f.as_ref().err(),
                lg_f.as_ref().err(),
                "functional error mismatch: {name} args {args:?}"
            );
            if let (Ok(ev), Ok(lg)) = (&ev_f, &lg_f) {
                assert_eq!(ev.digest(), lg.digest(), "{name} args {args:?}");
            }
            let ev_t = simulate_timing(&f, &args, &[], &tc);
            let lg_t = simulate_timing_legacy(&f, &args, &[], &tc);
            match (ev_t, lg_t) {
                (Ok(ev), Ok(lg)) => assert_timing_eq(&f, tc.memory_ordering, &ev, &lg),
                (ev, lg) => assert_eq!(
                    ev.err(),
                    lg.err(),
                    "timing error mismatch: {name} args {args:?}"
                ),
            }
        }
    }
}

/// Errors discard all state: only the error value is observable, and it
/// matches across engines for a program that runs out of fuel mid-loop.
#[test]
fn out_of_fuel_payload_matches() {
    let f = looped();
    let rc = RunConfig {
        max_blocks: 3,
        ..RunConfig::default()
    };
    let tc = TimingConfig {
        max_blocks: 3,
        ..TimingConfig::trips()
    };
    let ev = run(&f, &[100, 0], &[], &rc).unwrap_err();
    let lg = run_legacy(&f, &[100, 0], &[], &rc).unwrap_err();
    assert_eq!(ev, lg);
    assert!(matches!(ev, SimError::OutOfFuel { executed: 3 }));
    assert_eq!(
        simulate_timing(&f, &[100, 0], &[], &tc).unwrap_err(),
        simulate_timing_legacy(&f, &[100, 0], &[], &tc).unwrap_err()
    );
}
