//! Differential suite for the sharded whole-program simulator: a stitched
//! sharded run must reproduce the sequential timing run *exactly* — same
//! cycles, same counters, same return value, same memory digest — on every
//! generated program, at every shard size, under every memory ordering.
//! Corrupted checkpoints must be detected and degrade to the sequential
//! fallback, never to a silently wrong result.

use chf_ir::builder::FunctionBuilder;
use chf_ir::function::Function;
use chf_ir::ids::Reg;
use chf_ir::instr::Operand;
use chf_ir::testgen::{generate, GenConfig};
use chf_sim::timing::{simulate_timing_lowered, MemoryOrdering, TimingConfig, TimingResult};
use chf_sim::{
    corrupt_checkpoint, plan_shards, simulate_shard, simulate_timing_sharded_seq, stitch,
    CheckpointFault, LoweredProgram, ShardConfig, StitchedTiming,
};
use proptest::prelude::*;

const ORDERINGS: [MemoryOrdering; 3] = [
    MemoryOrdering::Exact,
    MemoryOrdering::Conservative,
    MemoryOrdering::Oracle,
];

const SHARDINGS: [ShardConfig; 2] = [
    ShardConfig {
        shard_blocks: 8,
        warmup_blocks: 3,
    },
    ShardConfig {
        shard_blocks: 24,
        warmup_blocks: 8,
    },
];

fn assert_stitched_eq(ctx: &str, sh: &StitchedTiming, seq: &TimingResult) {
    let ev = &sh.result;
    assert_eq!(ev.cycles, seq.cycles, "cycles diverged: {ctx}");
    assert_eq!(ev.blocks_executed, seq.blocks_executed, "blocks: {ctx}");
    assert_eq!(ev.predictions, seq.predictions, "predictions: {ctx}");
    assert_eq!(
        ev.mispredictions, seq.mispredictions,
        "mispredictions: {ctx}"
    );
    assert_eq!(ev.insts_executed, seq.insts_executed, "executed: {ctx}");
    assert_eq!(ev.insts_nullified, seq.insts_nullified, "nullified: {ctx}");
    assert_eq!(ev.insts_fetched, seq.insts_fetched, "fetched: {ctx}");
    assert_eq!(ev.ret, seq.ret, "ret: {ctx}");
    assert_eq!(ev.digest(), seq.digest(), "memory digest: {ctx}");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Sharded simulation is observably identical to the sequential run on
    /// every generated program, for every ordering and shard geometry —
    /// whether the stitch validates or the run degrades to the fallback.
    #[test]
    fn sharded_matches_sequential(
        seed in any::<u64>(),
        a in -100i64..100,
        b in -100i64..100,
    ) {
        let f = generate(seed, &GenConfig::default());
        let p = LoweredProgram::lower(&f);
        for ordering in ORDERINGS {
            let cfg = TimingConfig { memory_ordering: ordering, ..TimingConfig::trips() };
            let seq = simulate_timing_lowered(&p, &[a, b], &[], &cfg);
            for scfg in &SHARDINGS {
                let sh = simulate_timing_sharded_seq(&p, &[a, b], &[], &cfg, scfg);
                match (&sh, &seq) {
                    (Ok(sh), Ok(seq)) => {
                        let ctx = format!(
                            "fn {:?}, ordering {ordering:?}, S={} W={}",
                            f.name, scfg.shard_blocks, scfg.warmup_blocks
                        );
                        assert_stitched_eq(&ctx, sh, seq);
                    }
                    (sh, seq) => prop_assert_eq!(
                        sh.as_ref().err(),
                        seq.as_ref().err(),
                        "error mismatch: fn {:?}, ordering {:?}",
                        f.name,
                        ordering
                    ),
                }
            }
        }
    }
}

/// `i = r0; do { mem[i] = i; i -= 1 } while i > 0; return r0` — a long
/// data-dependent loop whose dynamic block count scales with `r0`, for
/// deterministic multi-shard and corruption cases.
fn looped() -> Function {
    let mut fb = FunctionBuilder::new("shard-loop", 2);
    let entry = fb.create_block();
    let body = fb.create_block();
    let done = fb.create_block();
    fb.switch_to(entry);
    let i = fb.add(Operand::Reg(Reg(0)), Operand::Imm(0));
    fb.jump(body);
    fb.switch_to(body);
    fb.store(Operand::Reg(i), Operand::Reg(i));
    let t = fb.sub(Operand::Reg(i), Operand::Imm(1));
    fb.mov_to(i, Operand::Reg(t));
    let z = fb.cmp_le(Operand::Reg(i), Operand::Imm(0));
    fb.branch(z, done, body);
    fb.switch_to(done);
    fb.ret(Some(Operand::Reg(Reg(0))));
    fb.build().unwrap()
}

/// On a long steady-state loop the warm-up actually converges: the stitch
/// validates (no fallback), the run splits into many shards, and the
/// bounded per-shard budget selects 32-bit timestamps.
#[test]
fn convergent_stitch_no_fallback() {
    let f = looped();
    let p = LoweredProgram::lower(&f);
    let cfg = TimingConfig::trips();
    // The loop's fetch clock takes ~32 blocks to become window-bound
    // (8-block window × 4-cycle commit spacing), so a 48-block warm-up
    // leaves margin.
    let scfg = ShardConfig {
        shard_blocks: 128,
        warmup_blocks: 48,
    };
    let seq = simulate_timing_lowered(&p, &[1000, 0], &[], &cfg).unwrap();
    let sh = simulate_timing_sharded_seq(&p, &[1000, 0], &[], &cfg, &scfg).unwrap();
    assert_eq!(
        sh.fallback, None,
        "steady-state loop must stitch without fallback"
    );
    assert!(sh.shards > 5, "expected many shards, got {}", sh.shards);
    assert_eq!(
        sh.narrow_shards, sh.shards,
        "small per-shard budgets must select 32-bit timestamps"
    );
    assert!(sh.checkpoint_bytes > 0);
    assert_stitched_eq("convergent loop", &sh, &seq);
}

/// Each checkpoint fault kind is detected by the stitch validators and the
/// run degrades to the sequential result — equality is preserved and the
/// fallback reason is surfaced.
#[test]
fn corrupted_checkpoints_detected() {
    let f = looped();
    let p = LoweredProgram::lower(&f);
    let cfg = TimingConfig::trips();
    let scfg = ShardConfig {
        shard_blocks: 16,
        warmup_blocks: 4,
    };
    // A pre-initialized cell keeps shard 0's memory image non-empty so
    // the MemoryCell fault has something to corrupt at the start state.
    let mem0: &[(i64, i64)] = &[(200, 7)];
    let seq = simulate_timing_lowered(&p, &[100, 0], mem0, &cfg).unwrap();
    let faults: [(&str, CheckpointFault); 3] = [
        (
            "register",
            CheckpointFault::RegisterSlot {
                reg: 1,
                xor: 0x40_0000,
            },
        ),
        ("memory", CheckpointFault::MemoryCell { idx: 3, xor: -1 }),
        ("predictor", CheckpointFault::PredictorEntry { seed: 7 }),
    ];
    // Corrupt a middle checkpoint (covered by the previous shard's
    // architectural probe) and shard 0's own start state (covered only by
    // the replay expectations) for the value faults.
    for shard_idx in [0usize, 2] {
        for (name, fault) in &faults {
            if *name == "predictor" && shard_idx == 0 {
                // Shard 0's checkpoint holds the untrained initial
                // predictor; nothing to corrupt.
                continue;
            }
            let mut plan = plan_shards(&p, &[100, 0], mem0, &cfg, &scfg).unwrap();
            assert!(plan.n_shards() > 3, "need a multi-shard plan");
            assert!(
                corrupt_checkpoint(&mut plan, shard_idx, fault),
                "fault {name} on shard {shard_idx} found nothing to corrupt"
            );
            let runs = (0..plan.n_shards())
                .map(|k| simulate_shard(&p, &cfg, &plan, k))
                .collect();
            let sh = stitch(&p, &[100, 0], mem0, &cfg, &plan, runs).unwrap();
            assert!(
                sh.fallback.is_some(),
                "fault {name} on shard {shard_idx} went undetected"
            );
            let ctx = format!("fault {name} on shard {shard_idx}");
            assert_stitched_eq(&ctx, &sh, &seq);
        }
    }
}

/// A zero XOR mask and an out-of-range shard are no-ops, not corruptions.
#[test]
fn corruption_noops_report_false() {
    let f = looped();
    let p = LoweredProgram::lower(&f);
    let cfg = TimingConfig::trips();
    let scfg = ShardConfig {
        shard_blocks: 16,
        warmup_blocks: 4,
    };
    let mut plan = plan_shards(&p, &[100, 0], &[], &cfg, &scfg).unwrap();
    assert!(!corrupt_checkpoint(
        &mut plan,
        1,
        &CheckpointFault::RegisterSlot { reg: 0, xor: 0 }
    ));
    assert!(!corrupt_checkpoint(
        &mut plan,
        usize::MAX,
        &CheckpointFault::MemoryCell { idx: 0, xor: 1 }
    ));
}

/// Fuel exhaustion surfaces the same error through the sharded entry point
/// as through the sequential engine.
#[test]
fn fuel_exhaustion_matches_sequential() {
    let f = looped();
    let p = LoweredProgram::lower(&f);
    let cfg = TimingConfig {
        max_blocks: 11,
        ..TimingConfig::trips()
    };
    let scfg = ShardConfig {
        shard_blocks: 4,
        warmup_blocks: 2,
    };
    let seq = simulate_timing_lowered(&p, &[100, 0], &[], &cfg).unwrap_err();
    let sh = simulate_timing_sharded_seq(&p, &[100, 0], &[], &cfg, &scfg).unwrap_err();
    assert_eq!(sh, seq);
}
