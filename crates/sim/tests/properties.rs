//! Property-based tests over the simulators: the timing model must agree
//! with the functional model on all observable behaviour, and its cycle
//! accounting must satisfy basic sanity bounds.

use chf_ir::testgen::{generate, GenConfig};
use chf_sim::functional::{run, RunConfig};
use chf_sim::timing::{simulate_timing, TimingConfig};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The timing simulator computes exactly what the functional simulator
    /// computes: same return value, same memory, same dynamic counts.
    #[test]
    fn timing_matches_functional(
        seed in any::<u64>(),
        a in -100i64..100,
        b in -100i64..100,
    ) {
        let f = generate(seed, &GenConfig::default());
        let fr = run(&f, &[a, b], &[], &RunConfig::default()).unwrap();
        let tr = simulate_timing(&f, &[a, b], &[], &TimingConfig::trips()).unwrap();
        prop_assert_eq!(fr.digest(), tr.digest());
        prop_assert_eq!(fr.blocks_executed, tr.blocks_executed);
        prop_assert_eq!(fr.insts_executed, tr.insts_executed);
        prop_assert_eq!(fr.insts_fetched, tr.insts_fetched);
    }

    /// Cycle counts are bounded below by block-dispatch serialization and
    /// above by fully serial execution.
    #[test]
    fn cycle_bounds(seed in any::<u64>(), a in -20i64..20) {
        let cfg = TimingConfig::trips();
        let f = generate(seed, &GenConfig::default());
        let t = simulate_timing(&f, &[a, 3], &[], &cfg).unwrap();
        // Lower bound: each block costs at least the commit spacing.
        prop_assert!(t.cycles >= t.blocks_executed * cfg.commit_overhead);
        // Upper bound: worse than fully serial with max latency everywhere
        // is impossible (12 = div latency, +fetch, +overheads, +flushes).
        let worst = t.insts_executed * 14
            + t.blocks_executed * (cfg.block_overhead + 10)
            + t.mispredictions * cfg.mispredict_penalty
            + 100;
        prop_assert!(
            t.cycles <= worst,
            "cycles {} above the serial bound {}",
            t.cycles,
            worst
        );
    }

    /// Timing simulation is deterministic.
    #[test]
    fn timing_is_deterministic(seed in any::<u64>(), a in -50i64..50) {
        let f = generate(seed, &GenConfig::default());
        let t0 = simulate_timing(&f, &[a, 5], &[], &TimingConfig::trips()).unwrap();
        let t1 = simulate_timing(&f, &[a, 5], &[], &TimingConfig::trips()).unwrap();
        prop_assert_eq!(t0.cycles, t1.cycles);
        prop_assert_eq!(t0.mispredictions, t1.mispredictions);
    }

    /// A higher misprediction penalty never makes a program faster, and a
    /// larger in-flight window never makes it slower.
    #[test]
    fn knob_monotonicity(seed in any::<u64>()) {
        let f = generate(seed, &GenConfig::default());
        let base = TimingConfig::trips();
        let t0 = simulate_timing(&f, &[3, 7], &[], &base).unwrap();

        let pricey = TimingConfig {
            mispredict_penalty: base.mispredict_penalty * 4,
            ..base.clone()
        };
        let t1 = simulate_timing(&f, &[3, 7], &[], &pricey).unwrap();
        prop_assert!(t1.cycles >= t0.cycles);

        let tiny_window = TimingConfig {
            window_blocks: 1,
            ..base.clone()
        };
        let t2 = simulate_timing(&f, &[3, 7], &[], &tiny_window).unwrap();
        prop_assert!(t2.cycles >= t0.cycles);

        let slow_fetch = TimingConfig {
            fetch_bandwidth: 1,
            ..base.clone()
        };
        let t3 = simulate_timing(&f, &[3, 7], &[], &slow_fetch).unwrap();
        prop_assert!(t3.cycles >= t0.cycles);

        let slow_regs = TimingConfig {
            register_latency: base.register_latency + 6,
            ..base.clone()
        };
        let t4 = simulate_timing(&f, &[3, 7], &[], &slow_regs).unwrap();
        prop_assert!(t4.cycles >= t0.cycles);

        let conservative_mem = TimingConfig {
            memory_ordering: chf_sim::timing::MemoryOrdering::Conservative,
            ..base.clone()
        };
        let t5 = simulate_timing(&f, &[3, 7], &[], &conservative_mem).unwrap();
        let oracle_mem = TimingConfig {
            memory_ordering: chf_sim::timing::MemoryOrdering::Oracle,
            ..base.clone()
        };
        let t6 = simulate_timing(&f, &[3, 7], &[], &oracle_mem).unwrap();
        prop_assert!(t6.cycles <= t0.cycles);
        prop_assert!(t5.cycles >= t6.cycles);
    }

    /// Fuel exhaustion is reported identically by both simulators.
    #[test]
    fn fuel_agreement(seed in any::<u64>()) {
        let f = generate(seed, &GenConfig::default());
        let full = run(&f, &[3, 7], &[], &RunConfig::default()).unwrap();
        if full.blocks_executed < 4 {
            return Ok(());
        }
        let budget = full.blocks_executed / 2;
        let fr = run(
            &f,
            &[3, 7],
            &[],
            &RunConfig { max_blocks: budget, ..RunConfig::default() },
        );
        let tr = simulate_timing(
            &f,
            &[3, 7],
            &[],
            &TimingConfig { max_blocks: budget, ..TimingConfig::trips() },
        );
        prop_assert!(fr.is_err());
        prop_assert!(tr.is_err());
    }
}
