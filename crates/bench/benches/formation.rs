//! Criterion benches: compile-time cost of the phase orderings.
//!
//! Convergent formation trades compile time (scratch-space trial merges,
//! iterative optimization) for code quality; this bench quantifies that
//! trade against the discrete orderings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

use chf_core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf_workloads::micro;

fn bench_orderings(c: &mut Criterion) {
    let workloads = [micro::gzip_1(), micro::ammp_1(), micro::matrix_1()];
    let mut group = c.benchmark_group("compile");
    for w in &workloads {
        for ordering in [
            PhaseOrdering::BasicBlocks,
            PhaseOrdering::Upio,
            PhaseOrdering::Iupo,
            PhaseOrdering::IupThenO,
            PhaseOrdering::Iupo_,
        ] {
            group.bench_with_input(
                BenchmarkId::new(ordering.label(), &w.name),
                &ordering,
                |b, &ordering| {
                    let config = CompileConfig::with_ordering(ordering);
                    b.iter(|| {
                        black_box(compile(
                            black_box(&w.function),
                            black_box(&w.profile),
                            &config,
                        ))
                    })
                },
            );
        }
    }
    group.finish();
}

fn bench_policies(c: &mut Criterion) {
    let w = micro::parser_1();
    let mut group = c.benchmark_group("policy");
    for policy in [
        chf_core::PolicyKind::BreadthFirst,
        chf_core::PolicyKind::DepthFirst,
        chf_core::PolicyKind::Vliw,
    ] {
        group.bench_function(policy.label(), |b| {
            let config = CompileConfig::with_policy(policy, true);
            b.iter(|| black_box(compile(black_box(&w.function), black_box(&w.profile), &config)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_orderings, bench_policies);
criterion_main!(benches);
