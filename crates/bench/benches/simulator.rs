//! Criterion benches: simulator throughput.
//!
//! The paper notes its cycle-level simulator runs ≈1000 instructions per
//! second, forcing the microbenchmark methodology; these benches measure
//! how fast our functional and timing models execute instructions.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

use chf_sim::functional::{run, RunConfig};
use chf_sim::timing::{simulate_timing, TimingConfig};
use chf_workloads::micro;

fn bench_functional(c: &mut Criterion) {
    let w = micro::matrix_1();
    let insts = run(&w.function, &w.args, &w.memory, &RunConfig::default())
        .unwrap()
        .insts_executed;
    let mut group = c.benchmark_group("functional");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("matrix_1", |b| {
        b.iter(|| {
            black_box(
                run(
                    black_box(&w.function),
                    &w.args,
                    &w.memory,
                    &RunConfig::default(),
                )
                .unwrap(),
            )
        })
    });
    group.finish();
}

fn bench_timing(c: &mut Criterion) {
    let w = micro::matrix_1();
    let cfg = TimingConfig::trips();
    let insts = simulate_timing(&w.function, &w.args, &w.memory, &cfg)
        .unwrap()
        .insts_executed;
    let mut group = c.benchmark_group("timing");
    group.throughput(Throughput::Elements(insts));
    group.bench_function("matrix_1", |b| {
        b.iter(|| {
            black_box(
                simulate_timing(black_box(&w.function), &w.args, &w.memory, &cfg).unwrap(),
            )
        })
    });
    group.finish();
}

criterion_group!(benches, bench_functional, bench_timing);
criterion_main!(benches);
