//! Parallel evaluation harness.
//!
//! Every cell of the evaluation matrix — (workload × configuration) for
//! Tables 1–3, Figure 7 and the ablation study — is an independent
//! compile-and-simulate job: compilation is deterministic and shares no
//! state across workloads. [`par_map`] fans those jobs across a scoped
//! thread pool using a shared atomic work index (no work-stealing deps, no
//! channels), then reassembles results **in input order**, so the rendered
//! tables and archived CSVs are byte-identical to a sequential run no matter
//! how the scheduler interleaves the workers.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Number of worker threads to use: the `CHF_JOBS` environment variable if
/// set (a value of `1` forces sequential execution), else the machine's
/// available parallelism.
pub fn workers() -> usize {
    if let Ok(v) = std::env::var("CHF_JOBS") {
        if let Ok(n) = v.trim().parse::<usize>() {
            return n.max(1);
        }
    }
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Map `work` over `items` on `workers` threads, returning results in input
/// order.
///
/// Threads pull indices from a shared atomic counter, so long-running items
/// don't serialize behind a static partition. With `workers <= 1` (or a
/// single item) the map runs inline on the caller's thread — the sequential
/// path stays trivially identical.
pub fn par_map<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let threads = workers.min(items.len());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Batch each worker's results and merge once at the end:
                // the lock is taken `workers` times, not `items` times.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, work(&items[i])));
                }
                done.lock().expect("worker panicked").extend(local);
            });
        }
    });
    let mut tagged = done.into_inner().expect("worker panicked");
    debug_assert_eq!(tagged.len(), items.len());
    // Deterministic output order: sort by input index.
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 8, |&i| i * 3);
        assert_eq!(out, items.iter().map(|&i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..37).map(|i| i * 7 + 1).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        for workers in [1, 2, 3, 16] {
            let par = par_map(&items, workers, |&x| x.wrapping_mul(x));
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[42], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn workers_is_at_least_one() {
        assert!(workers() >= 1);
    }
}
