//! Table 1: percent cycle-count improvement over basic blocks for the four
//! phase orderings (UPIO, IUPO, (IUP)O, (IUPO)), with static `m/t/u/p`
//! transformation counts, on the 24 microbenchmarks.

use crate::render::{pct, render_table};
use crate::{compile_and_time, percent_improvement};
use chf_core::pipeline::{CompileConfig, PhaseOrdering};
use chf_core::FormationStats;
use chf_workloads::{microbenchmarks, Workload};

/// One benchmark's measurements across every configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline (basic blocks) cycle count.
    pub bb_cycles: u64,
    /// Baseline dynamic block count (used by Figure 7).
    pub bb_blocks: u64,
    /// Per-ordering measurements, in [`PhaseOrdering::table1`] order.
    pub configs: Vec<Config>,
}

/// One configuration's result on one benchmark.
#[derive(Clone, Debug)]
pub struct Config {
    /// Column label (`UPIO`, …).
    pub label: &'static str,
    /// Cycle count under the timing simulator.
    pub cycles: u64,
    /// Dynamic block count.
    pub blocks: u64,
    /// Static transformation counts.
    pub stats: FormationStats,
    /// Percent improvement over `bb_cycles`.
    pub improvement: f64,
}

/// Measure one workload across BB + the four orderings.
pub fn measure(w: &Workload) -> Row {
    let (bb, _) = compile_and_time(w, &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks));
    let mut configs = Vec::new();
    for ordering in PhaseOrdering::table1() {
        let (t, stats) = compile_and_time(w, &CompileConfig::with_ordering(ordering));
        configs.push(Config {
            label: ordering.label(),
            cycles: t.cycles,
            blocks: t.blocks_executed,
            stats,
            improvement: percent_improvement(bb.cycles, t.cycles),
        });
    }
    Row {
        name: w.name.clone(),
        bb_cycles: bb.cycles,
        bb_blocks: bb.blocks_executed,
        configs,
    }
}

/// Run the full Table 1 experiment, fanning benchmarks across the
/// [`crate::parallel`] harness (results are in deterministic suite order
/// regardless of worker count).
pub fn run() -> Vec<Row> {
    run_with(crate::parallel::workers())
}

/// [`run`] with an explicit worker count (`1` forces the sequential path).
pub fn run_with(workers: usize) -> Vec<Row> {
    crate::parallel::par_map(&microbenchmarks(), workers, measure)
}

/// Render rows in the paper's format (`BB cycles`, then per ordering
/// `m/t/u/p` and `%`).
pub fn render(rows: &[Row]) -> String {
    let mut header: Vec<String> = vec!["benchmark".into(), "BB cycles".into()];
    if let Some(first) = rows.first() {
        for c in &first.configs {
            header.push(format!("{} m/t/u/p", c.label));
            header.push(format!("{} %", c.label));
        }
    }
    let mut body = Vec::new();
    for r in rows {
        let mut row = vec![r.name.clone(), r.bb_cycles.to_string()];
        for c in &r.configs {
            row.push(c.stats.mtup());
            row.push(pct(c.improvement));
        }
        body.push(row);
    }
    // Average row.
    if !rows.is_empty() {
        let mut avg = vec!["Average".to_string(), String::new()];
        let n = rows[0].configs.len();
        for k in 0..n {
            let mean: f64 =
                rows.iter().map(|r| r.configs[k].improvement).sum::<f64>() / rows.len() as f64;
            avg.push(String::new());
            avg.push(pct(mean));
        }
        body.push(avg);
    }
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_one_row() {
        let w = chf_workloads::micro::gzip_1();
        let row = measure(&w);
        assert_eq!(row.configs.len(), 4);
        assert!(row.bb_cycles > 0);
        // The convergent configuration must beat basic blocks on gzip_1
        // (the paper's flagship example).
        let iupo = row.configs.last().unwrap();
        assert!(
            iupo.improvement > 0.0,
            "(IUPO) should improve gzip_1: {iupo:?}"
        );
    }

    #[test]
    fn render_has_average_row() {
        let w = chf_workloads::micro::vadd();
        let rows = vec![measure(&w)];
        let text = render(&rows);
        assert!(text.contains("vadd"));
        assert!(text.contains("Average"));
        assert!(text.contains("(IUPO)"));
    }
}
