//! Table 1: percent cycle-count improvement over basic blocks for the four
//! phase orderings (UPIO, IUPO, (IUP)O, (IUPO)), with static `m/t/u/p`
//! transformation counts, on the 24 microbenchmarks.

use crate::render::{pct, render_table};
use crate::{percent_improvement, try_compile_and_time};
use chf_core::pipeline::{CompileConfig, PhaseOrdering};
use chf_core::FormationStats;
use chf_workloads::{microbenchmarks, Workload};

/// One benchmark's measurements across every configuration.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline (basic blocks) cycle count.
    pub bb_cycles: u64,
    /// Baseline dynamic block count (used by Figure 7).
    pub bb_blocks: u64,
    /// Per-ordering measurements, in [`PhaseOrdering::table1`] order.
    pub configs: Vec<Config>,
    /// Why this benchmark produced no numbers: a compile/simulate failure
    /// (or a panic contained by the parallel harness). A poisoned row is
    /// rendered as a marked row and written to CSV with a sentinel, and it
    /// is excluded from averages and Figure 7 — it never silently zeroes
    /// the statistics.
    pub error: Option<String>,
}

impl Row {
    /// A row marking a workload that failed to produce measurements.
    pub fn poisoned(name: String, error: String) -> Self {
        Row {
            name,
            bb_cycles: 0,
            bb_blocks: 0,
            configs: Vec::new(),
            error: Some(error),
        }
    }
}

/// One configuration's result on one benchmark.
#[derive(Clone, Debug)]
pub struct Config {
    /// Column label (`UPIO`, …).
    pub label: &'static str,
    /// Cycle count under the timing simulator.
    pub cycles: u64,
    /// Dynamic block count.
    pub blocks: u64,
    /// Static transformation counts.
    pub stats: FormationStats,
    /// Percent improvement over `bb_cycles`.
    pub improvement: f64,
}

/// Measure one workload across BB + the four orderings. A failure on any
/// configuration poisons the whole row (partial rows would skew the
/// averages invisibly).
pub fn measure(w: &Workload) -> Row {
    let bb =
        match try_compile_and_time(w, &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks)) {
            Ok((t, _)) => t,
            Err(e) => return Row::poisoned(w.name.clone(), e),
        };
    let mut configs = Vec::new();
    for ordering in PhaseOrdering::table1() {
        let (t, stats) = match try_compile_and_time(w, &CompileConfig::with_ordering(ordering)) {
            Ok(r) => r,
            Err(e) => return Row::poisoned(w.name.clone(), e),
        };
        configs.push(Config {
            label: ordering.label(),
            cycles: t.cycles,
            blocks: t.blocks_executed,
            stats,
            improvement: percent_improvement(bb.cycles, t.cycles),
        });
    }
    Row {
        name: w.name.clone(),
        bb_cycles: bb.cycles,
        bb_blocks: bb.blocks_executed,
        configs,
        error: None,
    }
}

/// Run the full Table 1 experiment, fanning benchmarks across the
/// [`crate::parallel`] harness (results are in deterministic suite order
/// regardless of worker count).
pub fn run() -> Vec<Row> {
    run_with(crate::parallel::workers())
}

/// [`run`] with an explicit worker count (`1` forces the sequential path).
///
/// Jobs run under the harness's panic isolation: a workload that panics the
/// compiler (twice — one retry) degrades to a poisoned row rather than
/// killing the table.
pub fn run_with(workers: usize) -> Vec<Row> {
    let suite = microbenchmarks();
    crate::parallel::par_map_isolated(&suite, workers, measure)
        .into_iter()
        .zip(&suite)
        .map(|(res, w)| res.unwrap_or_else(|msg| Row::poisoned(w.name.clone(), msg)))
        .collect()
}

/// Render rows in the paper's format (`BB cycles`, then per ordering
/// `m/t/u/p` and `%`).
pub fn render(rows: &[Row]) -> String {
    let mut header: Vec<String> = vec!["benchmark".into(), "BB cycles".into()];
    let healthy: Vec<&Row> = rows.iter().filter(|r| r.error.is_none()).collect();
    if let Some(first) = healthy.first() {
        for c in &first.configs {
            header.push(format!("{} m/t/u/p", c.label));
            header.push(format!("{} %", c.label));
        }
    }
    let mut body = Vec::new();
    for r in rows {
        if let Some(err) = &r.error {
            body.push(vec![r.name.clone(), format!("FAILED: {err}")]);
            continue;
        }
        let mut row = vec![r.name.clone(), r.bb_cycles.to_string()];
        for c in &r.configs {
            row.push(c.stats.mtup());
            row.push(pct(c.improvement));
        }
        body.push(row);
    }
    // Average row, over the healthy benchmarks only.
    if let Some(first) = healthy.first() {
        let mut avg = vec!["Average".to_string(), String::new()];
        let n = first.configs.len();
        for k in 0..n {
            let mean: f64 = healthy
                .iter()
                .map(|r| r.configs[k].improvement)
                .sum::<f64>()
                / healthy.len() as f64;
            avg.push(String::new());
            avg.push(pct(mean));
        }
        body.push(avg);
    }
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_one_row() {
        let w = chf_workloads::micro::gzip_1();
        let row = measure(&w);
        assert_eq!(row.configs.len(), 4);
        assert!(row.bb_cycles > 0);
        // The convergent configuration must beat basic blocks on gzip_1
        // (the paper's flagship example).
        let iupo = row.configs.last().unwrap();
        assert!(
            iupo.improvement > 0.0,
            "(IUPO) should improve gzip_1: {iupo:?}"
        );
    }

    /// The acceptance scenario: a deliberately broken workload (wrong
    /// expected return value) degrades to a marked row — it shows up as
    /// `FAILED` in the rendered table, as a `POISONED` sentinel in the CSV,
    /// and contributes no Figure 7 points — while healthy rows around it
    /// keep their numbers.
    #[test]
    fn poisoned_workload_yields_marked_row() {
        let healthy = chf_workloads::micro::vadd();
        let mut bad = chf_workloads::micro::vadd();
        bad.name = "vadd_sabotaged".into();
        bad.expected += 1; // behaviour check must fail
        let rows = vec![measure(&healthy), measure(&bad)];

        assert!(rows[0].error.is_none());
        let err = rows[1].error.as_ref().expect("sabotaged row is poisoned");
        assert!(
            err.contains("vadd_sabotaged"),
            "error names the workload: {err}"
        );

        let text = render(&rows);
        assert!(
            text.contains("FAILED"),
            "table marks the poisoned row:\n{text}"
        );
        assert!(
            text.contains("Average"),
            "healthy rows still average:\n{text}"
        );

        let csv = crate::csv::table1_csv(&rows);
        let poisoned_line = csv
            .lines()
            .find(|l| l.starts_with("vadd_sabotaged"))
            .expect("poisoned row present in CSV");
        assert!(
            poisoned_line.contains(crate::csv::POISONED_SENTINEL),
            "CSV uses the sentinel: {poisoned_line}"
        );

        // Figure 7 must draw its regression from the healthy row only.
        let pts = crate::fig7::points(&rows);
        assert_eq!(pts.len(), rows[0].configs.len());
    }

    #[test]
    fn render_has_average_row() {
        let w = chf_workloads::micro::vadd();
        let rows = vec![measure(&w)];
        let text = render(&rows);
        assert!(text.contains("vadd"));
        assert!(text.contains("Average"));
        assert!(text.contains("(IUPO)"));
    }
}
