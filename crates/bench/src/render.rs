//! Plain-text table rendering shared by the experiment binaries.

/// Render a table: a header row plus data rows, columns padded to fit.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            if i == 0 {
                line.push_str(&format!("{:<width$}", cell, width = widths[i]));
            } else {
                line.push_str(&format!("{:>width$}", cell, width = widths[i]));
            }
        }
        line
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Format a percentage with one decimal, like the paper's tables.
pub fn pct(v: f64) -> String {
    format!("{v:.1}")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_alignment() {
        let header = vec!["name".into(), "x".into()];
        let rows = vec![
            vec!["long_benchmark".into(), "1.5".into()],
            vec!["b".into(), "100.0".into()],
        ];
        let t = render_table(&header, &rows);
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("name"));
        assert!(lines[2].starts_with("long_benchmark"));
        // Right-aligned numeric column.
        assert!(lines[3].ends_with("100.0"));
    }

    #[test]
    fn pct_format() {
        assert_eq!(pct(16.24), "16.2");
        assert_eq!(pct(-5.0), "-5.0");
    }
}
