//! Ablation study over the design choices DESIGN.md calls out: speculation,
//! iterative optimization, trip-aware unrolling, head duplication, tail
//! duplication, the tail-duplication size limit, and the lookahead policy.
//!
//! For each configuration, reports the average % cycle improvement of
//! convergent formation over basic blocks across the 24 microbenchmarks.

use chf_core::convergent::{form_hyperblocks_with_profile, FormationConfig};
use chf_core::reverse::split_oversized;
use chf_core::PolicyKind;
use chf_sim::predictor::{PredictorConfig, PredictorKind};
use chf_sim::timing::{simulate_timing, TimingConfig};
use chf_workloads::{microbenchmarks, Workload};

/// Compile with an explicit formation configuration (always followed by the
/// final scalar-optimization pass and backend splitting, like the
/// pipeline).
fn compile_with(w: &Workload, policy: PolicyKind, config: &FormationConfig) -> u64 {
    let mut f = w.function.clone();
    w.profile.apply(&mut f);
    let mut p = policy.instantiate();
    form_hyperblocks_with_profile(&mut f, p.as_mut(), config, Some(&w.profile));
    chf_opt::optimize(&mut f);
    split_oversized(&mut f, &config.constraints);
    chf_ir::cfg::remove_unreachable(&mut f);
    let t = simulate_timing(&f, &w.args, &w.memory, &TimingConfig::trips())
        .unwrap_or_else(|e| panic!("{}: {e}", w.name));
    assert_eq!(t.ret, Some(w.expected), "{} miscompiled", w.name);
    t.cycles
}

fn main() {
    let workers = chf_bench::parallel::workers();
    let suite = microbenchmarks();
    let baselines: Vec<u64> = chf_bench::parallel::par_map(&suite, workers, |w| {
        let mut f = w.function.clone();
        w.profile.apply(&mut f);
        chf_opt::optimize(&mut f);
        simulate_timing(&f, &w.args, &w.memory, &TimingConfig::trips())
            .unwrap()
            .cycles
    });

    let average = |policy: PolicyKind, config: &FormationConfig| -> f64 {
        let cycles =
            chf_bench::parallel::par_map(&suite, workers, |w| compile_with(w, policy, config));
        cycles
            .iter()
            .zip(&baselines)
            .map(|(&c, &bb)| (bb as f64 - c as f64) / bb as f64 * 100.0)
            .sum::<f64>()
            / suite.len() as f64
    };

    let full = FormationConfig::default();
    println!("Ablation: average % cycle improvement over basic blocks (24 micros)\n");
    println!("{:<38} {:>8}", "configuration", "avg %");
    println!("{}", "-".repeat(48));

    let configs: Vec<(&str, PolicyKind, FormationConfig)> = vec![
        (
            "full convergent (BF)",
            PolicyKind::BreadthFirst,
            full.clone(),
        ),
        (
            "  - speculation (guard everything)",
            PolicyKind::BreadthFirst,
            FormationConfig {
                speculation: false,
                ..full.clone()
            },
        ),
        (
            "  - iterative optimization",
            PolicyKind::BreadthFirst,
            FormationConfig {
                iterative_opt: false,
                ..full.clone()
            },
        ),
        (
            "  - trip-aware unrolling",
            PolicyKind::BreadthFirst,
            FormationConfig {
                trip_aware_unroll: false,
                ..full.clone()
            },
        ),
        (
            "  - head duplication (no unroll/peel)",
            PolicyKind::BreadthFirst,
            FormationConfig {
                head_duplication: false,
                ..full.clone()
            },
        ),
        (
            "  - tail duplication",
            PolicyKind::BreadthFirst,
            FormationConfig {
                tail_duplication: false,
                ..full.clone()
            },
        ),
        (
            "  tail-dup limit 8 (aggressive)",
            PolicyKind::BreadthFirst,
            FormationConfig {
                max_tail_dup_size: 8,
                ..full.clone()
            },
        ),
        (
            "  tail-dup limit 128 (unlimited)",
            PolicyKind::BreadthFirst,
            FormationConfig {
                max_tail_dup_size: 128,
                ..full.clone()
            },
        ),
        (
            "full convergent (BF+lookahead)",
            PolicyKind::BreadthFirstLookahead,
            full.clone(),
        ),
    ];

    for (label, policy, config) in configs {
        println!("{:<38} {:>7.1}", label, average(policy, &config));
    }

    // --- Timing-model sensitivity: how much of the hyperblock win depends
    // on the microarchitectural assumptions? ---
    println!(
        "
Timing-model sensitivity (convergent BF vs BB under each model)
"
    );
    println!("{:<38} {:>8}", "timing model", "avg %");
    println!("{}", "-".repeat(48));
    let timing_variants: Vec<(&str, TimingConfig)> = vec![
        ("TRIPS baseline", TimingConfig::trips()),
        (
            "  bimodal next-block predictor",
            TimingConfig {
                predictor: PredictorConfig::of_kind(PredictorKind::Bimodal),
                ..TimingConfig::trips()
            },
        ),
        (
            "  no next-block prediction",
            TimingConfig {
                predictor: PredictorConfig::of_kind(PredictorKind::Static),
                ..TimingConfig::trips()
            },
        ),
        (
            "  window of 2 blocks",
            TimingConfig {
                window_blocks: 2,
                ..TimingConfig::trips()
            },
        ),
        (
            "  double block overhead",
            TimingConfig {
                block_overhead: TimingConfig::trips().block_overhead * 2,
                ..TimingConfig::trips()
            },
        ),
        (
            "  zero block overhead",
            TimingConfig {
                block_overhead: 0,
                ..TimingConfig::trips()
            },
        ),
    ];
    for (label, tcfg) in timing_variants {
        let improvements = chf_bench::parallel::par_map(&suite, workers, |w| {
            // Baseline under this model.
            let mut base = w.function.clone();
            w.profile.apply(&mut base);
            chf_opt::optimize(&mut base);
            let bb = simulate_timing(&base, &w.args, &w.memory, &tcfg)
                .unwrap()
                .cycles;
            // Convergent under this model.
            let mut f = w.function.clone();
            w.profile.apply(&mut f);
            let mut p = PolicyKind::BreadthFirst.instantiate();
            form_hyperblocks_with_profile(&mut f, p.as_mut(), &full, Some(&w.profile));
            chf_opt::optimize(&mut f);
            split_oversized(&mut f, &full.constraints);
            chf_ir::cfg::remove_unreachable(&mut f);
            let c = simulate_timing(&f, &w.args, &w.memory, &tcfg)
                .unwrap()
                .cycles;
            (bb as f64 - c as f64) / bb as f64 * 100.0
        });
        let total: f64 = improvements.iter().sum();
        println!("{:<38} {:>7.1}", label, total / suite.len() as f64);
    }
}
