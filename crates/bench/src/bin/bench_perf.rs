//! `bench_perf` — the repo's performance-trajectory probe.
//!
//! Measures, on the 24-microbenchmark suite:
//!
//! 1. **Formation wall-time** per phase ordering (compile only);
//! 2. **Simulator throughput** three ways: lowering (decode) cost, per-call
//!    throughput (`simulate_timing`, lower + simulate each call — the
//!    number the perf history tracks), and pre-lowered event-core
//!    throughput (`simulate_timing_lowered`, decode once / replay many —
//!    the oracle and whole-program access pattern);
//! 3. **End-to-end Table 1 regeneration** — the full compile+simulate matrix
//!    plus rendering and CSV serialization — through the parallel harness
//!    *and* the forced-sequential path, checking the two CSVs are
//!    byte-identical.
//!
//! Results are written to `BENCH_formation.json` (override with `-o PATH`),
//! together with the recorded seed baselines for the same machine, seeding
//! the repo's perf history.
//!
//! `--check` exits non-zero if the end-to-end Table 1 wall-time exceeds a
//! regression ceiling (`CHF_BENCH_CEILING_MS`, default 100 ms — well under
//! both the 244 ms seed and the 160 ms pre-event-core ceiling, with ~30%
//! headroom over current ~70 ms measurements), or if per-call simulator
//! throughput falls under a floor (`CHF_BENCH_SIM_FLOOR_MCPS`, default
//! 24 — 2.5× the 9.53 Mcycles/s recorded for the direct-interpretation
//! core; typical post-rewrite measurements are ~30 per-call and ~36 for
//! the decode-once event core, and the reference machine's wall-clock
//! noise is ±20%+, so the gate is set where a return to direct
//! interpretation fails loudly but a loaded machine does not), so
//! `scripts/verify.sh` catches order-of-magnitude regressions without
//! being flaky.

use chf_core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf_sim::timing::{simulate_timing, simulate_timing_lowered, TimingConfig};
use chf_sim::LoweredProgram;
use std::fmt::Write as _;
use std::time::Instant;

/// Wall-time of the seed revision's `table1` binary on the reference
/// machine (ms), measured before the trial-scoped formation rewrite. The
/// speedup reported below is against this number.
const SEED_TABLE1_WALL_MS: f64 = 244.0;

/// Per-call simulator throughput (Mcycles/s) recorded on the reference
/// machine for the direct-interpretation timing core, before the
/// event-driven rewrite. The floor below demands ≥ 2.5× this.
const SEED_SIM_MCPS: f64 = 9.53;

/// Default `--check` ceiling (ms): generous headroom over the current
/// measurement, strict against anything resembling the seed's 244 ms or
/// the pre-event-core 160 ms ceiling.
const DEFAULT_CEILING_MS: f64 = 100.0;

/// Default `--check` simulator-throughput floor: 2.5× the recorded
/// pre-rewrite throughput. The event-driven core typically measures ~3×
/// per-call (lower + simulate every call) and ~4× in its decode-once
/// replay mode on this machine; the gate sits below both so ±20%+
/// neighbour noise cannot flip it, while any regression back toward
/// direct-interpretation speed (≤ ~16 Mcycles/s) still fails.
const DEFAULT_SIM_FLOOR_MCPS: f64 = 2.5 * SEED_SIM_MCPS;

/// Default `--check` ceiling on the sharding machinery's overhead ratio
/// (unsharded sequential throughput over 1-worker sharded throughput).
/// The checkpoint plan + replay + validating stitch historically costs
/// ~1.7× (≈ 29.2 vs ≈ 16.8 Mcycles/s on the reference machine); the gate
/// sits at 2.5× so machine noise cannot flip it while a structural
/// regression (a stitch that re-simulates everything, say) still fails.
/// Relax with `CHF_SHARD_OVERHEAD_CEILING`.
const DEFAULT_SHARD_OVERHEAD_CEILING: f64 = 2.5;

fn best_of<R>(reps: usize, mut f: impl FnMut() -> R) -> (f64, R) {
    let mut best = f64::INFINITY;
    let mut out = None;
    for _ in 0..reps {
        let t = Instant::now();
        let r = f();
        best = best.min(t.elapsed().as_secs_f64() * 1e3);
        out = Some(r);
    }
    (best, out.expect("reps >= 1"))
}

fn table1_artifacts(workers: usize) -> String {
    let rows = chf_bench::table1::run_with(workers);
    let rendered = chf_bench::table1::render(&rows);
    let pts = chf_bench::fig7::points(&rows);
    let fit = chf_bench::fig7::linear_fit(&pts);
    let mut out = chf_bench::csv::table1_csv(&rows);
    out.push_str(&chf_bench::csv::fig7_csv(&pts, &fit));
    out.push_str(&rendered);
    out
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let check = args.iter().any(|a| a == "--check");
    let out_path = args
        .iter()
        .position(|a| a == "-o")
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| "BENCH_formation.json".to_string());

    let suite = chf_workloads::microbenchmarks();
    let orderings = [
        PhaseOrdering::BasicBlocks,
        PhaseOrdering::Upio,
        PhaseOrdering::Iupo,
        PhaseOrdering::IupThenO,
        PhaseOrdering::Iupo_,
    ];

    // 1. Formation wall-time per ordering (best of 3).
    let mut per_ordering: Vec<(&str, f64)> = Vec::new();
    let mut compile_total = 0.0;
    for o in &orderings {
        let (ms, _) = best_of(3, || {
            for w in &suite {
                let _ = compile(&w.function, &w.profile, &CompileConfig::with_ordering(*o));
            }
        });
        per_ordering.push((o.label(), ms));
        compile_total += ms;
    }

    // 2. Simulator throughput over every compiled (workload, ordering) pair.
    let compiled: Vec<_> = suite
        .iter()
        .flat_map(|w| {
            orderings.iter().map(move |o| {
                (
                    w,
                    compile(&w.function, &w.profile, &CompileConfig::with_ordering(*o)),
                )
            })
        })
        .collect();

    // 2a. Lowering (decode) cost of the whole compiled matrix. The sim
    // sections use best-of-10: each rep is ~10 ms, and on a machine with
    // noisy neighbours the minimum over ten reps is a far better estimate
    // of the true cost than the minimum over three.
    let (lowering_ms, lowered) = best_of(10, || {
        compiled
            .iter()
            .map(|(_, c)| LoweredProgram::lower(&c.function))
            .collect::<Vec<_>>()
    });

    // 2b. Per-call throughput: `simulate_timing` lowers and simulates on
    // every call. This is the metric the perf history records.
    let (sim_ms, sim_cycles) = best_of(10, || {
        let mut cycles = 0u64;
        for (w, c) in &compiled {
            let t = simulate_timing(&c.function, &w.args, &w.memory, &TimingConfig::trips())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            cycles += t.cycles;
        }
        cycles
    });
    let mcps = sim_cycles as f64 / 1e6 / (sim_ms / 1e3);

    // 2c. Pre-lowered event-core throughput: decode once, replay many —
    // the access pattern of the oracle and the whole-program harness.
    let (sim_event_ms, event_cycles) = best_of(10, || {
        let mut cycles = 0u64;
        for ((w, _), p) in compiled.iter().zip(&lowered) {
            let t = simulate_timing_lowered(p, &w.args, &w.memory, &TimingConfig::trips())
                .unwrap_or_else(|e| panic!("{}: {e}", w.name));
            cycles += t.cycles;
        }
        cycles
    });
    assert_eq!(
        sim_cycles, event_cycles,
        "per-call and pre-lowered simulation disagree on total cycles"
    );
    let event_mcps = sim_cycles as f64 / 1e6 / (sim_event_ms / 1e3);

    // 2d. Sharded whole-program throughput on the composite suite:
    // checkpoint plan + parallel per-shard replay + validating stitch,
    // at 1 / 2 / N workers (every stitched cycle count is cross-checked
    // against the sequential engine inside the probe).
    let workers = chf_bench::parallel::workers();
    let mut shard_counts = vec![1usize, 2];
    if !shard_counts.contains(&workers) {
        shard_counts.push(workers);
    }
    let scaling =
        chf_bench::sharded::measure_scaling(&shard_counts, &chf_sim::ShardConfig::default(), 2)
            .unwrap_or_else(|e| panic!("sharded scaling probe failed: {e}"));

    // 2e. Sharding overhead: the plain sequential engine over the same
    // suite, divided by 1-worker sharded throughput. This isolates the
    // cost of the checkpoint plan + replay + validating stitch from any
    // parallel speedup (historically ~29.2 vs ~16.8 Mcycles/s, ≈ 1.7×).
    let unsharded = chf_bench::sharded::measure_unsharded(2)
        .unwrap_or_else(|e| panic!("unsharded probe failed: {e}"));
    let sharded_1w = scaling
        .iter()
        .find(|r| r.workers == 1)
        .expect("scaling probe always samples 1 worker");
    let shard_overhead_ratio = unsharded.mcps / sharded_1w.mcps;

    // 3. End-to-end Table 1 regeneration: parallel harness vs forced
    // sequential, with byte-identity of the outputs.
    let (wall_ms, artifacts) = best_of(3, || table1_artifacts(workers));
    let (seq_ms, seq_artifacts) = best_of(3, || table1_artifacts(1));
    let identical = artifacts == seq_artifacts;
    let speedup = SEED_TABLE1_WALL_MS / wall_ms;

    // 4. Compile-service round-trip latency: the whole suite submitted cold
    // (every request compiles), then hot (every request is a revalidated
    // cache hit). The hot/cold ratio is the memoization payoff a repeated
    // submission sees end to end, queueing included.
    let svc = chf_service::CompileService::new(chf_service::ServiceConfig {
        workers,
        queue_capacity: suite.len() + 8,
        ..chf_service::ServiceConfig::default()
    });
    let submit_all = |svc: &chf_service::CompileService| {
        let ids: Vec<_> = suite
            .iter()
            .map(|w| {
                svc.submit(chf_service::CompileRequest::ir(
                    w.function.clone(),
                    w.profile.clone(),
                ))
            })
            .collect();
        for id in ids {
            let resp = svc.wait(id);
            assert_eq!(
                resp.status,
                chf_service::RequestStatus::Done,
                "service compile failed"
            );
        }
    };
    let t = Instant::now();
    submit_all(&svc);
    let service_cold_ms = t.elapsed().as_secs_f64() * 1e3;
    let t = Instant::now();
    submit_all(&svc);
    let service_hot_ms = t.elapsed().as_secs_f64() * 1e3;
    let svc_stats = svc.stats();
    assert_eq!(
        svc_stats.cache_hits,
        suite.len() as u64,
        "hot pass must be served entirely from the formation cache"
    );

    // 5. Policy tournaments through the service on the 19 composites:
    // cold (portfolio fan-outs, shape-cache filling) then hot (recurring
    // shapes answered with a single cached-winner compile each). The
    // amortized entrants-per-tournament counter is the shape cache's
    // payoff metric.
    let composites = chf_workloads::spec_suite();
    let tsvc = chf_service::CompileService::new(chf_service::ServiceConfig {
        workers,
        queue_capacity: 256,
        ..chf_service::ServiceConfig::default()
    });
    let treqs: Vec<chf_service::TournamentRequest> = composites
        .iter()
        .map(|w| chf_service::TournamentRequest {
            function: w.function.clone(),
            profile: w.profile.clone(),
            args: w.args.clone(),
            memory: w.memory.clone(),
            config: chf_core::TournamentConfig::default(),
        })
        .collect();
    let run_tournaments = |label: &str| {
        let t = Instant::now();
        for req in &treqs {
            let out = tsvc.compile_tournament(req).unwrap_or_else(|e| {
                panic!("{label} tournament failed for {}: {e}", req.function.name)
            });
            assert!(out.entrants_run >= 1);
        }
        t.elapsed().as_secs_f64() * 1e3
    };
    let tournament_cold_ms = run_tournaments("cold");
    let tournament_hot_ms = run_tournaments("hot");
    let tstats = tsvc.stats();
    assert_eq!(tstats.tournaments, 2 * composites.len() as u64);
    assert!(
        tstats.shape_hits >= composites.len() as u64,
        "second pass must hit the shape cache: {} hits",
        tstats.shape_hits
    );

    println!("bench_perf: 24-microbenchmark suite");
    for (label, ms) in &per_ordering {
        println!("  compile {label:>7}: {ms:8.2} ms");
    }
    println!("  compile   total: {compile_total:8.2} ms");
    println!(
        "  lowering  total: {lowering_ms:8.2} ms  ({} programs)",
        compiled.len()
    );
    println!(
        "  sim       total: {sim_ms:8.2} ms  ({sim_cycles} cycles, {mcps:.2} Mcycles/s per-call)"
    );
    println!("  sim (pre-lowered): {sim_event_ms:6.2} ms  ({event_mcps:.2} Mcycles/s event core)");
    for r in &scaling {
        println!(
            "  sim (sharded, {} worker(s)): {:6.2} ms  ({:.2} Mcycles/s, {} shards, {} narrow, {} ckpt bytes, {} fallbacks)",
            r.workers, r.wall_ms, r.mcps, r.shards, r.narrow_shards, r.checkpoint_bytes, r.fallbacks
        );
    }
    println!(
        "  sim (unsharded): {:6.2} ms  ({:.2} Mcycles/s; sharding overhead {shard_overhead_ratio:.2}x at 1 worker)",
        unsharded.wall_ms, unsharded.mcps
    );
    println!(
        "  table1 end-to-end: {wall_ms:.2} ms ({workers} worker(s)); sequential: {seq_ms:.2} ms"
    );
    println!(
        "  vs seed ({SEED_TABLE1_WALL_MS:.0} ms): {speedup:.2}x; parallel/sequential outputs identical: {identical}"
    );
    println!(
        "  service: cold {service_cold_ms:.2} ms, hot {service_hot_ms:.2} ms ({} requests, \
         hit rate {:.2}, p50 compile {} us, p99 {} us)",
        suite.len() * 2,
        svc_stats.cache_hit_rate(),
        svc_stats.p50_compile_us,
        svc_stats.p99_compile_us
    );
    println!(
        "  tournaments: cold {tournament_cold_ms:.2} ms, hot {tournament_hot_ms:.2} ms \
         ({} tournaments, {} entrants, {} shape hits / {} misses, {} guard fallbacks, \
         {:.2} entrants/tournament amortized)",
        tstats.tournaments,
        tstats.tournament_entrants,
        tstats.shape_hits,
        tstats.shape_misses,
        tstats.guard_fallbacks,
        tstats.entrants_per_tournament()
    );

    // JSON perf record (hand-rolled; the workspace has no serde).
    let mut json = String::from("{\n");
    let _ = writeln!(json, "  \"suite\": \"table1-24-micro\",");
    let _ = writeln!(
        json,
        "  \"unix_time\": {},",
        std::time::SystemTime::now()
            .duration_since(std::time::UNIX_EPOCH)
            .map(|d| d.as_secs())
            .unwrap_or(0)
    );
    let _ = writeln!(json, "  \"seed_table1_wall_ms\": {SEED_TABLE1_WALL_MS:.1},");
    let _ = writeln!(json, "  \"table1_wall_ms\": {wall_ms:.2},");
    let _ = writeln!(json, "  \"table1_sequential_ms\": {seq_ms:.2},");
    let _ = writeln!(json, "  \"speedup_vs_seed\": {speedup:.2},");
    let _ = writeln!(json, "  \"workers\": {workers},");
    let _ = writeln!(
        json,
        "  \"outputs_identical_parallel_vs_sequential\": {identical},"
    );
    let _ = writeln!(json, "  \"compile_ms_total\": {compile_total:.2},");
    json.push_str("  \"compile_ms_per_ordering\": {");
    for (i, (label, ms)) in per_ordering.iter().enumerate() {
        let sep = if i + 1 < per_ordering.len() { ", " } else { "" };
        let _ = write!(json, "\"{label}\": {ms:.2}{sep}");
    }
    json.push_str("},\n");
    let _ = writeln!(json, "  \"lowering_ms_total\": {lowering_ms:.2},");
    let _ = writeln!(json, "  \"sim_ms_total\": {sim_ms:.2},");
    let _ = writeln!(json, "  \"sim_cycles\": {sim_cycles},");
    let _ = writeln!(json, "  \"seed_sim_mcycles_per_s\": {SEED_SIM_MCPS:.2},");
    let _ = writeln!(json, "  \"sim_mcycles_per_s\": {mcps:.2},");
    let _ = writeln!(json, "  \"sim_event_ms_total\": {sim_event_ms:.2},");
    let _ = writeln!(json, "  \"sim_event_mcycles_per_s\": {event_mcps:.2},");
    json.push_str("  \"sharded_sim\": [");
    for (i, r) in scaling.iter().enumerate() {
        let sep = if i + 1 < scaling.len() { ", " } else { "" };
        let _ = write!(
            json,
            "{{\"workers\": {}, \"wall_ms\": {:.2}, \"mcycles_per_s\": {:.2}, \
             \"shards\": {}, \"narrow_shards\": {}, \"checkpoint_bytes\": {}, \"fallbacks\": {}}}{sep}",
            r.workers, r.wall_ms, r.mcps, r.shards, r.narrow_shards, r.checkpoint_bytes, r.fallbacks
        );
    }
    json.push_str("],\n");
    let _ = writeln!(
        json,
        "  \"sim_unsharded_mcycles_per_s\": {:.2},",
        unsharded.mcps
    );
    let _ = writeln!(
        json,
        "  \"shard_overhead_ratio\": {shard_overhead_ratio:.2},"
    );
    let _ = writeln!(json, "  \"service_cold_ms\": {service_cold_ms:.2},");
    let _ = writeln!(json, "  \"service_hot_ms\": {service_hot_ms:.2},");
    let _ = writeln!(json, "  \"service_stats\": {},", svc_stats.json());
    let _ = writeln!(json, "  \"tournament_cold_ms\": {tournament_cold_ms:.2},");
    let _ = writeln!(json, "  \"tournament_hot_ms\": {tournament_hot_ms:.2},");
    let _ = writeln!(json, "  \"tournament_stats\": {}", tstats.json());
    json.push_str("}\n");
    match std::fs::write(&out_path, &json) {
        Ok(()) => println!("  wrote {out_path}"),
        Err(e) => eprintln!("  could not write {out_path}: {e}"),
    }

    if check {
        let ceiling: f64 = std::env::var("CHF_BENCH_CEILING_MS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_CEILING_MS);
        let sim_floor: f64 = std::env::var("CHF_BENCH_SIM_FLOOR_MCPS")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SIM_FLOOR_MCPS);
        let overhead_ceiling: f64 = std::env::var("CHF_SHARD_OVERHEAD_CEILING")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(DEFAULT_SHARD_OVERHEAD_CEILING);
        let mut failed = false;
        if wall_ms > ceiling {
            eprintln!("CHECK FAILED: table1 end-to-end {wall_ms:.2} ms > ceiling {ceiling:.2} ms");
            failed = true;
        }
        if mcps < sim_floor {
            eprintln!(
                "CHECK FAILED: simulator throughput {mcps:.2} Mcycles/s < floor {sim_floor:.2} \
                 (2.5x the pre-rewrite {SEED_SIM_MCPS:.2})"
            );
            failed = true;
        }
        if shard_overhead_ratio > overhead_ceiling {
            eprintln!(
                "CHECK FAILED: sharding overhead {shard_overhead_ratio:.2}x > ceiling \
                 {overhead_ceiling:.2}x (unsharded {:.2} vs 1-worker sharded {:.2} Mcycles/s; \
                 relax with CHF_SHARD_OVERHEAD_CEILING)",
                unsharded.mcps, sharded_1w.mcps
            );
            failed = true;
        }
        if !identical {
            eprintln!("CHECK FAILED: parallel and sequential Table 1 outputs differ");
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "  check OK: {wall_ms:.2} ms <= {ceiling:.2} ms, \
             {mcps:.2} Mcycles/s >= {sim_floor:.2}, \
             overhead {shard_overhead_ratio:.2}x <= {overhead_ceiling:.2}x, outputs identical"
        );
    }
}
