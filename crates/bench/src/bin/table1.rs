//! Regenerate the paper's Table 1.

fn main() {
    let rows = chf_bench::table1::run();
    println!("Table 1: % cycle-count improvement over basic blocks (BB), with");
    println!("static merged/tail-duplicated/unrolled/peeled (m/t/u/p) counts.\n");
    print!("{}", chf_bench::table1::render(&rows));
}
