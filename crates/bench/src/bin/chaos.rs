//! Seeded fault-injection campaigns.
//!
//! Two targets share one binary:
//!
//! * **Formation campaign** (default): generates random programs, injects
//!   one fault each (IR corruption, profile corruption, or a mid-trial
//!   corruption inside the merge window), runs convergent formation under
//!   the differential oracle, and requires every fault to be detected,
//!   rolled back, or survived — zero process aborts, zero undetected
//!   miscompiles.
//! * **Service campaign** (`--service`): the same fault registry plus
//!   `corrupted-cache-entry` and `worker-panic`, delivered through a live
//!   `chf-service` instance from concurrent client threads. Adds a third
//!   hard requirement: zero hung requests. The service's own stats
//!   snapshot is written to `results/service_stats.json`.
//!
//! * **Service soak** (`--service-soak`): N concurrent requests of which
//!   ~5% carry an injected fault (`--fault-percent` to change) — the
//!   traffic shape of the `verify.sh service` CI gate. Every request must
//!   reach a terminal state and the service's accounting must close.
//!
//! Usage: `chaos [--service|--service-soak] [N] [--clients C]
//! [--fault-percent P]` (default 500 faults / 200 soak requests,
//! 4 clients). Environment: `CHF_FAULT_SEED` pins the campaign seed
//! (default 1). Any oracle-mismatch reproducers are written to
//! `results/repros/`. The last line on stdout is always a one-line JSON
//! summary with per-kind counts, for CI consumption; service modes also
//! write the stats snapshot to `results/service_stats.json`. Exits
//! non-zero if the campaign fails, for use as a CI gate.

use std::path::PathBuf;

/// Silence backtraces from *injected* worker panics (they are the point of
/// the worker-panic fault kind, and every one is caught at the service's
/// isolation boundary); real panics still print through the saved hook.
fn quiet_injected_panics() {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let msg = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !msg.contains("injected worker fault") {
            prev(info);
        }
    }));
}

/// Write the service stats snapshot where CI archives failure artifacts.
fn write_service_stats(stats_json: &str) {
    if std::fs::create_dir_all("results").is_ok() {
        let path = PathBuf::from("results/service_stats.json");
        if let Err(e) = std::fs::write(&path, format!("{stats_json}\n")) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("  service stats: {}", path.display());
        }
    }
}

fn main() {
    let mut count: Option<usize> = None;
    let mut service = false;
    let mut soak = false;
    let mut clients: usize = 4;
    let mut fault_percent: u32 = 5;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--service" => service = true,
            "--service-soak" => soak = true,
            "--clients" => {
                clients = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--clients needs a positive integer");
                    std::process::exit(2);
                });
            }
            "--fault-percent" => {
                fault_percent = args.next().and_then(|s| s.parse().ok()).unwrap_or_else(|| {
                    eprintln!("--fault-percent needs an integer 0..=100");
                    std::process::exit(2);
                });
            }
            n => {
                count = Some(n.parse().unwrap_or_else(|_| {
                    eprintln!(
                        "unrecognized argument `{n}` (usage: chaos [--service|--service-soak] \
                         [N] [--clients C] [--fault-percent P])"
                    );
                    std::process::exit(2);
                }));
            }
        }
    }
    let seed = chf_core::chaos::seed_from_env().unwrap_or(1);

    if soak {
        quiet_injected_panics();
        let requests = count.unwrap_or(200);
        println!(
            "service soak: {requests} requests, {clients} clients, ~{fault_percent}% faults, \
             seed {seed} (set CHF_FAULT_SEED to replay)"
        );
        let report = chf_service::chaos::soak(seed, requests, clients, fault_percent);
        println!(
            "{} requests ({} faulty): {} hung, {} wrong; cache hit rate {:.2}, \
             p50 compile {} us, p99 {} us",
            report.requests,
            report.faults,
            report.hung,
            report.wrong,
            report.stats.cache_hit_rate(),
            report.stats.p50_compile_us,
            report.stats.p99_compile_us
        );
        write_service_stats(&report.stats.json());
        let ok = report.ok();
        if ok {
            println!("PASS: every request terminal, none hung, none wrong");
        } else {
            println!("FAIL: re-run with CHF_FAULT_SEED={seed} chaos --service-soak {requests}");
        }
        println!("{}", report.json());
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    let faults = count.unwrap_or(500);
    if service {
        quiet_injected_panics();
        println!(
            "service chaos campaign: {faults} faults, {clients} clients, seed {seed} \
             (set CHF_FAULT_SEED to replay)"
        );
        let report = chf_service::chaos::service_campaign(seed, faults, clients);
        println!("{report}");
        write_service_stats(&report.stats.json());
        let ok = report.ok();
        if ok {
            println!("PASS: no aborts, no miscompiles, no hung requests");
        } else {
            println!("FAIL: re-run with CHF_FAULT_SEED={seed} chaos --service {faults}");
        }
        println!("{}", report.json());
        if !ok {
            std::process::exit(1);
        }
        return;
    }

    let repro_dir = PathBuf::from("results/repros");
    println!("chaos campaign: {faults} faults, seed {seed} (set CHF_FAULT_SEED to replay)");
    let report = chf_core::chaos::campaign(seed, faults, Some(repro_dir));
    println!("{report}");
    for r in &report.repros {
        println!("  repro: {}", r.display());
    }
    let ok = report.ok();
    if ok {
        println!("PASS: no aborts, no undetected miscompiles");
    } else {
        println!("FAIL: re-run with CHF_FAULT_SEED={seed} chaos {faults}");
    }
    println!("{}", report.json());
    if !ok {
        std::process::exit(1);
    }
}
