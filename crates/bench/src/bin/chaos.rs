//! Seeded fault-injection campaign over the formation pipeline.
//!
//! Generates random programs, injects one fault each (IR corruption,
//! profile corruption, or a mid-trial corruption inside the merge window),
//! runs convergent formation under the differential oracle, and requires
//! every fault to be detected, rolled back, or survived — zero process
//! aborts, zero undetected miscompiles.
//!
//! Usage: `chaos [N]` (default 500 faults).
//! Environment: `CHF_FAULT_SEED` pins the campaign seed (default 1). Any
//! oracle-mismatch reproducers are written to `results/repros/`.
//! Exits non-zero if the campaign fails, for use as a CI gate.

use std::path::PathBuf;

fn main() {
    let faults: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(500);
    let seed = chf_core::chaos::seed_from_env().unwrap_or(1);
    let repro_dir = PathBuf::from("results/repros");

    println!("chaos campaign: {faults} faults, seed {seed} (set CHF_FAULT_SEED to replay)");
    let report = chf_core::chaos::campaign(seed, faults, Some(repro_dir));
    println!("{report}");
    for r in &report.repros {
        println!("  repro: {}", r.display());
    }
    if report.ok() {
        println!("PASS: no aborts, no undetected miscompiles");
    } else {
        println!("FAIL: re-run with CHF_FAULT_SEED={seed} chaos {faults}");
        std::process::exit(1);
    }
}
