//! `tournament` — the verify step for adaptive policy selection.
//!
//! Checks, on the 19 SPEC-like composites:
//!
//! 1. **Portfolio dominance** — the tournament winner's suite-total dynamic
//!    block count is never worse than any fixed policy column of the budget
//!    ablation (BF/HF/DF at the default budget), which it contains as
//!    entrants;
//! 2. **Winner determinism** — service-side tournaments pick the same
//!    winner (label, score, byte-identical artifact) at 1, 2, and 8
//!    workers;
//! 3. **Oracle-column byte-stability** — the `table2_budget` CSV (with its
//!    portfolio columns) is byte-identical across worker counts and, when
//!    `results/table2_budget.csv` exists, matches the committed archive;
//! 4. **Shape-cache hot path** — a second pass over the suite through the
//!    same service is answered by the CFG-shape winner cache: every
//!    tournament is a shape hit and the amortized entrants-per-tournament
//!    counter falls below the portfolio size.
//!
//! Exits non-zero on any violation; `scripts/verify.sh tournament` and CI
//! run it with the freshly generated CSV left on disk as a failure
//! artifact.

use chf_bench::csv::table2_budget_csv;
use chf_bench::table2::{self, DEFAULT_TRIAL_BUDGET};
use chf_core::TournamentConfig;
use chf_service::{CompileService, ServiceConfig, TournamentRequest};
use chf_workloads::spec_suite;

fn main() {
    let mut failed = false;
    let suite = spec_suite();
    let budget = DEFAULT_TRIAL_BUDGET;

    // 1 + 3. Budget ablation with the portfolio column, at three worker
    // counts: dominance is checked once, byte-stability across all three.
    println!("tournament: budget ablation with portfolio column ({budget} trials)");
    let mut csvs = Vec::new();
    for workers in [1usize, 2, 8] {
        let rows = table2::run_budget_with(workers, budget);
        if workers == 1 {
            let total = |k: usize| -> u64 {
                rows.iter()
                    .filter(|r| r.error.is_none())
                    .map(|r| r.results[k].1)
                    .sum()
            };
            let portfolio: u64 = rows
                .iter()
                .filter_map(|r| r.portfolio.as_ref())
                .map(|p| p.blocks)
                .sum();
            for (k, label) in ["BF", "HF", "DF"].iter().enumerate() {
                let fixed = total(k);
                println!("  suite blocks {label}@{budget}: {fixed}  portfolio: {portfolio}");
                if portfolio > fixed {
                    eprintln!("CHECK FAILED: portfolio {portfolio} blocks > fixed {label} {fixed}");
                    failed = true;
                }
            }
            for r in &rows {
                if let Some(err) = &r.error {
                    eprintln!("CHECK FAILED: {} poisoned: {err}", r.name);
                    failed = true;
                }
            }
        }
        csvs.push((workers, table2_budget_csv(&rows)));
    }
    for (workers, csv) in &csvs[1..] {
        if csv != &csvs[0].1 {
            eprintln!("CHECK FAILED: table2_budget CSV differs at {workers} workers vs 1");
            failed = true;
        }
    }
    match std::fs::read_to_string("results/table2_budget.csv") {
        Ok(committed) => {
            if committed != csvs[0].1 {
                eprintln!(
                    "CHECK FAILED: regenerated table2_budget CSV differs from the committed \
                     results/table2_budget.csv (regenerate with the summary binary)"
                );
                let _ = std::fs::write("results/table2_budget.regenerated.csv", &csvs[0].1);
                failed = true;
            } else {
                println!("  CSV byte-identical at 1/2/8 workers and vs committed archive");
            }
        }
        Err(e) => println!("  (no committed results/table2_budget.csv to compare: {e})"),
    }

    // 2. Service-side winner determinism across worker counts.
    println!("tournament: service winner determinism at 1/2/8 workers");
    let reqs: Vec<TournamentRequest> = suite
        .iter()
        .map(|w| TournamentRequest {
            function: w.function.clone(),
            profile: w.profile.clone(),
            args: w.args.clone(),
            memory: w.memory.clone(),
            config: TournamentConfig::default(),
        })
        .collect();
    let portfolio_size = TournamentConfig::default().entrants().len();
    let mut reference: Vec<(String, u64, String)> = Vec::new();
    for workers in [1usize, 2, 8] {
        let svc = CompileService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        for (i, req) in reqs.iter().enumerate() {
            let out = svc.compile_tournament(req).unwrap_or_else(|e| {
                panic!(
                    "{}: tournament failed at {workers} workers: {e}",
                    suite[i].name
                )
            });
            let got = (
                out.label.clone(),
                out.score,
                out.compiled.function.to_string(),
            );
            if workers == 1 {
                reference.push(got);
            } else if got != reference[i] {
                eprintln!(
                    "CHECK FAILED: {} winner differs at {workers} workers: {} (score {}) vs {} (score {})",
                    suite[i].name, got.0, got.1, reference[i].0, reference[i].1
                );
                failed = true;
            }
        }
    }
    if !failed {
        println!(
            "  {} composites: identical winners and artifacts",
            suite.len()
        );
    }

    // 4. Shape-cache hot path: one service, two passes.
    println!("tournament: shape-cache hot path");
    let svc = CompileService::new(ServiceConfig::default());
    for req in &reqs {
        svc.compile_tournament(req).expect("cold tournament");
    }
    let cold = svc.stats();
    for req in &reqs {
        let out = svc.compile_tournament(req).expect("hot tournament");
        if !out.shape_hit {
            eprintln!("CHECK FAILED: second pass missed the shape cache");
            failed = true;
        }
        if !out.guard_fallback && out.entrants_run != 1 {
            eprintln!(
                "CHECK FAILED: shape-cache hot path ran {} entrants, expected 1",
                out.entrants_run
            );
            failed = true;
        }
    }
    let hot = svc.stats();
    let amortized = hot.entrants_per_tournament();
    println!(
        "  {} tournaments, {} shape hits, {} guard fallbacks, amortized {:.2} entrants/tournament",
        hot.tournaments, hot.shape_hits, hot.guard_fallbacks, amortized
    );
    if hot.shape_hits < cold.tournaments {
        eprintln!(
            "CHECK FAILED: {} shape hits < {} second-pass tournaments",
            hot.shape_hits, cold.tournaments
        );
        failed = true;
    }
    if amortized >= portfolio_size as f64 {
        eprintln!(
            "CHECK FAILED: amortized entrants {amortized:.2} did not fall below the \
             portfolio size {portfolio_size}"
        );
        failed = true;
    }

    if failed {
        std::process::exit(1);
    }
    println!("tournament: all checks passed");
}
