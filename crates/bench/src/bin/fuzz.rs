//! Tiered differential-fuzzing campaigns over the persistent trace corpus.
//!
//! Three modes share one binary:
//!
//! * **Replay** (`--replay`): re-measure every corpus entry under
//!   `tests/corpus/` and fail on any digest or outcome drift. Fast and
//!   deterministic — the JSON summary is byte-identical at any worker
//!   count.
//! * **Smoke** (`--smoke`, the CI gate): full corpus replay, a 500-fault
//!   chaos campaign feeding the fault-classification coverage rows, and a
//!   short coverage-guided generation loop that admits newly-covered
//!   minimized entries to the corpus.
//! * **Long** (`--long N`, nightly): the same campaign scaled to `N`
//!   faults with a proportionally longer guided loop.
//!
//! Usage: `fuzz [--replay|--smoke|--long N] [--corpus DIR] [--seed S]
//! [--no-admit]`. Environment: `CHF_JOBS` caps replay workers;
//! `CHF_CORPUS_REPLAY_CEILING_S` (default 10) is the replay-time budget the
//! gate enforces. The last line on stdout is always a one-line JSON
//! summary, also written to `results/corpus_summary.json`. Exits non-zero
//! on drift, chaos failure, or a blown replay-time budget.

use chf_corpus::{replay_corpus, run_fuzz, FuzzConfig};
use chf_service::parallel::workers;
use std::path::PathBuf;
use std::time::Instant;

/// Default campaign seed. Fixed so the CI gate is reproducible; nightly
/// runs pass an explicit `--seed` to explore.
const DEFAULT_SEED: u64 = 0x5EED_C0DE;

enum Mode {
    Replay,
    Smoke,
    Long(usize),
}

fn usage() -> ! {
    eprintln!("usage: fuzz [--replay|--smoke|--long N] [--corpus DIR] [--seed S] [--no-admit]");
    std::process::exit(2);
}

fn main() {
    let mut mode = Mode::Smoke;
    let mut corpus = PathBuf::from("tests/corpus");
    let mut seed = DEFAULT_SEED;
    let mut admit_new = true;
    let mut args = std::env::args().skip(1);
    while let Some(a) = args.next() {
        match a.as_str() {
            "--replay" => mode = Mode::Replay,
            "--smoke" => mode = Mode::Smoke,
            "--long" => match args.next().and_then(|s| s.parse().ok()) {
                Some(n) => mode = Mode::Long(n),
                None => usage(),
            },
            "--corpus" => match args.next() {
                Some(d) => corpus = PathBuf::from(d),
                None => usage(),
            },
            "--seed" => match args.next().and_then(|s| s.parse().ok()) {
                Some(s) => seed = s,
                None => usage(),
            },
            "--no-admit" => admit_new = false,
            _ => usage(),
        }
    }

    // Replay gate: every mode starts by proving the existing corpus still
    // measures exactly as pinned.
    let jobs = workers();
    let started = Instant::now();
    let replay = match replay_corpus(&corpus, jobs) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("corpus load failed: {e}");
            std::process::exit(1);
        }
    };
    let replay_s = started.elapsed().as_secs_f64();
    println!(
        "corpus replay: {} entries, {} clean, {} drifted ({jobs} workers, {replay_s:.2} s)",
        replay.entries,
        replay.clean,
        replay.drifts.len()
    );
    for d in &replay.drifts {
        println!("  drift: {d}");
    }
    let ceiling_s: f64 = std::env::var("CHF_CORPUS_REPLAY_CEILING_S")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(10.0);
    let too_slow = replay_s > ceiling_s;
    if too_slow {
        println!(
            "FAIL: replay took {replay_s:.2} s, over the {ceiling_s:.0} s budget — \
             the corpus has outgrown its gate; prune or raise CHF_CORPUS_REPLAY_CEILING_S"
        );
    }

    // Campaign half.
    let fuzz = match mode {
        Mode::Replay => None,
        Mode::Smoke => {
            println!("fuzz smoke: seed {seed:#x} (500 faults + guided loop)");
            Some(FuzzConfig::smoke(corpus.clone(), seed))
        }
        Mode::Long(n) => {
            println!("fuzz long: seed {seed:#x}, {n} faults");
            Some(FuzzConfig::long(corpus.clone(), seed, n))
        }
    }
    .map(|mut config| {
        config.admit_new = admit_new;
        match run_fuzz(&config) {
            Ok(r) => r,
            Err(e) => {
                eprintln!("fuzz campaign failed: {e}");
                std::process::exit(1);
            }
        }
    });

    let mut ok = replay.is_clean() && !too_slow;
    let summary = match &fuzz {
        None => format!("{{{}}}", replay.json_fragment()),
        Some(f) => {
            println!(
                "guided loop: {} evaluated, {} filtered, {} new cells, {} admitted; \
                 chaos {}",
                f.evaluated,
                f.filtered,
                f.new_cells,
                f.admitted.len(),
                if f.chaos_ok { "clean" } else { "FAILED" }
            );
            for path in &f.admitted {
                println!("  admitted: {path}");
            }
            ok &= f.chaos_ok;
            format!("{{{},{}}}", replay.json_fragment(), f.json_fragment())
        }
    };

    if std::fs::create_dir_all("results").is_ok() {
        let path = PathBuf::from("results/corpus_summary.json");
        if let Err(e) = std::fs::write(&path, format!("{summary}\n")) {
            eprintln!("warning: could not write {}: {e}", path.display());
        } else {
            println!("  summary: {}", path.display());
        }
    }
    if ok {
        println!("PASS: corpus replays clean");
    } else {
        println!("FAIL: see drifts/chaos above");
    }
    println!("{summary}");
    if !ok {
        std::process::exit(1);
    }
}
