//! Regenerate the paper's Table 3.

fn main() {
    let rows = chf_bench::table3::run();
    println!("Table 3: % improvement in dynamic block counts over basic blocks (BB)");
    println!("on the SPEC2000-like composites (functional simulation).\n");
    print!("{}", chf_bench::table3::render(&rows));
}
