//! Regenerate the paper's Figure 7 (as scatter data + regression).

fn main() {
    let (points, fit) = chf_bench::fig7::run();
    println!("Figure 7: cycle-count reduction vs block-count reduction");
    println!("(one point per benchmark x configuration from Table 1)\n");
    print!("{}", chf_bench::fig7::render(&points, &fit));
}
