//! Run the complete evaluation: Tables 1-3 and Figure 7, printing the
//! tables and archiving CSVs under `results/`.

fn main() {
    std::fs::create_dir_all("results").ok();
    println!("=== Table 1 ===\n");
    let t1 = chf_bench::table1::run();
    print!("{}", chf_bench::table1::render(&t1));

    println!("\n=== Table 2 ===\n");
    let t2 = chf_bench::table2::run();
    print!("{}", chf_bench::table2::render(&t2));

    let budget = chf_bench::table2::DEFAULT_TRIAL_BUDGET;
    println!("\n=== Table 2 budget ablation (cap: {budget} trials/function) ===\n");
    let t2b = chf_bench::table2::run_budget();
    print!("{}", chf_bench::table2::render_budget(&t2b, budget));

    println!("\n=== Table 3 ===\n");
    let t3 = chf_bench::table3::run();
    print!("{}", chf_bench::table3::render(&t3));

    println!("\n=== Figure 7 ===\n");
    let pts = chf_bench::fig7::points(&t1);
    let fit = chf_bench::fig7::linear_fit(&pts);
    println!(
        "{} points, fit: cycles_saved = {:.2} * blocks_saved + {:.1}, r^2 = {:.3}",
        pts.len(),
        fit.slope,
        fit.intercept,
        fit.r2
    );

    for (name, data) in [
        ("results/table1.csv", chf_bench::csv::table1_csv(&t1)),
        ("results/table2.csv", chf_bench::csv::table2_csv(&t2)),
        (
            "results/table2_budget.csv",
            chf_bench::csv::table2_budget_csv(&t2b),
        ),
        ("results/table3.csv", chf_bench::csv::table3_csv(&t3)),
        ("results/fig7.csv", chf_bench::csv::fig7_csv(&pts, &fit)),
    ] {
        match std::fs::write(name, data) {
            Ok(()) => println!("wrote {name}"),
            Err(e) => eprintln!("could not write {name}: {e}"),
        }
    }
}
