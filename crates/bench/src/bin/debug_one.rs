//! Diagnostic: per-configuration breakdown for one microbenchmark.
//!
//! Usage: `debug_one [benchmark] [--ir] [--trace]`

use chf_core::pipeline::{compile, CompileConfig, PhaseOrdering};
use chf_sim::timing::{simulate_timing, simulate_timing_traced, TimingConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "art_1".into());
    let show_ir = std::env::args().any(|a| a == "--ir");
    let show_trace = std::env::args().any(|a| a == "--trace");
    let all = chf_workloads::microbenchmarks();
    let w = all
        .iter()
        .find(|w| w.name == name)
        .expect("unknown benchmark");

    for ordering in [
        PhaseOrdering::BasicBlocks,
        PhaseOrdering::Upio,
        PhaseOrdering::Iupo,
        PhaseOrdering::IupThenO,
        PhaseOrdering::Iupo_,
    ] {
        let c = compile(
            &w.function,
            &w.profile,
            &CompileConfig::with_ordering(ordering),
        );
        let t = simulate_timing(&c.function, &w.args, &w.memory, &TimingConfig::trips()).unwrap();
        println!(
            "{:8} cycles={:7} blocks={:6} fetched={:7} exec={:7} nullified={:6} mispred={:5}/{:5} static_blocks={} mtup={}",
            ordering.label(), t.cycles, t.blocks_executed, t.insts_fetched, t.insts_executed,
            t.insts_nullified, t.mispredictions, t.predictions, c.function.block_count(), c.stats.mtup(),
        );
        if show_ir && ordering == PhaseOrdering::Iupo_ {
            println!("{}", c.function);
        }
        if show_trace && ordering == PhaseOrdering::Iupo_ {
            let (_, trace) =
                simulate_timing_traced(&c.function, &w.args, &w.memory, &TimingConfig::trips())
                    .unwrap();
            trace.check().unwrap();
            // Aggregate residency (commit - dispatch) per static block.
            let mut per_block: std::collections::HashMap<_, (u64, u64)> =
                std::collections::HashMap::new();
            for e in &trace.events {
                let entry = per_block.entry(e.block).or_insert((0, 0));
                entry.0 += e.commit - e.dispatch;
                entry.1 += 1;
            }
            let mut rows: Vec<_> = per_block.into_iter().collect();
            rows.sort_by_key(|(_, (total, _))| std::cmp::Reverse(*total));
            println!("hottest blocks by total residency (cycles, executions, mean):");
            for (b, (total, n)) in rows.into_iter().take(5) {
                println!(
                    "  {b}: {total} cycles over {n} runs ({:.1}/run)",
                    total as f64 / n as f64
                );
            }
        }
    }
}

#[cfg(test)]
mod force_rebuild {}
