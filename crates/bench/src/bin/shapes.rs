//! Block-shape report: how "converged" are the formed hyperblocks?
//!
//! For every microbenchmark, prints the static shape of the basic-block
//! form and of the convergent (IUPO) output — mean/max block sizes relative
//! to the 128-slot budget, predication fraction, and single-exit counts.

use chf_core::pipeline::{compile, CompileConfig};
use chf_ir::stats::FunctionStats;

fn main() {
    let budget = chf_core::BlockConstraints::trips().max_insts;
    println!("Block shapes: basic blocks vs convergent hyperblocks (budget {budget} slots)\n");
    println!(
        "{:<15} {:>7} {:>9} {:>7} | {:>7} {:>9} {:>7} {:>6} {:>7}",
        "benchmark", "blocks", "mean", "fill%", "blocks", "mean", "max", "fill%", "pred%"
    );
    println!("{}", "-".repeat(88));

    let (mut fills, mut n) = (0.0, 0);
    for w in chf_workloads::microbenchmarks() {
        let before = FunctionStats::of(&w.function);
        let c = compile(&w.function, &w.profile, &CompileConfig::convergent());
        let after = FunctionStats::of(&c.function);
        println!(
            "{:<15} {:>7} {:>9.1} {:>6.0}% | {:>7} {:>9.1} {:>7} {:>5.0}% {:>6.0}%",
            w.name,
            before.blocks,
            before.mean_block_slots,
            before.fill_ratio(budget) * 100.0,
            after.blocks,
            after.mean_block_slots,
            after.max_block_slots,
            after.fill_ratio(budget) * 100.0,
            after.predicated_fraction * 100.0,
        );
        fills += after.fill_ratio(budget);
        n += 1;
    }
    println!(
        "\naverage post-formation fill: {:.0}% of the structural budget",
        fills / n as f64 * 100.0
    );
}
