//! Regenerate the paper's Table 2.

fn main() {
    let rows = chf_bench::table2::run();
    println!("Table 2: % cycle-count improvement over basic blocks (BB) using");
    println!("VLIW, convergent VLIW, depth-first (DF) and breadth-first (BF) heuristics.\n");
    print!("{}", chf_bench::table2::render(&rows));
}
