//! Regenerate the paper's Table 2, plus the equal-budget policy ablation.

fn main() {
    let rows = chf_bench::table2::run();
    println!("Table 2: % cycle-count improvement over basic blocks (BB) using");
    println!("VLIW, convergent VLIW, depth-first (DF), breadth-first (BF), and");
    println!("profile-guided hot-first (HF) heuristics.\n");
    print!("{}", chf_bench::table2::render(&rows));

    let budget = chf_bench::table2::DEFAULT_TRIAL_BUDGET;
    println!("\nBudget ablation: % dynamic-block improvement on the SPEC-like");
    println!("composites with formation capped at {budget} trials per function");
    println!("(ledger column: trials spent / candidates skipped for budget).\n");
    let brows = chf_bench::table2::run_budget();
    print!("{}", chf_bench::table2::render_budget(&brows, budget));
}
