//! End-to-end cycle simulation of the SPEC-like composites with a
//! measured-vs-model comparison (see `chf_bench::whole_program`), plus the
//! sharded-simulation scaling probe.
//!
//! Usage:
//!
//! ```sh
//! whole_program                # full suite, parallel; archives results/whole_program.csv
//! whole_program --smoke       # 3-composite prefix, sequential (CI budget)
//! whole_program --shard-smoke # sharded==sequential check + scaling probe
//! ```
//!
//! `--shard-smoke` cycle-simulates the convergent form of every composite
//! through the sharded simulator at several worker counts, cross-checking
//! each stitched cycle count against the sequential engine, archives
//! `results/sim_scaling.csv`, and fails if any stitch fell back to
//! sequential re-simulation or if multi-worker throughput falls below
//! `CHF_SIM_SCALE_FLOOR` × single-worker throughput (default `0.0`, i.e.
//! disabled: the reference container is single-core, so a hard speedup
//! gate would institutionalize a number the hardware cannot produce; CI
//! sets the floor explicitly on multi-core runners).

fn shard_smoke() {
    let workers = chf_bench::parallel::workers();
    let mut counts = vec![1usize, 2];
    if !counts.contains(&workers) {
        counts.push(workers);
    }
    let rows =
        match chf_bench::sharded::measure_scaling(&counts, &chf_sim::ShardConfig::default(), 2) {
            Ok(rows) => rows,
            Err(e) => {
                eprintln!("shard-smoke FAILED: {e}");
                std::process::exit(1);
            }
        };
    println!("Sharded whole-program simulation: composite suite, convergent form");
    println!("(every stitched cycle count cross-checked against the sequential engine)\n");
    for r in &rows {
        println!(
            "  workers {:>2}: {:8.2} ms  {:8.2} Mcycles/s  ({} shards, {} narrow, {} checkpoint bytes, {} fallbacks)",
            r.workers, r.wall_ms, r.mcps, r.shards, r.narrow_shards, r.checkpoint_bytes, r.fallbacks
        );
    }
    std::fs::create_dir_all("results").ok();
    let csv = chf_bench::sharded::scaling_csv(&rows);
    match std::fs::write("results/sim_scaling.csv", &csv) {
        Ok(()) => println!("\nwrote results/sim_scaling.csv"),
        Err(e) => eprintln!("\ncould not write results/sim_scaling.csv: {e}"),
    }

    let fallbacks: usize = rows.iter().map(|r| r.fallbacks).sum();
    if fallbacks > 0 {
        eprintln!("shard-smoke FAILED: {fallbacks} stitch(es) fell back to sequential");
        std::process::exit(1);
    }
    let floor: f64 = std::env::var("CHF_SIM_SCALE_FLOOR")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0.0);
    if floor > 0.0 {
        let base = rows.iter().find(|r| r.workers == 1).map(|r| r.mcps);
        let best = rows
            .iter()
            .filter(|r| r.workers > 1)
            .map(|r| r.mcps)
            .fold(f64::NEG_INFINITY, f64::max);
        if let Some(base) = base {
            let ratio = best / base;
            if ratio < floor {
                eprintln!(
                    "shard-smoke FAILED: multi-worker throughput ratio {ratio:.2} < \
                     CHF_SIM_SCALE_FLOOR {floor:.2} (base {base:.2} Mcycles/s)"
                );
                std::process::exit(1);
            }
            println!("scale check OK: ratio {ratio:.2} >= floor {floor:.2}");
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    if args.iter().any(|a| a == "--shard-smoke") {
        shard_smoke();
        return;
    }
    let smoke = args.iter().any(|a| a == "--smoke");
    let (workers, limit) = if smoke {
        (1, 3)
    } else {
        (chf_bench::parallel::workers(), usize::MAX)
    };
    let (rows, fit) = chf_bench::whole_program::run_with(workers, limit);
    println!("Whole-program cycle simulation of the SPEC-like composites");
    println!("(convergent vs basic blocks, end-to-end on the reference input)\n");
    print!("{}", chf_bench::whole_program::render(&rows, &fit));
    if !smoke {
        std::fs::create_dir_all("results").ok();
        let csv = chf_bench::csv::whole_program_csv(&rows, &fit);
        match std::fs::write("results/whole_program.csv", &csv) {
            Ok(()) => println!("wrote results/whole_program.csv"),
            Err(e) => eprintln!("could not write results/whole_program.csv: {e}"),
        }
    }
    if rows.iter().any(|r| r.error.is_some()) {
        std::process::exit(1);
    }
}
