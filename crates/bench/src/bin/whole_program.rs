//! End-to-end cycle simulation of the SPEC-like composites with a
//! measured-vs-model comparison (see `chf_bench::whole_program`).
//!
//! Usage:
//!
//! ```sh
//! whole_program            # full suite, parallel
//! whole_program --smoke    # 3-composite prefix, sequential (CI budget)
//! ```

fn main() {
    let smoke = std::env::args().any(|a| a == "--smoke");
    let (workers, limit) = if smoke {
        (1, 3)
    } else {
        (chf_bench::parallel::workers(), usize::MAX)
    };
    let (rows, fit) = chf_bench::whole_program::run_with(workers, limit);
    println!("Whole-program cycle simulation of the SPEC-like composites");
    println!("(convergent vs basic blocks, end-to-end on the reference input)\n");
    print!("{}", chf_bench::whole_program::render(&rows, &fit));
    if rows.iter().any(|r| r.error.is_some()) {
        std::process::exit(1);
    }
}
