//! CSV serialization of experiment results, for plotting Figure 7 and
//! archiving table data (`summary` writes these under `results/`).

use crate::{fig7, table1, table2, table3, whole_program};
use std::fmt::Write as _;

/// The sentinel written in place of numbers for a poisoned row. Downstream
/// consumers (plot scripts, spreadsheet imports) can filter on the first
/// data column equalling this token.
pub const POISONED_SENTINEL: &str = "POISONED";

/// A failure message flattened to a single CSV-safe cell (no commas, no
/// newlines).
fn csv_safe(msg: &str) -> String {
    msg.replace(['\n', '\r'], " ").replace(',', ";")
}

/// Table 1 rows as CSV. Poisoned rows become
/// `name,POISONED,<message>` — a sentinel line, never fabricated zeros.
pub fn table1_csv(rows: &[table1::Row]) -> String {
    let mut out = String::from("benchmark,bb_cycles,bb_blocks");
    if let Some(first) = rows.iter().find(|r| r.error.is_none()) {
        for c in &first.configs {
            let _ = write!(
                out,
                ",{0}_cycles,{0}_blocks,{0}_improvement,{0}_mtup,{0}_util",
                c.label.replace(['(', ')'], "")
            );
        }
    }
    out.push('\n');
    for r in rows {
        if let Some(err) = &r.error {
            let _ = writeln!(out, "{},{},{}", r.name, POISONED_SENTINEL, csv_safe(err));
            continue;
        }
        let _ = write!(out, "{},{},{}", r.name, r.bb_cycles, r.bb_blocks);
        for c in &r.configs {
            let _ = write!(
                out,
                ",{},{},{:.2},{},{}",
                c.cycles,
                c.blocks,
                c.improvement,
                c.stats.mtup(),
                c.stats.utilization()
            );
        }
        out.push('\n');
    }
    out
}

/// Table 2 rows as CSV (poisoned rows as in [`table1_csv`]).
pub fn table2_csv(rows: &[table2::Row]) -> String {
    let mut out = String::from("benchmark,bb_cycles");
    if let Some(first) = rows.iter().find(|r| r.error.is_none()) {
        for (label, ..) in &first.results {
            let safe = label.replace(' ', "_");
            let _ = write!(
                out,
                ",{safe}_cycles,{safe}_improvement,{safe}_mispredict_rate,{safe}_util"
            );
        }
    }
    out.push('\n');
    for r in rows {
        if let Some(err) = &r.error {
            let _ = writeln!(out, "{},{},{}", r.name, POISONED_SENTINEL, csv_safe(err));
            continue;
        }
        let _ = write!(out, "{},{}", r.name, r.bb_cycles);
        for (_, cycles, improvement, mr, stats) in &r.results {
            let _ = write!(
                out,
                ",{cycles},{improvement:.2},{mr:.4},{}",
                stats.utilization()
            );
        }
        out.push('\n');
    }
    out
}

/// Budget-ablation rows as CSV: per policy, the dynamic block count, the
/// improvement over basic blocks, and the trial ledger (trials spent,
/// candidates skipped for budget, and the full `m/t/u/p` string).
/// Poisoned rows as in [`table1_csv`].
pub fn table2_budget_csv(rows: &[table2::BudgetRow]) -> String {
    let mut out = String::from("benchmark,bb_blocks");
    if let Some(first) = rows.iter().find(|r| r.error.is_none()) {
        for (label, ..) in &first.results {
            let _ = write!(
                out,
                ",{label}_blocks,{label}_improvement,{label}_trials,{label}_skipped,{label}_mtup"
            );
        }
        out.push_str(",portfolio_blocks,portfolio_improvement,portfolio_winner,portfolio_entrants");
    }
    out.push('\n');
    for r in rows {
        if let Some(err) = &r.error {
            let _ = writeln!(out, "{},{},{}", r.name, POISONED_SENTINEL, csv_safe(err));
            continue;
        }
        let _ = write!(out, "{},{}", r.name, r.bb_blocks);
        for (_, blocks, improvement, stats) in &r.results {
            let _ = write!(
                out,
                ",{blocks},{improvement:.2},{},{},{}",
                stats.trials,
                stats.budget_skipped,
                stats.mtup()
            );
        }
        if let Some(p) = &r.portfolio {
            let _ = write!(
                out,
                ",{},{:.2},{},{}",
                p.blocks, p.improvement, p.winner, p.stats.tournament_entrants
            );
        }
        out.push('\n');
    }
    out
}

/// Table 3 rows as CSV (poisoned rows as in [`table1_csv`]).
pub fn table3_csv(rows: &[table3::Row]) -> String {
    let mut out = String::from("benchmark,bb_blocks");
    if let Some(first) = rows.iter().find(|r| r.error.is_none()) {
        for (label, ..) in &first.results {
            let safe = label.replace(['(', ')'], "");
            let _ = write!(out, ",{safe}_blocks,{safe}_improvement");
        }
    }
    out.push('\n');
    for r in rows {
        if let Some(err) = &r.error {
            let _ = writeln!(out, "{},{},{}", r.name, POISONED_SENTINEL, csv_safe(err));
            continue;
        }
        let _ = write!(out, "{},{}", r.name, r.bb_blocks);
        for (_, blocks, improvement) in &r.results {
            let _ = write!(out, ",{blocks},{improvement:.2}");
        }
        out.push('\n');
    }
    out
}

/// Whole-program measured-vs-model rows as CSV, with the fit appended as
/// a comment line (poisoned rows as in [`table1_csv`]). Deterministic:
/// byte-identical at any worker count.
pub fn whole_program_csv(rows: &[whole_program::Row], fit: &fig7::Fit) -> String {
    let mut out = String::from(
        "benchmark,bb_blocks,hb_blocks,block_improvement,bb_cycles,hb_cycles,\
         cycle_improvement,hb_insts,hb_shards,stitched\n",
    );
    for r in rows {
        if let Some(err) = &r.error {
            let _ = writeln!(out, "{},{},{}", r.name, POISONED_SENTINEL, csv_safe(err));
            continue;
        }
        let _ = writeln!(
            out,
            "{},{},{},{:.2},{},{},{:.2},{},{},{}",
            r.name,
            r.bb_blocks,
            r.hb_blocks,
            r.block_improvement(),
            r.bb_cycles,
            r.hb_cycles,
            r.cycle_improvement(),
            r.hb_insts,
            r.hb_shards,
            r.stitched
        );
    }
    let _ = writeln!(
        out,
        "# fit: slope={:.4} intercept={:.2} r2={:.4}",
        fit.slope, fit.intercept, fit.r2
    );
    out
}

/// Figure 7 scatter points as CSV.
pub fn fig7_csv(points: &[fig7::Point], fit: &fig7::Fit) -> String {
    let mut out = String::from("block_reduction,cycle_reduction\n");
    for p in points {
        let _ = writeln!(out, "{:.1},{:.1}", p.block_reduction, p.cycle_reduction);
    }
    let _ = writeln!(
        out,
        "# fit: slope={:.4} intercept={:.2} r2={:.4}",
        fit.slope, fit.intercept, fit.r2
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fig7::{Fit, Point};

    #[test]
    fn fig7_csv_shape() {
        let pts = vec![
            Point {
                block_reduction: 10.0,
                cycle_reduction: 25.0,
            },
            Point {
                block_reduction: 0.0,
                cycle_reduction: -3.0,
            },
        ];
        let fit = Fit {
            slope: 2.5,
            intercept: 0.0,
            r2: 1.0,
        };
        let csv = fig7_csv(&pts, &fit);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 4);
        assert_eq!(lines[0], "block_reduction,cycle_reduction");
        assert!(lines[3].starts_with("# fit"));
    }

    #[test]
    fn table_csvs_have_headers_and_rows() {
        let w = chf_workloads::micro::vadd();
        let rows = vec![crate::table1::measure(&w)];
        let csv = table1_csv(&rows);
        assert!(csv.starts_with("benchmark,bb_cycles,bb_blocks"));
        assert_eq!(csv.lines().count(), 2);
        assert!(csv.contains("vadd"));
    }
}
