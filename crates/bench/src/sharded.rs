//! Parallel driver for the sharded whole-program simulator.
//!
//! `chf-sim` owns the mechanism — checkpoint planning, per-shard replay,
//! and the validating stitch (see `chf_sim::shard`) — and stays
//! pool-agnostic. This module owns the policy: it fans the independent
//! per-shard simulations across the harness's scoped thread pool
//! ([`crate::parallel::par_map_isolated`], worker count from `CHF_JOBS`)
//! and feeds the results, in shard order, to the stitcher. A shard worker
//! that panics is retried once by the pool and otherwise surfaces as a
//! per-shard error, which the stitcher converts into a sequential
//! re-simulation — so the parallel entry point returns byte-identical
//! results at any worker count, even under fault injection.
//!
//! [`measure_scaling`] is the throughput probe built on top: it compiles
//! the convergent form of every SPEC-like composite once, then
//! cycle-simulates the whole suite end-to-end at several worker counts,
//! cross-checking every stitched result against the sequential engine.

use crate::parallel::par_map_isolated;
use chf_core::pipeline::{try_compile, CompileConfig};
use chf_sim::functional::SimError;
use chf_sim::timing::{simulate_timing_lowered, TimingConfig};
use chf_sim::{plan_shards, simulate_shard, stitch, LoweredProgram, ShardConfig, StitchedTiming};
use chf_workloads::spec_suite;
use std::time::Instant;

/// Sharded whole-program timing simulation with the per-shard replays
/// spread across `workers` threads.
///
/// Identical in observable behaviour to
/// [`chf_sim::simulate_timing_sharded_seq`] (and therefore to
/// [`simulate_timing_lowered`]) at every worker count: parallelism only
/// changes wall-clock time.
///
/// # Errors
/// As the sequential engine — validation failures degrade to the
/// sequential fallback instead of erroring.
pub fn simulate_timing_sharded(
    p: &LoweredProgram,
    args: &[i64],
    mem_init: &[(i64, i64)],
    config: &TimingConfig,
    shard: &ShardConfig,
    workers: usize,
) -> Result<StitchedTiming, SimError> {
    let plan = match plan_shards(p, args, mem_init, config, shard) {
        Ok(plan) => plan,
        Err(e) => {
            // Planning mirrors the timing model's error discipline, so the
            // sequential run normally re-raises the same error; if it
            // somehow succeeds, its result is correct by definition.
            let result = simulate_timing_lowered(p, args, mem_init, config)?;
            return Ok(StitchedTiming {
                result,
                shards: 1,
                checkpoint_bytes: 0,
                narrow_shards: 0,
                fallback: Some(format!("plan: {e}")),
            });
        }
    };
    let ks: Vec<usize> = (0..plan.n_shards()).collect();
    let runs = par_map_isolated(&ks, workers, |&k| simulate_shard(p, config, &plan, k))
        .into_iter()
        .map(|r| match r {
            Ok(inner) => inner,
            Err(panic_msg) => Err(format!("shard worker panicked: {panic_msg}")),
        })
        .collect();
    stitch(p, args, mem_init, config, &plan, runs)
}

/// One worker-count sample of the sharded-simulation throughput probe.
#[derive(Clone, Debug)]
pub struct ScalingRow {
    /// Worker threads used for the per-shard replays.
    pub workers: usize,
    /// Wall-clock time to cycle-simulate the whole composite suite (ms,
    /// best of the measured repetitions).
    pub wall_ms: f64,
    /// Total cycles simulated across the suite.
    pub cycles: u64,
    /// Throughput in Mcycles per wall-clock second.
    pub mcps: f64,
    /// Total shards across the suite.
    pub shards: usize,
    /// Shards that ran with 32-bit cycle timestamps.
    pub narrow_shards: usize,
    /// Approximate bytes of recorded checkpoint state across the suite.
    pub checkpoint_bytes: usize,
    /// Programs whose stitch fell back to sequential re-simulation.
    pub fallbacks: usize,
}

/// A composite's convergent form, compiled and lowered once for the
/// scaling probe.
struct Prepared {
    name: String,
    p: LoweredProgram,
    args: Vec<i64>,
    memory: Vec<(i64, i64)>,
    seq_cycles: u64,
}

fn prepare_suite(config: &TimingConfig) -> Result<Vec<Prepared>, String> {
    spec_suite()
        .iter()
        .map(|w| {
            let compiled = try_compile(&w.function, &w.profile, &CompileConfig::convergent())
                .map_err(|e| format!("{}: compilation failed: {e}", w.name))?;
            let p = LoweredProgram::lower(&compiled.function);
            let seq = simulate_timing_lowered(&p, &w.args, &w.memory, config)
                .map_err(|e| format!("{}: sequential simulation failed: {e}", w.name))?;
            Ok(Prepared {
                name: w.name.clone(),
                p,
                args: w.args.clone(),
                memory: w.memory.clone(),
                seq_cycles: seq.cycles,
            })
        })
        .collect()
}

/// Cycle-simulate the convergent form of every composite end-to-end at
/// each worker count in `worker_counts`, `reps` times each (best wall
/// time kept), cross-checking every stitched cycle count against the
/// sequential engine.
///
/// # Errors
/// A message naming the composite when compilation or simulation fails,
/// or when a stitched result diverges from the sequential engine (which
/// the fallback design makes impossible short of a harness bug).
pub fn measure_scaling(
    worker_counts: &[usize],
    shard: &ShardConfig,
    reps: usize,
) -> Result<Vec<ScalingRow>, String> {
    let config = TimingConfig::trips();
    let suite = prepare_suite(&config)?;
    let mut rows = Vec::with_capacity(worker_counts.len());
    for &workers in worker_counts {
        let mut best_ms = f64::INFINITY;
        let mut cycles = 0u64;
        let mut shards = 0usize;
        let mut narrow_shards = 0usize;
        let mut checkpoint_bytes = 0usize;
        let mut fallbacks = 0usize;
        for _ in 0..reps.max(1) {
            cycles = 0;
            shards = 0;
            narrow_shards = 0;
            checkpoint_bytes = 0;
            fallbacks = 0;
            let t = Instant::now();
            for pr in &suite {
                let sh =
                    simulate_timing_sharded(&pr.p, &pr.args, &pr.memory, &config, shard, workers)
                        .map_err(|e| format!("{}: sharded simulation failed: {e}", pr.name))?;
                if sh.result.cycles != pr.seq_cycles {
                    return Err(format!(
                        "{}: sharded cycles {} != sequential {}",
                        pr.name, sh.result.cycles, pr.seq_cycles
                    ));
                }
                cycles += sh.result.cycles;
                shards += sh.shards;
                narrow_shards += sh.narrow_shards;
                checkpoint_bytes += sh.checkpoint_bytes;
                fallbacks += usize::from(sh.fallback.is_some());
            }
            best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
        }
        let mcps = cycles as f64 / 1e6 / (best_ms / 1e3);
        rows.push(ScalingRow {
            workers,
            wall_ms: best_ms,
            cycles,
            mcps,
            shards,
            narrow_shards,
            checkpoint_bytes,
            fallbacks,
        });
    }
    Ok(rows)
}

/// One sample of the *unsharded* sequential engine over the same suite —
/// the reference point for [`ScalingRow`]'s overhead accounting.
#[derive(Clone, Debug)]
pub struct UnshardedRow {
    /// Wall-clock time to cycle-simulate the whole composite suite (ms,
    /// best of the measured repetitions).
    pub wall_ms: f64,
    /// Total cycles simulated across the suite.
    pub cycles: u64,
    /// Throughput in Mcycles per wall-clock second.
    pub mcps: f64,
}

/// Cycle-simulate the convergent form of every composite end-to-end with
/// the plain sequential engine (no checkpoint plan, no stitch), `reps`
/// times (best wall time kept). Dividing this throughput by the 1-worker
/// sharded throughput of [`measure_scaling`] gives the sharding machinery's
/// overhead ratio: plan + replay-from-checkpoint + validating stitch,
/// isolated from any parallel speedup.
///
/// # Errors
/// A message naming the composite when compilation or simulation fails.
pub fn measure_unsharded(reps: usize) -> Result<UnshardedRow, String> {
    let config = TimingConfig::trips();
    let suite = prepare_suite(&config)?;
    let mut best_ms = f64::INFINITY;
    let mut cycles = 0u64;
    for _ in 0..reps.max(1) {
        cycles = 0;
        let t = Instant::now();
        for pr in &suite {
            let r = simulate_timing_lowered(&pr.p, &pr.args, &pr.memory, &config)
                .map_err(|e| format!("{}: sequential simulation failed: {e}", pr.name))?;
            if r.cycles != pr.seq_cycles {
                return Err(format!(
                    "{}: sequential engine is nondeterministic: {} != {}",
                    pr.name, r.cycles, pr.seq_cycles
                ));
            }
            cycles += r.cycles;
        }
        best_ms = best_ms.min(t.elapsed().as_secs_f64() * 1e3);
    }
    Ok(UnshardedRow {
        wall_ms: best_ms,
        cycles,
        mcps: cycles as f64 / 1e6 / (best_ms / 1e3),
    })
}

/// Render scaling rows as CSV (`results/sim_scaling.csv`).
pub fn scaling_csv(rows: &[ScalingRow]) -> String {
    use std::fmt::Write as _;
    let mut out = String::from(
        "workers,wall_ms,cycles,mcycles_per_sec,shards,narrow_shards,checkpoint_bytes,fallbacks\n",
    );
    for r in rows {
        let _ = writeln!(
            out,
            "{},{:.2},{},{:.2},{},{},{},{}",
            r.workers,
            r.wall_ms,
            r.cycles,
            r.mcps,
            r.shards,
            r.narrow_shards,
            r.checkpoint_bytes,
            r.fallbacks
        );
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::ids::Reg;
    use chf_ir::instr::Operand;

    /// A long store loop: enough dynamic blocks to split into many shards.
    fn looped() -> LoweredProgram {
        let mut fb = FunctionBuilder::new("bench-shard-loop", 2);
        let entry = fb.create_block();
        let body = fb.create_block();
        let done = fb.create_block();
        fb.switch_to(entry);
        let i = fb.add(Operand::Reg(Reg(0)), Operand::Imm(0));
        fb.jump(body);
        fb.switch_to(body);
        fb.store(Operand::Reg(i), Operand::Reg(i));
        let t = fb.sub(Operand::Reg(i), Operand::Imm(1));
        fb.mov_to(i, Operand::Reg(t));
        let z = fb.cmp_le(Operand::Reg(i), Operand::Imm(0));
        fb.branch(z, done, body);
        fb.switch_to(done);
        fb.ret(Some(Operand::Reg(Reg(0))));
        LoweredProgram::lower(&fb.build().unwrap())
    }

    /// The parallel driver is worker-count invariant and identical to the
    /// sequential engine, with no fallback on a steady-state loop.
    #[test]
    fn worker_count_invariant() {
        let p = looped();
        let cfg = TimingConfig::trips();
        let scfg = ShardConfig {
            shard_blocks: 128,
            warmup_blocks: 48,
        };
        let seq = simulate_timing_lowered(&p, &[1000, 0], &[], &cfg).unwrap();
        let mut stitched: Vec<StitchedTiming> = Vec::new();
        for workers in [1usize, 2, 8] {
            let sh = simulate_timing_sharded(&p, &[1000, 0], &[], &cfg, &scfg, workers).unwrap();
            assert_eq!(sh.result.cycles, seq.cycles, "workers={workers}");
            assert_eq!(sh.result.digest(), seq.digest(), "workers={workers}");
            assert_eq!(sh.fallback, None, "workers={workers}");
            stitched.push(sh);
        }
        // Every observable of the stitched runs is identical across
        // worker counts.
        for sh in &stitched[1..] {
            assert_eq!(sh.result.cycles, stitched[0].result.cycles);
            assert_eq!(sh.shards, stitched[0].shards);
            assert_eq!(sh.narrow_shards, stitched[0].narrow_shards);
            assert_eq!(sh.checkpoint_bytes, stitched[0].checkpoint_bytes);
        }
        assert!(stitched[0].shards > 5);
    }

    #[test]
    fn scaling_csv_shape() {
        let rows = vec![ScalingRow {
            workers: 2,
            wall_ms: 10.0,
            cycles: 1_000_000,
            mcps: 100.0,
            shards: 12,
            narrow_shards: 12,
            checkpoint_bytes: 4096,
            fallbacks: 0,
        }];
        let csv = scaling_csv(&rows);
        let lines: Vec<&str> = csv.lines().collect();
        assert_eq!(lines.len(), 2);
        assert!(lines[0].starts_with("workers,wall_ms,cycles"));
        assert!(lines[1].starts_with("2,10.00,1000000,100.00,12,12,4096,0"));
    }
}
