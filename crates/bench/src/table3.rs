//! Table 3: percent improvement in *dynamic block counts* over basic blocks
//! on the SPEC2000-like composites, measured with the fast functional
//! simulator (cycle-level simulation of whole SPEC programs being
//! "prohibitively slow", paper §7.3).

use crate::render::{pct, render_table};
use crate::{compile_and_count, percent_improvement};
use chf_core::pipeline::{CompileConfig, PhaseOrdering};
use chf_workloads::{spec_suite, Workload};

/// One composite's measurements.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline dynamic block count (basic blocks).
    pub bb_blocks: u64,
    /// `(label, blocks, improvement %)` per ordering.
    pub results: Vec<(&'static str, u64, f64)>,
}

/// Measure one composite across BB + the four orderings.
pub fn measure(w: &Workload) -> Row {
    let (bb, _) = compile_and_count(w, &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks));
    let results = PhaseOrdering::table1()
        .into_iter()
        .map(|ordering| {
            let (r, _) = compile_and_count(w, &CompileConfig::with_ordering(ordering));
            (
                ordering.label(),
                r.blocks_executed,
                percent_improvement(bb.blocks_executed, r.blocks_executed),
            )
        })
        .collect();
    Row {
        name: w.name.clone(),
        bb_blocks: bb.blocks_executed,
        results,
    }
}

/// Run the full Table 3 experiment (parallel across composites, results in
/// deterministic suite order).
pub fn run() -> Vec<Row> {
    run_with(crate::parallel::workers())
}

/// [`run`] with an explicit worker count (`1` forces the sequential path).
pub fn run_with(workers: usize) -> Vec<Row> {
    crate::parallel::par_map(&spec_suite(), workers, measure)
}

/// Render in the paper's format (`BB` in raw block counts, then percents).
pub fn render(rows: &[Row]) -> String {
    let mut header: Vec<String> = vec!["benchmark".into(), "BB blocks".into()];
    if let Some(first) = rows.first() {
        for (label, ..) in &first.results {
            header.push((*label).to_string());
        }
    }
    let mut body = Vec::new();
    for r in rows {
        let mut row = vec![r.name.clone(), r.bb_blocks.to_string()];
        for (_, _, improvement) in &r.results {
            row.push(pct(*improvement));
        }
        body.push(row);
    }
    if !rows.is_empty() {
        let mut avg = vec!["Average".to_string(), String::new()];
        let n = rows[0].results.len();
        for k in 0..n {
            let mean: f64 =
                rows.iter().map(|r| r.results[k].2).sum::<f64>() / rows.len() as f64;
            avg.push(pct(mean));
        }
        body.push(avg);
    }
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_one_composite() {
        let suite = spec_suite();
        let w = suite.iter().find(|w| w.name == "gzip").unwrap();
        let row = measure(w);
        assert_eq!(row.results.len(), 4);
        // Hyperblock formation must reduce block counts on gzip.
        let (_, blocks, improvement) = row.results.last().unwrap();
        assert!(*blocks < row.bb_blocks);
        assert!(*improvement > 0.0);
    }
}
