//! Table 3: percent improvement in *dynamic block counts* over basic blocks
//! on the SPEC2000-like composites, measured with the fast functional
//! simulator (cycle-level simulation of whole SPEC programs being
//! "prohibitively slow", paper §7.3).

use crate::render::{pct, render_table};
use crate::{percent_improvement, try_compile_and_count};
use chf_core::pipeline::{CompileConfig, PhaseOrdering};
use chf_workloads::{spec_suite, Workload};

/// One composite's measurements.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline dynamic block count (basic blocks).
    pub bb_blocks: u64,
    /// `(label, blocks, improvement %)` per ordering.
    pub results: Vec<(&'static str, u64, f64)>,
    /// Failure marker: see [`crate::table1::Row::error`].
    pub error: Option<String>,
}

impl Row {
    /// A row marking a composite that failed to produce measurements.
    pub fn poisoned(name: String, error: String) -> Self {
        Row {
            name,
            bb_blocks: 0,
            results: Vec::new(),
            error: Some(error),
        }
    }
}

/// Measure one composite across BB + the four orderings; any failure
/// poisons the row.
pub fn measure(w: &Workload) -> Row {
    let bb =
        match try_compile_and_count(w, &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks)) {
            Ok((r, _)) => r,
            Err(e) => return Row::poisoned(w.name.clone(), e),
        };
    let mut results = Vec::new();
    for ordering in PhaseOrdering::table1() {
        match try_compile_and_count(w, &CompileConfig::with_ordering(ordering)) {
            Ok((r, _)) => results.push((
                ordering.label(),
                r.blocks_executed,
                percent_improvement(bb.blocks_executed, r.blocks_executed),
            )),
            Err(e) => return Row::poisoned(w.name.clone(), e),
        }
    }
    Row {
        name: w.name.clone(),
        bb_blocks: bb.blocks_executed,
        results,
        error: None,
    }
}

/// Run the full Table 3 experiment (parallel across composites, results in
/// deterministic suite order).
pub fn run() -> Vec<Row> {
    run_with(crate::parallel::workers())
}

/// [`run`] with an explicit worker count (`1` forces the sequential path).
/// Panic-isolated: see [`crate::table1::run_with`].
pub fn run_with(workers: usize) -> Vec<Row> {
    let suite = spec_suite();
    crate::parallel::par_map_isolated(&suite, workers, measure)
        .into_iter()
        .zip(&suite)
        .map(|(res, w)| res.unwrap_or_else(|msg| Row::poisoned(w.name.clone(), msg)))
        .collect()
}

/// Render in the paper's format (`BB` in raw block counts, then percents).
pub fn render(rows: &[Row]) -> String {
    let mut header: Vec<String> = vec!["benchmark".into(), "BB blocks".into()];
    let healthy: Vec<&Row> = rows.iter().filter(|r| r.error.is_none()).collect();
    if let Some(first) = healthy.first() {
        for (label, ..) in &first.results {
            header.push((*label).to_string());
        }
    }
    let mut body = Vec::new();
    for r in rows {
        if let Some(err) = &r.error {
            body.push(vec![r.name.clone(), format!("FAILED: {err}")]);
            continue;
        }
        let mut row = vec![r.name.clone(), r.bb_blocks.to_string()];
        for (_, _, improvement) in &r.results {
            row.push(pct(*improvement));
        }
        body.push(row);
    }
    if let Some(first) = healthy.first() {
        let mut avg = vec!["Average".to_string(), String::new()];
        let n = first.results.len();
        for k in 0..n {
            let mean: f64 =
                healthy.iter().map(|r| r.results[k].2).sum::<f64>() / healthy.len() as f64;
            avg.push(pct(mean));
        }
        body.push(avg);
    }
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measure_one_composite() {
        let suite = spec_suite();
        let w = suite.iter().find(|w| w.name == "gzip").unwrap();
        let row = measure(w);
        assert_eq!(row.results.len(), 4);
        // Hyperblock formation must reduce block counts on gzip.
        let (_, blocks, improvement) = row.results.last().unwrap();
        assert!(*blocks < row.bb_blocks);
        assert!(*improvement > 0.0);
    }
}
