//! Whole-program cycle simulation of the SPEC-like composites.
//!
//! The paper's SPEC study (Table 3) reports *block counts* from functional
//! simulation because cycle-level simulation of whole SPEC programs was
//! "prohibitively slow" (§7.3); Figure 7 then justifies the proxy by fitting
//! cycle reduction against block reduction on the microbenchmarks. The
//! event-driven rewrite of the timing core makes end-to-end cycle
//! simulation of our composites affordable, so this module closes the loop
//! the authors could not: it **measures** cycles on every composite and
//! compares them against the **model** — the block-count proxy mapped
//! through a Figure-7-style least-squares fit.
//!
//! Each composite is compiled twice (basic blocks and the convergent
//! default), each form lowered **once**, and the pre-decoded handle is
//! simulated end-to-end on the reference input with both simulators. The
//! fit of measured cycle reduction vs block reduction — slope (cycles saved
//! per block removed) and r² — is the composite-level analogue of the
//! paper's reported r² = 0.78.

use crate::fig7::{linear_fit, Fit, Point};
use crate::render::{pct, render_table};
use chf_core::pipeline::{try_compile, CompileConfig, PhaseOrdering};
use chf_sim::functional::{run_lowered, RunConfig};
use chf_sim::timing::TimingConfig;
use chf_sim::{simulate_timing_sharded_seq, LoweredProgram, ShardConfig};
use chf_workloads::{spec_suite, Workload};

/// End-to-end measurements of one composite: both program forms, both
/// simulators, one reference input.
#[derive(Clone, Debug)]
pub struct Row {
    /// Composite name (paper's Table 3 order).
    pub name: String,
    /// Dynamic block count of the basic-block form.
    pub bb_blocks: u64,
    /// Dynamic block count of the convergent form.
    pub hb_blocks: u64,
    /// Measured cycles of the basic-block form.
    pub bb_cycles: u64,
    /// Measured cycles of the convergent form.
    pub hb_cycles: u64,
    /// Instructions executed in the convergent form (work check).
    pub hb_insts: u64,
    /// Shards the convergent form's timing run was split into.
    pub hb_shards: u64,
    /// `true` when both forms' sharded runs stitched without falling back
    /// to sequential re-simulation.
    pub stitched: bool,
    /// Failure marker; a poisoned row carries no measurements.
    pub error: Option<String>,
}

impl Row {
    /// A row marking a composite that failed to produce measurements.
    pub fn poisoned(name: String, error: String) -> Self {
        Row {
            name,
            bb_blocks: 0,
            hb_blocks: 0,
            bb_cycles: 0,
            hb_cycles: 0,
            hb_insts: 0,
            hb_shards: 0,
            stitched: false,
            error: Some(error),
        }
    }

    /// Cycle-count improvement of the convergent form, percent.
    pub fn cycle_improvement(&self) -> f64 {
        crate::percent_improvement(self.bb_cycles, self.hb_cycles)
    }

    /// Block-count improvement of the convergent form, percent (the
    /// paper's Table 3 metric).
    pub fn block_improvement(&self) -> f64 {
        crate::percent_improvement(self.bb_blocks, self.hb_blocks)
    }
}

/// One form's measurements: blocks, cycles, insts, shards, stitched.
struct FormMeasure {
    blocks: u64,
    cycles: u64,
    insts: u64,
    shards: u64,
    stitched: bool,
}

/// Compile one form of `w`, lower it once, and run both simulators over
/// the shared handle, cross-checking their digests. The timing run goes
/// through the sharded simulator (checkpoint plan + per-shard replay +
/// validating stitch, on the calling thread — the harness parallelizes
/// across composites, so the shards of one composite stay sequential),
/// which is observably identical to the plain sequential engine.
fn measure_form(w: &Workload, config: &CompileConfig) -> Result<FormMeasure, String> {
    let compiled = try_compile(&w.function, &w.profile, config)
        .map_err(|e| format!("{}: compilation failed: {e}", w.name))?;
    let lowered = LoweredProgram::lower(&compiled.function);
    let run_cfg = RunConfig {
        collect_trip_counts: false,
        ..RunConfig::default()
    };
    let f = run_lowered(&lowered, &w.args, &w.memory, &run_cfg)
        .map_err(|e| format!("{}: functional simulation failed: {e}", w.name))?;
    let sh = simulate_timing_sharded_seq(
        &lowered,
        &w.args,
        &w.memory,
        &TimingConfig::trips(),
        &ShardConfig::default(),
    )
    .map_err(|e| format!("{}: timing simulation failed: {e}", w.name))?;
    let t = &sh.result;
    if t.ret != Some(w.expected) || f.digest() != t.digest() {
        return Err(format!(
            "{}: simulators disagree (functional {:?}, timing {:?}, expected {})",
            w.name, f.ret, t.ret, w.expected
        ));
    }
    Ok(FormMeasure {
        blocks: f.blocks_executed,
        cycles: t.cycles,
        insts: t.insts_executed,
        shards: sh.shards as u64,
        stitched: sh.fallback.is_none(),
    })
}

/// Measure one composite end-to-end; any failure poisons the row.
pub fn measure(w: &Workload) -> Row {
    let bb = match measure_form(w, &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks)) {
        Ok(m) => m,
        Err(e) => return Row::poisoned(w.name.clone(), e),
    };
    let hb = match measure_form(w, &CompileConfig::convergent()) {
        Ok(m) => m,
        Err(e) => return Row::poisoned(w.name.clone(), e),
    };
    Row {
        name: w.name.clone(),
        bb_blocks: bb.blocks,
        hb_blocks: hb.blocks,
        bb_cycles: bb.cycles,
        hb_cycles: hb.cycles,
        hb_insts: hb.insts,
        hb_shards: hb.shards,
        stitched: bb.stitched && hb.stitched,
        error: None,
    }
}

/// Measured-vs-model scatter points: block reduction (the proxy the paper
/// had) against measured cycle reduction (what this harness can now
/// afford), absolute counts as in Figure 7.
pub fn points(rows: &[Row]) -> Vec<Point> {
    rows.iter()
        .filter(|r| r.error.is_none())
        .map(|r| Point {
            block_reduction: r.bb_blocks as f64 - r.hb_blocks as f64,
            cycle_reduction: r.bb_cycles as f64 - r.hb_cycles as f64,
        })
        .collect()
}

/// Run the whole-program experiment over the full SPEC-like suite
/// (parallel across composites, deterministic suite order).
pub fn run() -> (Vec<Row>, Fit) {
    run_with(crate::parallel::workers(), usize::MAX)
}

/// [`run`] with an explicit worker count and a cap on the number of
/// composites (the `--smoke` path simulates a prefix of the suite so the
/// end-to-end pipeline stays inside the CI time budget).
pub fn run_with(workers: usize, limit: usize) -> (Vec<Row>, Fit) {
    let mut suite = spec_suite();
    suite.truncate(limit);
    let rows: Vec<Row> = crate::parallel::par_map_isolated(&suite, workers, measure)
        .into_iter()
        .zip(&suite)
        .map(|(res, w)| res.unwrap_or_else(|msg| Row::poisoned(w.name.clone(), msg)))
        .collect();
    let fit = linear_fit(&points(&rows));
    (rows, fit)
}

/// Render the measured-vs-model table plus the fit summary.
pub fn render(rows: &[Row], fit: &Fit) -> String {
    let header = vec![
        "Benchmark".to_string(),
        "BB blocks".to_string(),
        "CH blocks".to_string(),
        "blk %".to_string(),
        "BB cycles".to_string(),
        "CH cycles".to_string(),
        "cyc %".to_string(),
    ];
    let body: Vec<Vec<String>> = rows
        .iter()
        .map(|r| {
            if let Some(e) = &r.error {
                return vec![
                    r.name.clone(),
                    format!("FAILED: {e}"),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                    String::new(),
                ];
            }
            vec![
                r.name.clone(),
                r.bb_blocks.to_string(),
                r.hb_blocks.to_string(),
                pct(r.block_improvement()),
                r.bb_cycles.to_string(),
                r.hb_cycles.to_string(),
                pct(r.cycle_improvement()),
            ]
        })
        .collect();
    let mut out = render_table(&header, &body);
    out.push_str(&format!(
        "\nmeasured-vs-model fit: cycles_saved = {:.2} * blocks_saved + {:.1}   (r^2 = {:.3})\n",
        fit.slope, fit.intercept, fit.r2
    ));
    out.push_str("model = Table-3 block-count proxy; measured = end-to-end cycle simulation\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn smoke_prefix_measures_and_fits() {
        let (rows, _fit) = run_with(1, 3);
        assert_eq!(rows.len(), 3);
        for r in &rows {
            assert!(r.error.is_none(), "{}: {:?}", r.name, r.error);
            assert!(r.bb_cycles > 0 && r.hb_cycles > 0, "{}", r.name);
            // The sharded runner must validate its stitch on every
            // composite — a fallback here means warm-up stopped converging.
            assert!(r.stitched, "{}: sharded run fell back", r.name);
            assert!(r.hb_shards >= 1, "{}", r.name);
            // Formation must not make a composite slower end-to-end.
            assert!(
                r.hb_cycles <= r.bb_cycles,
                "{}: convergent form slower ({} vs {})",
                r.name,
                r.hb_cycles,
                r.bb_cycles
            );
        }
    }

    #[test]
    fn full_suite_fit_is_strongly_linear() {
        let (rows, fit) = run();
        assert!(rows.iter().all(|r| r.error.is_none()));
        // The paper reports r^2 = 0.78 on the micro suite; the composite
        // suite should show at least a clearly linear relationship.
        assert!(
            fit.r2 > 0.5,
            "measured-vs-model relationship degenerated: r^2 = {}",
            fit.r2
        );
    }
}
