//! Figure 7: cycle-count reduction vs block-count reduction over all the
//! Table 1 data, with a least-squares linear fit. The paper reports the
//! relationship as "roughly linear (r² = 0.78)", justifying the use of
//! block counts as a performance proxy for the SPEC study.

use crate::table1;

/// One scatter point: `(block-count reduction, cycle-count reduction)` of a
/// `(benchmark, configuration)` pair, both relative to basic blocks.
#[derive(Copy, Clone, Debug, PartialEq)]
pub struct Point {
    /// `bb_blocks - config_blocks`.
    pub block_reduction: f64,
    /// `bb_cycles - config_cycles`.
    pub cycle_reduction: f64,
}

/// Least-squares fit `y = slope·x + intercept` with its r².
#[derive(Copy, Clone, Debug)]
pub struct Fit {
    /// Slope: cycles saved per block removed — the paper's `overhead` term.
    pub slope: f64,
    /// Intercept.
    pub intercept: f64,
    /// Coefficient of determination.
    pub r2: f64,
}

/// Compute the least-squares fit of a point set.
///
/// Returns a zero fit for fewer than two points or zero variance.
pub fn linear_fit(points: &[Point]) -> Fit {
    let n = points.len() as f64;
    if points.len() < 2 {
        return Fit {
            slope: 0.0,
            intercept: 0.0,
            r2: 0.0,
        };
    }
    let mean_x = points.iter().map(|p| p.block_reduction).sum::<f64>() / n;
    let mean_y = points.iter().map(|p| p.cycle_reduction).sum::<f64>() / n;
    let sxx: f64 = points
        .iter()
        .map(|p| (p.block_reduction - mean_x).powi(2))
        .sum();
    let syy: f64 = points
        .iter()
        .map(|p| (p.cycle_reduction - mean_y).powi(2))
        .sum();
    let sxy: f64 = points
        .iter()
        .map(|p| (p.block_reduction - mean_x) * (p.cycle_reduction - mean_y))
        .sum();
    if sxx == 0.0 || syy == 0.0 {
        return Fit {
            slope: 0.0,
            intercept: mean_y,
            r2: 0.0,
        };
    }
    let slope = sxy / sxx;
    let intercept = mean_y - slope * mean_x;
    let r2 = (sxy * sxy) / (sxx * syy);
    Fit {
        slope,
        intercept,
        r2,
    }
}

/// Extract Figure 7's scatter points from Table 1 rows. Poisoned rows
/// (`error.is_some()`) contribute no points — a degraded benchmark must not
/// drag the regression through the origin.
pub fn points(rows: &[table1::Row]) -> Vec<Point> {
    let mut pts = Vec::new();
    for r in rows.iter().filter(|r| r.error.is_none()) {
        for c in &r.configs {
            pts.push(Point {
                block_reduction: r.bb_blocks as f64 - c.blocks as f64,
                cycle_reduction: r.bb_cycles as f64 - c.cycles as f64,
            });
        }
    }
    pts
}

/// Run the whole experiment: Table 1 measurements, scatter extraction, fit.
pub fn run() -> (Vec<Point>, Fit) {
    let rows = table1::run();
    let pts = points(&rows);
    let fit = linear_fit(&pts);
    (pts, fit)
}

/// Render the scatter data and fit as text (one point per line, then the
/// regression summary).
pub fn render(points: &[Point], fit: &Fit) -> String {
    let mut out = String::from("block_reduction\tcycle_reduction\n");
    for p in points {
        out.push_str(&format!(
            "{:.0}\t{:.0}\n",
            p.block_reduction, p.cycle_reduction
        ));
    }
    out.push_str(&format!(
        "\nlinear fit: cycles_saved = {:.2} * blocks_saved + {:.1}   (r^2 = {:.3})\n",
        fit.slope, fit.intercept, fit.r2
    ));
    out.push_str("paper: r^2 = 0.78 — block-count reduction is a good but imperfect predictor\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_line_has_r2_one() {
        let pts: Vec<Point> = (0..10)
            .map(|k| Point {
                block_reduction: k as f64,
                cycle_reduction: 3.0 * k as f64 + 5.0,
            })
            .collect();
        let fit = linear_fit(&pts);
        assert!((fit.slope - 3.0).abs() < 1e-9);
        assert!((fit.intercept - 5.0).abs() < 1e-9);
        assert!((fit.r2 - 1.0).abs() < 1e-9);
    }

    #[test]
    fn noisy_line_has_partial_r2() {
        let pts: Vec<Point> = (0..20)
            .map(|k| Point {
                block_reduction: k as f64,
                cycle_reduction: 2.0 * k as f64 + if k % 2 == 0 { 8.0 } else { -8.0 },
            })
            .collect();
        let fit = linear_fit(&pts);
        assert!(fit.r2 > 0.5 && fit.r2 < 1.0, "r2 = {}", fit.r2);
    }

    #[test]
    fn degenerate_inputs() {
        assert_eq!(linear_fit(&[]).r2, 0.0);
        let same = vec![
            Point {
                block_reduction: 1.0,
                cycle_reduction: 2.0,
            };
            5
        ];
        assert_eq!(linear_fit(&same).r2, 0.0);
    }
}
