//! Table 2: percent cycle-count improvement over basic blocks for the
//! block-selection heuristics — VLIW (without and with iterative
//! optimization), depth-first, and breadth-first.

use crate::render::{pct, render_table};
use crate::{percent_improvement, try_compile_and_time};
use chf_core::pipeline::{CompileConfig, PhaseOrdering};
use chf_core::PolicyKind;
use chf_workloads::{microbenchmarks, Workload};

/// The four heuristic configurations of Table 2, in column order.
pub fn configurations() -> Vec<(&'static str, CompileConfig)> {
    vec![
        (
            "VLIW",
            CompileConfig::with_policy(PolicyKind::Vliw, false),
        ),
        (
            "Convergent VLIW",
            CompileConfig::with_policy(PolicyKind::Vliw, true),
        ),
        ("DF", CompileConfig::with_policy(PolicyKind::DepthFirst, true)),
        ("BF", CompileConfig::with_policy(PolicyKind::BreadthFirst, true)),
    ]
}

/// One benchmark's measurements.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline cycles.
    pub bb_cycles: u64,
    /// `(label, cycles, improvement %, misprediction rate)` per heuristic.
    pub results: Vec<(&'static str, u64, f64, f64)>,
    /// Failure marker: see [`crate::table1::Row::error`].
    pub error: Option<String>,
}

impl Row {
    /// A row marking a workload that failed to produce measurements.
    pub fn poisoned(name: String, error: String) -> Self {
        Row {
            name,
            bb_cycles: 0,
            results: Vec::new(),
            error: Some(error),
        }
    }
}

/// Measure one workload under every heuristic; any failure poisons the row.
pub fn measure(w: &Workload) -> Row {
    let bb = match try_compile_and_time(w, &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks))
    {
        Ok((t, _)) => t,
        Err(e) => return Row::poisoned(w.name.clone(), e),
    };
    let mut results = Vec::new();
    for (label, config) in configurations() {
        match try_compile_and_time(w, &config) {
            Ok((t, _)) => results.push((
                label,
                t.cycles,
                percent_improvement(bb.cycles, t.cycles),
                t.misprediction_rate(),
            )),
            Err(e) => return Row::poisoned(w.name.clone(), e),
        }
    }
    Row {
        name: w.name.clone(),
        bb_cycles: bb.cycles,
        results,
        error: None,
    }
}

/// Run the full Table 2 experiment (parallel across benchmarks, results in
/// deterministic suite order).
pub fn run() -> Vec<Row> {
    run_with(crate::parallel::workers())
}

/// [`run`] with an explicit worker count (`1` forces the sequential path).
/// Panic-isolated: see [`crate::table1::run_with`].
pub fn run_with(workers: usize) -> Vec<Row> {
    let suite = microbenchmarks();
    crate::parallel::par_map_isolated(&suite, workers, measure)
        .into_iter()
        .zip(&suite)
        .map(|(res, w)| res.unwrap_or_else(|msg| Row::poisoned(w.name.clone(), msg)))
        .collect()
}

/// Render in the paper's format.
pub fn render(rows: &[Row]) -> String {
    let mut header: Vec<String> = vec!["benchmark".into(), "BB cycles".into()];
    let healthy: Vec<&Row> = rows.iter().filter(|r| r.error.is_none()).collect();
    if let Some(first) = healthy.first() {
        for (label, ..) in &first.results {
            header.push((*label).to_string());
        }
    }
    let mut body = Vec::new();
    for r in rows {
        if let Some(err) = &r.error {
            body.push(vec![r.name.clone(), format!("FAILED: {err}")]);
            continue;
        }
        let mut row = vec![r.name.clone(), r.bb_cycles.to_string()];
        for (_, _, improvement, _) in &r.results {
            row.push(pct(*improvement));
        }
        body.push(row);
    }
    if let Some(first) = healthy.first() {
        let mut avg = vec!["Average".to_string(), String::new()];
        let n = first.results.len();
        for k in 0..n {
            let mean: f64 =
                healthy.iter().map(|r| r.results[k].2).sum::<f64>() / healthy.len() as f64;
            avg.push(pct(mean));
        }
        body.push(avg);
    }
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_configurations() {
        let cs = configurations();
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[0].0, "VLIW");
        assert_eq!(cs[3].0, "BF");
    }

    #[test]
    fn measure_reports_all_heuristics() {
        let w = chf_workloads::micro::bzip2_1();
        let row = measure(&w);
        assert_eq!(row.results.len(), 4);
    }
}
