//! Table 2: percent cycle-count improvement over basic blocks for the
//! block-selection heuristics — VLIW (without and with iterative
//! optimization), depth-first, breadth-first, and the profile-guided
//! hot-first policy.
//!
//! Also hosts the *budget ablation*: BF vs HF vs DF under an equal,
//! constrained per-function trial budget on the SPEC-like composites,
//! measuring where each policy spends a fixed formation-effort ledger.

use crate::render::{pct, render_table};
use crate::{percent_improvement, try_compile_and_count, try_compile_and_time};
use chf_core::pipeline::{CompileConfig, PhaseOrdering};
use chf_core::tournament::{run_tournament, ScoreMetric, TournamentConfig};
use chf_core::{FormationStats, PolicyKind};
use chf_workloads::{microbenchmarks, spec_suite, Workload};

/// The five heuristic configurations of Table 2, in column order (the
/// paper's four plus the profile-guided `HF` ablation column).
pub fn configurations() -> Vec<(&'static str, CompileConfig)> {
    vec![
        ("VLIW", CompileConfig::with_policy(PolicyKind::Vliw, false)),
        (
            "Convergent VLIW",
            CompileConfig::with_policy(PolicyKind::Vliw, true),
        ),
        (
            "DF",
            CompileConfig::with_policy(PolicyKind::DepthFirst, true),
        ),
        (
            "BF",
            CompileConfig::with_policy(PolicyKind::BreadthFirst, true),
        ),
        ("HF", CompileConfig::with_policy(PolicyKind::HotFirst, true)),
    ]
}

/// Default per-function trial budget for the ablation: tight enough that
/// the composites cannot finish formation everywhere, so *where* a policy
/// spends its ledger becomes observable in the dynamic block counts.
pub const DEFAULT_TRIAL_BUDGET: usize = 16;

/// The budget-ablation configurations: breadth-first, hot-first, and
/// depth-first, all `(IUPO)` and all sharing the same per-function trial
/// budget so the comparison is at equal formation cost.
pub fn budget_configurations(budget: usize) -> Vec<(&'static str, CompileConfig)> {
    [
        ("BF", PolicyKind::BreadthFirst),
        ("HF", PolicyKind::HotFirst),
        ("DF", PolicyKind::DepthFirst),
    ]
    .into_iter()
    .map(|(label, policy)| {
        let mut config = CompileConfig::with_policy(policy, true);
        config.trial_budget = Some(budget);
        (label, config)
    })
    .collect()
}

/// One benchmark's measurements.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline cycles.
    pub bb_cycles: u64,
    /// `(label, cycles, improvement %, misprediction rate, formation
    /// stats)` per heuristic. The stats carry the block-utilization
    /// permilles alongside the `m/t/u/p` ledger.
    pub results: Vec<(&'static str, u64, f64, f64, FormationStats)>,
    /// Failure marker: see [`crate::table1::Row::error`].
    pub error: Option<String>,
}

impl Row {
    /// A row marking a workload that failed to produce measurements.
    pub fn poisoned(name: String, error: String) -> Self {
        Row {
            name,
            bb_cycles: 0,
            results: Vec::new(),
            error: Some(error),
        }
    }
}

/// Measure one workload under every heuristic; any failure poisons the row.
pub fn measure(w: &Workload) -> Row {
    let bb =
        match try_compile_and_time(w, &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks)) {
            Ok((t, _)) => t,
            Err(e) => return Row::poisoned(w.name.clone(), e),
        };
    let mut results = Vec::new();
    for (label, config) in configurations() {
        match try_compile_and_time(w, &config) {
            Ok((t, stats)) => results.push((
                label,
                t.cycles,
                percent_improvement(bb.cycles, t.cycles),
                t.misprediction_rate(),
                stats,
            )),
            Err(e) => return Row::poisoned(w.name.clone(), e),
        }
    }
    Row {
        name: w.name.clone(),
        bb_cycles: bb.cycles,
        results,
        error: None,
    }
}

/// Run the full Table 2 experiment (parallel across benchmarks, results in
/// deterministic suite order).
pub fn run() -> Vec<Row> {
    run_with(crate::parallel::workers())
}

/// [`run`] with an explicit worker count (`1` forces the sequential path).
/// Panic-isolated: see [`crate::table1::run_with`].
pub fn run_with(workers: usize) -> Vec<Row> {
    let suite = microbenchmarks();
    crate::parallel::par_map_isolated(&suite, workers, measure)
        .into_iter()
        .zip(&suite)
        .map(|(res, w)| res.unwrap_or_else(|msg| Row::poisoned(w.name.clone(), msg)))
        .collect()
}

/// The portfolio ("oracle") column of the budget ablation: the winner of a
/// per-function policy tournament over the same three policies at both the
/// constrained budget and unbounded — what an adaptive compiler that tries
/// every entrant would pick.
#[derive(Clone, Debug)]
pub struct PortfolioCol {
    /// Winning entrant's label (`HF@16`, `BF@unb`, …).
    pub winner: String,
    /// Winner's dynamic block count.
    pub blocks: u64,
    /// Winner's percent improvement over basic blocks.
    pub improvement: f64,
    /// Winner's formation stats (`tournament_entrants` records the
    /// portfolio size).
    pub stats: FormationStats,
}

/// One composite's measurements under the constrained trial budget.
#[derive(Clone, Debug)]
pub struct BudgetRow {
    /// Benchmark name.
    pub name: String,
    /// Baseline dynamic block count (basic blocks, unbudgeted — the
    /// baseline performs no formation, so no trials are spent).
    pub bb_blocks: u64,
    /// `(label, blocks, improvement %, formation stats)` per policy. The
    /// stats carry the ledger: trials spent and candidates skipped when
    /// the budget ran out.
    pub results: Vec<(&'static str, u64, f64, FormationStats)>,
    /// The tournament winner over the portfolio
    /// `{BF, HF, DF} × {budget, unbounded}` — structurally never worse
    /// than any fixed-policy column. `None` only on poisoned rows.
    pub portfolio: Option<PortfolioCol>,
    /// Failure marker: see [`crate::table1::Row::error`].
    pub error: Option<String>,
}

impl BudgetRow {
    /// A row marking a composite that failed to produce measurements.
    pub fn poisoned(name: String, error: String) -> Self {
        BudgetRow {
            name,
            bb_blocks: 0,
            results: Vec::new(),
            portfolio: None,
            error: Some(error),
        }
    }
}

/// The tournament portfolio of the budget ablation: the three ablation
/// policies, each entered at the constrained budget *and* unbounded, scored
/// by dynamic block count. The budgeted entrants are byte-for-byte the
/// ablation's own column configurations, so the winner can never be worse
/// than the best fixed column.
pub fn portfolio_config(budget: usize) -> TournamentConfig {
    TournamentConfig {
        policies: vec![
            PolicyKind::BreadthFirst,
            PolicyKind::HotFirst,
            PolicyKind::DepthFirst,
        ],
        budgets: vec![Some(budget), None],
        metric: ScoreMetric::DynamicBlocks,
        guard_band_permille: 20,
        base: CompileConfig::with_policy(PolicyKind::BreadthFirst, true),
    }
}

/// Measure one composite under every budgeted policy; any failure poisons
/// the row. Uses the functional simulator (dynamic block counts), like
/// Table 3 — the ablation asks *where* the ledger was spent, and block
/// counts are the cheapest faithful proxy.
pub fn measure_budget(w: &Workload, budget: usize) -> BudgetRow {
    let bb =
        match try_compile_and_count(w, &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks)) {
            Ok((r, _)) => r,
            Err(e) => return BudgetRow::poisoned(w.name.clone(), e),
        };
    let mut results = Vec::new();
    for (label, config) in budget_configurations(budget) {
        match try_compile_and_count(w, &config) {
            Ok((r, stats)) => results.push((
                label,
                r.blocks_executed,
                percent_improvement(bb.blocks_executed, r.blocks_executed),
                stats,
            )),
            Err(e) => return BudgetRow::poisoned(w.name.clone(), e),
        }
    }
    let portfolio = match run_tournament(
        &w.function,
        &w.profile,
        &w.args,
        &w.memory,
        &portfolio_config(budget),
    ) {
        Ok(t) => PortfolioCol {
            winner: t.label.clone(),
            blocks: t.score,
            improvement: percent_improvement(bb.blocks_executed, t.score),
            stats: t.winner.stats,
        },
        Err(e) => return BudgetRow::poisoned(w.name.clone(), format!("{}: {e}", w.name)),
    };
    BudgetRow {
        name: w.name.clone(),
        bb_blocks: bb.blocks_executed,
        results,
        portfolio: Some(portfolio),
        error: None,
    }
}

/// Run the budget ablation at [`DEFAULT_TRIAL_BUDGET`] over the SPEC-like
/// composites (parallel, results in deterministic suite order).
pub fn run_budget() -> Vec<BudgetRow> {
    run_budget_with(crate::parallel::workers(), DEFAULT_TRIAL_BUDGET)
}

/// [`run_budget`] with an explicit worker count and budget. Panic-isolated:
/// see [`crate::table1::run_with`].
pub fn run_budget_with(workers: usize, budget: usize) -> Vec<BudgetRow> {
    let suite = spec_suite();
    crate::parallel::par_map_isolated(&suite, workers, |w| measure_budget(w, budget))
        .into_iter()
        .zip(&suite)
        .map(|(res, w)| res.unwrap_or_else(|msg| BudgetRow::poisoned(w.name.clone(), msg)))
        .collect()
}

/// Render the budget ablation: per-policy improvement plus the trial
/// ledger (`spent/skipped`), and the portfolio (tournament-winner) column.
pub fn render_budget(rows: &[BudgetRow], budget: usize) -> String {
    let mut header: Vec<String> = vec!["benchmark".into(), "BB blocks".into()];
    let healthy: Vec<&BudgetRow> = rows.iter().filter(|r| r.error.is_none()).collect();
    if let Some(first) = healthy.first() {
        for (label, ..) in &first.results {
            header.push(format!("{label}@{budget}"));
            header.push(format!("{label} ledger"));
        }
        header.push("portfolio".into());
        header.push("winner".into());
    }
    let mut body = Vec::new();
    for r in rows {
        if let Some(err) = &r.error {
            body.push(vec![r.name.clone(), format!("FAILED: {err}")]);
            continue;
        }
        let mut row = vec![r.name.clone(), r.bb_blocks.to_string()];
        for (_, _, improvement, stats) in &r.results {
            row.push(pct(*improvement));
            row.push(stats.ledger());
        }
        if let Some(p) = &r.portfolio {
            row.push(pct(p.improvement));
            row.push(p.winner.clone());
        }
        body.push(row);
    }
    if let Some(first) = healthy.first() {
        let mut avg = vec!["Average".to_string(), String::new()];
        let n = first.results.len();
        for k in 0..n {
            let mean: f64 =
                healthy.iter().map(|r| r.results[k].2).sum::<f64>() / healthy.len() as f64;
            avg.push(pct(mean));
            avg.push(String::new());
        }
        let port_mean: f64 = healthy
            .iter()
            .filter_map(|r| r.portfolio.as_ref())
            .map(|p| p.improvement)
            .sum::<f64>()
            / healthy.len() as f64;
        avg.push(pct(port_mean));
        avg.push(String::new());
        body.push(avg);
    }
    render_table(&header, &body)
}

/// Render in the paper's format.
pub fn render(rows: &[Row]) -> String {
    let mut header: Vec<String> = vec!["benchmark".into(), "BB cycles".into()];
    let healthy: Vec<&Row> = rows.iter().filter(|r| r.error.is_none()).collect();
    if let Some(first) = healthy.first() {
        for (label, ..) in &first.results {
            header.push((*label).to_string());
        }
    }
    let mut body = Vec::new();
    for r in rows {
        if let Some(err) = &r.error {
            body.push(vec![r.name.clone(), format!("FAILED: {err}")]);
            continue;
        }
        let mut row = vec![r.name.clone(), r.bb_cycles.to_string()];
        for (_, _, improvement, _, _) in &r.results {
            row.push(pct(*improvement));
        }
        body.push(row);
    }
    if let Some(first) = healthy.first() {
        let mut avg = vec!["Average".to_string(), String::new()];
        let n = first.results.len();
        for k in 0..n {
            let mean: f64 =
                healthy.iter().map(|r| r.results[k].2).sum::<f64>() / healthy.len() as f64;
            avg.push(pct(mean));
        }
        body.push(avg);
    }
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn five_configurations() {
        let cs = configurations();
        assert_eq!(cs.len(), 5);
        assert_eq!(cs[0].0, "VLIW");
        assert_eq!(cs[3].0, "BF");
        assert_eq!(cs[4].0, "HF");
    }

    #[test]
    fn measure_reports_all_heuristics() {
        let w = chf_workloads::micro::bzip2_1();
        let row = measure(&w);
        assert_eq!(row.results.len(), 5);
    }

    #[test]
    fn budget_configurations_share_one_budget() {
        let cs = budget_configurations(8);
        assert_eq!(cs.len(), 3);
        for (label, config) in &cs {
            assert_eq!(config.trial_budget, Some(8), "{label}");
            assert_eq!(config.ordering, PhaseOrdering::Iupo_, "{label}");
        }
        assert_eq!(cs[0].0, "BF");
        assert_eq!(cs[1].0, "HF");
        assert_eq!(cs[2].0, "DF");
    }

    #[test]
    fn measure_budget_records_ledger() {
        let suite = spec_suite();
        let w = suite.iter().find(|w| w.name == "gzip").unwrap();
        let row = measure_budget(w, 4);
        assert!(row.error.is_none(), "{:?}", row.error);
        assert_eq!(row.results.len(), 3);
        for (label, _, _, stats) in &row.results {
            // Composites are single functions and `(IUPO)` invokes
            // formation once, so the per-function cap is a hard cap.
            assert!(
                stats.trials <= 4,
                "{label}: trials {} exceed the cap",
                stats.trials
            );
        }
        // A budget of 4 trials must actually constrain gzip's formation:
        // at least one policy should have skipped candidates.
        assert!(
            row.results.iter().any(|(_, _, _, s)| s.budget_skipped > 0),
            "budget 4 did not constrain gzip"
        );
    }
}
