//! Table 2: percent cycle-count improvement over basic blocks for the
//! block-selection heuristics — VLIW (without and with iterative
//! optimization), depth-first, and breadth-first.

use crate::render::{pct, render_table};
use crate::{compile_and_time, percent_improvement};
use chf_core::pipeline::{CompileConfig, PhaseOrdering};
use chf_core::PolicyKind;
use chf_workloads::{microbenchmarks, Workload};

/// The four heuristic configurations of Table 2, in column order.
pub fn configurations() -> Vec<(&'static str, CompileConfig)> {
    vec![
        (
            "VLIW",
            CompileConfig::with_policy(PolicyKind::Vliw, false),
        ),
        (
            "Convergent VLIW",
            CompileConfig::with_policy(PolicyKind::Vliw, true),
        ),
        ("DF", CompileConfig::with_policy(PolicyKind::DepthFirst, true)),
        ("BF", CompileConfig::with_policy(PolicyKind::BreadthFirst, true)),
    ]
}

/// One benchmark's measurements.
#[derive(Clone, Debug)]
pub struct Row {
    /// Benchmark name.
    pub name: String,
    /// Baseline cycles.
    pub bb_cycles: u64,
    /// `(label, cycles, improvement %, misprediction rate)` per heuristic.
    pub results: Vec<(&'static str, u64, f64, f64)>,
}

/// Measure one workload under every heuristic.
pub fn measure(w: &Workload) -> Row {
    let (bb, _) = compile_and_time(w, &CompileConfig::with_ordering(PhaseOrdering::BasicBlocks));
    let results = configurations()
        .into_iter()
        .map(|(label, config)| {
            let (t, _) = compile_and_time(w, &config);
            (
                label,
                t.cycles,
                percent_improvement(bb.cycles, t.cycles),
                t.misprediction_rate(),
            )
        })
        .collect();
    Row {
        name: w.name.clone(),
        bb_cycles: bb.cycles,
        results,
    }
}

/// Run the full Table 2 experiment (parallel across benchmarks, results in
/// deterministic suite order).
pub fn run() -> Vec<Row> {
    run_with(crate::parallel::workers())
}

/// [`run`] with an explicit worker count (`1` forces the sequential path).
pub fn run_with(workers: usize) -> Vec<Row> {
    crate::parallel::par_map(&microbenchmarks(), workers, measure)
}

/// Render in the paper's format.
pub fn render(rows: &[Row]) -> String {
    let mut header: Vec<String> = vec!["benchmark".into(), "BB cycles".into()];
    if let Some(first) = rows.first() {
        for (label, ..) in &first.results {
            header.push((*label).to_string());
        }
    }
    let mut body = Vec::new();
    for r in rows {
        let mut row = vec![r.name.clone(), r.bb_cycles.to_string()];
        for (_, _, improvement, _) in &r.results {
            row.push(pct(*improvement));
        }
        body.push(row);
    }
    if !rows.is_empty() {
        let mut avg = vec!["Average".to_string(), String::new()];
        let n = rows[0].results.len();
        for k in 0..n {
            let mean: f64 =
                rows.iter().map(|r| r.results[k].2).sum::<f64>() / rows.len() as f64;
            avg.push(pct(mean));
        }
        body.push(avg);
    }
    render_table(&header, &body)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn four_configurations() {
        let cs = configurations();
        assert_eq!(cs.len(), 4);
        assert_eq!(cs[0].0, "VLIW");
        assert_eq!(cs[3].0, "BF");
    }

    #[test]
    fn measure_reports_all_heuristics() {
        let w = chf_workloads::micro::bzip2_1();
        let row = measure(&w);
        assert_eq!(row.results.len(), 4);
    }
}
