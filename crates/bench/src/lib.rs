#![warn(missing_docs)]
//! # chf-bench — experiment harness
//!
//! Regenerates every table and figure of the paper's evaluation (§7):
//!
//! * [`table1`] — cycle-count improvement of the four phase orderings over
//!   basic blocks on the 24 microbenchmarks, with `m/t/u/p` statistics;
//! * [`table2`] — the VLIW, convergent-VLIW, depth-first and breadth-first
//!   heuristics on the same suite;
//! * [`table3`] — block-count improvement on the 19 SPEC-like composites
//!   (functional simulation);
//! * [`fig7`] — the cycle-count-reduction vs block-count-reduction
//!   correlation with its least-squares r²;
//! * [`whole_program`] — end-to-end cycle simulation of the composites
//!   (what §7.3 called "prohibitively slow"), with a measured-vs-model
//!   comparison against the block-count proxy.
//!
//! Binaries `table1`/`table2`/`table3`/`fig7`/`whole_program`/`summary`
//! print the tables; `bench_perf` measures compile-time and simulator
//! throughput.

pub mod csv;
pub mod fig7;
pub mod render;
pub mod sharded;
pub mod table1;
pub mod table2;
pub mod table3;
pub mod whole_program;

// The parallel evaluation harness moved to `chf-service` (the service's
// worker-count handling shares `clamp_jobs`, and the dependency must point
// bench → service so the chaos binary can drive a live service). Re-exported
// here so harness code and docs keep their historical `chf_bench::parallel`
// path.
pub use chf_service::parallel;

use chf_core::pipeline::{try_compile, CompileConfig};
use chf_sim::functional::{run, FuncResult, RunConfig};
use chf_sim::timing::{simulate_timing, TimingConfig, TimingResult};
use chf_workloads::Workload;

/// Compile `w` under `config` and run the timing simulator, checking that
/// observable behaviour is preserved. Every failure mode — compilation
/// error, simulation error, or a behaviour change — is reported as `Err`
/// with a message naming the workload; nothing on this path panics, so the
/// parallel harness can degrade a bad workload to a marked table row.
///
/// # Errors
/// A descriptive message when compilation fails, simulation fails, or the
/// compiled code's return value differs from the workload's expectation.
pub fn try_compile_and_time(
    w: &Workload,
    config: &CompileConfig,
) -> Result<(TimingResult, chf_core::FormationStats), String> {
    let compiled = try_compile(&w.function, &w.profile, config)
        .map_err(|e| format!("{}: compilation failed: {e}", w.name))?;
    let t = simulate_timing(
        &compiled.function,
        &w.args,
        &w.memory,
        &TimingConfig::trips(),
    )
    .map_err(|e| format!("{}: timing simulation failed: {e}", w.name))?;
    if t.ret != Some(w.expected) {
        return Err(format!(
            "{}: compiled code returned {:?}, expected {}",
            w.name, t.ret, w.expected
        ));
    }
    Ok((t, compiled.stats))
}

/// Compile `w` under `config` and run the timing simulator, checking that
/// observable behaviour is preserved.
///
/// # Panics
/// Panics if compilation changes the program's observable behaviour — the
/// harness refuses to report numbers from a miscompiled benchmark. Harness
/// code that must degrade gracefully uses [`try_compile_and_time`].
pub fn compile_and_time(
    w: &Workload,
    config: &CompileConfig,
) -> (TimingResult, chf_core::FormationStats) {
    try_compile_and_time(w, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Compile `w` under `config` and run the functional simulator (block
/// counts), checking behaviour. Fallible counterpart of
/// [`compile_and_count`], mirroring [`try_compile_and_time`].
///
/// # Errors
/// As [`try_compile_and_time`].
pub fn try_compile_and_count(
    w: &Workload,
    config: &CompileConfig,
) -> Result<(FuncResult, chf_core::FormationStats), String> {
    let compiled = try_compile(&w.function, &w.profile, config)
        .map_err(|e| format!("{}: compilation failed: {e}", w.name))?;
    let r = run(
        &compiled.function,
        &w.args,
        &w.memory,
        &RunConfig::default(),
    )
    .map_err(|e| format!("{}: functional simulation failed: {e}", w.name))?;
    if r.ret != Some(w.expected) {
        return Err(format!(
            "{}: compiled code returned {:?}, expected {}",
            w.name, r.ret, w.expected
        ));
    }
    Ok((r, compiled.stats))
}

/// Compile `w` under `config` and run the functional simulator (block
/// counts), checking behaviour.
///
/// # Panics
/// Panics on miscompilation, as [`compile_and_time`].
pub fn compile_and_count(
    w: &Workload,
    config: &CompileConfig,
) -> (FuncResult, chf_core::FormationStats) {
    try_compile_and_count(w, config).unwrap_or_else(|e| panic!("{e}"))
}

/// Percent improvement of `new` over `base` (positive = faster/fewer).
pub fn percent_improvement(base: u64, new: u64) -> f64 {
    if base == 0 {
        return 0.0;
    }
    (base as f64 - new as f64) / base as f64 * 100.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percent_improvement_signs() {
        assert_eq!(percent_improvement(100, 80), 20.0);
        assert_eq!(percent_improvement(100, 120), -20.0);
        assert_eq!(percent_improvement(0, 5), 0.0);
    }

    #[test]
    fn compile_and_time_validates_behaviour() {
        let w = chf_workloads::micro::vadd();
        let (t, _) = compile_and_time(&w, &CompileConfig::convergent());
        assert!(t.cycles > 0);
    }

    #[test]
    fn compile_and_count_validates_behaviour() {
        let w = chf_workloads::micro::sieve();
        let (r, stats) = compile_and_count(&w, &CompileConfig::convergent());
        assert!(r.blocks_executed > 0);
        assert!(stats.merges > 0);
    }
}
