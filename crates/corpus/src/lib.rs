#![warn(missing_docs)]
//! # chf-corpus — the persistent differential-fuzzing trace corpus
//!
//! Every chaos/oracle campaign in this workspace used to start from scratch
//! and discard what it learned. This crate makes that learning persistent:
//!
//! * [`manifest`] — the sidecar schema pinning each `.til` entry's expected
//!   functional digest, timing digest, formation outcome (`m/t/u/p` plus
//!   tournament winner), and the generator plan that produced it;
//! * [`store`] — the on-disk corpus under `tests/corpus/{failing,passing}/`:
//!   loading, validation, and collision-proof admission;
//! * [`measure`] — the one measurement pipeline (verify → compile → oracle
//!   → event-sim → tournament) both replay and admission share, and the
//!   coverage-cell keys derived from it;
//! * [`replay`] — the deterministic regression gate: re-run every entry and
//!   fail on any digest or outcome drift, worker-count-independently;
//! * [`fuzz`] — the coverage-guided loop: mutate corpus entries and fresh
//!   generator plans ([`chf_ir::testgen`]), keep only candidates reaching
//!   unseen coverage cells, shrink them with the oracle's greedy reducer,
//!   and admit them with a dedup key.
//!
//! The corpus plays the role `failing_traces/` / `passing_traces/` splits
//! play in hardware-model differential testing: a shared, growing benchmark
//! set that pins transformation quality across time rather than one-off
//! fuzz runs.

pub mod fuzz;
pub mod manifest;
pub mod measure;
pub mod replay;
pub mod store;

pub use fuzz::{run_fuzz, FuzzConfig, FuzzReport};
pub use manifest::{Expect, Manifest, Measured};
pub use measure::{measure, MeasureError, Measurement};
pub use replay::{replay_corpus, Drift, ReplayReport};
pub use store::{admit, load_corpus, Class, CorpusEntry, CORPUS_DIR};
