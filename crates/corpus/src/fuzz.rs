//! The coverage-guided fuzzing campaign.
//!
//! One seeded, sequential loop drives four candidate sources — fresh
//! generator plans, grown plans, CFG-level mutants of corpus entries
//! (splice / insert-branch / retarget-branch), and profile perturbations —
//! and keeps only candidates that light up an unseen coverage cell. Kept
//! candidates are shrunk with the oracle's greedy reducer under a
//! cell-preserving predicate, re-measured in full, and admitted to the
//! corpus with their manifest. A chaos fault campaign runs alongside to
//! feed the fault-classification rows of the same coverage map.
//!
//! Everything is derived from [`FuzzConfig::seed`]: the same seed over the
//! same corpus produces the same report, byte for byte.

use crate::manifest::{Expect, Manifest};
use crate::measure::{cheap_cell_fueled, fault_key, fxh_str, measure, outcome_key, MEASURE_FUEL};
use crate::store::{admit, load_corpus, Class, CorpusEntry};
use chf_core::chaos::campaign;
use chf_core::oracle::greedy_reduce;
use chf_ir::function::Function;
use chf_ir::testgen::{mutate, CoverageCategory, CoverageMap, GenPlan, SplitMix64};
use chf_ir::verify::{verify_full, VerifyError};
use std::path::{Path, PathBuf};

/// Stable coverage label for a verifier refusal (variant only — the
/// offending block/register would make equivalent refusals distinct cells).
fn verify_class(e: &VerifyError) -> &'static str {
    match e {
        VerifyError::NoExits(_) => "no-exits",
        VerifyError::NoDefaultExit(_) => "no-default-exit",
        VerifyError::ExitAfterDefault(_) => "exit-after-default",
        VerifyError::DanglingEdge(..) => "dangling-edge",
        VerifyError::RegisterOutOfRange(..) => "register-out-of-range",
        VerifyError::MissingEntry => "missing-entry",
        VerifyError::UnreachableBlock(_) => "unreachable-block",
        VerifyError::PredicateUseBeforeDef(..) => "predicate-use-before-def",
    }
}

/// Largest candidate (in CFG blocks) the guided loop will measure.
pub const MAX_CANDIDATE_BLOCKS: usize = 40;

/// Campaign knobs.
#[derive(Clone, Debug)]
pub struct FuzzConfig {
    /// Master seed for generation, mutation, and fault injection.
    pub seed: u64,
    /// Coverage-guided candidates to evaluate.
    pub iters: usize,
    /// Chaos faults to inject for the fault-classification coverage rows.
    pub faults: usize,
    /// The `tests/corpus` directory.
    pub corpus_root: PathBuf,
    /// Whether to write newly-covered entries into the corpus. Campaigns
    /// report identically with this off (CI summary-only runs).
    pub admit_new: bool,
    /// Cap on rejected-class admissions per run (verifier-refusal cells are
    /// plentiful early on; the corpus needs a pin per class, not hundreds).
    pub max_rejected: usize,
    /// Cap on formed/diverging admissions per run, bounding how fast the
    /// corpus (and therefore the replay gate) can grow. Coverage is still
    /// tracked past the cap; only the writes stop.
    pub max_admit: usize,
}

impl FuzzConfig {
    /// The CI-blocking smoke profile: 500 faults plus a short guided loop.
    pub fn smoke(corpus_root: PathBuf, seed: u64) -> FuzzConfig {
        FuzzConfig {
            seed,
            iters: 120,
            faults: 500,
            corpus_root,
            admit_new: true,
            max_rejected: 2,
            max_admit: 12,
        }
    }

    /// The nightly profile: `faults` chaos injections and a long loop
    /// scaled to the same budget.
    pub fn long(corpus_root: PathBuf, seed: u64, faults: usize) -> FuzzConfig {
        FuzzConfig {
            seed,
            iters: (faults / 10).max(200),
            faults,
            corpus_root,
            admit_new: true,
            max_rejected: 4,
            max_admit: 50,
        }
    }
}

/// What a campaign did.
#[derive(Clone, Debug, Default)]
pub struct FuzzReport {
    /// Candidates evaluated by the guided loop.
    pub evaluated: usize,
    /// Candidates filtered before coverage (baseline failure, no mutation
    /// applied, duplicate cell).
    pub filtered: usize,
    /// The full coverage map (corpus seed + chaos + guided loop).
    pub coverage: CoverageMap,
    /// Cells first reached by this run's guided loop.
    pub new_cells: usize,
    /// Corpus-relative paths of entries admitted this run.
    pub admitted: Vec<String>,
    /// Whether the chaos campaign was free of aborts and miscompiles.
    pub chaos_ok: bool,
    /// Faults injected.
    pub faults: usize,
}

impl FuzzReport {
    /// The fuzz fragment of the campaign JSON summary (no braces). Every
    /// field is a pure function of (seed, corpus contents).
    pub fn json_fragment(&self) -> String {
        format!(
            "\"evaluated\":{},\"filtered\":{},\"cells\":{{{}}},\"new_cells\":{},\"admitted\":{},\"faults\":{},\"chaos_ok\":{}",
            self.evaluated,
            self.filtered,
            self.coverage.json_counts(),
            self.new_cells,
            self.admitted.len(),
            self.faults,
            self.chaos_ok
        )
    }
}

/// Parse a manifest `m/t/u/p` string back into the bucketed outcome key.
/// The `skipped` bit is not recoverable from `mtup` (by design — see
/// `FormationStats::mtup`), so corpus seeding treats it as clear; the
/// combined `cell` field still dedups exactly.
fn outcome_key_of_mtup(mtup: &str) -> Option<u64> {
    let mut parts = mtup.split('/').map(|p| p.parse::<u64>().ok());
    let mut next = || parts.next().flatten();
    let (m, t, u, p) = (next()?, next()?, next()?, next()?);
    let b = |n: u64| n.min(3);
    Some(b(m) | b(t) << 2 | b(u) << 4 | b(p) << 6)
}

/// Seed the coverage map and dedup set from the existing corpus.
fn seed_coverage(entries: &[CorpusEntry], coverage: &mut CoverageMap, cells: &mut Vec<u64>) {
    for e in entries {
        match e.manifest.expect {
            Expect::Rejected => {
                if let Err(err) = verify_full(&e.function) {
                    coverage.insert(CoverageCategory::OracleVerdict, fxh_str(verify_class(&err)));
                }
            }
            expect => {
                if let Some(m) = &e.manifest.measured {
                    coverage.insert(CoverageCategory::Shape, m.shape);
                    if let Some(k) = outcome_key_of_mtup(&m.mtup) {
                        coverage.insert(CoverageCategory::MergeOutcome, k);
                    }
                    coverage.insert(
                        CoverageCategory::OracleVerdict,
                        (expect == Expect::Diverges) as u64,
                    );
                    cells.push(m.cell);
                }
            }
        }
    }
}

/// One candidate: a function plus everything needed to measure and pin it.
struct Candidate {
    f: Function,
    train: Vec<i64>,
    plan: Option<GenPlan>,
    profile_mut: Option<u64>,
    provenance: String,
    stem: String,
}

/// Draw the next candidate from the seeded stream: a fresh/grown plan or a
/// CFG-level mutant of a corpus entry. Returns `None` when the drawn
/// mutation did not apply (e.g. retarget on a single-exit pool entry).
fn draw(
    rng: &mut SplitMix64,
    pool: &[(Function, Vec<i64>, Option<GenPlan>)],
    i: usize,
) -> Option<Candidate> {
    let fresh_train =
        |rng: &mut SplitMix64| vec![rng.below(17) as i64 - 8, rng.below(17) as i64 - 8];
    if pool.is_empty() || rng.chance(30) {
        // Fresh plan, randomly grown a step or two.
        let mut plan = GenPlan::new(rng.next());
        if rng.chance(50) {
            plan = plan.mutate(rng);
        }
        return Some(Candidate {
            f: plan.generate(),
            train: fresh_train(rng),
            plan: Some(plan.clone()),
            profile_mut: None,
            provenance: format!("fresh-seed plan={}", plan.describe()),
            stem: format!("gen-{:016x}", plan.seed),
        });
    }
    let (base, train, plan) = &pool[rng.below(pool.len() as u64) as usize];
    let kind =
        mutate::MutationKind::ALL[rng.below(mutate::MutationKind::ALL.len() as u64) as usize];
    let mut f = base.clone();
    let applied = match kind {
        mutate::MutationKind::Splice => {
            let donor = GenPlan::new(rng.next()).generate();
            mutate::splice(&mut f, &donor, rng)
        }
        mutate::MutationKind::InsertBranch => mutate::insert_branch(&mut f, rng),
        mutate::MutationKind::RetargetBranch => mutate::retarget_branch(&mut f, rng),
        mutate::MutationKind::PerturbProfile => {
            return Some(Candidate {
                f,
                train: train.clone(),
                plan: plan.clone(),
                profile_mut: Some(rng.next()),
                provenance: format!("mutated:{} of {}", kind.label(), base.name),
                stem: format!("mut-{}-{i}", kind.label()),
            });
        }
        mutate::MutationKind::GrowPlan => {
            let Some(p) = plan else { return None };
            let grown = p.mutate(rng);
            f = grown.generate();
            return Some(Candidate {
                f,
                train: train.clone(),
                plan: Some(grown.clone()),
                profile_mut: None,
                provenance: format!("mutated:{} plan={}", kind.label(), grown.describe()),
                stem: format!("gen-{:016x}", grown.seed),
            });
        }
    };
    if !applied {
        return None;
    }
    Some(Candidate {
        f,
        train: train.clone(),
        plan: plan.clone(),
        profile_mut: None,
        provenance: format!("mutated:{} of {}", kind.label(), base.name),
        stem: format!("mut-{}-{i}", kind.label()),
    })
}

/// Run one campaign. See the module docs for the loop structure.
pub fn run_fuzz(config: &FuzzConfig) -> Result<FuzzReport, String> {
    let entries = load_corpus(&config.corpus_root)?;
    let mut report = FuzzReport::default();
    let mut seen_cells: Vec<u64> = Vec::new();
    seed_coverage(&entries, &mut report.coverage, &mut seen_cells);

    // Fault-classification coverage rows from a chaos campaign.
    report.faults = config.faults;
    report.chaos_ok = true;
    if config.faults > 0 {
        let chaos = campaign(config.seed ^ 0xC4A0_5C4A_05C4_A05C, config.faults, None);
        report.chaos_ok = chaos.ok();
        for (kind, label, _count) in chaos.classification_cells() {
            report
                .coverage
                .insert(CoverageCategory::Fault, fault_key(kind.index(), label));
        }
    }

    // Mutation pool: every passing entry, plus its plan when recorded.
    let pool: Vec<(Function, Vec<i64>, Option<GenPlan>)> = entries
        .iter()
        .filter(|e| e.class == Class::Passing)
        .map(|e| {
            (
                e.function.clone(),
                e.manifest.train.clone(),
                e.manifest.plan.clone(),
            )
        })
        .collect();

    let mut rng = SplitMix64::new(config.seed);
    let mut admitted_rejected = 0usize;
    for i in 0..config.iters {
        let Some(cand) = draw(&mut rng, &pool, i) else {
            report.filtered += 1;
            continue;
        };
        // Size gate: formation, the tournament, and every reduction probe
        // all scale with block count, and a sprawling candidate pins the
        // same coverage cells a compact one does. Keep the corpus cheap to
        // replay forever.
        if cand.f.block_ids().count() > MAX_CANDIDATE_BLOCKS {
            report.filtered += 1;
            continue;
        }
        report.evaluated += 1;

        // Verifier-refused candidates pin detection classes in `failing/`.
        if let Err(err) = verify_full(&cand.f) {
            let class = verify_class(&err);
            if !report
                .coverage
                .insert(CoverageCategory::OracleVerdict, fxh_str(class))
            {
                report.filtered += 1;
                continue;
            }
            report.new_cells += 1;
            if config.admit_new && admitted_rejected < config.max_rejected {
                admitted_rejected += 1;
                let keeps =
                    |g: &Function| verify_full(g).err().map(|e| verify_class(&e)) == Some(class);
                let reduced = greedy_reduce(cand.f.clone(), &[], &keeps);
                // Pin the refusal replay will actually see: the canonical
                // (parsed round-trip) form, which renumbers block ids.
                let til = reduced.to_string();
                let refusal = chf_ir::parse::parse_function(&til)
                    .ok()
                    .and_then(|g| verify_full(&g).err());
                let Some(refusal) = refusal else {
                    report.filtered += 1;
                    continue;
                };
                let manifest = Manifest {
                    expect: Expect::Rejected,
                    provenance: cand.provenance.clone(),
                    plan: cand.plan.clone(),
                    train: cand.train.clone(),
                    profile_mut: None,
                    policy: "BF".into(),
                    measured: None,
                    reason: Some(refusal.to_string()),
                };
                let path = admit(
                    &config.corpus_root,
                    &format!("rej-{class}"),
                    &til,
                    &manifest,
                )?;
                report.admitted.push(rel(&config.corpus_root, &path));
            }
            continue;
        }

        // Structural triage: is the (outcome, shape) pair new?
        let Some((outcome, shape, blocks)) =
            cheap_cell_fueled(&cand.f, &cand.train, cand.profile_mut, MEASURE_FUEL)
        else {
            report.filtered += 1;
            continue;
        };
        let new_outcome = !report
            .coverage
            .contains(CoverageCategory::MergeOutcome, outcome);
        let new_shape = !report.coverage.contains(CoverageCategory::Shape, shape);
        if !new_outcome && !new_shape {
            report.filtered += 1;
            continue;
        }

        // Shrink under a cell-preserving predicate, then measure in full.
        // Probes run with fuel near the candidate's own baseline: a
        // deletion that un-bounds a loop fails the probe immediately
        // instead of burning the full measurement budget.
        let probe_fuel = (blocks.saturating_mul(4).saturating_add(1_000)).min(MEASURE_FUEL);
        let keeps = |g: &Function| {
            cheap_cell_fueled(g, &cand.train, cand.profile_mut, probe_fuel).map(|(o, s, _)| (o, s))
                == Some((outcome, shape))
        };
        let reduced = greedy_reduce(cand.f.clone(), &[], &keeps);

        // Measure exactly what replay will load: parsing renumbers block
        // ids, and the reducer leaves sparse ids behind, so a measurement
        // taken on the in-memory function can skew against the stored
        // `.til` (most directly through `profile_mut`, whose perturbation
        // is keyed by block id). Canonicalize through the text form first.
        let til = reduced.to_string();
        let Ok(canonical) = chf_ir::parse::parse_function(&til) else {
            report.filtered += 1;
            continue;
        };
        let Ok(got) = measure(&canonical, &cand.train, cand.profile_mut) else {
            report.filtered += 1;
            continue;
        };
        // Coverage is credited from the canonical measurement — the cells
        // the corpus will actually pin — not the pre-reduction candidate.
        report.new_cells += report
            .coverage
            .insert(CoverageCategory::MergeOutcome, outcome_key(&got.stats))
            as usize;
        report.new_cells += report
            .coverage
            .insert(CoverageCategory::Shape, got.measured.shape)
            as usize;
        report.new_cells += report
            .coverage
            .insert(CoverageCategory::OracleVerdict, got.diverged as u64)
            as usize;

        if seen_cells.contains(&got.measured.cell) {
            continue;
        }
        seen_cells.push(got.measured.cell);
        if config.admit_new && report.admitted.len() < config.max_admit + admitted_rejected {
            let manifest = Manifest {
                expect: if got.diverged {
                    Expect::Diverges
                } else {
                    Expect::Formed
                },
                provenance: cand.provenance,
                plan: cand.plan,
                train: cand.train,
                profile_mut: cand.profile_mut,
                policy: "BF".into(),
                measured: Some(got.measured),
                reason: None,
            };
            let path = admit(&config.corpus_root, &cand.stem, &til, &manifest)?;
            report.admitted.push(rel(&config.corpus_root, &path));
        }
    }
    Ok(report)
}

fn rel(root: &Path, path: &Path) -> String {
    path.strip_prefix(root)
        .unwrap_or(path)
        .to_string_lossy()
        .replace('\\', "/")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::replay::replay_corpus;

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("chf-corpus-fuzz-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn fresh_campaign_admits_and_replays_clean() {
        let root = tmpdir("fresh");
        let config = FuzzConfig {
            seed: 0xF00D,
            iters: 8,
            faults: 0,
            corpus_root: root.clone(),
            admit_new: true,
            max_rejected: 1,
            max_admit: 12,
        };
        let report = run_fuzz(&config).unwrap();
        assert!(report.evaluated > 0);
        assert!(
            !report.admitted.is_empty(),
            "a fresh campaign over an empty corpus must admit something"
        );
        assert!(report.new_cells > 0);

        // Everything it admitted must replay with zero drift.
        let replay = replay_corpus(&root, 2).unwrap();
        assert!(replay.is_clean(), "{:?}", replay.drifts);
        assert_eq!(replay.entries, report.admitted.len());
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn campaign_is_deterministic_and_cells_stay_unique() {
        let root_a = tmpdir("det-a");
        let root_b = tmpdir("det-b");
        let mk = |root: &Path| FuzzConfig {
            seed: 0xBEEF,
            iters: 8,
            faults: 25,
            corpus_root: root.to_path_buf(),
            admit_new: true,
            max_rejected: 1,
            max_admit: 12,
        };
        let a = run_fuzz(&mk(&root_a)).unwrap();
        let b = run_fuzz(&mk(&root_b)).unwrap();
        assert_eq!(a.json_fragment(), b.json_fragment());
        assert_eq!(a.admitted, b.admitted);

        // A second run over the now-populated corpus may legitimately find
        // more coverage (its mutation pool grew), but the dedup key must
        // hold: every formed entry's combined cell stays unique.
        // Regression: admission must measure the canonical (parsed) form.
        // The second run draws CFG/profile mutants of run 1's entries;
        // before canonicalization, a perturb-profile mutant admitted here
        // would drift on its very next replay (the perturbation is keyed
        // by block id, which parsing renumbers).
        let _ = run_fuzz(&mk(&root_a)).unwrap();
        let replayed = crate::replay::replay_corpus(&root_a, 1).unwrap();
        assert!(replayed.is_clean(), "{:?}", replayed.drifts);
        let cells: Vec<u64> = load_corpus(&root_a)
            .unwrap()
            .iter()
            .filter_map(|e| e.manifest.measured.as_ref().map(|m| m.cell))
            .collect();
        let mut unique = cells.clone();
        unique.sort_unstable();
        unique.dedup();
        assert_eq!(unique.len(), cells.len(), "duplicate cells admitted");
        let _ = std::fs::remove_dir_all(&root_a);
        let _ = std::fs::remove_dir_all(&root_b);
    }

    #[test]
    fn summary_off_mode_reports_without_writing() {
        let root = tmpdir("dry");
        let config = FuzzConfig {
            seed: 0xF00D,
            iters: 6,
            faults: 0,
            corpus_root: root.clone(),
            admit_new: false,
            max_rejected: 0,
            max_admit: 12,
        };
        let report = run_fuzz(&config).unwrap();
        assert!(report.admitted.is_empty());
        assert!(load_corpus(&root).unwrap().is_empty());
        assert!(report.new_cells > 0, "dry runs still track coverage");
        let _ = std::fs::remove_dir_all(&root);
    }
}
