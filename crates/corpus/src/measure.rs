//! The single measurement pipeline behind both corpus replay and fuzzer
//! admission: verify → train → compile → differential oracle → event-driven
//! timing → policy tournament, every result folded into stable 64-bit
//! digests and coverage-cell keys.
//!
//! Replay and admission *must* share this code: an entry is admitted with
//! exactly the measurement replay will later re-take, so any drift the gate
//! reports is a behaviour change in the compiler, never a pipeline skew.

use crate::manifest::Measured;
use chf_core::oracle::{first_mismatch, OracleConfig};
use chf_core::tournament::TournamentConfig;
use chf_core::{run_tournament, try_compile, CompileConfig, FormationStats};
use chf_ir::fingerprint::shape_class;
use chf_ir::function::Function;
use chf_ir::fxhash::FxHasher;
use chf_ir::testgen::{mutate, SplitMix64};
use chf_ir::verify::verify_full;
use chf_sim::timing::{simulate_timing_lowered, TimingConfig};
use chf_sim::{run, LoweredProgram, RunConfig};
use std::hash::Hasher;

/// Block-execution fuel for every simulation the pipeline runs. Bounds the
/// cost of measuring a mutant whose retargeted branch wrapped a loop back
/// on itself — such candidates fail the baseline run and are filtered, not
/// admitted. Deliberately small: formation coverage is about CFG shape and
/// profile ratios, not run length, and every corpus entry is replayed on
/// every CI run, so a long-running entry buys no coverage at real cost.
pub const MEASURE_FUEL: u64 = 20_000;

/// The fixed-compile policy label measurements are taken under
/// ([`CompileConfig::convergent`], the paper's best configuration).
pub const MEASURE_POLICY: &str = "BF";

/// Why a candidate could not be measured as a formed entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum MeasureError {
    /// The full verifier refused the function (corpus class: `rejected`).
    Rejected(String),
    /// The training run failed (out of fuel, uninitialized read): the
    /// candidate is not an admissible workload at all.
    BaselineFails(String),
    /// Formation itself reported an error on verified input. Never
    /// expected; surfaced loudly rather than filtered.
    CompileFailed(String),
}

impl std::fmt::Display for MeasureError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MeasureError::Rejected(e) => write!(f, "verifier rejected: {e}"),
            MeasureError::BaselineFails(e) => write!(f, "baseline run failed: {e}"),
            MeasureError::CompileFailed(e) => write!(f, "compile failed: {e}"),
        }
    }
}

/// A full measurement: the manifest block plus the raw pieces the fuzzer
/// needs for coverage bookkeeping.
#[derive(Clone, Debug)]
pub struct Measurement {
    /// The manifest-ready digests and labels.
    pub measured: Measured,
    /// Whether the differential oracle saw the compiled function diverge
    /// from its input (a miscompile — corpus class `diverges`).
    pub diverged: bool,
    /// The formation stats behind [`Measured::mtup`].
    pub stats: FormationStats,
}

/// Hash a sequence of words with the workspace's FxHasher.
pub fn fxh(parts: &[u64]) -> u64 {
    let mut h = FxHasher::default();
    for p in parts {
        h.write_u64(*p);
    }
    h.finish()
}

/// Hash a string (used for error-shaped digests and fault-cell labels).
pub fn fxh_str(s: &str) -> u64 {
    let mut h = FxHasher::default();
    h.write(s.as_bytes());
    h.finish()
}

/// Bucketed merge-outcome key: each of `m/t/u/p` clamped to `0..=3`, plus
/// whether any trial was skipped by the safety net. 512 possible cells —
/// small enough to saturate meaningfully, large enough to distinguish
/// formation behaviours.
pub fn outcome_key(stats: &FormationStats) -> u64 {
    let b = |n: usize| n.min(3) as u64;
    b(stats.merges)
        | b(stats.tail_dups) << 2
        | b(stats.unrolls) << 4
        | b(stats.peels) << 6
        | ((stats.skipped > 0) as u64) << 8
}

/// Coverage cell for one chaos classification (`kind × outcome label`).
pub fn fault_key(kind_index: usize, outcome_label: &str) -> u64 {
    fxh(&[kind_index as u64, fxh_str(outcome_label)])
}

/// The combined dedup/coverage cell of a formed measurement.
pub fn combined_cell(outcome: u64, shape: u64, diverged: bool) -> u64 {
    fxh(&[outcome, shape, diverged as u64])
}

fn func_digest_hash(d: &(Option<i64>, Vec<(i64, i64)>)) -> u64 {
    let mut h = FxHasher::default();
    match d.0 {
        None => h.write_u64(u64::MAX),
        Some(v) => {
            h.write_u64(1);
            h.write_u64(v as u64);
        }
    }
    for (a, v) in &d.1 {
        h.write_u64(*a as u64);
        h.write_u64(*v as u64);
    }
    h.finish()
}

/// Measure `f` end to end on `train`.
///
/// `profile_mut` optionally perturbs the derived edge profile with the
/// seeded scrambler ([`mutate::perturb_profile`]) before formation — the
/// "perturb edge profiles" fuzzing axis, recorded in the manifest so replay
/// applies the identical perturbation.
pub fn measure(
    f: &Function,
    train: &[i64],
    profile_mut: Option<u64>,
) -> Result<Measurement, MeasureError> {
    verify_full(f).map_err(|e| MeasureError::Rejected(e.to_string()))?;

    let run_cfg = RunConfig {
        max_blocks: MEASURE_FUEL,
        check_uninit: false,
        collect_trip_counts: true,
    };
    let baseline =
        run(f, train, &[], &run_cfg).map_err(|e| MeasureError::BaselineFails(e.to_string()))?;
    let mut profile = baseline.profile;
    if let Some(seed) = profile_mut {
        mutate::perturb_profile(&mut profile, &mut SplitMix64::new(seed));
    }

    let config = CompileConfig::convergent();
    let compiled = try_compile(f, &profile, &config)
        .map_err(|e| MeasureError::CompileFailed(e.to_string()))?;

    let oracle_cfg = OracleConfig {
        seed: 0x0C0FFEE,
        inputs: 4,
        max_blocks: MEASURE_FUEL,
        repro_dir: None,
    };
    let diverged = first_mismatch(f, &compiled.function, &oracle_cfg).is_some();

    let func_digest = match run(&compiled.function, train, &[], &run_cfg) {
        Ok(r) => func_digest_hash(&r.digest()),
        Err(e) => fxh_str(&format!("func-error:{e}")),
    };

    let timing_cfg = TimingConfig {
        max_blocks: MEASURE_FUEL,
        ..TimingConfig::trips()
    };
    let lowered = LoweredProgram::lower(&compiled.function);
    let timing_digest = match simulate_timing_lowered(&lowered, train, &[], &timing_cfg) {
        Ok(t) => {
            let (ret, mem) = t.digest();
            fxh(&[
                t.cycles,
                t.mispredictions,
                t.insts_executed,
                func_digest_hash(&(ret, mem)),
            ])
        }
        Err(e) => fxh_str(&format!("timing-error:{e}")),
    };

    let shape = shape_class(f, &profile);
    let winner = match run_tournament(f, &profile, train, &[], &TournamentConfig::default()) {
        Ok(t) => t.label,
        Err(_) => "-".to_string(),
    };

    let outcome = outcome_key(&compiled.stats);
    Ok(Measurement {
        measured: Measured {
            mtup: compiled.stats.mtup(),
            winner,
            func_digest,
            timing_digest,
            shape,
            cell: combined_cell(outcome, shape, diverged),
        },
        diverged,
        stats: compiled.stats,
    })
}

/// The cheap keep-predicate core used while *shrinking* an admitted
/// candidate: verifies, trains, compiles, and returns the `(outcome key,
/// shape)` pair plus the baseline dynamic block count — no oracle, timing,
/// or tournament. The reducer preserves the coverage cell's structural
/// half; the survivor is then re-measured in full for its manifest.
///
/// `fuel` caps the training run. A function that completes within the cap
/// produces the identical profile (and therefore cell) it would at any
/// larger cap, so reduction probes can run with fuel near the candidate's
/// own baseline: a probe whose deletion un-bounds a loop fails fast and is
/// simply kept, which is conservative but sound.
pub fn cheap_cell_fueled(
    f: &Function,
    train: &[i64],
    profile_mut: Option<u64>,
    fuel: u64,
) -> Option<(u64, u64, u64)> {
    verify_full(f).ok()?;
    let run_cfg = RunConfig {
        max_blocks: fuel,
        check_uninit: false,
        collect_trip_counts: true,
    };
    let baseline = run(f, train, &[], &run_cfg).ok()?;
    let blocks = baseline.blocks_executed;
    let mut profile = baseline.profile;
    if let Some(seed) = profile_mut {
        mutate::perturb_profile(&mut profile, &mut SplitMix64::new(seed));
    }
    let compiled = try_compile(f, &profile, &CompileConfig::convergent()).ok()?;
    Some((
        outcome_key(&compiled.stats),
        shape_class(f, &profile),
        blocks,
    ))
}

/// [`cheap_cell_fueled`] at the standard [`MEASURE_FUEL`], without the
/// block count — the pair that must match [`measure`]'s cell inputs.
pub fn cheap_cell(f: &Function, train: &[i64], profile_mut: Option<u64>) -> Option<(u64, u64)> {
    cheap_cell_fueled(f, train, profile_mut, MEASURE_FUEL).map(|(o, s, _)| (o, s))
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::testgen::{generate, GenConfig};

    #[test]
    fn measurement_is_deterministic() {
        let f = generate(7, &GenConfig::default());
        let a = measure(&f, &[3, -2], None).unwrap();
        let b = measure(&f, &[3, -2], None).unwrap();
        assert_eq!(a.measured, b.measured);
        assert_eq!(a.diverged, b.diverged);
        assert!(!a.diverged, "formation must not miscompile seed 7");
        assert_eq!(a.measured.mtup, a.stats.mtup());
    }

    #[test]
    fn profile_perturbation_is_recorded_and_deterministic() {
        let f = generate(11, &GenConfig::default());
        let plain = measure(&f, &[5, 1], None).unwrap();
        let warped = measure(&f, &[5, 1], Some(99)).unwrap();
        let warped2 = measure(&f, &[5, 1], Some(99)).unwrap();
        assert_eq!(warped.measured, warped2.measured);
        // A scrambled profile may legitimately change formation, but must
        // never change observable behaviour.
        assert!(!warped.diverged);
        let _ = plain;
    }

    #[test]
    fn rejected_input_classifies_as_rejected() {
        let mut f = generate(3, &GenConfig::default());
        let entry = f.entry;
        // Dangling edge: retarget the first exit at a nonexistent block.
        let bogus = chf_ir::ids::BlockId(9_999);
        f.block_mut(entry).exits[0].target = chf_ir::block::ExitTarget::Block(bogus);
        match measure(&f, &[1, 2], None) {
            Err(MeasureError::Rejected(_)) => {}
            other => panic!("expected Rejected, got {other:?}"),
        }
    }

    #[test]
    fn outcome_key_buckets_saturate() {
        let mut s = FormationStats {
            merges: 10,
            tail_dups: 1,
            ..FormationStats::default()
        };
        assert_eq!(outcome_key(&s), 3 | (1 << 2));
        s.skipped = 2;
        assert_eq!(outcome_key(&s), 3 | (1 << 2) | (1 << 8));
    }

    #[test]
    fn cheap_cell_matches_full_measurement() {
        let f = generate(19, &GenConfig::default());
        let full = measure(&f, &[2, 2], None).unwrap();
        let (outcome, shape) = cheap_cell(&f, &[2, 2], None).unwrap();
        assert_eq!(shape, full.measured.shape);
        assert_eq!(
            combined_cell(outcome, shape, full.diverged),
            full.measured.cell
        );
    }
}
