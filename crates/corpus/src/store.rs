//! The on-disk corpus: `tests/corpus/passing/` and `tests/corpus/failing/`,
//! each holding minimized `.til` reproducers with a `.manifest` sidecar.
//!
//! Class is encoded by directory: `passing/` entries must expect
//! [`Expect::Formed`]; `failing/` entries must expect [`Expect::Rejected`]
//! or [`Expect::Diverges`]. Admission goes through the oracle's
//! collision-proof writer so two entries can never silently clobber each
//! other, and the manifest filename is always derived from the `.til` path
//! the writer actually chose.

use crate::manifest::{Expect, Manifest};
use chf_core::oracle::write_unique_til;
use chf_ir::function::Function;
use chf_ir::parse::parse_function;
use std::path::{Path, PathBuf};

/// Corpus root relative to the workspace root.
pub const CORPUS_DIR: &str = "tests/corpus";

/// The two corpus classes, by directory name.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Class {
    /// `passing/`: formation succeeds and every digest is pinned.
    Passing,
    /// `failing/`: the entry is refused by the verifier or diverges.
    Failing,
}

impl Class {
    /// Directory name under the corpus root.
    pub fn dir(self) -> &'static str {
        match self {
            Class::Passing => "passing",
            Class::Failing => "failing",
        }
    }

    /// The class an expectation must live under.
    pub fn of(expect: Expect) -> Class {
        match expect {
            Expect::Formed => Class::Passing,
            Expect::Rejected | Expect::Diverges => Class::Failing,
        }
    }
}

/// One loaded corpus entry.
#[derive(Clone, Debug)]
pub struct CorpusEntry {
    /// Path of the `.til` file.
    pub path: PathBuf,
    /// File stem (`gen-7`, `mut-retarget-3`, …) for reporting.
    pub stem: String,
    /// Which directory the entry came from.
    pub class: Class,
    /// The parsed sidecar manifest.
    pub manifest: Manifest,
    /// The parsed function. Rejected entries are stored as raw text that
    /// *parses* but fails verification, so this is always present.
    pub function: Function,
}

fn manifest_path(til: &Path) -> PathBuf {
    til.with_extension("manifest")
}

fn load_class(root: &Path, class: Class, out: &mut Vec<CorpusEntry>) -> Result<(), String> {
    let dir = root.join(class.dir());
    let entries = match std::fs::read_dir(&dir) {
        Ok(e) => e,
        // An absent class directory is an empty class, not an error: a
        // fresh checkout has no failing entries until a campaign finds one.
        Err(_) => return Ok(()),
    };
    let mut paths: Vec<PathBuf> = entries
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "til"))
        .collect();
    // Stable order regardless of directory enumeration order — replay
    // reports and JSON summaries must be byte-identical across machines.
    paths.sort();
    for path in paths {
        let stem = path
            .file_stem()
            .and_then(|s| s.to_str())
            .ok_or_else(|| format!("{}: non-utf8 stem", path.display()))?
            .to_string();
        let til = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
        let function = parse_function(&til).map_err(|e| format!("{}: {e}", path.display()))?;
        let mpath = manifest_path(&path);
        let mtext = std::fs::read_to_string(&mpath)
            .map_err(|e| format!("{}: missing manifest: {e}", mpath.display()))?;
        let manifest = Manifest::parse(&mtext).map_err(|e| format!("{}: {e}", mpath.display()))?;
        if Class::of(manifest.expect) != class {
            return Err(format!(
                "{}: expect `{}` does not belong in `{}/`",
                mpath.display(),
                manifest.expect,
                class.dir()
            ));
        }
        out.push(CorpusEntry {
            path,
            stem,
            class,
            manifest,
            function,
        });
    }
    Ok(())
}

/// Load and validate the whole corpus under `root` (the `tests/corpus`
/// directory). Entries come back in a stable (class, path) order:
/// `failing/` first, then `passing/`, each sorted by filename.
pub fn load_corpus(root: &Path) -> Result<Vec<CorpusEntry>, String> {
    let mut out = Vec::new();
    load_class(root, Class::Failing, &mut out)?;
    load_class(root, Class::Passing, &mut out)?;
    Ok(out)
}

/// Admit a new entry: write the `.til` body through the collision-proof
/// writer (which dedups identical contents and never clobbers different
/// ones), then write the manifest under the filename the writer chose.
///
/// Refuses to overwrite an existing *different* manifest — that would
/// silently re-bless an entry — and returns the `.til` path on success.
pub fn admit(root: &Path, stem: &str, til: &str, manifest: &Manifest) -> Result<PathBuf, String> {
    let class = Class::of(manifest.expect);
    let dir = root.join(class.dir());
    let path = write_unique_til(&dir, stem, til)
        .ok_or_else(|| format!("could not place `{stem}` under {}", dir.display()))?;
    let mpath = manifest_path(&path);
    let rendered = manifest.render();
    match std::fs::read_to_string(&mpath) {
        Ok(existing) if existing == rendered => Ok(path),
        Ok(_) => Err(format!(
            "{}: refusing to overwrite a manifest with different contents",
            mpath.display()
        )),
        Err(_) => {
            std::fs::write(&mpath, rendered).map_err(|e| format!("{}: {e}", mpath.display()))?;
            Ok(path)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Measured;
    use chf_ir::testgen::{generate, GenConfig, GenPlan};

    fn tmpdir(tag: &str) -> PathBuf {
        let d = std::env::temp_dir().join(format!("chf-corpus-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn formed_manifest() -> Manifest {
        Manifest {
            expect: Expect::Formed,
            provenance: "fresh-seed".into(),
            plan: Some(GenPlan::new(7)),
            train: vec![3, -2],
            profile_mut: None,
            policy: "BF".into(),
            measured: Some(Measured {
                mtup: "1/0/0/0".into(),
                winner: "BF@16".into(),
                func_digest: 1,
                timing_digest: 2,
                shape: 3,
                cell: 4,
            }),
            reason: None,
        }
    }

    #[test]
    fn admit_then_load_round_trips() {
        let root = tmpdir("roundtrip");
        let f = generate(7, &GenConfig::default());
        let til = f.to_string();
        let m = formed_manifest();
        let path = admit(&root, "gen-7", &til, &m).unwrap();
        assert!(path.ends_with("passing/gen-7.til"));

        let loaded = load_corpus(&root).unwrap();
        assert_eq!(loaded.len(), 1);
        assert_eq!(loaded[0].stem, "gen-7");
        assert_eq!(loaded[0].class, Class::Passing);
        assert_eq!(loaded[0].manifest, m);
        assert_eq!(loaded[0].function.to_string(), til);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn admit_same_contents_is_idempotent_but_conflicts_fork() {
        let root = tmpdir("conflict");
        let f = generate(9, &GenConfig::default());
        let til = f.to_string();
        let m = formed_manifest();
        let first = admit(&root, "gen-9", &til, &m).unwrap();
        let again = admit(&root, "gen-9", &til, &m).unwrap();
        assert_eq!(first, again, "identical entry must dedup, not fork");

        // A different body under the same stem gets a fresh filename and
        // its own manifest — never a clobber.
        let g = generate(10, &GenConfig::default());
        let forked = admit(&root, "gen-9", &g.to_string(), &m).unwrap();
        assert_ne!(first, forked);
        assert_eq!(load_corpus(&root).unwrap().len(), 2);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn misfiled_entry_is_rejected_at_load() {
        let root = tmpdir("misfiled");
        let f = generate(7, &GenConfig::default());
        // Hand-place a Formed entry under failing/.
        let dir = root.join("failing");
        std::fs::create_dir_all(&dir).unwrap();
        std::fs::write(dir.join("bad.til"), f.to_string()).unwrap();
        std::fs::write(dir.join("bad.manifest"), formed_manifest().render()).unwrap();
        let err = load_corpus(&root).unwrap_err();
        assert!(err.contains("does not belong"), "{err}");
        let _ = std::fs::remove_dir_all(&root);
    }
}
