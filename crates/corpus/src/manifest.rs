//! The corpus manifest: one sidecar text file per `.til` entry recording
//! everything replay needs to detect drift and everything triage needs to
//! trace the entry back to its origin.
//!
//! The format is deliberately line-based `key: value` text (no serde, the
//! workspace builds offline) and order-stable, so manifests diff cleanly in
//! review and a drifted field shows up as a one-line change.

use chf_ir::testgen::GenPlan;
use std::fmt;

/// What replaying an entry must observe.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum Expect {
    /// The entry compiles cleanly: formation stats, tournament winner, and
    /// both digests must match the manifest byte-for-byte.
    Formed,
    /// The full verifier refuses the entry up front (corrupted-IR corpus
    /// slots that pin the "detected" classification). Drift = it now
    /// passes verification.
    Rejected,
    /// Compilation succeeds but the differential oracle flags a behaviour
    /// change — a pinned miscompile reproducer. Drift = the divergence
    /// disappeared (the bug was fixed; re-bless the entry into `passing/`).
    Diverges,
}

impl Expect {
    /// Stable manifest token.
    pub fn label(self) -> &'static str {
        match self {
            Expect::Formed => "formed",
            Expect::Rejected => "rejected",
            Expect::Diverges => "diverges",
        }
    }

    /// Parse a manifest token.
    pub fn from_label(s: &str) -> Option<Expect> {
        Some(match s {
            "formed" => Expect::Formed,
            "rejected" => Expect::Rejected,
            "diverges" => Expect::Diverges,
            _ => return None,
        })
    }
}

impl fmt::Display for Expect {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.label())
    }
}

/// The measured expectations of a formed (or diverging) entry.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Measured {
    /// The paper's `m/t/u/p` rendering of the formation stats.
    pub mtup: String,
    /// Winning tournament entrant label (`BF@16`, `HF@unb`, …), or `-`
    /// when the tournament could not score the function.
    pub winner: String,
    /// Hash of the compiled function's functional digest (return value +
    /// memory image) on the training arguments.
    pub func_digest: u64,
    /// Hash of the event-driven timing simulation (cycles, mispredictions,
    /// instruction count, digest) of the compiled function.
    pub timing_digest: u64,
    /// Pre-formation CFG shape class under the training profile
    /// ([`chf_ir::fingerprint::CfgShape::class`] — bounded, so the
    /// fuzzer's shape coverage can saturate).
    pub shape: u64,
    /// Combined coverage/dedup cell key (outcome bucket × shape × oracle
    /// verdict).
    pub cell: u64,
}

/// One corpus entry's sidecar manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Manifest {
    /// What replay must observe.
    pub expect: Expect,
    /// Free-text origin: `fresh-seed`, `mutated:<op> of <stem>`,
    /// `chaos-repro`, … Informational only.
    pub provenance: String,
    /// The generator plan, when the entry came from the grammar (possibly
    /// before CFG-level mutation — the `.til` body is authoritative).
    pub plan: Option<GenPlan>,
    /// Training/replay arguments.
    pub train: Vec<i64>,
    /// Seed of the deterministic profile perturbation applied between
    /// training and formation (the "perturb edge profiles" fuzzing axis);
    /// `None` when the entry compiles under its honest training profile.
    pub profile_mut: Option<u64>,
    /// Fixed-compile policy label the measurements were taken under.
    pub policy: String,
    /// Measured expectations; `None` for [`Expect::Rejected`] entries.
    pub measured: Option<Measured>,
    /// For rejected entries: the verifier's refusal, informational.
    pub reason: Option<String>,
}

impl Manifest {
    /// Render in the stable on-disk order.
    pub fn render(&self) -> String {
        let mut out = String::from("# chf-corpus manifest v1\n");
        out.push_str(&format!("expect: {}\n", self.expect));
        out.push_str(&format!("provenance: {}\n", self.provenance));
        if let Some(plan) = &self.plan {
            out.push_str(&format!("plan: {}\n", plan.describe()));
        }
        let train: Vec<String> = self.train.iter().map(|a| a.to_string()).collect();
        out.push_str(&format!("train: {}\n", train.join(",")));
        if let Some(seed) = self.profile_mut {
            out.push_str(&format!("profile_mut: {seed}\n"));
        }
        out.push_str(&format!("policy: {}\n", self.policy));
        if let Some(m) = &self.measured {
            out.push_str(&format!("mtup: {}\n", m.mtup));
            out.push_str(&format!("winner: {}\n", m.winner));
            out.push_str(&format!("func_digest: {:016x}\n", m.func_digest));
            out.push_str(&format!("timing_digest: {:016x}\n", m.timing_digest));
            out.push_str(&format!("shape: {:016x}\n", m.shape));
            out.push_str(&format!("cell: {:016x}\n", m.cell));
        }
        if let Some(reason) = &self.reason {
            out.push_str(&format!("reason: {reason}\n"));
        }
        out
    }

    /// Parse a manifest file's text.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut expect = None;
        let mut provenance = None;
        let mut plan = None;
        let mut train = None;
        let mut profile_mut = None;
        let mut policy = None;
        let mut reason = None;
        let mut mtup = None;
        let mut winner = None;
        let mut func_digest = None;
        let mut timing_digest = None;
        let mut shape = None;
        let mut cell = None;

        let hex = |v: &str, key: &str| {
            u64::from_str_radix(v, 16).map_err(|e| format!("bad {key} `{v}`: {e}"))
        };
        for (n, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let (key, value) = line
                .split_once(':')
                .ok_or_else(|| format!("line {}: expected `key: value`", n + 1))?;
            let value = value.trim();
            match key.trim() {
                "expect" => {
                    expect = Some(
                        Expect::from_label(value).ok_or_else(|| format!("bad expect `{value}`"))?,
                    )
                }
                "provenance" => provenance = Some(value.to_string()),
                "plan" => {
                    plan = Some(
                        GenPlan::from_describe(value)
                            .ok_or_else(|| format!("bad plan `{value}`"))?,
                    )
                }
                "train" => {
                    let args: Result<Vec<i64>, _> = value
                        .split(',')
                        .filter(|s| !s.is_empty())
                        .map(|s| s.trim().parse::<i64>())
                        .collect();
                    train = Some(args.map_err(|e| format!("bad train `{value}`: {e}"))?);
                }
                "profile_mut" => {
                    profile_mut = Some(
                        value
                            .parse::<u64>()
                            .map_err(|e| format!("bad profile_mut `{value}`: {e}"))?,
                    )
                }
                "policy" => policy = Some(value.to_string()),
                "mtup" => mtup = Some(value.to_string()),
                "winner" => winner = Some(value.to_string()),
                "func_digest" => func_digest = Some(hex(value, "func_digest")?),
                "timing_digest" => timing_digest = Some(hex(value, "timing_digest")?),
                "shape" => shape = Some(hex(value, "shape")?),
                "cell" => cell = Some(hex(value, "cell")?),
                "reason" => reason = Some(value.to_string()),
                other => return Err(format!("unknown manifest key `{other}`")),
            }
        }

        let expect = expect.ok_or("missing `expect`")?;
        let measured = match (mtup, winner, func_digest, timing_digest, shape, cell) {
            (Some(mtup), Some(winner), Some(fd), Some(td), Some(sh), Some(ce)) => Some(Measured {
                mtup,
                winner,
                func_digest: fd,
                timing_digest: td,
                shape: sh,
                cell: ce,
            }),
            (None, None, None, None, None, None) => None,
            _ => return Err("partial measurement block".to_string()),
        };
        if expect != Expect::Rejected && measured.is_none() {
            return Err(format!("expect `{expect}` requires a measurement block"));
        }
        Ok(Manifest {
            expect,
            provenance: provenance.ok_or("missing `provenance`")?,
            plan,
            train: train.ok_or("missing `train`")?,
            profile_mut,
            policy: policy.ok_or("missing `policy`")?,
            measured,
            reason,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn formed() -> Manifest {
        Manifest {
            expect: Expect::Formed,
            provenance: "fresh-seed".into(),
            plan: Some(GenPlan::new(7)),
            train: vec![3, -2],
            profile_mut: Some(42),
            policy: "BF".into(),
            measured: Some(Measured {
                mtup: "2/1/0/0".into(),
                winner: "BF@16".into(),
                func_digest: 0xDEAD,
                timing_digest: 0xBEEF,
                shape: 0x1234,
                cell: 0xABCD,
            }),
            reason: None,
        }
    }

    #[test]
    fn formed_round_trips() {
        let m = formed();
        assert_eq!(Manifest::parse(&m.render()), Ok(m));
    }

    #[test]
    fn rejected_round_trips() {
        let m = Manifest {
            expect: Expect::Rejected,
            provenance: "mutated:retarget-branch of gen-1".into(),
            plan: None,
            train: vec![0, 0],
            profile_mut: None,
            policy: "BF".into(),
            measured: None,
            reason: Some("block B3 targets nonexistent block B99".into()),
        };
        assert_eq!(Manifest::parse(&m.render()), Ok(m));
    }

    #[test]
    fn partial_measurement_is_an_error() {
        let mut text = formed().render();
        text = text.replace("func_digest: 000000000000dead\n", "");
        assert!(Manifest::parse(&text).is_err());
    }

    #[test]
    fn formed_without_measurement_is_an_error() {
        let text = "expect: formed\nprovenance: x\ntrain: 1\npolicy: BF\n";
        assert!(Manifest::parse(text).is_err());
    }

    #[test]
    fn unknown_key_is_an_error() {
        let text = format!("{}bogus: 1\n", formed().render());
        assert!(Manifest::parse(&text).is_err());
    }
}
