//! The corpus regression gate: re-measure every entry and fail on drift.
//!
//! Replay is the cheap, CI-blocking half of the campaign: it runs the full
//! measurement pipeline over every stored `.til`, compares against the
//! pinned manifest field by field, and reports each mismatch as a [`Drift`].
//! The pass is parallel but order-preserving, and nothing in the report
//! depends on timing or worker count, so the JSON summary is byte-identical
//! at 1, 2, or 8 workers.

use crate::manifest::Expect;
use crate::measure::{measure, MeasureError};
use crate::store::{load_corpus, CorpusEntry};
use chf_service::parallel::par_map;
use std::path::Path;

/// One field of one entry that no longer matches its manifest.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Drift {
    /// Entry stem (`failing/` or `passing/` filename without extension).
    pub stem: String,
    /// Which manifest field drifted (`expect`, `mtup`, `func_digest`, …).
    pub field: String,
    /// The pinned value.
    pub expected: String,
    /// What replay observed.
    pub actual: String,
}

impl std::fmt::Display for Drift {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}: {} drifted: expected {}, got {}",
            self.stem, self.field, self.expected, self.actual
        )
    }
}

/// Outcome of a full corpus replay.
#[derive(Clone, Debug, Default)]
pub struct ReplayReport {
    /// Entries replayed (all classes).
    pub entries: usize,
    /// Entries that matched their manifest exactly.
    pub clean: usize,
    /// Every observed drift, in stable (class, filename) order.
    pub drifts: Vec<Drift>,
}

impl ReplayReport {
    /// True when every entry matched its manifest.
    pub fn is_clean(&self) -> bool {
        self.drifts.is_empty()
    }

    /// The replay fragment of the campaign JSON summary (no surrounding
    /// braces; worker-count- and wall-clock-independent).
    pub fn json_fragment(&self) -> String {
        format!(
            "\"replayed\":{},\"clean\":{},\"drift\":{}",
            self.entries,
            self.clean,
            self.drifts.len()
        )
    }
}

fn push(drifts: &mut Vec<Drift>, stem: &str, field: &str, expected: String, actual: String) {
    drifts.push(Drift {
        stem: stem.to_string(),
        field: field.to_string(),
        expected,
        actual,
    });
}

/// Re-measure one entry and diff it against its manifest.
pub fn replay_entry(entry: &CorpusEntry) -> Vec<Drift> {
    let m = &entry.manifest;
    let stem = format!("{}/{}", entry.class.dir(), entry.stem);
    let mut drifts = Vec::new();
    let result = measure(&entry.function, &m.train, m.profile_mut);

    match (m.expect, result) {
        (Expect::Rejected, Err(MeasureError::Rejected(_))) => {}
        (Expect::Rejected, Err(e)) => push(
            &mut drifts,
            &stem,
            "expect",
            "rejected".into(),
            format!("unmeasurable: {e}"),
        ),
        (Expect::Rejected, Ok(_)) => push(
            &mut drifts,
            &stem,
            "expect",
            "rejected".into(),
            "now passes verification".into(),
        ),
        (expect, Err(e)) => push(
            &mut drifts,
            &stem,
            "expect",
            expect.label().into(),
            format!("unmeasurable: {e}"),
        ),
        (expect, Ok(got)) => {
            let want_diverge = expect == Expect::Diverges;
            if got.diverged != want_diverge {
                push(
                    &mut drifts,
                    &stem,
                    "expect",
                    expect.label().into(),
                    if got.diverged {
                        "diverges".into()
                    } else {
                        "formed (divergence gone — bug fixed? re-bless)".into()
                    },
                );
            }
            // Manifest validation guarantees `measured` is present for
            // Formed/Diverges entries.
            let pinned = m.measured.as_ref().expect("validated at load");
            let got = &got.measured;
            let hex = |v: u64| format!("{v:016x}");
            if got.mtup != pinned.mtup {
                push(
                    &mut drifts,
                    &stem,
                    "mtup",
                    pinned.mtup.clone(),
                    got.mtup.clone(),
                );
            }
            if got.winner != pinned.winner {
                push(
                    &mut drifts,
                    &stem,
                    "winner",
                    pinned.winner.clone(),
                    got.winner.clone(),
                );
            }
            if got.func_digest != pinned.func_digest {
                push(
                    &mut drifts,
                    &stem,
                    "func_digest",
                    hex(pinned.func_digest),
                    hex(got.func_digest),
                );
            }
            if got.timing_digest != pinned.timing_digest {
                push(
                    &mut drifts,
                    &stem,
                    "timing_digest",
                    hex(pinned.timing_digest),
                    hex(got.timing_digest),
                );
            }
            if got.shape != pinned.shape {
                push(
                    &mut drifts,
                    &stem,
                    "shape",
                    hex(pinned.shape),
                    hex(got.shape),
                );
            }
            if got.cell != pinned.cell {
                push(&mut drifts, &stem, "cell", hex(pinned.cell), hex(got.cell));
            }
        }
    }
    drifts
}

/// Replay the whole corpus under `root` with `jobs` workers.
///
/// Entries are measured in parallel but drifts are collected in the loader's
/// stable order, so the report (and anything derived from it) is identical
/// for any worker count.
pub fn replay_corpus(root: &Path, jobs: usize) -> Result<ReplayReport, String> {
    let entries = load_corpus(root)?;
    let per_entry = par_map(&entries, jobs, replay_entry);
    let mut report = ReplayReport {
        entries: entries.len(),
        ..ReplayReport::default()
    };
    for drifts in per_entry {
        if drifts.is_empty() {
            report.clean += 1;
        }
        report.drifts.extend(drifts);
    }
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::manifest::Manifest;
    use crate::store::admit;
    use chf_ir::testgen::{generate, GenConfig, GenPlan};
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let d =
            std::env::temp_dir().join(format!("chf-corpus-replay-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&d);
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    fn admit_measured(root: &Path, seed: u64, train: &[i64]) {
        let f = generate(seed, &GenConfig::default());
        let got = measure(&f, train, None).unwrap();
        assert!(!got.diverged);
        let m = Manifest {
            expect: Expect::Formed,
            provenance: "fresh-seed".into(),
            plan: Some(GenPlan::new(seed)),
            train: train.to_vec(),
            profile_mut: None,
            policy: "BF".into(),
            measured: Some(got.measured),
            reason: None,
        };
        admit(root, &format!("gen-{seed}"), &f.to_string(), &m).unwrap();
    }

    #[test]
    fn clean_corpus_replays_clean_at_any_worker_count() {
        let root = tmpdir("clean");
        admit_measured(&root, 7, &[3, -2]);
        admit_measured(&root, 11, &[5, 1]);
        let one = replay_corpus(&root, 1).unwrap();
        assert!(one.is_clean(), "{:?}", one.drifts);
        assert_eq!(one.entries, 2);
        let eight = replay_corpus(&root, 8).unwrap();
        assert_eq!(one.json_fragment(), eight.json_fragment());
        assert_eq!(one.drifts, eight.drifts);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn tampered_digest_reports_drift() {
        let root = tmpdir("tamper");
        admit_measured(&root, 7, &[3, -2]);
        // Flip a digest bit in the stored manifest.
        let mpath = root.join("passing/gen-7.manifest");
        let text = std::fs::read_to_string(&mpath).unwrap();
        let mut m = Manifest::parse(&text).unwrap();
        m.measured.as_mut().unwrap().func_digest ^= 1;
        std::fs::write(&mpath, m.render()).unwrap();

        let report = replay_corpus(&root, 2).unwrap();
        assert_eq!(report.drifts.len(), 1);
        assert_eq!(report.drifts[0].field, "func_digest");
        assert_eq!(report.clean, 0);
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn rejected_entry_that_verifies_is_drift() {
        let root = tmpdir("rejected");
        let f = generate(7, &GenConfig::default());
        // A perfectly healthy function misfiled as `rejected`.
        let m = Manifest {
            expect: Expect::Rejected,
            provenance: "test".into(),
            plan: None,
            train: vec![1, 2],
            profile_mut: None,
            policy: "BF".into(),
            measured: None,
            reason: Some("pinned refusal".into()),
        };
        admit(&root, "bogus", &f.to_string(), &m).unwrap();
        let report = replay_corpus(&root, 1).unwrap();
        assert_eq!(report.drifts.len(), 1);
        assert!(report.drifts[0].actual.contains("now passes"));
        let _ = std::fs::remove_dir_all(&root);
    }
}
