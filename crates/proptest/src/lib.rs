//! A small, fully deterministic, in-tree replacement for the `proptest`
//! crate.
//!
//! The build environment resolves dependencies offline, so the real
//! `proptest` (and its sizeable dependency tree) is unavailable. This shim
//! implements exactly the API surface the workspace's property tests use:
//!
//! * `proptest! { #![proptest_config(ProptestConfig::with_cases(N))] ... }`
//! * `any::<T>()` for the primitive types the tests draw,
//! * integer `Range` strategies (`-100i64..100`, `1u32..4`, ...),
//! * tuple strategies up to arity 6 and `.prop_map`,
//! * `proptest::collection::vec(strategy, len_range)`,
//! * `prop_assert!` / `prop_assert_eq!` (with optional format arguments),
//! * test bodies that `return Ok(())` early (they run inside a closure
//!   returning `Result<(), TestCaseError>`).
//!
//! Unlike the real proptest there is no shrinking and no persisted failure
//! seeds: inputs are derived from a [SplitMix64] stream seeded by the test
//! name and case index, so every run of every machine sees the same cases.
//! That determinism is a feature here — golden-snapshot tests elsewhere in
//! the repo rely on reproducible behaviour.
//!
//! [SplitMix64]: https://prng.di.unimi.it/splitmix64.c

use std::fmt;
use std::ops::Range;

/// Deterministic RNG used to drive value generation (SplitMix64).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Seed a stream from the test name and case index. FNV-1a over the
    /// name keeps distinct tests on distinct streams.
    pub fn for_case(test_name: &str, case: u64) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in test_name.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        TestRng {
            state: h ^ case.wrapping_mul(0x9e37_79b9_7f4a_7c15),
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }
}

/// Error carried out of a failing property (what `prop_assert!` returns).
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    pub fn fail(message: impl Into<String>) -> Self {
        TestCaseError {
            message: message.into(),
        }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// Result type of a single property-test case body.
pub type TestCaseResult = Result<(), TestCaseError>;

/// Per-`proptest!` block configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    pub cases: u32,
}

impl ProptestConfig {
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

/// A generator of values for property tests.
///
/// The real proptest separates strategies from value trees (for shrinking);
/// this shim generates values directly.
pub trait Strategy {
    type Value;

    /// Produce one value from the RNG stream.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Transform generated values.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

/// Strategy adapter produced by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

/// Marker strategy returned by [`any`].
#[derive(Debug, Clone, Copy, Default)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// `any::<T>()` — draw an arbitrary value of `T`.
pub fn any<T>() -> Any<T>
where
    Any<T>: Strategy<Value = T>,
{
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Always produces the same value (proptest's `Just`).
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_any_uint {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start, self.end);
                assert!(lo < hi, "empty strategy range");
                let span = (hi as u128).wrapping_sub(lo as u128) as u128;
                lo.wrapping_add((rng.next_u64() as u128 % span) as $t)
            }
        }
    )*};
}

macro_rules! impl_any_int {
    ($($t:ty),*) => {$(
        impl Strategy for Any<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (self.start, self.end);
                assert!(lo < hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u128;
                let off = (rng.next_u64() as u128 % span) as i128;
                (lo as i128 + off) as $t
            }
        }
    )*};
}

impl_any_uint!(u8, u16, u32, u64, usize);
impl_any_int!(i8, i16, i32, i64, isize);

impl Strategy for Any<bool> {
    type Value = bool;

    fn generate(&self, rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_tuple_strategy {
    ($(($($s:ident . $idx:tt),+))*) => {$(
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6)
    (A.0, B.1, C.2, D.3, E.4, F.5, G.6, H.7)
}

/// Collection strategies (`proptest::collection`).
pub mod collection {
    use super::{Range, Strategy, TestRng};

    /// Strategy producing `Vec`s with lengths drawn from a range.
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        elem: S,
        len: Range<usize>,
    }

    /// `proptest::collection::vec(element_strategy, len_range)`.
    pub fn vec<S: Strategy>(elem: S, len: Range<usize>) -> VecStrategy<S> {
        VecStrategy { elem, len }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let n = self.len.clone().generate(rng);
            (0..n).map(|_| self.elem.generate(rng)).collect()
        }
    }
}

/// Everything the tests `use proptest::prelude::*` for.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Just, ProptestConfig, Strategy,
        TestCaseError, TestCaseResult,
    };
}

/// Fail the current property case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr $(,)?) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                concat!("assertion failed: ", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!($($fmt)+),
            ));
        }
    };
}

/// Fail the current property case unless `left == right`.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!(
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($left),
                    stringify!($right),
                    l,
                    r
                ),
            ));
        }
    }};
    ($left:expr, $right:expr, $($fmt:tt)+) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::core::result::Result::Err($crate::TestCaseError::fail(
                format!(
                    "{}\n  left: {:?}\n right: {:?}",
                    format!($($fmt)+),
                    l,
                    r
                ),
            ));
        }
    }};
}

/// Fail the current property case unless `left != right`.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::core::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: `{} != {}`\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

/// The `proptest!` block: expands each property into a `#[test]` that runs
/// `config.cases` deterministic cases.
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($config:expr)]
        $($rest:tt)*
    ) => {
        $crate::proptest!(@tests ($config) $($rest)*);
    };
    // No inner config attribute: use the default.
    (
        $(#[$attr:meta])*
        #[test]
        $($rest:tt)*
    ) => {
        $crate::proptest!(
            @tests ($crate::ProptestConfig::default())
            $(#[$attr])* #[test] $($rest)*
        );
    };
    (@tests ($config:expr)) => {};
    (
        @tests ($config:expr)
        $(#[$attr:meta])*
        fn $name:ident( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$attr])*
        fn $name() {
            let config: $crate::ProptestConfig = $config;
            for case in 0..config.cases as u64 {
                let mut rng = $crate::TestRng::for_case(stringify!($name), case);
                $(
                    let $arg = $crate::Strategy::generate(&($strat), &mut rng);
                )+
                let outcome: $crate::TestCaseResult = (|| {
                    $body
                    #[allow(unreachable_code)]
                    ::core::result::Result::Ok(())
                })();
                if let ::core::result::Result::Err(e) = outcome {
                    panic!(
                        "property `{}` failed at case {}/{}:\n{}",
                        stringify!($name),
                        case,
                        config.cases,
                        e
                    );
                }
            }
        }
        $crate::proptest!(@tests ($config) $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn rng_is_deterministic() {
        let mut a = crate::TestRng::for_case("t", 0);
        let mut b = crate::TestRng::for_case("t", 0);
        assert_eq!(a.next_u64(), b.next_u64());
        let mut c = crate::TestRng::for_case("t", 1);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = crate::TestRng::for_case("bounds", 0);
        for _ in 0..1000 {
            let v = Strategy::generate(&(-50i64..50), &mut rng);
            assert!((-50..50).contains(&v));
            let u = Strategy::generate(&(24usize..128), &mut rng);
            assert!((24..128).contains(&u));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(8))]

        /// The macro supports maps, tuples, vecs and early return.
        #[test]
        fn macro_end_to_end(
            x in any::<u64>(),
            pair in (0u32..4, any::<bool>()).prop_map(|(a, b)| (a + 1, b)),
            v in crate::collection::vec(0usize..5, 1..8),
        ) {
            prop_assert!(pair.0 >= 1 && pair.0 <= 4);
            prop_assert!(!v.is_empty() && v.len() < 8, "len {}", v.len());
            for e in &v {
                prop_assert!(*e < 5);
            }
            if x.is_multiple_of(2) {
                return Ok(());
            }
            prop_assert_eq!(x % 2, 1);
        }
    }
}
