//! Builder helpers shared by workload definitions: structured loops,
//! conditionals, and deterministic pseudo-random data.

use chf_ir::builder::FunctionBuilder;
use chf_ir::ids::{BlockId, Reg};
use chf_ir::instr::Operand;

/// Emit a counted loop `for i in 0..limit { body(i) }`.
///
/// The builder must be positioned in a block without exits; on return it is
/// positioned in the loop's exit block. `body` receives the induction
/// register and must leave the builder in a block without exits (its last
/// block falls through to the latch).
pub fn counted_loop(
    fb: &mut FunctionBuilder,
    limit: Operand,
    body: impl FnOnce(&mut FunctionBuilder, Reg),
) {
    let i = fb.mov(Operand::Imm(0));
    counted_loop_from(fb, i, limit, body);
}

/// Like [`counted_loop`] but with a caller-provided induction register
/// already holding the start value.
pub fn counted_loop_from(
    fb: &mut FunctionBuilder,
    i: Reg,
    limit: Operand,
    body: impl FnOnce(&mut FunctionBuilder, Reg),
) {
    let header = fb.create_block();
    let body_block = fb.create_block();
    let exit = fb.create_block();
    fb.jump(header);
    fb.switch_to(header);
    let c = fb.cmp_lt(Operand::Reg(i), limit);
    fb.branch(c, body_block, exit);
    fb.switch_to(body_block);
    body(fb, i);
    let i2 = fb.add(Operand::Reg(i), Operand::Imm(1));
    fb.mov_to(i, Operand::Reg(i2));
    fb.jump(header);
    fb.switch_to(exit);
}

/// Emit a while loop `while cond(state) { body }` where the condition is
/// recomputed each iteration by `cond` (a true while loop: the exit test
/// runs on every iteration, as in the paper's Figure 1 discussion).
///
/// `cond` must emit code computing a predicate register; `body` runs when
/// it is non-zero. On return the builder is in the exit block.
pub fn while_loop(
    fb: &mut FunctionBuilder,
    cond: impl FnOnce(&mut FunctionBuilder) -> Reg,
    body: impl FnOnce(&mut FunctionBuilder),
) {
    let header = fb.create_block();
    let body_block = fb.create_block();
    let exit = fb.create_block();
    fb.jump(header);
    fb.switch_to(header);
    let c = cond(fb);
    fb.branch(c, body_block, exit);
    fb.switch_to(body_block);
    body(fb);
    fb.jump(header);
    fb.switch_to(exit);
}

/// Emit `if cond { then }` — the builder continues in the join block.
pub fn if_then(fb: &mut FunctionBuilder, cond: Reg, then: impl FnOnce(&mut FunctionBuilder)) {
    let t = fb.create_block();
    let join = fb.create_block();
    fb.branch(cond, t, join);
    fb.switch_to(t);
    then(fb);
    fb.jump(join);
    fb.switch_to(join);
}

/// Emit `if cond { then } else { els }` — continues in the join block.
pub fn if_then_else(
    fb: &mut FunctionBuilder,
    cond: Reg,
    then: impl FnOnce(&mut FunctionBuilder),
    els: impl FnOnce(&mut FunctionBuilder),
) {
    let t = fb.create_block();
    let z = fb.create_block();
    let join = fb.create_block();
    fb.branch(cond, t, z);
    fb.switch_to(t);
    then(fb);
    fb.jump(join);
    fb.switch_to(z);
    els(fb);
    fb.jump(join);
    fb.switch_to(join);
}

/// The entry block, created and selected.
pub fn start(fb: &mut FunctionBuilder) -> BlockId {
    let e = fb.create_block();
    fb.switch_to(e);
    e
}

/// Deterministic pseudo-random array contents (SplitMix64), for data whose
/// branch behaviour should look random to the predictor.
pub fn random_memory(base: i64, len: usize, seed: u64, modulo: i64) -> Vec<(i64, i64)> {
    let mut state = seed;
    (0..len)
        .map(|k| {
            state = state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^= z >> 31;
            let v = if modulo > 0 {
                (z % (modulo as u64)) as i64
            } else {
                z as i64
            };
            (base + k as i64, v)
        })
        .collect()
}

/// Linearly increasing array contents `base[k] = start + k * step`.
pub fn ramp_memory(base: i64, len: usize, start: i64, step: i64) -> Vec<(i64, i64)> {
    (0..len)
        .map(|k| (base + k as i64, start + k as i64 * step))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_sim::functional::{run, RunConfig};

    #[test]
    fn counted_loop_runs_expected_trips() {
        let mut fb = FunctionBuilder::new("cl", 1);
        start(&mut fb);
        let acc = fb.mov(Operand::Imm(0));
        let limit = fb.param(0);
        counted_loop(&mut fb, Operand::Reg(limit), |fb, i| {
            let a = fb.add(Operand::Reg(acc), Operand::Reg(i));
            fb.mov_to(acc, Operand::Reg(a));
        });
        fb.ret(Some(Operand::Reg(acc)));
        let f = fb.build().unwrap();
        let r = run(&f, &[10], &[], &RunConfig::default()).unwrap();
        assert_eq!(r.ret, Some(45));
    }

    #[test]
    fn while_loop_tests_every_iteration() {
        // while (x != 1) { x = x odd ? 3x+1 : x/2 } — Collatz from 6: 8 steps
        let mut fb = FunctionBuilder::new("collatz", 1);
        start(&mut fb);
        let x = fb.mov(Operand::Reg(fb.param(0)));
        let steps = fb.mov(Operand::Imm(0));
        while_loop(
            &mut fb,
            |fb| fb.cmp_ne(Operand::Reg(x), Operand::Imm(1)),
            |fb| {
                let odd = fb.and(Operand::Reg(x), Operand::Imm(1));
                if_then_else(
                    fb,
                    odd,
                    |fb| {
                        let t = fb.mul(Operand::Reg(x), Operand::Imm(3));
                        let t = fb.add(Operand::Reg(t), Operand::Imm(1));
                        fb.mov_to(x, Operand::Reg(t));
                    },
                    |fb| {
                        let t = fb.div(Operand::Reg(x), Operand::Imm(2));
                        fb.mov_to(x, Operand::Reg(t));
                    },
                );
                let s = fb.add(Operand::Reg(steps), Operand::Imm(1));
                fb.mov_to(steps, Operand::Reg(s));
            },
        );
        fb.ret(Some(Operand::Reg(steps)));
        let f = fb.build().unwrap();
        let r = run(&f, &[6], &[], &RunConfig::default()).unwrap();
        assert_eq!(r.ret, Some(8));
    }

    #[test]
    fn if_then_join_continues() {
        let mut fb = FunctionBuilder::new("it", 1);
        start(&mut fb);
        let out = fb.mov(Operand::Imm(10));
        let c = fb.cmp_gt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        if_then(&mut fb, c, |fb| {
            fb.mov_to(out, Operand::Imm(20));
        });
        let plus = fb.add(Operand::Reg(out), Operand::Imm(1));
        fb.ret(Some(Operand::Reg(plus)));
        let f = fb.build().unwrap();
        assert_eq!(
            run(&f, &[1], &[], &RunConfig::default()).unwrap().ret,
            Some(21)
        );
        assert_eq!(
            run(&f, &[-1], &[], &RunConfig::default()).unwrap().ret,
            Some(11)
        );
    }

    #[test]
    fn memory_helpers() {
        let m = ramp_memory(100, 4, 5, 2);
        assert_eq!(m, vec![(100, 5), (101, 7), (102, 9), (103, 11)]);
        let r = random_memory(0, 8, 42, 10);
        assert!(r.iter().all(|(_, v)| (0..10).contains(v)));
        // Deterministic.
        assert_eq!(r, random_memory(0, 8, 42, 10));
        assert_ne!(r, random_memory(0, 8, 43, 10));
    }

    #[test]
    fn nested_loops_compose() {
        let mut fb = FunctionBuilder::new("nest", 0);
        start(&mut fb);
        let acc = fb.mov(Operand::Imm(0));
        counted_loop(&mut fb, Operand::Imm(4), |fb, _i| {
            counted_loop(fb, Operand::Imm(3), |fb, _j| {
                let a = fb.add(Operand::Reg(acc), Operand::Imm(1));
                fb.mov_to(acc, Operand::Reg(a));
            });
        });
        fb.ret(Some(Operand::Reg(acc)));
        let f = fb.build().unwrap();
        assert_eq!(
            run(&f, &[], &[], &RunConfig::default()).unwrap().ret,
            Some(12)
        );
    }
}
