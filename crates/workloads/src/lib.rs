#![warn(missing_docs)]
//! # chf-workloads — the evaluation workloads
//!
//! The paper evaluates on two suites that we reconstruct as executable IR
//! programs (DESIGN.md, substitution 2):
//!
//! * [`micro`] — the 24 microbenchmarks of Tables 1–2: loops and procedures
//!   "extracted from SPEC2000", GMTI radar signal-processing kernels, a
//!   10×10 matrix multiply, sieve, and Dhrystone. Each kernel's control
//!   structure and profile matches the behaviour the paper attributes to it
//!   (e.g. `ammp_1`'s low-trip-count while loops, `bzip2_3`'s
//!   infrequently-taken block ahead of the induction-variable update,
//!   `parser_1`'s rarely-taken heavy paths).
//! * [`spec`] — 19 SPEC2000-like whole-program composites for the
//!   block-count study of Table 3, each chaining several kernel phases at
//!   larger input sizes (stand-ins for the MinneSPEC reduced inputs).
//!
//! Every workload carries its inputs, a self-profile gathered by running
//! the basic-block form on a training input, and an expected result
//! verified at construction time.

use chf_ir::function::Function;
use chf_ir::profile::ProfileData;
use chf_sim::functional::{run, RunConfig};

pub mod helpers;
pub mod micro;
pub mod spec;

/// An executable benchmark: program, inputs, profile, and expected result.
#[derive(Clone, Debug)]
pub struct Workload {
    /// Name as it appears in the paper's tables.
    pub name: String,
    /// The program in basic-block form.
    pub function: Function,
    /// Arguments for the measured (reference) run.
    pub args: Vec<i64>,
    /// Initial memory for the measured run.
    pub memory: Vec<(i64, i64)>,
    /// Profile gathered from a training run (the same inputs, as in the
    /// paper's self-profiled microbenchmarks).
    pub profile: ProfileData,
    /// Expected return value of the measured run (validated at
    /// construction).
    pub expected: i64,
}

impl Workload {
    /// Package a function with inputs, gathering the profile and checking
    /// the expected result.
    ///
    /// # Panics
    /// Panics if the program fails to run or returns something other than
    /// `expected` — workload definitions are validated at construction.
    pub fn new(
        name: impl Into<String>,
        function: Function,
        args: Vec<i64>,
        memory: Vec<(i64, i64)>,
        expected: i64,
    ) -> Workload {
        let name = name.into();
        let result = run(&function, &args, &memory, &RunConfig::default())
            .unwrap_or_else(|e| panic!("workload {name} failed to execute: {e}"));
        assert_eq!(
            result.ret,
            Some(expected),
            "workload {name} returned {:?}, expected {expected}",
            result.ret
        );
        Workload {
            name,
            function,
            args,
            memory,
            profile: result.profile,
            expected,
        }
    }

    /// Dynamic block count of the basic-block form on the reference input.
    pub fn baseline_blocks(&self) -> u64 {
        run(
            &self.function,
            &self.args,
            &self.memory,
            &RunConfig::default(),
        )
        .expect("validated at construction")
        .blocks_executed
    }
}

/// All 24 microbenchmarks, in the paper's table order.
pub fn microbenchmarks() -> Vec<Workload> {
    micro::all()
}

/// The 19 SPEC2000-like composites, in the paper's Table 3 order.
pub fn spec_suite() -> Vec<Workload> {
    spec::all()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn micro_suite_has_paper_rows() {
        let names: Vec<String> = microbenchmarks().into_iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 24);
        for expected in [
            "ammp_1",
            "bzip2_3",
            "dct8x8",
            "dhry",
            "doppler_GMTI",
            "gzip_1",
            "matrix_1",
            "parser_1",
            "sieve",
            "transpose_GMTI",
            "vadd",
        ] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn spec_suite_has_paper_rows() {
        let names: Vec<String> = spec_suite().into_iter().map(|w| w.name).collect();
        assert_eq!(names.len(), 19);
        for expected in ["ammp", "bzip2", "mcf", "vpr", "wupwise"] {
            assert!(names.iter().any(|n| n == expected), "missing {expected}");
        }
    }

    #[test]
    fn all_workloads_have_profiles() {
        for w in microbenchmarks() {
            assert!(
                !w.profile.block_counts.is_empty(),
                "{} has empty profile",
                w.name
            );
        }
    }
}
