//! SPEC2000-like composites for the Table 3 block-count study.
//!
//! Each of the 19 programs chains several *phases* — parameterized loop
//! nests mirroring the dominant kernel shapes of its namesake benchmark
//! (DESIGN.md, substitution 2/3). Phases interact through memory, and every
//! phase has an independent Rust reference implementation, so each
//! composite's expected result is computed without the IR interpreter.

use crate::helpers::{counted_loop, if_then, if_then_else, random_memory, start, while_loop};
use crate::Workload;
use chf_ir::builder::FunctionBuilder;
use chf_ir::ids::Reg;
use chf_ir::instr::Operand;
use std::collections::HashMap;

fn reg(r: Reg) -> Operand {
    Operand::Reg(r)
}

fn imm(v: i64) -> Operand {
    Operand::Imm(v)
}

/// One loop-nest phase of a composite program.
#[derive(Clone, Debug)]
enum Phase {
    /// `for i in 0..n: acc += m[src+i] * ((i & 7) + 1)`
    Mac { src: i64, n: i64 },
    /// `for i in 0..n: if m[src+i] < thr { acc += 3v } else { acc -= v }`
    CondScan { src: i64, n: i64, thr: i64 },
    /// Low-trip while loops: `for i in 0..n: x = m[src+i]; while x != 0 { acc += x & 1; x /= 2 }`
    WhileHalve { src: i64, n: i64 },
    /// `dst[j*dim+i] = src[i*dim+j]`, acc ^= moved values
    Transpose { src: i64, dst: i64, dim: i64 },
    /// `c = a × b` (dim×dim), acc += diagonal of c
    Matmul { a: i64, b: i64, c: i64, dim: i64 },
    /// FIR filter with a low-trip inner tap loop
    Fir { src: i64, n: i64, taps: i64 },
    /// Rolling hash over a byte stream
    Hash { src: i64, n: i64 },
    /// `for i in 0..n: m[dst + (i*stride) % n] = i`, acc += stored
    StrideStore { dst: i64, n: i64, stride: i64 },
    /// Pointer-chasing-ish: `acc += m[tbl + (m[idx+i] & mask)]`
    Indirect {
        idx: i64,
        tbl: i64,
        n: i64,
        mask: i64,
    },
    /// Running maximum with an increasingly-rare update branch
    MaxScan { src: i64, n: i64 },
    /// A hot loop with a rare event arm ahead of the induction update
    RareEvent { src: i64, n: i64, rare: i64 },
}

impl Phase {
    /// Emit IR for this phase; `acc` is the running checksum register.
    fn emit(&self, fb: &mut FunctionBuilder, acc: Reg) {
        match *self {
            Phase::Mac { src, n } => {
                counted_loop(fb, imm(n), |fb, i| {
                    let a = fb.add(imm(src), reg(i));
                    let v = fb.load(reg(a));
                    let w0 = fb.and(reg(i), imm(7));
                    let w = fb.add(reg(w0), imm(1));
                    let p = fb.mul(reg(v), reg(w));
                    let s = fb.add(reg(acc), reg(p));
                    fb.mov_to(acc, reg(s));
                });
            }
            Phase::CondScan { src, n, thr } => {
                counted_loop(fb, imm(n), |fb, i| {
                    let a = fb.add(imm(src), reg(i));
                    let v = fb.load(reg(a));
                    let c = fb.cmp_lt(reg(v), imm(thr));
                    if_then_else(
                        fb,
                        c,
                        |fb| {
                            let t = fb.mul(reg(v), imm(3));
                            let s = fb.add(reg(acc), reg(t));
                            fb.mov_to(acc, reg(s));
                        },
                        |fb| {
                            let s = fb.sub(reg(acc), reg(v));
                            fb.mov_to(acc, reg(s));
                        },
                    );
                });
            }
            Phase::WhileHalve { src, n } => {
                counted_loop(fb, imm(n), |fb, i| {
                    let a = fb.add(imm(src), reg(i));
                    let v = fb.load(reg(a));
                    let x = fb.mov(reg(v));
                    while_loop(
                        fb,
                        |fb| fb.cmp_ne(reg(x), imm(0)),
                        |fb| {
                            let bit = fb.and(reg(x), imm(1));
                            let s = fb.add(reg(acc), reg(bit));
                            fb.mov_to(acc, reg(s));
                            let h = fb.div(reg(x), imm(2));
                            fb.mov_to(x, reg(h));
                        },
                    );
                });
            }
            Phase::Transpose { src, dst, dim } => {
                counted_loop(fb, imm(dim), |fb, i| {
                    counted_loop(fb, imm(dim), |fb, j| {
                        let row = fb.mul(reg(i), imm(dim));
                        let so = fb.add(reg(row), reg(j));
                        let sa = fb.add(imm(src), reg(so));
                        let v = fb.load(reg(sa));
                        let col = fb.mul(reg(j), imm(dim));
                        let dof = fb.add(reg(col), reg(i));
                        let da = fb.add(imm(dst), reg(dof));
                        fb.store(reg(da), reg(v));
                        let x = fb.xor(reg(acc), reg(v));
                        fb.mov_to(acc, reg(x));
                    });
                });
            }
            Phase::Matmul { a, b, c, dim } => {
                counted_loop(fb, imm(dim), |fb, i| {
                    counted_loop(fb, imm(dim), |fb, j| {
                        let s = fb.mov(imm(0));
                        counted_loop(fb, imm(dim), |fb, k| {
                            let ar = fb.mul(reg(i), imm(dim));
                            let ao = fb.add(reg(ar), reg(k));
                            let aa = fb.add(imm(a), reg(ao));
                            let av = fb.load(reg(aa));
                            let br = fb.mul(reg(k), imm(dim));
                            let bo = fb.add(reg(br), reg(j));
                            let ba = fb.add(imm(b), reg(bo));
                            let bv = fb.load(reg(ba));
                            let p = fb.mul(reg(av), reg(bv));
                            let s2 = fb.add(reg(s), reg(p));
                            fb.mov_to(s, reg(s2));
                        });
                        let cr = fb.mul(reg(i), imm(dim));
                        let co = fb.add(reg(cr), reg(j));
                        let ca = fb.add(imm(c), reg(co));
                        fb.store(reg(ca), reg(s));
                        let diag = fb.cmp_eq(reg(i), reg(j));
                        if_then(fb, diag, |fb| {
                            let s2 = fb.add(reg(acc), reg(s));
                            fb.mov_to(acc, reg(s2));
                        });
                    });
                });
            }
            Phase::Fir { src, n, taps } => {
                counted_loop(fb, imm(n), |fb, i| {
                    let s = fb.mov(imm(0));
                    counted_loop(fb, imm(taps), |fb, t| {
                        let a0 = fb.add(imm(src), reg(i));
                        let a1 = fb.add(reg(a0), reg(t));
                        let v = fb.load(reg(a1));
                        let w = fb.add(reg(t), imm(2));
                        let p = fb.mul(reg(v), reg(w));
                        let s2 = fb.add(reg(s), reg(p));
                        fb.mov_to(s, reg(s2));
                    });
                    let sc = fb.shr(reg(s), imm(2));
                    let a2 = fb.add(reg(acc), reg(sc));
                    fb.mov_to(acc, reg(a2));
                });
            }
            Phase::Hash { src, n } => {
                let h = fb.mov(imm(0));
                counted_loop(fb, imm(n), |fb, i| {
                    let a = fb.add(imm(src), reg(i));
                    let v = fb.load(reg(a));
                    let sh = fb.shl(reg(h), imm(5));
                    let x = fb.xor(reg(sh), reg(v));
                    let m = fb.and(reg(x), imm(8191));
                    fb.mov_to(h, reg(m));
                });
                let s = fb.add(reg(acc), reg(h));
                fb.mov_to(acc, reg(s));
            }
            Phase::StrideStore { dst, n, stride } => {
                counted_loop(fb, imm(n), |fb, i| {
                    let p = fb.mul(reg(i), imm(stride));
                    let o = fb.rem(reg(p), imm(n));
                    let a = fb.add(imm(dst), reg(o));
                    fb.store(reg(a), reg(i));
                    let s = fb.add(reg(acc), reg(o));
                    fb.mov_to(acc, reg(s));
                });
            }
            Phase::Indirect { idx, tbl, n, mask } => {
                counted_loop(fb, imm(n), |fb, i| {
                    let ia = fb.add(imm(idx), reg(i));
                    let iv = fb.load(reg(ia));
                    let m = fb.and(reg(iv), imm(mask));
                    let ta = fb.add(imm(tbl), reg(m));
                    let tv = fb.load(reg(ta));
                    let s = fb.add(reg(acc), reg(tv));
                    fb.mov_to(acc, reg(s));
                });
            }
            Phase::MaxScan { src, n } => {
                let mx = fb.mov(imm(-1));
                counted_loop(fb, imm(n), |fb, i| {
                    let a = fb.add(imm(src), reg(i));
                    let v = fb.load(reg(a));
                    let c = fb.cmp_gt(reg(v), reg(mx));
                    if_then(fb, c, |fb| {
                        fb.mov_to(mx, reg(v));
                    });
                });
                let s = fb.add(reg(acc), reg(mx));
                fb.mov_to(acc, reg(s));
            }
            Phase::RareEvent { src, n, rare } => {
                counted_loop(fb, imm(n), |fb, i| {
                    let a = fb.add(imm(src), reg(i));
                    let v = fb.load(reg(a));
                    let c = fb.cmp_eq(reg(v), imm(rare));
                    if_then(fb, c, |fb| {
                        let s = fb.add(reg(acc), imm(1_000));
                        fb.mov_to(acc, reg(s));
                    });
                    let t = fb.add(reg(v), imm(1));
                    let s = fb.add(reg(acc), reg(t));
                    fb.mov_to(acc, reg(s));
                });
            }
        }
    }

    /// Reference semantics over a sparse memory mirror.
    fn reference(&self, mem: &mut HashMap<i64, i64>, acc: &mut i64) {
        let load = |mem: &HashMap<i64, i64>, a: i64| mem.get(&a).copied().unwrap_or(0);
        match *self {
            Phase::Mac { src, n } => {
                for i in 0..n {
                    *acc += load(mem, src + i) * ((i & 7) + 1);
                }
            }
            Phase::CondScan { src, n, thr } => {
                for i in 0..n {
                    let v = load(mem, src + i);
                    if v < thr {
                        *acc += 3 * v;
                    } else {
                        *acc -= v;
                    }
                }
            }
            Phase::WhileHalve { src, n } => {
                for i in 0..n {
                    let mut x = load(mem, src + i);
                    while x != 0 {
                        *acc += x & 1;
                        x /= 2;
                    }
                }
            }
            Phase::Transpose { src, dst, dim } => {
                for i in 0..dim {
                    for j in 0..dim {
                        let v = load(mem, src + i * dim + j);
                        mem.insert(dst + j * dim + i, v);
                        *acc ^= v;
                    }
                }
            }
            Phase::Matmul { a, b, c, dim } => {
                for i in 0..dim {
                    for j in 0..dim {
                        let mut s = 0i64;
                        for k in 0..dim {
                            s += load(mem, a + i * dim + k) * load(mem, b + k * dim + j);
                        }
                        mem.insert(c + i * dim + j, s);
                        if i == j {
                            *acc += s;
                        }
                    }
                }
            }
            Phase::Fir { src, n, taps } => {
                for i in 0..n {
                    let mut s = 0i64;
                    for t in 0..taps {
                        s += load(mem, src + i + t) * (t + 2);
                    }
                    *acc += s >> 2;
                }
            }
            Phase::Hash { src, n } => {
                let mut h = 0i64;
                for i in 0..n {
                    h = ((h << 5) ^ load(mem, src + i)) & 8191;
                }
                *acc += h;
            }
            Phase::StrideStore { dst, n, stride } => {
                for i in 0..n {
                    let o = (i * stride) % n;
                    mem.insert(dst + o, i);
                    *acc += o;
                }
            }
            Phase::Indirect { idx, tbl, n, mask } => {
                for i in 0..n {
                    let iv = load(mem, idx + i);
                    *acc += load(mem, tbl + (iv & mask));
                }
            }
            Phase::MaxScan { src, n } => {
                let mut mx = -1i64;
                for i in 0..n {
                    let v = load(mem, src + i);
                    if v > mx {
                        mx = v;
                    }
                }
                *acc += mx;
            }
            Phase::RareEvent { src, n, rare } => {
                for i in 0..n {
                    let v = load(mem, src + i);
                    if v == rare {
                        *acc += 1_000;
                    }
                    *acc += v + 1;
                }
            }
        }
    }
}

/// Build a composite workload from phases and initial memory.
fn compose(name: &str, phases: &[Phase], mem: Vec<(i64, i64)>) -> Workload {
    // Reference run.
    let mut mirror: HashMap<i64, i64> = mem.iter().copied().collect();
    let mut expected = 0i64;
    for p in phases {
        p.reference(&mut mirror, &mut expected);
    }

    // IR build.
    let mut fb = FunctionBuilder::new(name, 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    for p in phases {
        p.emit(&mut fb, acc);
    }
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new(name, f, vec![], mem, expected)
}

// Memory bases used by the composites.
const M0: i64 = 1000;
const M1: i64 = 3000;
const M2: i64 = 5000;
const M3: i64 = 7000;

/// All 19 SPEC-like composites, in Table 3 order.
pub fn all() -> Vec<Workload> {
    vec![
        // ammp: molecular dynamics — low-trip whiles over neighbour lists.
        compose(
            "ammp",
            &[
                Phase::WhileHalve { src: M0, n: 120 },
                Phase::Mac { src: M1, n: 200 },
                Phase::RareEvent {
                    src: M0,
                    n: 150,
                    rare: 3,
                },
            ],
            [
                random_memory(M0, 200, 301, 15),
                random_memory(M1, 200, 302, 64),
            ]
            .concat(),
        ),
        // applu: PDE solver — dense small matmuls plus stencils.
        compose(
            "applu",
            &[
                Phase::Matmul {
                    a: M0,
                    b: M1,
                    c: M2,
                    dim: 8,
                },
                Phase::Fir {
                    src: M0,
                    n: 120,
                    taps: 5,
                },
                Phase::Mac { src: M2, n: 64 },
            ],
            [
                random_memory(M0, 160, 311, 20),
                random_memory(M1, 64, 312, 20),
            ]
            .concat(),
        ),
        // apsi: weather — stencil, corner turn, conditional scan.
        compose(
            "apsi",
            &[
                Phase::Fir {
                    src: M0,
                    n: 150,
                    taps: 4,
                },
                Phase::Transpose {
                    src: M0,
                    dst: M1,
                    dim: 12,
                },
                Phase::CondScan {
                    src: M1,
                    n: 144,
                    thr: 40,
                },
            ],
            random_memory(M0, 160, 321, 80),
        ),
        // art: neural net — MACs and winner-take-all.
        compose(
            "art",
            &[
                Phase::Mac { src: M0, n: 300 },
                Phase::MaxScan { src: M0, n: 300 },
                Phase::Mac { src: M1, n: 200 },
            ],
            [
                random_memory(M0, 300, 331, 100),
                random_memory(M1, 200, 332, 60),
            ]
            .concat(),
        ),
        // bzip2: compression — data-dependent branches, rare escapes, hash.
        compose(
            "bzip2",
            &[
                Phase::CondScan {
                    src: M0,
                    n: 250,
                    thr: 128,
                },
                Phase::RareEvent {
                    src: M0,
                    n: 250,
                    rare: 0,
                },
                Phase::Hash { src: M0, n: 250 },
            ],
            random_memory(M0, 250, 341, 256),
        ),
        // crafty: chess — table lookups and branchy evaluation.
        compose(
            "crafty",
            &[
                Phase::Indirect {
                    idx: M0,
                    tbl: M1,
                    n: 200,
                    mask: 63,
                },
                Phase::CondScan {
                    src: M0,
                    n: 200,
                    thr: 30,
                },
                Phase::MaxScan { src: M1, n: 64 },
            ],
            [
                random_memory(M0, 200, 351, 64),
                random_memory(M1, 64, 352, 500),
            ]
            .concat(),
        ),
        // equake: sparse solver — indirection plus MAC.
        compose(
            "equake",
            &[
                Phase::Indirect {
                    idx: M0,
                    tbl: M1,
                    n: 220,
                    mask: 127,
                },
                Phase::Mac { src: M1, n: 128 },
                Phase::Fir {
                    src: M1,
                    n: 100,
                    taps: 3,
                },
            ],
            [
                random_memory(M0, 220, 361, 128),
                random_memory(M1, 140, 362, 64),
            ]
            .concat(),
        ),
        // gap: group theory — hashing and small-integer arithmetic.
        compose(
            "gap",
            &[
                Phase::Hash { src: M0, n: 300 },
                Phase::WhileHalve { src: M0, n: 100 },
                Phase::CondScan {
                    src: M0,
                    n: 200,
                    thr: 100,
                },
            ],
            random_memory(M0, 300, 371, 200),
        ),
        // gzip: compression — hash chains and literal/match branches.
        compose(
            "gzip",
            &[
                Phase::Hash { src: M0, n: 350 },
                Phase::CondScan {
                    src: M0,
                    n: 300,
                    thr: 150,
                },
                Phase::RareEvent {
                    src: M0,
                    n: 200,
                    rare: 1,
                },
            ],
            random_memory(M0, 350, 381, 256),
        ),
        // mcf: network simplex — pointer chasing, rare pivots.
        compose(
            "mcf",
            &[
                Phase::Indirect {
                    idx: M0,
                    tbl: M1,
                    n: 260,
                    mask: 255,
                },
                Phase::MaxScan { src: M1, n: 256 },
                Phase::WhileHalve { src: M0, n: 120 },
            ],
            [
                random_memory(M0, 260, 391, 256),
                random_memory(M1, 256, 392, 900),
            ]
            .concat(),
        ),
        // mesa: 3D graphics — transform matmuls and buffer moves.
        compose(
            "mesa",
            &[
                Phase::Matmul {
                    a: M0,
                    b: M1,
                    c: M2,
                    dim: 10,
                },
                Phase::Transpose {
                    src: M2,
                    dst: M3,
                    dim: 10,
                },
                Phase::Mac { src: M3, n: 100 },
            ],
            [
                random_memory(M0, 100, 401, 15),
                random_memory(M1, 100, 402, 15),
            ]
            .concat(),
        ),
        // mgrid: multigrid — stencils upon stencils (few branches: the paper
        // reports tiny improvements for mgrid).
        compose(
            "mgrid",
            &[
                Phase::Fir {
                    src: M0,
                    n: 200,
                    taps: 6,
                },
                Phase::Fir {
                    src: M1,
                    n: 150,
                    taps: 4,
                },
                Phase::Mac { src: M0, n: 150 },
            ],
            [
                random_memory(M0, 210, 411, 50),
                random_memory(M1, 160, 412, 50),
            ]
            .concat(),
        ),
        // parser: NL parsing — rare heavy paths and low-trip scans.
        compose(
            "parser",
            &[
                Phase::RareEvent {
                    src: M0,
                    n: 280,
                    rare: 7,
                },
                Phase::CondScan {
                    src: M0,
                    n: 250,
                    thr: 20,
                },
                Phase::WhileHalve { src: M0, n: 130 },
            ],
            random_memory(M0, 280, 421, 100),
        ),
        // sixtrack: particle tracking — dense arithmetic.
        compose(
            "sixtrack",
            &[
                Phase::Matmul {
                    a: M0,
                    b: M1,
                    c: M2,
                    dim: 9,
                },
                Phase::Fir {
                    src: M2,
                    n: 81,
                    taps: 5,
                },
                Phase::Mac { src: M0, n: 81 },
            ],
            [
                random_memory(M0, 90, 431, 25),
                random_memory(M1, 90, 432, 25),
            ]
            .concat(),
        ),
        // swim: shallow water — strided stores and stencils.
        compose(
            "swim",
            &[
                Phase::StrideStore {
                    dst: M2,
                    n: 240,
                    stride: 7,
                },
                Phase::Fir {
                    src: M2,
                    n: 200,
                    taps: 4,
                },
                Phase::Mac { src: M2, n: 200 },
            ],
            random_memory(M0, 16, 441, 10),
        ),
        // twolf: placement — cost scans with lookups.
        compose(
            "twolf",
            &[
                Phase::CondScan {
                    src: M0,
                    n: 220,
                    thr: 90,
                },
                Phase::Indirect {
                    idx: M0,
                    tbl: M1,
                    n: 180,
                    mask: 63,
                },
                Phase::MaxScan { src: M0, n: 220 },
            ],
            [
                random_memory(M0, 220, 451, 180),
                random_memory(M1, 64, 452, 700),
            ]
            .concat(),
        ),
        // vortex: OO database — hashing and table dispatch.
        compose(
            "vortex",
            &[
                Phase::Hash { src: M0, n: 260 },
                Phase::Indirect {
                    idx: M0,
                    tbl: M1,
                    n: 200,
                    mask: 127,
                },
                Phase::CondScan {
                    src: M1,
                    n: 128,
                    thr: 300,
                },
            ],
            [
                random_memory(M0, 260, 461, 128),
                random_memory(M1, 128, 462, 600),
            ]
            .concat(),
        ),
        // vpr: FPGA place & route — maxima, branchy scans, retries.
        compose(
            "vpr",
            &[
                Phase::MaxScan { src: M0, n: 240 },
                Phase::CondScan {
                    src: M0,
                    n: 240,
                    thr: 55,
                },
                Phase::WhileHalve { src: M0, n: 110 },
            ],
            random_memory(M0, 240, 471, 110),
        ),
        // wupwise: lattice QCD — small complex matmuls and MACs.
        compose(
            "wupwise",
            &[
                Phase::Matmul {
                    a: M0,
                    b: M1,
                    c: M2,
                    dim: 11,
                },
                Phase::Mac { src: M2, n: 121 },
                Phase::Fir {
                    src: M0,
                    n: 110,
                    taps: 3,
                },
            ],
            [
                random_memory(M0, 125, 481, 12),
                random_memory(M1, 125, 482, 12),
            ]
            .concat(),
        ),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::verify::verify;

    #[test]
    fn all_composites_verify_and_validate() {
        for w in all() {
            verify(&w.function).unwrap_or_else(|e| panic!("{}: {e}", w.name));
        }
    }

    #[test]
    fn composites_execute_enough_blocks_to_matter() {
        for w in all() {
            let blocks = w.baseline_blocks();
            assert!(
                blocks > 1_000,
                "{} too small for a block-count study ({blocks} blocks)",
                w.name
            );
        }
    }

    #[test]
    fn phase_reference_matches_interpreter_per_phase() {
        // Cross-check each phase kind in isolation.
        let mem = random_memory(M0, 64, 999, 50);
        let phases = [
            Phase::Mac { src: M0, n: 64 },
            Phase::CondScan {
                src: M0,
                n: 64,
                thr: 25,
            },
            Phase::WhileHalve { src: M0, n: 32 },
            Phase::Transpose {
                src: M0,
                dst: M1,
                dim: 8,
            },
            Phase::Matmul {
                a: M0,
                b: M0,
                c: M2,
                dim: 6,
            },
            Phase::Fir {
                src: M0,
                n: 40,
                taps: 4,
            },
            Phase::Hash { src: M0, n: 64 },
            Phase::StrideStore {
                dst: M2,
                n: 40,
                stride: 3,
            },
            Phase::Indirect {
                idx: M0,
                tbl: M0,
                n: 40,
                mask: 31,
            },
            Phase::MaxScan { src: M0, n: 64 },
            Phase::RareEvent {
                src: M0,
                n: 64,
                rare: 5,
            },
        ];
        for (k, p) in phases.iter().enumerate() {
            let name = format!("phase_{k}");
            // compose() panics internally if reference and interpreter
            // disagree (Workload::new validates).
            let w = compose(&name, std::slice::from_ref(p), mem.clone());
            assert_eq!(w.name, name);
        }
    }
}
