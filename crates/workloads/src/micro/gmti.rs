//! GMTI radar signal-processing kernels (paper §7).
//!
//! Fixed-point integer renditions of the doppler filter, FFT butterflies,
//! forward FIR filter, and corner-turn (transpose) stages of the GMTI
//! pipeline.

use crate::helpers::{counted_loop, if_then, ramp_memory, random_memory, start};
use crate::Workload;
use chf_ir::builder::FunctionBuilder;
use chf_ir::ids::Reg;
use chf_ir::instr::Operand;

const A: i64 = 1000;
const B: i64 = 2000;

fn reg(r: Reg) -> Operand {
    Operand::Reg(r)
}

fn imm(v: i64) -> Operand {
    Operand::Imm(v)
}

/// `doppler_GMTI` — doppler filtering: sliding-window multiply-accumulate
/// with fixed-point scaling.
pub fn doppler_gmti() -> Workload {
    const N: usize = 256;
    let samples = random_memory(A, N + 1, 131, 1024);
    const C1: i64 = 13;
    const C2: i64 = 7;

    let mut expected = 0i64;
    for k in 0..N {
        let s = samples[k].1 * C1 + samples[k + 1].1 * C2;
        expected += s >> 4;
    }

    let mut fb = FunctionBuilder::new("doppler_GMTI", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let a0 = fb.add(imm(A), reg(i));
        let s0 = fb.load(reg(a0));
        let a1 = fb.add(reg(a0), imm(1));
        let s1 = fb.load(reg(a1));
        let m0 = fb.mul(reg(s0), imm(C1));
        let m1 = fb.mul(reg(s1), imm(C2));
        let s = fb.add(reg(m0), reg(m1));
        let sc = fb.shr(reg(s), imm(4));
        let a2 = fb.add(reg(acc), reg(sc));
        fb.mov_to(acc, reg(a2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new("doppler_GMTI", f, vec![], samples, expected)
}

/// `fft2_GMTI` — one radix-2 butterfly pass over 128 points, followed by a
/// post-conditioning test. The paper notes that merging this post-loop test
/// into the unrolled loop body is head duplication's (small) win here.
pub fn fft2_gmti() -> Workload {
    const HALF: usize = 64;
    let data = random_memory(A, 2 * HALF, 141, 512);

    let mut mem_ref: Vec<i64> = data.iter().map(|(_, v)| *v).collect();
    let mut expected = 0i64;
    for k in 0..HALF {
        let a = mem_ref[k];
        let b = mem_ref[k + HALF];
        mem_ref[k] = a + b;
        mem_ref[k + HALF] = a - b;
        expected += mem_ref[k] ^ (mem_ref[k + HALF] & 0xff);
    }
    if expected & 1 == 1 {
        expected += 255;
    }

    let mut fb = FunctionBuilder::new("fft2_GMTI", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(HALF as i64), |fb, k| {
        let lo_a = fb.add(imm(A), reg(k));
        let a = fb.load(reg(lo_a));
        let hi_a = fb.add(reg(lo_a), imm(HALF as i64));
        let b = fb.load(reg(hi_a));
        let sum = fb.add(reg(a), reg(b));
        let diff = fb.sub(reg(a), reg(b));
        fb.store(reg(lo_a), reg(sum));
        fb.store(reg(hi_a), reg(diff));
        let masked = fb.and(reg(diff), imm(0xff));
        let x = fb.xor(reg(sum), reg(masked));
        let a2 = fb.add(reg(acc), reg(x));
        fb.mov_to(acc, reg(a2));
    });
    // Post-conditioning test after the loop.
    let odd = fb.and(reg(acc), imm(1));
    if_then(&mut fb, odd, |fb| {
        let t = fb.add(reg(acc), imm(255));
        fb.mov_to(acc, reg(t));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new("fft2_GMTI", f, vec![], data, expected)
}

/// `fft4_GMTI` — a radix-4 butterfly pass: four loads, eight adds/subs,
/// four stores per iteration (a big, memory-dense body).
pub fn fft4_gmti() -> Workload {
    const Q: usize = 32;
    let data = random_memory(A, 4 * Q, 151, 512);

    let mut m: Vec<i64> = data.iter().map(|(_, v)| *v).collect();
    let mut expected = 0i64;
    for k in 0..Q {
        let (a, b, c, d) = (m[k], m[k + Q], m[k + 2 * Q], m[k + 3 * Q]);
        let t0 = a + c;
        let t1 = a - c;
        let t2 = b + d;
        let t3 = b - d;
        m[k] = t0 + t2;
        m[k + Q] = t1 + t3;
        m[k + 2 * Q] = t0 - t2;
        m[k + 3 * Q] = t1 - t3;
        expected += m[k] ^ (m[k + 2 * Q] & 0xfff);
    }

    let mut fb = FunctionBuilder::new("fft4_GMTI", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(Q as i64), |fb, k| {
        let a0 = fb.add(imm(A), reg(k));
        let a1 = fb.add(reg(a0), imm(Q as i64));
        let a2a = fb.add(reg(a0), imm(2 * Q as i64));
        let a3 = fb.add(reg(a0), imm(3 * Q as i64));
        let a = fb.load(reg(a0));
        let b = fb.load(reg(a1));
        let c = fb.load(reg(a2a));
        let d = fb.load(reg(a3));
        let t0 = fb.add(reg(a), reg(c));
        let t1 = fb.sub(reg(a), reg(c));
        let t2 = fb.add(reg(b), reg(d));
        let t3 = fb.sub(reg(b), reg(d));
        let o0 = fb.add(reg(t0), reg(t2));
        let o1 = fb.add(reg(t1), reg(t3));
        let o2 = fb.sub(reg(t0), reg(t2));
        let o3 = fb.sub(reg(t1), reg(t3));
        fb.store(reg(a0), reg(o0));
        fb.store(reg(a1), reg(o1));
        fb.store(reg(a2a), reg(o2));
        fb.store(reg(a3), reg(o3));
        let masked = fb.and(reg(o2), imm(0xfff));
        let x = fb.xor(reg(o0), reg(masked));
        let acc2 = fb.add(reg(acc), reg(x));
        fb.mov_to(acc, reg(acc2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new("fft4_GMTI", f, vec![], data, expected)
}

/// `forward_GMTI` — forward FIR filter: the inner tap loop has a *low,
/// constant* trip count (4 taps), a natural peeling target.
pub fn forward_gmti() -> Workload {
    const N: usize = 200;
    const TAPS: usize = 4;
    let signal = random_memory(A, N + TAPS, 161, 256);
    let coefs = ramp_memory(B, TAPS, 3, 2);

    let mut expected = 0i64;
    for i in 0..N {
        let mut s = 0i64;
        for t in 0..TAPS {
            s += signal[i + t].1 * coefs[t].1;
        }
        expected += s >> 2;
    }

    let mut fb = FunctionBuilder::new("forward_GMTI", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let s = fb.mov(imm(0));
        counted_loop(fb, imm(TAPS as i64), |fb, t| {
            let sa = fb.add(imm(A), reg(i));
            let sa2 = fb.add(reg(sa), reg(t));
            let sv = fb.load(reg(sa2));
            let ca = fb.add(imm(B), reg(t));
            let cv = fb.load(reg(ca));
            let p = fb.mul(reg(sv), reg(cv));
            let s2 = fb.add(reg(s), reg(p));
            fb.mov_to(s, reg(s2));
        });
        let sc = fb.shr(reg(s), imm(2));
        let a2 = fb.add(reg(acc), reg(sc));
        fb.mov_to(acc, reg(a2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let mut mem = signal;
    mem.extend(coefs);
    Workload::new("forward_GMTI", f, vec![], mem, expected)
}

/// `transpose_GMTI` — the corner turn: pure data movement, two memory
/// operations per iteration, so the 32-load/store block constraint, not
/// block size, limits merging (the paper reports only small gains).
pub fn transpose_gmti() -> Workload {
    const DIM: usize = 24;
    let src = random_memory(A, DIM * DIM, 171, 1000);

    let mut expected = 0i64;
    for i in 0..DIM {
        for j in 0..DIM {
            let v = src[i * DIM + j].1;
            // B[j][i] = A[i][j]; checksum with position weight
            expected += v * ((j * DIM + i) as i64 & 15);
        }
    }

    let mut fb = FunctionBuilder::new("transpose_GMTI", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(DIM as i64), |fb, i| {
        counted_loop(fb, imm(DIM as i64), |fb, j| {
            let row = fb.mul(reg(i), imm(DIM as i64));
            let src_off = fb.add(reg(row), reg(j));
            let sa = fb.add(imm(A), reg(src_off));
            let v = fb.load(reg(sa));
            let col = fb.mul(reg(j), imm(DIM as i64));
            let dst_off = fb.add(reg(col), reg(i));
            let da = fb.add(imm(B), reg(dst_off));
            fb.store(reg(da), reg(v));
            let w = fb.and(reg(dst_off), imm(15));
            let p = fb.mul(reg(v), reg(w));
            let a2 = fb.add(reg(acc), reg(p));
            fb.mov_to(acc, reg(a2));
        });
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new("transpose_GMTI", f, vec![], src, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn forward_inner_loop_trips_are_constant() {
        let w = forward_gmti();
        let constant_hist = w
            .profile
            .trip_histograms
            .values()
            .any(|h| h.counts.len() == 1 && h.mode() == Some(5));
        assert!(
            constant_hist,
            "forward FIR inner loop should always run 4 iterations (5 header visits): {:?}",
            w.profile.trip_histograms
        );
    }

    #[test]
    fn transpose_is_memory_dense() {
        let w = transpose_gmti();
        // Inner body: 1 load + 1 store out of ~10 instructions.
        let mems: usize = w.function.blocks().map(|(_, b)| b.memory_ops()).sum();
        assert!(mems >= 2);
    }

    #[test]
    fn fft_kernels_touch_expected_memory() {
        let w = fft2_gmti();
        let r =
            chf_sim::functional::run(&w.function, &w.args, &w.memory, &Default::default()).unwrap();
        // The butterfly writes both halves back.
        assert!(r.memory.len() >= 128);
    }
}
