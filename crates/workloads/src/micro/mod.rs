//! The 24 microbenchmarks of Tables 1 and 2.
//!
//! Each kernel reconstructs the control structure the paper attributes to
//! its namesake: loops and procedures extracted from SPEC2000
//! ([`spec2000`]), GMTI radar signal-processing kernels ([`gmti`]), and the
//! standalone kernels — 10×10 matrix multiply, sieve, Dhrystone, 8×8 DCT,
//! vector add ([`kernels`]).

pub mod gmti;
pub mod kernels;
pub mod spec2000;

pub use gmti::{doppler_gmti, fft2_gmti, fft4_gmti, forward_gmti, transpose_gmti};
pub use kernels::{dct8x8, dhry, matrix_1, sieve, vadd};
pub use spec2000::{
    ammp_1, ammp_2, art_1, art_2, art_3, bzip2_1, bzip2_2, bzip2_3, equake_1, gzip_1, gzip_2,
    parser_1, twolf_1, twolf_3,
};

use crate::Workload;

/// All 24 microbenchmarks in the paper's table order.
pub fn all() -> Vec<Workload> {
    vec![
        ammp_1(),
        ammp_2(),
        art_1(),
        art_2(),
        art_3(),
        bzip2_1(),
        bzip2_2(),
        bzip2_3(),
        dct8x8(),
        dhry(),
        doppler_gmti(),
        equake_1(),
        fft2_gmti(),
        fft4_gmti(),
        forward_gmti(),
        gzip_1(),
        gzip_2(),
        matrix_1(),
        parser_1(),
        sieve(),
        transpose_gmti(),
        twolf_1(),
        twolf_3(),
        vadd(),
    ]
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::verify::verify;

    #[test]
    fn every_micro_verifies_and_validates() {
        // Workload::new asserts the expected result; here we additionally
        // verify structural invariants of every kernel.
        for w in all() {
            verify(&w.function).unwrap_or_else(|e| panic!("{}: {e}", w.name));
            assert!(w.baseline_blocks() > 0);
        }
    }

    #[test]
    fn micros_have_loops() {
        for w in all() {
            let forest = chf_ir::loops::LoopForest::of(&w.function);
            assert!(
                !forest.loops.is_empty(),
                "{} should contain at least one loop",
                w.name
            );
        }
    }

    #[test]
    fn trip_histograms_recorded_for_loop_kernels() {
        let w = ammp_1();
        assert!(
            !w.profile.trip_histograms.is_empty(),
            "ammp_1 profile should include trip counts"
        );
    }
}
