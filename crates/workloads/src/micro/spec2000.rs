//! Microbenchmarks extracted from SPEC2000 (paper §7).
//!
//! Array-base conventions: `A = 1000`, `B = 2000`, `C = 3000`.

use crate::helpers::{
    counted_loop, if_then, if_then_else, ramp_memory, random_memory, start, while_loop,
};
use crate::Workload;
use chf_ir::builder::FunctionBuilder;
use chf_ir::ids::Reg;
use chf_ir::instr::Operand;

const A: i64 = 1000;
const B: i64 = 2000;
const C: i64 = 3000;

fn reg(r: Reg) -> Operand {
    Operand::Reg(r)
}

fn imm(v: i64) -> Operand {
    Operand::Imm(v)
}

/// `ammp_1` — nonbonded force update: an outer loop whose body contains two
/// *while* loops with low, data-dependent trip counts (mostly 3). The
/// paper calls `ammp_1`/`ammp_2` "the best candidates for head duplication".
pub fn ammp_1() -> Workload {
    const N: usize = 40;
    // Trip counts cluster around 3.
    let counts: Vec<(i64, i64)> = (0..N)
        .map(|k| (A + k as i64, 2 + ((k as i64 * 7 + 1) % 3))) // 2,3,4
        .collect();
    let dists: Vec<(i64, i64)> = (0..N).map(|k| (B + k as i64, 1 + (k as i64 % 4))).collect();

    // Reference.
    let mut expected = 0i64;
    for k in 0..N {
        let mut c = counts[k].1;
        while c > 0 {
            expected += c * 2;
            c -= 1;
        }
        let mut d = dists[k].1;
        while d != 0 {
            expected += 1;
            d /= 2;
        }
    }

    let mut fb = FunctionBuilder::new("ammp_1", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let addr = fb.add(imm(A), reg(i));
        let c0 = fb.load(reg(addr));
        let c = fb.mov(reg(c0));
        while_loop(
            fb,
            |fb| fb.cmp_gt(reg(c), imm(0)),
            |fb| {
                let t = fb.mul(reg(c), imm(2));
                let a2 = fb.add(reg(acc), reg(t));
                fb.mov_to(acc, reg(a2));
                let c2 = fb.sub(reg(c), imm(1));
                fb.mov_to(c, reg(c2));
            },
        );
        let daddr = fb.add(imm(B), reg(i));
        let d0 = fb.load(reg(daddr));
        let d = fb.mov(reg(d0));
        while_loop(
            fb,
            |fb| fb.cmp_ne(reg(d), imm(0)),
            |fb| {
                let a2 = fb.add(reg(acc), imm(1));
                fb.mov_to(acc, reg(a2));
                let d2 = fb.div(reg(d), imm(2));
                fb.mov_to(d, reg(d2));
            },
        );
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let mut mem = counts;
    mem.extend(dists);
    Workload::new("ammp_1", f, vec![], mem, expected)
}

/// `ammp_2` — vector-list traversal: nested while loops over small chains
/// with conditional accumulation.
pub fn ammp_2() -> Workload {
    const N: usize = 30;
    let data = random_memory(A, N, 11, 14);

    let mut expected = 0i64;
    for (_, v) in &data {
        let mut x = *v + 2;
        while x != 0 {
            if x & 1 == 1 {
                expected += x;
            }
            x /= 2;
        }
    }

    let mut fb = FunctionBuilder::new("ammp_2", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let addr = fb.add(imm(A), reg(i));
        let v = fb.load(reg(addr));
        let x0 = fb.add(reg(v), imm(2));
        let x = fb.mov(reg(x0));
        while_loop(
            fb,
            |fb| fb.cmp_ne(reg(x), imm(0)),
            |fb| {
                let odd = fb.and(reg(x), imm(1));
                if_then(fb, odd, |fb| {
                    let a2 = fb.add(reg(acc), reg(x));
                    fb.mov_to(acc, reg(a2));
                });
                let x2 = fb.div(reg(x), imm(2));
                fb.mov_to(x, reg(x2));
            },
        );
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new("ammp_2", f, vec![], data, expected)
}

/// `art_1` — neural-net F1 layer: a high-trip-count multiply-accumulate
/// scan (straight for loop, no internal control flow).
pub fn art_1() -> Workload {
    const N: usize = 400;
    let inputs = random_memory(A, N, 21, 100);
    let weights = random_memory(B, N, 22, 50);

    let expected: i64 = (0..N).map(|k| inputs[k].1 * weights[k].1).sum::<i64>() >> 6;

    let mut fb = FunctionBuilder::new("art_1", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let ia = fb.add(imm(A), reg(i));
        let x = fb.load(reg(ia));
        let wa = fb.add(imm(B), reg(i));
        let w = fb.load(reg(wa));
        let p = fb.mul(reg(x), reg(w));
        let a2 = fb.add(reg(acc), reg(p));
        fb.mov_to(acc, reg(a2));
    });
    let scaled = fb.shr(reg(acc), imm(6));
    fb.ret(Some(reg(scaled)));
    let f = fb.build().unwrap();

    let mut mem = inputs;
    mem.extend(weights);
    Workload::new("art_1", f, vec![], mem, expected)
}

/// `art_2` — winner-take-all max search with a data-dependent branch that
/// becomes rarer as the scan proceeds.
pub fn art_2() -> Workload {
    const N: usize = 300;
    let data = random_memory(A, N, 31, 10_000);

    let mut max = -1i64;
    let mut idx = 0i64;
    for (k, (_, v)) in data.iter().enumerate() {
        if *v > max {
            max = *v;
            idx = k as i64;
        }
    }
    let expected = max + idx;

    let mut fb = FunctionBuilder::new("art_2", 0);
    start(&mut fb);
    let max_r = fb.mov(imm(-1));
    let idx_r = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let addr = fb.add(imm(A), reg(i));
        let v = fb.load(reg(addr));
        let c = fb.cmp_gt(reg(v), reg(max_r));
        if_then(fb, c, |fb| {
            fb.mov_to(max_r, reg(v));
            fb.mov_to(idx_r, reg(i));
        });
    });
    let out = fb.add(reg(max_r), reg(idx_r));
    fb.ret(Some(reg(out)));
    let f = fb.build().unwrap();
    Workload::new("art_2", f, vec![], data, expected)
}

/// `art_3` — two-level match scan: a nest with a short inner loop and a
/// conditional normalization step after it.
pub fn art_3() -> Workload {
    const ROWS: usize = 50;
    const COLS: usize = 10;
    let data = random_memory(A, ROWS * COLS, 41, 64);
    let weights = ramp_memory(B, COLS, 1, 1);

    let mut expected = 0i64;
    for r in 0..ROWS {
        let mut dot = 0i64;
        for c in 0..COLS {
            dot += data[r * COLS + c].1 * weights[c].1;
        }
        if dot > 800 {
            dot -= 800;
        }
        expected += dot;
    }

    let mut fb = FunctionBuilder::new("art_3", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(ROWS as i64), |fb, r| {
        let dot = fb.mov(imm(0));
        let base = fb.mul(reg(r), imm(COLS as i64));
        counted_loop(fb, imm(COLS as i64), |fb, c| {
            let off = fb.add(reg(base), reg(c));
            let da = fb.add(imm(A), reg(off));
            let d = fb.load(reg(da));
            let wa = fb.add(imm(B), reg(c));
            let w = fb.load(reg(wa));
            let p = fb.mul(reg(d), reg(w));
            let d2 = fb.add(reg(dot), reg(p));
            fb.mov_to(dot, reg(d2));
        });
        let big = fb.cmp_gt(reg(dot), imm(800));
        if_then(fb, big, |fb| {
            let d2 = fb.sub(reg(dot), imm(800));
            fb.mov_to(dot, reg(d2));
        });
        let a2 = fb.add(reg(acc), reg(dot));
        fb.mov_to(acc, reg(a2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let mut mem = data;
    mem.extend(weights);
    Workload::new("art_3", f, vec![], mem, expected)
}

/// Shared shape of `bzip2_1`/`bzip2_2`: a scan whose if/else arms depend on
/// the data — ramp data makes the branch predictable, random data does not.
fn bzip2_scan(name: &str, mem: Vec<(i64, i64)>, n: usize) -> Workload {
    let mut expected = 0i64;
    for (_, v) in mem.iter().take(n) {
        if (*v & 0xff) < 128 {
            expected += v * 3;
        } else {
            expected -= v;
        }
    }

    let mut fb = FunctionBuilder::new(name, 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(n as i64), |fb, i| {
        let addr = fb.add(imm(A), reg(i));
        let v = fb.load(reg(addr));
        let low = fb.and(reg(v), imm(0xff));
        let c = fb.cmp_lt(reg(low), imm(128));
        if_then_else(
            fb,
            c,
            |fb| {
                let t = fb.mul(reg(v), imm(3));
                let a2 = fb.add(reg(acc), reg(t));
                fb.mov_to(acc, reg(a2));
            },
            |fb| {
                let a2 = fb.sub(reg(acc), reg(v));
                fb.mov_to(acc, reg(a2));
            },
        );
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new(name, f, vec![], mem, expected)
}

/// `bzip2_1` — block-sort scan with *predictable* branch behaviour.
pub fn bzip2_1() -> Workload {
    const N: usize = 200;
    bzip2_scan("bzip2_1", ramp_memory(A, N, 0, 1), N)
}

/// `bzip2_2` — the same scan over *random* data: the branch mispredicts.
pub fn bzip2_2() -> Workload {
    const N: usize = 200;
    bzip2_scan("bzip2_2", random_memory(A, N, 51, 256), N)
}

/// `bzip2_3` — the paper's §7.2 pathology: the main loop ends in a block
/// containing the induction-variable update, preceded by an
/// infrequently-taken block. Policies that exclude the cold block must tail
/// duplicate the final block, making the induction variable data-dependent
/// on the (slow, load-fed) test — a slowdown even against basic blocks for
/// the depth-first and VLIW heuristics.
pub fn bzip2_3() -> Workload {
    const N: usize = 250;
    // Rare condition: v == 0 on ~2% of elements.
    let mem = random_memory(A, N, 61, 50);

    let mut expected = 0i64;
    for (_, v) in mem.iter().take(N) {
        if *v == 0 {
            expected += 1000;
        }
        expected += v + 1;
    }

    let mut fb = FunctionBuilder::new("bzip2_3", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        // Work block: a load feeds the rare test, so the test resolves late.
        let addr = fb.add(imm(A), reg(i));
        let v = fb.load(reg(addr));
        let rare = fb.cmp_eq(reg(v), imm(0));
        if_then(fb, rare, |fb| {
            let a2 = fb.add(reg(acc), imm(1000));
            fb.mov_to(acc, reg(a2));
        });
        // Latch work (joined block): accumulate + (implicit) induction
        // update appended by counted_loop.
        let t = fb.add(reg(v), imm(1));
        let a2 = fb.add(reg(acc), reg(t));
        fb.mov_to(acc, reg(a2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new("bzip2_3", f, vec![], mem, expected)
}

/// `equake_1` — sparse matrix-vector product: indirection through a column
/// index array.
pub fn equake_1() -> Workload {
    const N: usize = 150;
    let cols = random_memory(A, N, 71, 64);
    let vals = random_memory(B, N, 72, 30);
    let x = ramp_memory(C, 64, 2, 3);

    let mut expected = 0i64;
    for k in 0..N {
        expected += vals[k].1 * x[cols[k].1 as usize].1;
    }

    let mut fb = FunctionBuilder::new("equake_1", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let ca = fb.add(imm(A), reg(i));
        let col = fb.load(reg(ca));
        let va = fb.add(imm(B), reg(i));
        let v = fb.load(reg(va));
        let xa = fb.add(imm(C), reg(col));
        let xv = fb.load(reg(xa));
        let p = fb.mul(reg(v), reg(xv));
        let a2 = fb.add(reg(acc), reg(p));
        fb.mov_to(acc, reg(a2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let mut mem = cols;
    mem.extend(vals);
    mem.extend(x);
    Workload::new("equake_1", f, vec![], mem, expected)
}

/// `gzip_1` — the deflate hash-update inner loop. Small body with one
/// conditional; the paper notes if-conversion plus scalar optimization fits
/// "the entire body of the innermost loop in one block, dramatically
/// reducing the total number of blocks executed".
pub fn gzip_1() -> Workload {
    const N: usize = 300;
    let data = random_memory(A, N, 81, 256);

    let mut expected = 0i64;
    let mut h = 0i64;
    for (_, v) in &data {
        h = ((h << 5) ^ v) & 1023;
        if h & 1 == 0 {
            expected += h;
        }
    }

    let mut fb = FunctionBuilder::new("gzip_1", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    let h = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let addr = fb.add(imm(A), reg(i));
        let v = fb.load(reg(addr));
        let sh = fb.shl(reg(h), imm(5));
        let x = fb.xor(reg(sh), reg(v));
        let m = fb.and(reg(x), imm(1023));
        fb.mov_to(h, reg(m));
        let even = fb.and(reg(h), imm(1));
        let is_even = fb.cmp_eq(reg(even), imm(0));
        if_then(fb, is_even, |fb| {
            let a2 = fb.add(reg(acc), reg(h));
            fb.mov_to(acc, reg(a2));
        });
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new("gzip_1", f, vec![], data, expected)
}

/// `gzip_2` — longest-match: an inner while loop with two exit conditions
/// (mismatch or maximum length).
pub fn gzip_2() -> Workload {
    const WINDOW: usize = 64;
    const TRIES: usize = 60;
    let hay = random_memory(A, WINDOW + 16, 91, 4);
    let needle = random_memory(B, 16, 92, 4);

    let mut expected = 0i64;
    for t in 0..TRIES {
        let p = t % WINDOW;
        let mut len = 0i64;
        while len < 16 && hay[p + len as usize].1 == needle[len as usize].1 {
            len += 1;
        }
        expected += len;
    }

    let mut fb = FunctionBuilder::new("gzip_2", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(TRIES as i64), |fb, t| {
        let p = fb.rem(reg(t), imm(WINDOW as i64));
        let len = fb.mov(imm(0));
        while_loop(
            fb,
            |fb| {
                let in_range = fb.cmp_lt(reg(len), imm(16));
                let ha = fb.add(imm(A), reg(p));
                let ha2 = fb.add(reg(ha), reg(len));
                let hv = fb.load(reg(ha2));
                let na = fb.add(imm(B), reg(len));
                let nv = fb.load(reg(na));
                let eq = fb.cmp_eq(reg(hv), reg(nv));
                fb.and(reg(in_range), reg(eq))
            },
            |fb| {
                let l2 = fb.add(reg(len), imm(1));
                fb.mov_to(len, reg(l2));
            },
        );
        let a2 = fb.add(reg(acc), reg(len));
        fb.mov_to(acc, reg(a2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let mut mem = hay;
    mem.extend(needle);
    Workload::new("gzip_2", f, vec![], mem, expected)
}

/// `parser_1` — dictionary lookup with several rarely-taken, heavy paths:
/// the VLIW heuristic excludes them (cold, tall), and pays an 11-fold
/// misprediction-rate increase when they do occur (paper §7.2).
pub fn parser_1() -> Workload {
    const N: usize = 250;
    let data = random_memory(A, N, 101, 100);

    let mut expected = 0i64;
    for (_, v) in &data {
        if *v == 7 {
            // Heavy path 1: long dependent chain.
            let mut t = *v;
            for _ in 0..12 {
                t = t * 3 + 1;
            }
            expected += t & 0xffff;
        } else if *v == 13 {
            // Heavy path 2.
            let mut t = *v;
            for _ in 0..12 {
                t = t * 5 + 7;
            }
            expected += t & 0xffff;
        } else {
            expected += v + 2;
        }
    }

    let mut fb = FunctionBuilder::new("parser_1", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let addr = fb.add(imm(A), reg(i));
        let v = fb.load(reg(addr));
        let is7 = fb.cmp_eq(reg(v), imm(7));
        if_then_else(
            fb,
            is7,
            |fb| {
                let t = fb.mov(reg(v));
                for _ in 0..12 {
                    let m = fb.mul(reg(t), imm(3));
                    let p = fb.add(reg(m), imm(1));
                    fb.mov_to(t, reg(p));
                }
                let masked = fb.and(reg(t), imm(0xffff));
                let a2 = fb.add(reg(acc), reg(masked));
                fb.mov_to(acc, reg(a2));
            },
            |fb| {
                let is13 = fb.cmp_eq(reg(v), imm(13));
                if_then_else(
                    fb,
                    is13,
                    |fb| {
                        let t = fb.mov(reg(v));
                        for _ in 0..12 {
                            let m = fb.mul(reg(t), imm(5));
                            let p = fb.add(reg(m), imm(7));
                            fb.mov_to(t, reg(p));
                        }
                        let masked = fb.and(reg(t), imm(0xffff));
                        let a2 = fb.add(reg(acc), reg(masked));
                        fb.mov_to(acc, reg(a2));
                    },
                    |fb| {
                        let t = fb.add(reg(v), imm(2));
                        let a2 = fb.add(reg(acc), reg(t));
                        fb.mov_to(acc, reg(a2));
                    },
                );
            },
        );
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new("parser_1", f, vec![], data, expected)
}

/// `twolf_1` — placement cost delta: absolute differences with a
/// moderately predictable clamp.
pub fn twolf_1() -> Workload {
    const N: usize = 150;
    let xs = random_memory(A, N, 111, 200);
    let ys = random_memory(B, N, 112, 200);

    let mut expected = 0i64;
    let mut cost = 0i64;
    for k in 0..N {
        let mut dx = xs[k].1 - ys[k].1;
        if dx < 0 {
            dx = -dx;
        }
        cost += dx;
        if cost > 5000 {
            cost -= 1000;
        }
    }
    expected += cost;

    let mut fb = FunctionBuilder::new("twolf_1", 0);
    start(&mut fb);
    let cost_r = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let xa = fb.add(imm(A), reg(i));
        let x = fb.load(reg(xa));
        let ya = fb.add(imm(B), reg(i));
        let y = fb.load(reg(ya));
        let dx = fb.sub(reg(x), reg(y));
        let d = fb.mov(reg(dx));
        let neg = fb.cmp_lt(reg(d), imm(0));
        if_then(fb, neg, |fb| {
            let n = fb.emit_unary(chf_ir::instr::Opcode::Neg, reg(d));
            fb.mov_to(d, reg(n));
        });
        let c2 = fb.add(reg(cost_r), reg(d));
        fb.mov_to(cost_r, reg(c2));
        let over = fb.cmp_gt(reg(cost_r), imm(5000));
        if_then(fb, over, |fb| {
            let c3 = fb.sub(reg(cost_r), imm(1000));
            fb.mov_to(cost_r, reg(c3));
        });
    });
    fb.ret(Some(reg(cost_r)));
    let f = fb.build().unwrap();

    let mut mem = xs;
    mem.extend(ys);
    Workload::new("twolf_1", f, vec![], mem, expected)
}

/// `twolf_3` — net-table walk: memory-heavy loop with dependent loads and
/// a store per iteration.
pub fn twolf_3() -> Workload {
    const N: usize = 120;
    let a = random_memory(A, N, 121, 64);
    let b = random_memory(B, 64, 122, 500);

    let mut expected = 0i64;
    for (k, (_, av)) in a.iter().enumerate().take(N) {
        let bv = b[(av & 63) as usize].1;
        let _ = k;
        expected += av + bv;
    }

    let mut fb = FunctionBuilder::new("twolf_3", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, i| {
        let aa = fb.add(imm(A), reg(i));
        let av = fb.load(reg(aa));
        let masked = fb.and(reg(av), imm(63));
        let ba = fb.add(imm(B), reg(masked));
        let bv = fb.load(reg(ba));
        let s = fb.add(reg(av), reg(bv));
        let ca = fb.add(imm(C), reg(i));
        fb.store(reg(ca), reg(s));
        let a2 = fb.add(reg(acc), reg(s));
        fb.mov_to(acc, reg(a2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let mut mem = a;
    mem.extend(b);
    Workload::new("twolf_3", f, vec![], mem, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ammp_loops_have_low_trip_counts() {
        let w = ammp_1();
        // Find an inner while-loop histogram whose mode is small.
        let low_trip = w
            .profile
            .trip_histograms
            .values()
            .any(|h| h.mode().map(|m| m <= 5).unwrap_or(false));
        assert!(low_trip, "ammp_1 should have low-trip inner loops");
    }

    #[test]
    fn bzip2_3_rare_block_is_rare() {
        let w = bzip2_3();
        // The rare arm executes on ~2% of iterations.
        let rare_freq = w
            .profile
            .block_counts
            .values()
            .filter(|&&c| c > 0 && c < 20)
            .count();
        assert!(rare_freq > 0, "bzip2_3 must have a rarely-executed block");
    }

    #[test]
    fn parser_heavy_paths_are_rare() {
        let w = parser_1();
        let total: u64 = *w
            .profile
            .block_counts
            .values()
            .max()
            .expect("nonempty profile");
        let has_rare = w
            .profile
            .block_counts
            .values()
            .any(|&c| c > 0 && c * 20 < total);
        assert!(has_rare, "parser_1 needs rarely-taken paths");
    }

    #[test]
    fn gzip_2_inner_loop_has_variable_trips() {
        let w = gzip_2();
        let any_hist = w
            .profile
            .trip_histograms
            .values()
            .any(|h| h.counts.len() > 1);
        assert!(any_hist, "gzip_2 match lengths should vary");
    }
}
