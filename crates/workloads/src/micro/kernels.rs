//! Standalone kernels of the microbenchmark suite: 8×8 DCT, Dhrystone,
//! 10×10 matrix multiply, sieve, and vector add (paper §7).

use crate::helpers::{counted_loop, if_then, if_then_else, random_memory, start, while_loop};
use crate::Workload;
use chf_ir::builder::FunctionBuilder;
use chf_ir::ids::Reg;
use chf_ir::instr::Operand;

const A: i64 = 1000;
const B: i64 = 2000;
const C: i64 = 3000;

fn reg(r: Reg) -> Operand {
    Operand::Reg(r)
}

fn imm(v: i64) -> Operand {
    Operand::Imm(v)
}

/// `dct8x8` — an 8×8 integer DCT-like transform. The body is a dense
/// straight-line butterfly: basic blocks are already large, so hyperblock
/// formation has little to add (the paper reports ≈ −0.6%).
pub fn dct8x8() -> Workload {
    const DIM: usize = 8;
    let src = random_memory(A, DIM * DIM, 181, 256);

    let m: Vec<i64> = src.iter().map(|(_, v)| *v).collect();
    let mut expected = 0i64;
    for r in 0..DIM {
        // One 8-point pass per row, unrolled in the source.
        let row = &m[r * DIM..(r + 1) * DIM];
        let s0 = row[0] + row[7];
        let s1 = row[1] + row[6];
        let s2 = row[2] + row[5];
        let s3 = row[3] + row[4];
        let d0 = row[0] - row[7];
        let d1 = row[1] - row[6];
        let d2 = row[2] - row[5];
        let d3 = row[3] - row[4];
        let e0 = s0 + s3;
        let e1 = s1 + s2;
        let o0 = d0 * 3 + d1;
        let o1 = d2 * 3 + d3;
        expected += (e0 + e1) ^ ((o0 + o1) & 0xff);
    }

    let mut fb = FunctionBuilder::new("dct8x8", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(DIM as i64), |fb, r| {
        let base = fb.mul(reg(r), imm(DIM as i64));
        let row_addr = fb.add(imm(A), reg(base));
        let mut vals = Vec::new();
        for k in 0..DIM {
            let a = fb.add(reg(row_addr), imm(k as i64));
            vals.push(fb.load(reg(a)));
        }
        let s0 = fb.add(reg(vals[0]), reg(vals[7]));
        let s1 = fb.add(reg(vals[1]), reg(vals[6]));
        let s2 = fb.add(reg(vals[2]), reg(vals[5]));
        let s3 = fb.add(reg(vals[3]), reg(vals[4]));
        let d0 = fb.sub(reg(vals[0]), reg(vals[7]));
        let d1 = fb.sub(reg(vals[1]), reg(vals[6]));
        let d2 = fb.sub(reg(vals[2]), reg(vals[5]));
        let d3 = fb.sub(reg(vals[3]), reg(vals[4]));
        let e0 = fb.add(reg(s0), reg(s3));
        let e1 = fb.add(reg(s1), reg(s2));
        let m0 = fb.mul(reg(d0), imm(3));
        let o0 = fb.add(reg(m0), reg(d1));
        let m1 = fb.mul(reg(d2), imm(3));
        let o1 = fb.add(reg(m1), reg(d3));
        let esum = fb.add(reg(e0), reg(e1));
        let osum = fb.add(reg(o0), reg(o1));
        let omask = fb.and(reg(osum), imm(0xff));
        let x = fb.xor(reg(esum), reg(omask));
        let a2 = fb.add(reg(acc), reg(x));
        fb.mov_to(acc, reg(a2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();
    Workload::new("dct8x8", f, vec![], src, expected)
}

/// `dhry` — a Dhrystone-like mix: record copies, string-ish comparison
/// loops, and chained small conditionals, giving many small basic blocks.
pub fn dhry() -> Workload {
    const ITERS: usize = 80;
    let glob = random_memory(A, 32, 191, 100);
    let str_a = random_memory(B, 8, 192, 4);
    let str_b = random_memory(C, 8, 193, 4);

    let ga: Vec<i64> = glob.iter().map(|(_, v)| *v).collect();
    let sa: Vec<i64> = str_a.iter().map(|(_, v)| *v).collect();
    let sb: Vec<i64> = str_b.iter().map(|(_, v)| *v).collect();
    let mut expected = 0i64;
    for it in 0..ITERS as i64 {
        let idx = (it % 32) as usize;
        let v = ga[idx];
        // Proc_1-ish: conditional chain.
        let mut t = if v > 50 { v - 50 } else { v + 7 };
        if t % 3 == 0 {
            t *= 2;
        }
        // Func_2-ish: compare strings until mismatch.
        let mut k = 0i64;
        while k < 8 && sa[k as usize] == sb[k as usize] {
            k += 1;
        }
        expected += t + k;
    }

    let mut fb = FunctionBuilder::new("dhry", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(ITERS as i64), |fb, it| {
        let idx = fb.rem(reg(it), imm(32));
        let ga_addr = fb.add(imm(A), reg(idx));
        let v = fb.load(reg(ga_addr));
        let t = fb.fresh_reg();
        let big = fb.cmp_gt(reg(v), imm(50));
        if_then_else(
            fb,
            big,
            |fb| {
                let x = fb.sub(reg(v), imm(50));
                fb.mov_to(t, reg(x));
            },
            |fb| {
                let x = fb.add(reg(v), imm(7));
                fb.mov_to(t, reg(x));
            },
        );
        let r3 = fb.rem(reg(t), imm(3));
        let div3 = fb.cmp_eq(reg(r3), imm(0));
        if_then(fb, div3, |fb| {
            let x = fb.mul(reg(t), imm(2));
            fb.mov_to(t, reg(x));
        });
        let k = fb.mov(imm(0));
        while_loop(
            fb,
            |fb| {
                let in_range = fb.cmp_lt(reg(k), imm(8));
                let aa = fb.add(imm(B), reg(k));
                let av = fb.load(reg(aa));
                let ba = fb.add(imm(C), reg(k));
                let bv = fb.load(reg(ba));
                let eq = fb.cmp_eq(reg(av), reg(bv));
                fb.and(reg(in_range), reg(eq))
            },
            |fb| {
                let k2 = fb.add(reg(k), imm(1));
                fb.mov_to(k, reg(k2));
            },
        );
        let tk = fb.add(reg(t), reg(k));
        let a2 = fb.add(reg(acc), reg(tk));
        fb.mov_to(acc, reg(a2));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let mut mem = glob;
    mem.extend(str_a);
    mem.extend(str_b);
    Workload::new("dhry", f, vec![], mem, expected)
}

/// `matrix_1` — the 10×10 integer matrix multiply.
pub fn matrix_1() -> Workload {
    const DIM: usize = 10;
    let a = random_memory(A, DIM * DIM, 201, 20);
    let b = random_memory(B, DIM * DIM, 202, 20);

    let am: Vec<i64> = a.iter().map(|(_, v)| *v).collect();
    let bm: Vec<i64> = b.iter().map(|(_, v)| *v).collect();
    let mut expected = 0i64;
    for i in 0..DIM {
        for j in 0..DIM {
            let mut s = 0i64;
            for k in 0..DIM {
                s += am[i * DIM + k] * bm[k * DIM + j];
            }
            // C[i][j] = s; checksum
            expected += s * ((i + j) as i64 & 7);
        }
    }

    let mut fb = FunctionBuilder::new("matrix_1", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(DIM as i64), |fb, i| {
        counted_loop(fb, imm(DIM as i64), |fb, j| {
            let s = fb.mov(imm(0));
            counted_loop(fb, imm(DIM as i64), |fb, k| {
                let arow = fb.mul(reg(i), imm(DIM as i64));
                let aoff = fb.add(reg(arow), reg(k));
                let aaddr = fb.add(imm(A), reg(aoff));
                let av = fb.load(reg(aaddr));
                let brow = fb.mul(reg(k), imm(DIM as i64));
                let boff = fb.add(reg(brow), reg(j));
                let baddr = fb.add(imm(B), reg(boff));
                let bv = fb.load(reg(baddr));
                let p = fb.mul(reg(av), reg(bv));
                let s2 = fb.add(reg(s), reg(p));
                fb.mov_to(s, reg(s2));
            });
            let crow = fb.mul(reg(i), imm(DIM as i64));
            let coff = fb.add(reg(crow), reg(j));
            let caddr = fb.add(imm(C), reg(coff));
            fb.store(reg(caddr), reg(s));
            let ij = fb.add(reg(i), reg(j));
            let w = fb.and(reg(ij), imm(7));
            let p = fb.mul(reg(s), reg(w));
            let a2 = fb.add(reg(acc), reg(p));
            fb.mov_to(acc, reg(a2));
        });
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let mut mem = a;
    mem.extend(b);
    Workload::new("matrix_1", f, vec![], mem, expected)
}

/// `sieve` — prime counting via the sieve of Eratosthenes.
pub fn sieve() -> Workload {
    const LIMIT: i64 = 200;

    let mut comp = vec![false; LIMIT as usize];
    let mut expected = 0i64;
    for i in 2..LIMIT {
        if !comp[i as usize] {
            expected += 1;
            let mut j = i * i;
            while j < LIMIT {
                comp[j as usize] = true;
                j += i;
            }
        }
    }

    // composite flags live at A + n.
    let mut fb = FunctionBuilder::new("sieve", 0);
    start(&mut fb);
    let count = fb.mov(imm(0));
    let i = fb.mov(imm(2));
    counted_loop_from_two(&mut fb, i, LIMIT, |fb, i| {
        let fa = fb.add(imm(A), reg(i));
        let flag = fb.load(reg(fa));
        let is_prime = fb.cmp_eq(reg(flag), imm(0));
        if_then(fb, is_prime, |fb| {
            let c2 = fb.add(reg(count), imm(1));
            fb.mov_to(count, reg(c2));
            let j0 = fb.mul(reg(i), reg(i));
            let j = fb.mov(reg(j0));
            while_loop(
                fb,
                |fb| fb.cmp_lt(reg(j), imm(LIMIT)),
                |fb| {
                    let ja = fb.add(imm(A), reg(j));
                    fb.store(reg(ja), imm(1));
                    let j2 = fb.add(reg(j), reg(i));
                    fb.mov_to(j, reg(j2));
                },
            );
        });
    });
    fb.ret(Some(reg(count)));
    let f = fb.build().unwrap();
    Workload::new("sieve", f, vec![], vec![], expected)
}

/// A counted loop starting from an existing register value (used by sieve,
/// which starts at 2).
fn counted_loop_from_two(
    fb: &mut FunctionBuilder,
    i: Reg,
    limit: i64,
    body: impl FnOnce(&mut FunctionBuilder, Reg),
) {
    crate::helpers::counted_loop_from(fb, i, imm(limit), body);
}

/// `vadd` — element-wise vector add: two loads and a store per iteration;
/// memory bandwidth (the 32 load/store block budget) caps unrolling.
pub fn vadd() -> Workload {
    const N: usize = 400;
    let a = random_memory(A, N, 211, 1000);
    let b = random_memory(B, N, 212, 1000);

    let mut expected = 0i64;
    for k in 0..N {
        let s = a[k].1 + b[k].1;
        expected ^= s.wrapping_add(k as i64);
    }

    let mut fb = FunctionBuilder::new("vadd", 0);
    start(&mut fb);
    let acc = fb.mov(imm(0));
    counted_loop(&mut fb, imm(N as i64), |fb, k| {
        let aa = fb.add(imm(A), reg(k));
        let av = fb.load(reg(aa));
        let ba = fb.add(imm(B), reg(k));
        let bv = fb.load(reg(ba));
        let s = fb.add(reg(av), reg(bv));
        let ca = fb.add(imm(C), reg(k));
        fb.store(reg(ca), reg(s));
        let sk = fb.add(reg(s), reg(k));
        let x = fb.xor(reg(acc), reg(sk));
        fb.mov_to(acc, reg(x));
    });
    fb.ret(Some(reg(acc)));
    let f = fb.build().unwrap();

    let mut mem = a;
    mem.extend(b);
    Workload::new("vadd", f, vec![], mem, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sieve_counts_primes_below_200() {
        let w = sieve();
        assert_eq!(w.expected, 46);
    }

    #[test]
    fn dct_blocks_are_large() {
        let w = dct8x8();
        let max_block = w
            .function
            .blocks()
            .map(|(_, b)| b.size())
            .max()
            .unwrap_or(0);
        assert!(
            max_block >= 30,
            "dct8x8 body should be a large basic block, got {max_block}"
        );
    }

    #[test]
    fn matrix_runs_thousand_inner_iterations() {
        let w = matrix_1();
        assert!(w.baseline_blocks() > 2000, "{}", w.baseline_blocks());
    }

    #[test]
    fn vadd_memory_result_written() {
        let w = vadd();
        let r =
            chf_sim::functional::run(&w.function, &w.args, &w.memory, &Default::default()).unwrap();
        assert_eq!(r.memory.iter().filter(|(k, _)| **k >= C).count(), 400);
    }
}
