//! Lifecycle edge cases of the compile service: backpressure at zero
//! capacity, degraded-by-deadline responses, the retry cap, and the
//! determinism guarantees of the formation cache (byte-identical hits,
//! worker-count independence).

use chf_core::ChfError;
use chf_ir::testgen::{generate, GenConfig};
use chf_service::{CompileRequest, CompileService, RequestStatus, RetryPolicy, ServiceConfig};
use chf_sim::functional::{profile_run, run, RunConfig};
use std::time::Duration;

/// A generated workload whose convergent compile performs real merge
/// trials (so a deadline has something to cut short).
fn busy_request(seed: u64) -> (CompileRequest, Vec<i64>) {
    let f = generate(seed, &GenConfig::default());
    let args: Vec<i64> = (0..f.params).map(|i| i as i64 + 3).collect();
    let profile = profile_run(&f, &args, &[]).unwrap_or_default();
    (CompileRequest::ir(f, profile), args)
}

#[test]
fn zero_capacity_queue_rejects_everything() {
    let svc = CompileService::new(ServiceConfig {
        queue_capacity: 0,
        ..ServiceConfig::default()
    });
    let (req, _) = busy_request(1);
    let id = svc.submit(req);
    let resp = svc.wait(id);
    assert_eq!(resp.status, RequestStatus::Rejected);
    assert!(resp.compiled.is_none());
    assert_eq!(svc.stats().rejected, 1);
    // Rejection is load shedding, not an error: no error payload.
    assert!(resp.error.is_none());
}

#[test]
fn expired_deadline_degrades_with_partial_blocks() {
    let svc = CompileService::new(ServiceConfig::default());
    let (mut req, args) = busy_request(5);
    req.options.deadline = Some(Duration::ZERO);
    let original = match &req.program {
        chf_service::Program::Ir(f) => f.clone(),
        _ => unreachable!(),
    };
    let id = svc.submit(req);
    let resp = svc.wait(id);
    assert_eq!(resp.status, RequestStatus::Degraded);
    let compiled = resp.compiled.expect("degraded carries the anytime result");
    assert!(compiled.stats.deadline_hit);
    assert!(
        compiled.stats.budget_skipped > 0,
        "an already-expired deadline must have dropped candidates"
    );
    // The partial result is still behaviour-preserving.
    let base = run(&original, &args, &[], &RunConfig::default()).unwrap();
    let got = run(&compiled.function, &args, &[], &RunConfig::default()).unwrap();
    assert_eq!(base.digest(), got.digest());
    assert_eq!(svc.stats().degraded, 1);
}

#[test]
fn expired_deadline_times_out_under_fail_fast() {
    let svc = CompileService::new(ServiceConfig::default());
    let (mut req, _) = busy_request(5);
    req.options.deadline = Some(Duration::ZERO);
    req.options.fail_on_deadline = true;
    let id = svc.submit(req);
    let resp = svc.wait(id);
    assert_eq!(resp.status, RequestStatus::TimedOut);
    assert!(resp.compiled.is_none());
    assert_eq!(svc.stats().timed_out, 1);
}

#[test]
fn partial_results_are_never_cached() {
    let svc = CompileService::new(ServiceConfig::default());
    let (mut req, _) = busy_request(5);
    req.options.deadline = Some(Duration::ZERO);
    let degraded = svc.wait(svc.submit(req.clone()));
    assert_eq!(degraded.status, RequestStatus::Degraded);
    assert_eq!(svc.cache_len(), 0, "a degraded result must not be memoized");
    // The same submission without a deadline compiles fully — and must be
    // a cold compile, not a replay of the partial result.
    req.options.deadline = None;
    let full = svc.wait(svc.submit(req));
    assert_eq!(full.status, RequestStatus::Done);
    assert!(!full.cache_hit);
    assert!(!full.compiled.unwrap().stats.deadline_hit);
    assert_eq!(svc.cache_len(), 1);
}

#[test]
fn retry_gives_up_after_the_cap() {
    let svc = CompileService::new(ServiceConfig {
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(400),
        },
        ..ServiceConfig::default()
    });
    let (mut req, _) = busy_request(9);
    // Panic on more attempts than the policy allows: the request must
    // terminate as a contained failure, not retry forever.
    req.options.inject_panics = 10;
    let id = svc.submit(req);
    let resp = svc.wait(id);
    assert_eq!(resp.status, RequestStatus::Failed);
    assert_eq!(resp.retries, 2, "exactly max_retries re-attempts");
    match resp.error {
        Some(ChfError::Panicked { context, .. }) => assert_eq!(context, "service worker"),
        other => panic!("expected a Panicked error, got {other:?}"),
    }
    let stats = svc.stats();
    assert_eq!(stats.retries, 2);
    assert_eq!(stats.failed, 1);
}

#[test]
fn transient_panics_recover_within_the_cap() {
    let svc = CompileService::new(ServiceConfig {
        retry: RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_micros(100),
            max_backoff: Duration::from_micros(400),
        },
        ..ServiceConfig::default()
    });
    let (mut req, _) = busy_request(9);
    req.options.inject_panics = 2;
    let resp = svc.wait(svc.submit(req));
    assert_eq!(resp.status, RequestStatus::Done);
    assert_eq!(resp.retries, 2);
    assert!(resp.compiled.is_some());
}

#[test]
fn identical_submissions_hit_the_cache_byte_identically() {
    let svc = CompileService::new(ServiceConfig::default());
    let (req, _) = busy_request(13);
    let cold = svc.wait(svc.submit(req.clone()));
    assert_eq!(cold.status, RequestStatus::Done);
    assert!(!cold.cache_hit);
    let hot = svc.wait(svc.submit(req));
    assert_eq!(hot.status, RequestStatus::Done);
    assert!(hot.cache_hit, "second identical submission must hit");
    let c = cold.compiled.unwrap();
    let h = hot.compiled.unwrap();
    assert_eq!(
        c.function.to_string(),
        h.function.to_string(),
        "cached function must be byte-identical to the cold compile"
    );
    assert_eq!(c.stats, h.stats, "FormationStats must replay exactly");
    let stats = svc.stats();
    assert_eq!((stats.cache_hits, stats.cache_misses), (1, 1));
    assert_eq!(stats.cache_hit_rate(), 0.5);
}

#[test]
fn results_are_independent_of_worker_count() {
    // The same request compiled by services with 1, 2, and 8 workers must
    // produce byte-identical functions and statistics: concurrency is a
    // throughput knob, never an output knob.
    let mut outputs: Vec<(String, String)> = Vec::new();
    for workers in [1usize, 2, 8] {
        let svc = CompileService::new(ServiceConfig {
            workers,
            ..ServiceConfig::default()
        });
        // A few requests in flight at once so multi-worker services
        // actually interleave.
        let reqs: Vec<_> = (0..4u64).map(|s| busy_request(40 + s).0).collect();
        let ids: Vec<_> = reqs.into_iter().map(|r| svc.submit(r)).collect();
        let mut fns = String::new();
        let mut stats = String::new();
        for id in ids {
            let resp = svc.wait(id);
            assert_eq!(resp.status, RequestStatus::Done, "workers={workers}");
            let c = resp.compiled.unwrap();
            fns.push_str(&c.function.to_string());
            stats.push_str(&format!("{:?}\n", c.stats));
        }
        outputs.push((fns, stats));
    }
    for w in &outputs[1..] {
        assert_eq!(outputs[0].0, w.0, "functions differ across worker counts");
        assert_eq!(outputs[0].1, w.1, "stats differ across worker counts");
    }
}

#[test]
fn statuses_progress_to_terminal() {
    let svc = CompileService::new(ServiceConfig::default());
    let (req, _) = busy_request(2);
    let id = svc.submit(req);
    // Whatever intermediate states we observe, the request must settle.
    let resp = svc
        .wait_timeout(id, Duration::from_secs(60))
        .expect("request must terminate");
    assert!(resp.status.is_terminal());
    assert_eq!(svc.status(id), Some(resp.status));
    assert_eq!(svc.stats().terminal(), 1);
}
