//! Service-side policy tournaments: batch submission, the CFG-shape winner
//! cache's hot path (exactly one policy compile, verified by counters), the
//! guard-band fallback on a stale/adversarial cached winner, and winner
//! determinism across worker counts.

use chf_core::tournament::TournamentConfig;
use chf_core::PolicyKind;
use chf_ir::testgen::{generate, GenConfig};
use chf_service::{
    CompileRequest, CompileService, RequestStatus, ServiceConfig, TournamentRequest,
};
use chf_sim::functional::profile_run;

fn tournament_request(seed: u64) -> TournamentRequest {
    let f = generate(seed, &GenConfig::default());
    let args: Vec<i64> = (0..f.params).map(|i| i as i64 + 3).collect();
    let profile = profile_run(&f, &args, &[]).unwrap_or_default();
    TournamentRequest {
        function: f,
        profile,
        args,
        memory: Vec::new(),
        config: TournamentConfig::default(),
    }
}

fn service(workers: usize) -> CompileService {
    CompileService::new(ServiceConfig {
        workers,
        ..ServiceConfig::default()
    })
}

#[test]
fn submit_batch_returns_responses_in_submission_order() {
    let svc = service(4);
    let reqs: Vec<CompileRequest> = (0..6)
        .map(|i| {
            let f = generate(40 + i, &GenConfig::default());
            CompileRequest::ir(f, Default::default())
        })
        .collect();
    let batch = svc.submit_batch(reqs);
    let ids = batch.ids().to_vec();
    let resps = batch.wait_all();
    assert_eq!(resps.len(), 6);
    for (resp, id) in resps.iter().zip(ids) {
        assert_eq!(resp.id, id, "responses must come back in submission order");
        assert_eq!(resp.status, RequestStatus::Done);
    }
    assert_eq!(svc.stats().done, 6);
}

#[test]
fn submit_batch_sheds_overflow_per_request_not_whole_batch() {
    // Zero queue capacity: every cold request is shed, but each one sheds
    // individually and terminally — wait_all never hangs.
    let svc = service(1);
    let shed = CompileService::new(ServiceConfig {
        workers: 1,
        queue_capacity: 0,
        ..ServiceConfig::default()
    });
    drop(svc);
    let reqs: Vec<CompileRequest> = (0..3)
        .map(|i| CompileRequest::ir(generate(50 + i, &GenConfig::default()), Default::default()))
        .collect();
    for resp in shed.submit_batch(reqs).wait_all() {
        assert_eq!(resp.status, RequestStatus::Rejected);
    }
}

#[test]
fn shape_cache_hot_path_runs_exactly_one_entrant() {
    let svc = service(4);
    let req = tournament_request(7);
    let portfolio = req.config.entrants().len();
    assert_eq!(portfolio, 6);

    // Cold: full portfolio.
    let cold = svc.compile_tournament(&req).unwrap();
    assert!(!cold.shape_hit);
    assert!(!cold.guard_fallback);
    assert_eq!(cold.entrants_run, portfolio);
    assert_eq!(cold.compiled.stats.tournament_entrants, portfolio);
    assert_eq!(svc.shape_cache_len(), 1);

    // Hot: the same shape compiles once with the cached winner.
    let hot = svc.compile_tournament(&req).unwrap();
    assert!(hot.shape_hit);
    assert!(!hot.guard_fallback);
    assert_eq!(hot.entrants_run, 1);
    assert_eq!(hot.compiled.stats.tournament_entrants, 1);
    assert_eq!(hot.policy, cold.policy);
    assert_eq!(hot.budget, cold.budget);
    assert_eq!(hot.label, cold.label);
    assert_eq!(hot.score, cold.score);
    assert_eq!(
        hot.compiled.function.to_string(),
        cold.compiled.function.to_string(),
        "hot-path artifact must be byte-identical to the cold winner"
    );

    // Counters prove the hot path was one compile, not a quiet portfolio.
    let s = svc.stats();
    assert_eq!(s.tournaments, 2);
    assert_eq!(s.shape_misses, 1);
    assert_eq!(s.shape_hits, 1);
    assert_eq!(s.guard_fallbacks, 0);
    assert_eq!(s.tournament_entrants, (portfolio + 1) as u64);
    let amortized = s.entrants_per_tournament();
    assert!(
        amortized < portfolio as f64,
        "amortized entrants {amortized} must fall below the portfolio size"
    );
}

#[test]
fn guard_band_fallback_distrusts_a_stale_winner() {
    let svc = service(4);
    let req = tournament_request(11);
    let portfolio = req.config.entrants().len();

    // Plant an adversarial entry: a plausible policy with an impossibly
    // good cached improvement. The hot compile cannot reach it, so the
    // guard band must trip and rerun the full portfolio.
    svc.override_shape_winner(&req, PolicyKind::DepthFirst, Some(16), 999_999);
    let out = svc.compile_tournament(&req).unwrap();
    assert!(out.shape_hit, "the planted entry was found");
    assert!(out.guard_fallback, "the inflated score must trip the band");
    assert_eq!(
        out.entrants_run,
        portfolio + 1,
        "hot probe + full portfolio"
    );
    assert_eq!(out.compiled.stats.tournament_entrants, portfolio);

    let s = svc.stats();
    assert_eq!(s.guard_fallbacks, 1);
    assert_eq!(s.shape_hits, 1);
    assert_eq!(s.shape_misses, 0);

    // The fallback refreshed the entry with the real improvement: the next
    // tournament is a clean hot path.
    let again = svc.compile_tournament(&req).unwrap();
    assert!(again.shape_hit);
    assert!(!again.guard_fallback);
    assert_eq!(again.entrants_run, 1);
    assert_eq!(again.policy, out.policy);
    assert_eq!(again.score, out.score);
    assert_eq!(svc.stats().guard_fallbacks, 1);
}

#[test]
fn tournament_winners_are_identical_at_1_2_and_8_workers() {
    for seed in [3u64, 7, 13, 29] {
        let req = tournament_request(seed);
        let outcomes: Vec<_> = [1usize, 2, 8]
            .iter()
            .map(|&w| service(w).compile_tournament(&req).unwrap())
            .collect();
        let reference = &outcomes[0];
        for (out, workers) in outcomes.iter().zip([1usize, 2, 8]) {
            assert_eq!(out.label, reference.label, "seed {seed}, {workers} workers");
            assert_eq!(out.score, reference.score, "seed {seed}, {workers} workers");
            assert_eq!(
                out.compiled.function.to_string(),
                reference.compiled.function.to_string(),
                "seed {seed}: artifact differs at {workers} workers"
            );
            assert_eq!(out.compiled.stats, reference.compiled.stats);
        }
    }
}

#[test]
fn service_tournament_matches_the_sequential_core_tournament() {
    for seed in [5u64, 17] {
        let req = tournament_request(seed);
        let core = chf_core::run_tournament(
            &req.function,
            &req.profile,
            &req.args,
            &req.memory,
            &req.config,
        )
        .unwrap();
        let svc = service(4);
        let out = svc.compile_tournament(&req).unwrap();
        assert_eq!(out.label, core.label, "seed {seed}");
        assert_eq!(out.score, core.score, "seed {seed}");
        assert_eq!(out.baseline, core.baseline, "seed {seed}");
        assert_eq!(
            out.compiled.function.to_string(),
            core.winner.function.to_string(),
            "seed {seed}: service and core tournaments disagree"
        );
    }
}
