//! Content-addressed, poison-safe formation cache.
//!
//! The million-user traffic pattern the service exists for is *repeated*
//! submission: the same function, the same configuration, the same training
//! profile. Formation is deterministic in that triple, so its result can be
//! memoized under a content-addressed key —
//! `(function hash, config hash, profile hash)` — computed from the inputs
//! themselves, never from client-supplied names.
//!
//! Two properties keep the cache from becoming a new failure mode:
//!
//! * **Poison-safety**: only fully successful (`Done`) compilations are
//!   inserted. Degraded, timed-out, errored, and chaos-instrumented results
//!   never enter the cache, so a transient failure cannot be replayed to
//!   every future client of the same key.
//! * **Integrity revalidation**: every entry carries a digest over the
//!   compiled function's printed form and its formation statistics,
//!   recomputed on each lookup. An entry that no longer matches its digest
//!   (bit rot, a bug scribbling over the store, an injected
//!   corrupted-cache-entry fault) is dropped and the lookup reports
//!   [`Lookup::Corrupt`] — the caller degrades to a cold compile instead of
//!   serving a miscompile.
//!
//! Eviction is FIFO at a fixed capacity: the service's workload is
//! dominated by a small hot set, and FIFO keeps the structure free of
//! per-hit bookkeeping on the fast path.

use chf_core::chaos::ChaosRng;
use chf_core::pipeline::{CompileConfig, Compiled};
use chf_ir::function::Function;
use chf_ir::fxhash::{FxHashMap, FxHasher};
use chf_ir::profile::ProfileData;
use std::collections::VecDeque;
use std::hash::Hasher;
use std::sync::Mutex;

/// The content-addressed key: independent fingerprints of the three inputs
/// formation is deterministic in.
#[derive(Copy, Clone, Debug, PartialEq, Eq, Hash)]
pub struct CacheKey {
    /// Fingerprint of the submitted function (printed form + signature).
    pub function: u64,
    /// Fingerprint of the compile configuration.
    pub config: u64,
    /// Fingerprint of the training profile.
    pub profile: u64,
}

fn hash_str(h: &mut FxHasher, s: &str) {
    h.write(s.as_bytes());
}

/// Fingerprint of a function: its printed `.til` form (which covers blocks,
/// instructions, exits, and frequencies) plus the signature fields the
/// printer already embeds. Printing is the repo's canonical serialization —
/// `parse(print(f))` is structurally identical to `f` — so two functions
/// fingerprint equal exactly when a client could not tell them apart.
pub fn function_fingerprint(f: &Function) -> u64 {
    let mut h = FxHasher::default();
    hash_str(&mut h, &f.to_string());
    h.finish()
}

/// Fingerprint of the compile configuration. Uses the `Debug` rendering of
/// the semantically relevant fields — stable within a build of the service,
/// which is the lifetime of the in-process cache. The `deadline` and
/// `chaos` fields are deliberately excluded: a compile that *completes*
/// under a deadline is byte-identical to an unbounded one (expiry is the
/// only observable, and expired compiles are never cached), and
/// chaos-instrumented compiles bypass the cache entirely.
pub fn config_fingerprint(c: &CompileConfig) -> u64 {
    let mut h = FxHasher::default();
    hash_str(&mut h, c.ordering.label());
    hash_str(
        &mut h,
        &format!(
            "{:?}/{:?}/{:?}/{}/{}/{:?}",
            c.policy, c.constraints, c.unroll, c.backend, c.fanout_targets, c.trial_budget
        ),
    );
    h.finish()
}

/// Fingerprint of a training profile: entries hashed in sorted key order so
/// the map's iteration order cannot leak into the key.
pub fn profile_fingerprint(p: &ProfileData) -> u64 {
    let mut h = FxHasher::default();
    let mut blocks: Vec<_> = p.block_counts.iter().map(|(b, n)| (b.0, *n)).collect();
    blocks.sort_unstable();
    for (b, n) in blocks {
        h.write_u32(b);
        h.write_u64(n);
    }
    let mut exits: Vec<_> = p
        .exit_counts
        .iter()
        .map(|((b, i), n)| (b.0, *i, *n))
        .collect();
    exits.sort_unstable();
    for (b, i, n) in exits {
        h.write_u32(b);
        h.write_usize(i);
        h.write_u64(n);
    }
    let mut trips: Vec<_> = p.trip_histograms.iter().collect();
    trips.sort_unstable_by_key(|(b, _)| b.0);
    for (b, hist) in trips {
        h.write_u32(b.0);
        let mut counts: Vec<_> = hist.counts.iter().map(|(t, n)| (*t, *n)).collect();
        counts.sort_unstable();
        for (t, n) in counts {
            h.write_u64(t);
            h.write_u64(n);
        }
    }
    h.finish()
}

/// Compose the full key for a `(function, config, profile)` submission.
pub fn cache_key(f: &Function, config: &CompileConfig, profile: &ProfileData) -> CacheKey {
    CacheKey {
        function: function_fingerprint(f),
        config: config_fingerprint(config),
        profile: profile_fingerprint(profile),
    }
}

/// Integrity digest of a stored result: the compiled function's printed
/// form plus every formation-statistics field. Anything a response exposes
/// is covered, so any corruption that could change a response also changes
/// the digest.
fn entry_digest(c: &Compiled) -> u64 {
    let mut h = FxHasher::default();
    hash_str(&mut h, &c.function.to_string());
    let s = &c.stats;
    for v in [
        s.merges,
        s.tail_dups,
        s.unrolls,
        s.peels,
        s.failures,
        s.skipped,
        s.trials,
        s.budget_skipped,
        s.tournament_entrants,
    ] {
        h.write_usize(v);
    }
    for v in [
        s.util_insts_permille,
        s.util_mem_permille,
        s.util_bank_permille,
    ] {
        h.write_u32(v);
    }
    h.write_u8(s.deadline_hit as u8);
    h.finish()
}

struct Entry {
    compiled: Compiled,
    digest: u64,
}

/// Result of a cache lookup.
pub enum Lookup {
    /// Entry present and its digest revalidated: a clone of the memoized
    /// result, byte-identical to the cold compile that produced it.
    Hit(Box<Compiled>),
    /// Entry present but failed revalidation; it has been dropped. The
    /// caller must compile cold.
    Corrupt,
    /// No entry under this key.
    Miss,
}

struct Store {
    map: FxHashMap<CacheKey, Entry>,
    /// Insertion order for FIFO eviction.
    order: VecDeque<CacheKey>,
}

/// The thread-safe formation cache. Capacity 0 disables it (every lookup
/// misses, every insert is dropped).
pub struct FormationCache {
    capacity: usize,
    store: Mutex<Store>,
}

impl FormationCache {
    /// A cache holding at most `capacity` entries.
    pub fn new(capacity: usize) -> Self {
        FormationCache {
            capacity,
            store: Mutex::new(Store {
                map: FxHashMap::default(),
                order: VecDeque::new(),
            }),
        }
    }

    /// Entries currently stored.
    pub fn len(&self) -> usize {
        self.store.lock().expect("cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Look up `key`, revalidating the entry's integrity digest before
    /// returning it. A corrupt entry is removed so the subsequent cold
    /// compile can repopulate the slot.
    pub fn get(&self, key: &CacheKey) -> Lookup {
        let mut store = self.store.lock().expect("cache lock");
        let Some(e) = store.map.get(key) else {
            return Lookup::Miss;
        };
        if entry_digest(&e.compiled) != e.digest {
            store.map.remove(key);
            store.order.retain(|k| k != key);
            return Lookup::Corrupt;
        }
        Lookup::Hit(Box::new(e.compiled.clone()))
    }

    /// Insert a *successful* compilation. The caller enforces
    /// poison-safety (never inserting degraded/errored results); this
    /// method only enforces capacity.
    pub fn insert(&self, key: CacheKey, compiled: &Compiled) {
        if self.capacity == 0 {
            return;
        }
        let mut store = self.store.lock().expect("cache lock");
        if !store.map.contains_key(&key) {
            while store.map.len() >= self.capacity {
                let Some(old) = store.order.pop_front() else {
                    break;
                };
                store.map.remove(&old);
            }
            store.order.push_back(key);
        }
        store.map.insert(
            key,
            Entry {
                compiled: compiled.clone(),
                digest: entry_digest(compiled),
            },
        );
    }

    /// Fault-injection hook (the `corrupted-cache-entry` chaos kind):
    /// corrupt the entry under `key` — without touching its stored digest —
    /// by mutating whichever field the seeded stream picks. Returns `false`
    /// if the key is absent. A subsequent [`FormationCache::get`] must
    /// report [`Lookup::Corrupt`], never serve the mutation.
    pub fn corrupt_entry(&self, key: &CacheKey, seed: u64) -> bool {
        let mut rng = ChaosRng::new(seed);
        let mut store = self.store.lock().expect("cache lock");
        let Some(e) = store.map.get_mut(key) else {
            return false;
        };
        match rng.next_range(3) {
            0 => e.compiled.stats.merges = e.compiled.stats.merges.wrapping_add(1),
            1 => {
                // Retarget an exit of some block — the kind of scribble a
                // buggy store would produce. Falls back to a stats tweak on
                // an exit-free function (there are none; every block has a
                // default exit).
                let f = &mut e.compiled.function;
                let ids: Vec<_> = f.block_ids().collect();
                let b = ids[rng.next_range(ids.len() as u64) as usize];
                let blk = f.block_mut(b);
                if let Some(exit) = blk.exits.last_mut() {
                    exit.target = chf_ir::block::ExitTarget::Return(None);
                } else {
                    e.compiled.stats.trials = e.compiled.stats.trials.wrapping_add(7);
                }
            }
            _ => e.compiled.stats.deadline_hit = !e.compiled.stats.deadline_hit,
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_core::pipeline::try_compile;
    use chf_ir::testgen::{generate, GenConfig};
    use chf_sim::functional::profile_run;

    fn compiled_pair() -> (Function, ProfileData, Compiled) {
        let f = generate(11, &GenConfig::default());
        let args: Vec<i64> = (0..f.params).map(|i| i as i64 + 2).collect();
        let profile = profile_run(&f, &args, &[]).unwrap_or_default();
        let c = try_compile(&f, &profile, &CompileConfig::convergent()).unwrap();
        (f, profile, c)
    }

    #[test]
    fn fingerprints_are_input_sensitive() {
        let a = generate(1, &GenConfig::default());
        let b = generate(2, &GenConfig::default());
        assert_eq!(function_fingerprint(&a), function_fingerprint(&a));
        assert_ne!(function_fingerprint(&a), function_fingerprint(&b));

        let conv = CompileConfig::convergent();
        let mut other = CompileConfig::convergent();
        other.trial_budget = Some(4);
        assert_eq!(config_fingerprint(&conv), config_fingerprint(&conv));
        assert_ne!(config_fingerprint(&conv), config_fingerprint(&other));

        // Deadline/chaos are excluded by design.
        let mut with_deadline = CompileConfig::convergent();
        with_deadline.deadline = Some(std::time::Instant::now());
        assert_eq!(
            config_fingerprint(&conv),
            config_fingerprint(&with_deadline)
        );
    }

    #[test]
    fn profile_fingerprint_ignores_map_order_but_not_content() {
        let f = generate(3, &GenConfig::default());
        let args: Vec<i64> = (0..f.params).map(|_| 3).collect();
        let p = profile_run(&f, &args, &[]).unwrap();
        let q = p.clone();
        assert_eq!(profile_fingerprint(&p), profile_fingerprint(&q));
        let mut r = p.clone();
        if let Some(n) = r.block_counts.values_mut().next() {
            *n = n.wrapping_add(1);
        }
        assert_ne!(profile_fingerprint(&p), profile_fingerprint(&r));
    }

    #[test]
    fn hit_returns_identical_result() {
        let (f, profile, c) = compiled_pair();
        let cache = FormationCache::new(8);
        let key = cache_key(&f, &CompileConfig::convergent(), &profile);
        assert!(matches!(cache.get(&key), Lookup::Miss));
        cache.insert(key, &c);
        match cache.get(&key) {
            Lookup::Hit(h) => {
                assert_eq!(h.function.to_string(), c.function.to_string());
                assert_eq!(h.stats, c.stats);
            }
            _ => panic!("expected a hit"),
        }
    }

    #[test]
    fn corrupt_entries_are_detected_and_dropped() {
        let (f, profile, c) = compiled_pair();
        let cache = FormationCache::new(8);
        let key = cache_key(&f, &CompileConfig::convergent(), &profile);
        cache.insert(key, &c);
        for seed in 0..12 {
            cache.insert(key, &c);
            assert!(cache.corrupt_entry(&key, seed));
            assert!(
                matches!(cache.get(&key), Lookup::Corrupt),
                "seed {seed}: corruption escaped revalidation"
            );
            // The poisoned entry is gone; the next lookup is a cold miss.
            assert!(matches!(cache.get(&key), Lookup::Miss));
        }
    }

    #[test]
    fn capacity_zero_disables_and_fifo_evicts() {
        let (f, profile, c) = compiled_pair();
        let off = FormationCache::new(0);
        let key = cache_key(&f, &CompileConfig::convergent(), &profile);
        off.insert(key, &c);
        assert!(matches!(off.get(&key), Lookup::Miss));

        let small = FormationCache::new(2);
        for i in 0..4u64 {
            small.insert(
                CacheKey {
                    function: i,
                    config: 0,
                    profile: 0,
                },
                &c,
            );
        }
        assert_eq!(small.len(), 2);
        // The first two inserted keys were evicted.
        assert!(matches!(
            small.get(&CacheKey {
                function: 0,
                config: 0,
                profile: 0
            }),
            Lookup::Miss
        ));
        assert!(matches!(
            small.get(&CacheKey {
                function: 3,
                config: 0,
                profile: 0
            }),
            Lookup::Hit(_)
        ));
    }
}
