//! CFG-shape → tournament-winner cache.
//!
//! The content-addressed [`crate::cache::FormationCache`] memoizes *exact*
//! `(function, config, profile)` submissions. Policy tournaments need a
//! second, much coarser layer: functions with the same CFG *shape*
//! ([`chf_ir::fingerprint::CfgShape`] — loop-nest depth histogram, branch
//! fan-out, block-count bucket, profile-skew bucket) tend to be won by the
//! same block-selection policy, so a recurring shape can skip the portfolio
//! and compile once with the cached winner.
//!
//! The cached entry carries the winner's *normalized* score (improvement
//! over the uncompiled baseline, in permille) so the hot path can validate
//! the decision cheaply: compile with the cached policy, score it, and if
//! the improvement regresses more than the configured guard band below the
//! cached value, distrust the entry and fall back to a full tournament
//! (updating the entry with the fresh winner). A stale or adversarial
//! entry therefore costs one extra compile, never a worse artifact.
//!
//! Same discipline as the formation cache: bounded, FIFO-evicted,
//! poison-safe (entries are only written from fully scored tournaments).

use chf_core::PolicyKind;
use chf_ir::fxhash::FxHashMap;
use std::collections::VecDeque;
use std::sync::Mutex;

/// One cached winner: the policy/budget that won the last full tournament
/// for this shape, and how well it did.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub struct ShapeEntry {
    /// Winning policy.
    pub policy: PolicyKind,
    /// Winning trial budget (`None` = unbounded).
    pub budget: Option<usize>,
    /// The winner's improvement over the uncompiled baseline, in permille
    /// (signed: a pathological portfolio can lose to the baseline).
    pub improvement_permille: i64,
}

struct Store {
    map: FxHashMap<u64, ShapeEntry>,
    order: VecDeque<u64>,
}

/// Bounded shape→winner cache (FIFO eviction, capacity 0 disables it).
pub struct ShapeCache {
    capacity: usize,
    store: Mutex<Store>,
}

impl ShapeCache {
    /// An empty cache holding at most `capacity` shapes.
    pub fn new(capacity: usize) -> ShapeCache {
        ShapeCache {
            capacity,
            store: Mutex::new(Store {
                map: FxHashMap::default(),
                order: VecDeque::new(),
            }),
        }
    }

    /// The cached winner for `shape`, if any.
    pub fn get(&self, shape: u64) -> Option<ShapeEntry> {
        self.store
            .lock()
            .expect("shape cache lock")
            .map
            .get(&shape)
            .copied()
    }

    /// Record (or refresh) the winner for `shape`.
    pub fn insert(&self, shape: u64, entry: ShapeEntry) {
        if self.capacity == 0 {
            return;
        }
        let mut store = self.store.lock().expect("shape cache lock");
        if store.map.insert(shape, entry).is_none() {
            store.order.push_back(shape);
            if store.order.len() > self.capacity {
                if let Some(evicted) = store.order.pop_front() {
                    store.map.remove(&evicted);
                }
            }
        }
    }

    /// Shapes currently cached.
    pub fn len(&self) -> usize {
        self.store.lock().expect("shape cache lock").map.len()
    }

    /// Whether the cache is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(imp: i64) -> ShapeEntry {
        ShapeEntry {
            policy: PolicyKind::HotFirst,
            budget: Some(16),
            improvement_permille: imp,
        }
    }

    #[test]
    fn insert_get_and_refresh() {
        let c = ShapeCache::new(4);
        assert!(c.get(1).is_none());
        c.insert(1, entry(500));
        assert_eq!(c.get(1).unwrap().improvement_permille, 500);
        c.insert(1, entry(600)); // refresh, not a second slot
        assert_eq!(c.get(1).unwrap().improvement_permille, 600);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_eviction_at_capacity() {
        let c = ShapeCache::new(2);
        c.insert(1, entry(1));
        c.insert(2, entry(2));
        c.insert(3, entry(3));
        assert_eq!(c.len(), 2);
        assert!(c.get(1).is_none(), "oldest shape must be evicted");
        assert!(c.get(2).is_some() && c.get(3).is_some());
    }

    #[test]
    fn zero_capacity_disables() {
        let c = ShapeCache::new(0);
        c.insert(1, entry(1));
        assert!(c.is_empty());
    }
}
