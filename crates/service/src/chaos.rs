//! Chaos campaign against the *live* service.
//!
//! The core campaign ([`chf_core::chaos::campaign`]) pressures the
//! formation pipeline in isolation. This module pressures the whole
//! service stack around it — queueing, worker isolation, retries,
//! deadlines, and the formation cache — by submitting seeded faulty
//! requests from several concurrent client threads and checking that every
//! request reaches the *specified* terminal state:
//!
//! * corrupted IR is `Failed` with a typed verifier error, never compiled;
//! * corrupted profiles still compile to behaviourally correct output;
//! * mid-trial and checkpoint corruption are contained exactly as in the
//!   core campaign, now end-to-end through a service request;
//! * a corrupted cache entry is detected by integrity revalidation and
//!   degraded to a cold compile whose result is **byte-identical** to the
//!   original — never served corrupt;
//! * an injected worker panic is retried and the request still completes.
//!
//! The pass criterion is absolute: zero aborts, zero miscompiles, zero
//! hung requests. Everything is seeded (`CHF_FAULT_SEED` replays a CI
//! failure locally), and per-kind tallies are deterministic even under
//! concurrency because each fault's outcome depends only on its own seed.

use crate::stats::ServiceStats;
use crate::{CompileRequest, CompileService, RequestStatus, ServiceConfig};
use chf_core::chaos::{
    self, checkpoint_fault_outcome, ChaosRng, ChaosSpec, FaultKind, FaultOutcome,
};
use chf_core::policy::PolicyKind;
use chf_ir::testgen::{generate, GenConfig};
use chf_sim::functional::{profile_run, run, RunConfig};
use std::fmt;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

/// A fault injectable against the live service: every core pipeline fault,
/// plus the two that only exist at the service layer.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum ServiceFaultKind {
    /// One of the core registry's faults ([`FaultKind::ALL`]), delivered
    /// through a service request instead of a direct formation call.
    Core(FaultKind),
    /// A cached formation result is corrupted in place (digest left stale);
    /// the next identical submission must detect it and compile cold.
    CorruptedCacheEntry,
    /// The worker thread panics mid-compile (via the request's
    /// `inject_panics` hook); the containment + retry path must still
    /// produce a correct `Done`.
    WorkerPanic,
}

impl ServiceFaultKind {
    /// Every service-injectable fault, for seeded selection and reporting.
    pub const ALL: [ServiceFaultKind; 11] = [
        ServiceFaultKind::Core(FaultKind::DanglingExit),
        ServiceFaultKind::Core(FaultKind::PredicatedDefault),
        ServiceFaultKind::Core(FaultKind::RegisterOutOfRange),
        ServiceFaultKind::Core(FaultKind::ZeroTripCount),
        ServiceFaultKind::Core(FaultKind::OverflowedTripCount),
        ServiceFaultKind::Core(FaultKind::TruncatedEdgeProfile),
        ServiceFaultKind::Core(FaultKind::ScrambledEdgeProfile),
        ServiceFaultKind::Core(FaultKind::MidTrial),
        ServiceFaultKind::Core(FaultKind::CorruptedCheckpoint),
        ServiceFaultKind::CorruptedCacheEntry,
        ServiceFaultKind::WorkerPanic,
    ];

    /// Position of this kind in [`ServiceFaultKind::ALL`].
    pub fn index(self) -> usize {
        ServiceFaultKind::ALL
            .iter()
            .position(|k| *k == self)
            .expect("every kind is in ALL")
    }
}

impl fmt::Display for ServiceFaultKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ServiceFaultKind::Core(k) => k.fmt(f),
            ServiceFaultKind::CorruptedCacheEntry => f.write_str("corrupted-cache-entry"),
            ServiceFaultKind::WorkerPanic => f.write_str("worker-panic"),
        }
    }
}

/// How one service-level fault resolved.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
enum ServiceOutcome {
    /// Refused or caught by a checking layer (verifier at the service
    /// door, cache integrity revalidation).
    Detected,
    /// Contained by a recovery mechanism (mid-trial rollback, checkpoint
    /// stitch fallback, worker-panic retry) and still correct.
    RolledBack,
    /// The fault had no effect the service had to defend against; output
    /// correct.
    Survived,
    /// A wrong answer escaped — behaviour divergence, a corrupt cache
    /// entry served, or an unexpected terminal state. Campaign failure.
    Miscompiled,
    /// The request never reached a terminal state within the campaign's
    /// generous timeout. Campaign failure.
    Hung,
}

/// Outcome counts for one [`ServiceFaultKind`] within a campaign.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct ServiceKindTally {
    /// Faults of this kind injected.
    pub injected: usize,
    /// Refused/caught by a checking layer.
    pub detected: usize,
    /// Contained by a recovery mechanism.
    pub rolled_back: usize,
    /// No defence needed; output correct.
    pub survived: usize,
    /// Client-side panics that escaped to the campaign's isolation. Must
    /// be 0 (the service itself contains worker panics; this counts bugs
    /// in the service *API*).
    pub aborts: usize,
    /// Wrong answers escaped. Must be 0.
    pub miscompiles: usize,
    /// Requests that never terminated. Must be 0.
    pub hung: usize,
}

/// Aggregate result of a [`service_campaign`] run.
#[derive(Clone, Debug, Default)]
pub struct ServiceCampaignReport {
    /// Faults injected.
    pub total: usize,
    /// Faults refused/caught by a checking layer.
    pub detected: usize,
    /// Faults contained by a recovery mechanism.
    pub rolled_back: usize,
    /// Faults that needed no defence (output still correct).
    pub survived: usize,
    /// Client-side panic escapes. Must be 0.
    pub aborts: usize,
    /// Wrong answers escaped. Must be 0.
    pub miscompiles: usize,
    /// Requests that never terminated. Must be 0.
    pub hung: usize,
    /// Per-kind breakdown, indexed like [`ServiceFaultKind::ALL`].
    pub by_kind: Vec<ServiceKindTally>,
    /// The service's own health counters at campaign end.
    pub stats: ServiceStats,
}

impl ServiceCampaignReport {
    /// The campaign's pass criterion: no aborts, no miscompiles, no hung
    /// requests, and every fault accounted for.
    pub fn ok(&self) -> bool {
        self.aborts == 0
            && self.miscompiles == 0
            && self.hung == 0
            && self.detected + self.rolled_back + self.survived == self.total
    }

    /// One-line machine-readable summary (stable keys, no trailing
    /// newline). Kinds that were never injected are omitted; the service's
    /// stats snapshot is embedded under `"stats"`.
    pub fn json(&self) -> String {
        use std::fmt::Write;
        let mut kinds = String::new();
        for (kind, t) in ServiceFaultKind::ALL.iter().zip(&self.by_kind) {
            if t.injected == 0 {
                continue;
            }
            if !kinds.is_empty() {
                kinds.push(',');
            }
            let _ = write!(
                kinds,
                "\"{kind}\":{{\"injected\":{},\"detected\":{},\"rolled_back\":{},\
                 \"survived\":{},\"aborts\":{},\"miscompiles\":{},\"hung\":{}}}",
                t.injected, t.detected, t.rolled_back, t.survived, t.aborts, t.miscompiles, t.hung
            );
        }
        format!(
            "{{\"campaign\":\"service\",\"faults\":{},\"detected\":{},\
             \"rolled_back\":{},\"survived\":{},\"contained\":{},\"aborts\":{},\
             \"miscompiles\":{},\"hung\":{},\"ok\":{},\"by_kind\":{{{kinds}}},\
             \"stats\":{}}}",
            self.total,
            self.detected,
            self.rolled_back,
            self.survived,
            self.detected + self.rolled_back + self.survived,
            self.aborts,
            self.miscompiles,
            self.hung,
            self.ok(),
            self.stats.json(),
        )
    }
}

impl fmt::Display for ServiceCampaignReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} faults: {} detected, {} rolled back, {} survived, \
             {} aborts, {} miscompiles, {} hung",
            self.total,
            self.detected,
            self.rolled_back,
            self.survived,
            self.aborts,
            self.miscompiles,
            self.hung
        )
    }
}

/// A request never terminating within this bound counts as hung. Far above
/// any legitimate compile of a testgen-sized program, so a trip means a
/// lost wake-up or deadlocked worker, not a slow machine.
const HUNG_AFTER: Duration = Duration::from_secs(120);

/// Submit `req`, wait for a terminal response, map "never terminates" to
/// [`ServiceOutcome::Hung`].
fn settle(
    svc: &CompileService,
    req: CompileRequest,
) -> Result<crate::CompileResponse, ServiceOutcome> {
    let id = svc.submit(req);
    svc.wait_timeout(id, HUNG_AFTER).ok_or(ServiceOutcome::Hung)
}

/// Whether `compiled` behaves identically to `reference` on `args`. A
/// reference that doesn't execute under default fuel yields `None` (no
/// behavioural claim either way).
fn behaviour_matches(
    reference: &chf_ir::function::Function,
    compiled: &chf_ir::function::Function,
    args: &[i64],
) -> Option<bool> {
    let base = run(reference, args, &[], &RunConfig::default()).ok()?;
    match run(compiled, args, &[], &RunConfig::default()) {
        Ok(r) => Some(r.digest() == base.digest()),
        Err(_) => Some(false),
    }
}

/// Run one seeded fault end to end against the live service.
fn run_one_service_fault(
    svc: &CompileService,
    fault_seed: u64,
) -> (ServiceFaultKind, ServiceOutcome) {
    let mut rng = ChaosRng::new(fault_seed);
    let kind = ServiceFaultKind::ALL[rng.next_range(ServiceFaultKind::ALL.len() as u64) as usize];
    let prog_seed = rng.next_u64();
    let mut f = generate(prog_seed, &GenConfig::default());
    let train: Vec<i64> = (0..f.params)
        .map(|_| rng.next_range(24) as i64 - 4)
        .collect();
    let mut profile = profile_run(&f, &train, &[]).unwrap_or_default();

    let outcome = match kind {
        ServiceFaultKind::Core(core_kind) => {
            let mut req_template = CompileRequest::ir(f.clone(), profile.clone());
            match core_kind {
                FaultKind::MidTrial => {
                    req_template.config.chaos = Some(ChaosSpec {
                        seed: fault_seed,
                        period: 2,
                    });
                }
                FaultKind::CorruptedCheckpoint => {}
                _ => {
                    chaos::inject(&mut f, &mut profile, core_kind, &mut rng);
                    if core_kind == FaultKind::ScrambledEdgeProfile {
                        // Scrambled ordering signals only matter to the
                        // policy that consumes them.
                        req_template.config.policy = PolicyKind::HotFirst;
                    }
                    req_template = CompileRequest {
                        program: crate::Program::Ir(f.clone()),
                        profile: profile.clone(),
                        ..req_template
                    };
                }
            }
            let ir_fault = matches!(
                core_kind,
                FaultKind::DanglingExit
                    | FaultKind::PredicatedDefault
                    | FaultKind::RegisterOutOfRange
            );
            match settle(svc, req_template) {
                Err(hung) => hung,
                Ok(resp) if ir_fault => {
                    // Structurally invalid IR must be refused at the
                    // service door with a typed verifier error.
                    match (resp.status, &resp.error) {
                        (RequestStatus::Failed, Some(chf_core::ChfError::Verify { .. })) => {
                            ServiceOutcome::Detected
                        }
                        _ => ServiceOutcome::Miscompiled,
                    }
                }
                Ok(resp) => {
                    if resp.status != RequestStatus::Done {
                        return (kind, ServiceOutcome::Miscompiled);
                    }
                    let compiled = resp.compiled.expect("Done carries the artifact");
                    match behaviour_matches(&f, &compiled.function, &train) {
                        Some(false) => ServiceOutcome::Miscompiled,
                        matched => {
                            let checked = matched.is_some();
                            match core_kind {
                                // The mid-trial net reports containment
                                // through the skip counter.
                                FaultKind::MidTrial if compiled.stats.skipped > 0 => {
                                    ServiceOutcome::RolledBack
                                }
                                // Corrupt a recorded simulator checkpoint
                                // of the *compiled response* and demand the
                                // stitch contains it.
                                FaultKind::CorruptedCheckpoint if checked => {
                                    match checkpoint_fault_outcome(
                                        &compiled.function,
                                        &train,
                                        &mut rng,
                                    ) {
                                        FaultOutcome::Miscompiled => ServiceOutcome::Miscompiled,
                                        FaultOutcome::RolledBack => ServiceOutcome::RolledBack,
                                        FaultOutcome::Detected => ServiceOutcome::Detected,
                                        FaultOutcome::Survived => ServiceOutcome::Survived,
                                    }
                                }
                                _ => ServiceOutcome::Survived,
                            }
                        }
                    }
                }
            }
        }
        ServiceFaultKind::CorruptedCacheEntry => {
            // Compile cold, corrupt the cached entry, resubmit: the reply
            // must be a *non-hit* byte-identical recompile.
            let req = CompileRequest::ir(f.clone(), profile.clone());
            match settle(svc, req.clone()) {
                Err(hung) => hung,
                Ok(first) if first.status != RequestStatus::Done => ServiceOutcome::Miscompiled,
                Ok(first) => {
                    let first_fn = first
                        .compiled
                        .as_ref()
                        .expect("Done carries the artifact")
                        .function
                        .to_string();
                    let corrupted = svc.corrupt_cached(&req, rng.next_u64());
                    match settle(svc, req) {
                        Err(hung) => hung,
                        Ok(second) => {
                            let second_fn = second
                                .compiled
                                .as_ref()
                                .map(|c| c.function.to_string())
                                .unwrap_or_default();
                            if second.status != RequestStatus::Done || second_fn != first_fn {
                                ServiceOutcome::Miscompiled
                            } else if corrupted {
                                if second.cache_hit {
                                    // Revalidation served the mutation.
                                    ServiceOutcome::Miscompiled
                                } else {
                                    ServiceOutcome::Detected
                                }
                            } else {
                                // The entry was already evicted (cache
                                // churn under load): nothing was corrupted,
                                // the identical reply is simply correct.
                                ServiceOutcome::Survived
                            }
                        }
                    }
                }
            }
        }
        ServiceFaultKind::WorkerPanic => {
            let mut req = CompileRequest::ir(f.clone(), profile.clone());
            req.options.inject_panics = 1;
            match settle(svc, req) {
                Err(hung) => hung,
                Ok(resp) => {
                    if resp.status != RequestStatus::Done || resp.retries == 0 {
                        ServiceOutcome::Miscompiled
                    } else {
                        let compiled = resp.compiled.expect("Done carries the artifact");
                        match behaviour_matches(&f, &compiled.function, &train) {
                            Some(false) => ServiceOutcome::Miscompiled,
                            _ => ServiceOutcome::RolledBack,
                        }
                    }
                }
            }
        }
    };
    (kind, outcome)
}

/// Run a seeded campaign of `faults` injections against one live service,
/// submitted from `clients` concurrent client threads. Each fault is
/// isolated in its own `catch_unwind` scope on the client side; escapes are
/// tallied as aborts (which fail [`ServiceCampaignReport::ok`]).
pub fn service_campaign(seed: u64, faults: usize, clients: usize) -> ServiceCampaignReport {
    let svc = CompileService::new(ServiceConfig {
        // Deep enough that backpressure never rejects a campaign request —
        // rejection under deliberate overload is tested separately; here
        // every fault must reach a worker.
        queue_capacity: faults + 16,
        cache_capacity: faults.max(64) * 2,
        ..ServiceConfig::default()
    });
    let mut master = ChaosRng::new(seed);
    let seeds: Vec<u64> = (0..faults).map(|_| master.next_u64()).collect();
    let clients = clients.max(1);
    let chunk = faults.div_ceil(clients).max(1);

    let mut report = ServiceCampaignReport {
        total: faults,
        by_kind: vec![ServiceKindTally::default(); ServiceFaultKind::ALL.len()],
        ..ServiceCampaignReport::default()
    };
    let tallies: Vec<Vec<ServiceKindTally>> = std::thread::scope(|s| {
        let svc = &svc;
        let handles: Vec<_> = seeds
            .chunks(chunk)
            .map(|chunk_seeds| {
                s.spawn(move || {
                    let mut local = vec![ServiceKindTally::default(); ServiceFaultKind::ALL.len()];
                    for &fs in chunk_seeds {
                        match catch_unwind(AssertUnwindSafe(|| run_one_service_fault(svc, fs))) {
                            Ok((kind, outcome)) => {
                                let t = &mut local[kind.index()];
                                t.injected += 1;
                                match outcome {
                                    ServiceOutcome::Detected => t.detected += 1,
                                    ServiceOutcome::RolledBack => t.rolled_back += 1,
                                    ServiceOutcome::Survived => t.survived += 1,
                                    ServiceOutcome::Miscompiled => t.miscompiles += 1,
                                    ServiceOutcome::Hung => t.hung += 1,
                                }
                            }
                            Err(_) => {
                                // The kind wasn't recoverable from the
                                // panic; attribute the abort to the first
                                // slot so totals still reconcile.
                                local[0].injected += 1;
                                local[0].aborts += 1;
                            }
                        }
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("campaign client thread panicked"))
            .collect()
    });
    for local in tallies {
        for (agg, t) in report.by_kind.iter_mut().zip(local) {
            agg.injected += t.injected;
            agg.detected += t.detected;
            agg.rolled_back += t.rolled_back;
            agg.survived += t.survived;
            agg.aborts += t.aborts;
            agg.miscompiles += t.miscompiles;
            agg.hung += t.hung;
        }
    }
    for t in &report.by_kind {
        report.detected += t.detected;
        report.rolled_back += t.rolled_back;
        report.survived += t.survived;
        report.aborts += t.aborts;
        report.miscompiles += t.miscompiles;
        report.hung += t.hung;
    }
    report.stats = svc.stats();
    report
}

/// Result of a [`soak`] run: mostly-clean traffic with a small injected
/// fault fraction, the shape of the `verify.sh service` CI gate.
#[derive(Clone, Debug)]
pub struct SoakReport {
    /// Requests submitted.
    pub requests: usize,
    /// How many of them carried an injected fault.
    pub faults: usize,
    /// Requests that never reached a terminal state. Must be 0.
    pub hung: usize,
    /// Requests that terminated wrongly (clean traffic not `Done`, a
    /// faulty request miscompiling, or a client-side panic). Must be 0.
    pub wrong: usize,
    /// The service's health counters at soak end.
    pub stats: ServiceStats,
}

impl SoakReport {
    /// Pass criterion: every request terminal, none hung, none wrong, and
    /// the service's own accounting closed (terminal count = submissions).
    pub fn ok(&self) -> bool {
        self.hung == 0 && self.wrong == 0 && self.stats.terminal() == self.stats.submitted
    }

    /// One-line machine-readable summary (stable keys, no trailing
    /// newline) with the service stats embedded under `"stats"`.
    pub fn json(&self) -> String {
        format!(
            "{{\"campaign\":\"service-soak\",\"requests\":{},\"faults\":{},\
             \"hung\":{},\"wrong\":{},\"ok\":{},\"stats\":{}}}",
            self.requests,
            self.faults,
            self.hung,
            self.wrong,
            self.ok(),
            self.stats.json(),
        )
    }
}

/// Soak the service with `requests` submissions from `clients` concurrent
/// threads, roughly `fault_percent`% of them carrying a seeded fault (the
/// full [`ServiceFaultKind`] registry) and the rest clean compiles drawn
/// from a small hot set of programs — so the formation cache, the worker
/// pool, and the fault-containment paths are all exercised *together*, the
/// traffic shape a long-lived daemon actually sees.
pub fn soak(seed: u64, requests: usize, clients: usize, fault_percent: u32) -> SoakReport {
    /// Distinct programs in the clean-traffic hot set: small enough that
    /// repeats (and therefore cache hits) are guaranteed for any
    /// non-trivial soak, large enough to keep all workers busy cold.
    const HOT_SET: u64 = 12;

    let svc = CompileService::new(ServiceConfig {
        queue_capacity: requests + 16,
        ..ServiceConfig::default()
    });
    let mut master = ChaosRng::new(seed);
    let plan: Vec<(u64, bool)> = (0..requests)
        .map(|_| {
            let s = master.next_u64();
            let faulty = master.next_range(100) < u64::from(fault_percent);
            (s, faulty)
        })
        .collect();
    let clients = clients.max(1);
    let chunk = requests.div_ceil(clients).max(1);

    let (hung, wrong) = std::thread::scope(|s| {
        let svc = &svc;
        let handles: Vec<_> = plan
            .chunks(chunk)
            .map(|chunk_plan| {
                s.spawn(move || {
                    let (mut hung, mut wrong) = (0usize, 0usize);
                    for &(rs, faulty) in chunk_plan {
                        if faulty {
                            match catch_unwind(AssertUnwindSafe(|| run_one_service_fault(svc, rs)))
                            {
                                Ok((_, ServiceOutcome::Hung)) => hung += 1,
                                Ok((_, ServiceOutcome::Miscompiled)) => wrong += 1,
                                Ok(_) => {}
                                Err(_) => wrong += 1,
                            }
                            continue;
                        }
                        let mut rng = ChaosRng::new(rs);
                        let f = generate(rng.next_range(HOT_SET), &GenConfig::default());
                        let args: Vec<i64> = (0..f.params).map(|i| i as i64 + 3).collect();
                        let profile = profile_run(&f, &args, &[]).unwrap_or_default();
                        match settle(svc, CompileRequest::ir(f, profile)) {
                            Err(ServiceOutcome::Hung) => hung += 1,
                            Err(_) => wrong += 1,
                            Ok(resp) if resp.status == RequestStatus::Done => {}
                            Ok(_) => wrong += 1,
                        }
                    }
                    (hung, wrong)
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak client thread panicked"))
            .fold((0, 0), |(h, w), (dh, dw)| (h + dh, w + dw))
    });
    SoakReport {
        requests,
        faults: plan.iter().filter(|(_, f)| *f).count(),
        hung,
        wrong,
        stats: svc.stats(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_service_campaign_is_clean() {
        let r = service_campaign(0x5E2C, 22, 4);
        assert!(r.ok(), "service campaign failed: {r}");
        assert_eq!(r.aborts, 0);
        assert_eq!(r.miscompiles, 0);
        assert_eq!(r.hung, 0);
        let attributed: usize = r.by_kind.iter().map(|t| t.injected).sum();
        assert_eq!(attributed, r.total);
    }

    #[test]
    fn campaign_tallies_are_seed_deterministic() {
        let a = service_campaign(0xD00D, 16, 4);
        let b = service_campaign(0xD00D, 16, 2);
        assert!(a.ok(), "{a}");
        // Outcomes depend only on each fault's seed, so tallies are stable
        // across runs and across client counts.
        assert_eq!(a.by_kind, b.by_kind);
    }

    #[test]
    fn json_embeds_stats_and_kind_breakdown() {
        let r = service_campaign(3, 12, 4);
        let j = r.json();
        assert!(j.starts_with('{') && j.ends_with('}'));
        assert!(!j.contains('\n'));
        assert!(j.contains("\"campaign\":\"service\""), "{j}");
        assert!(j.contains("\"by_kind\""), "{j}");
        assert!(j.contains("\"stats\":{"), "{j}");
        assert!(j.contains("\"ok\":true"), "{j}");
    }

    #[test]
    fn soak_settles_every_request_and_hits_the_cache() {
        let r = soak(0xBEEF, 60, 4, 5);
        assert!(r.ok(), "soak failed: hung={}, wrong={}", r.hung, r.wrong);
        assert_eq!(r.stats.terminal(), r.stats.submitted);
        // Clean traffic repeats a small hot set, so memoization must show.
        assert!(r.stats.cache_hits > 0, "soak never hit the cache");
        let j = r.json();
        assert!(j.contains("\"campaign\":\"service-soak\""), "{j}");
        assert!(j.contains("\"ok\":true"), "{j}");
    }

    #[test]
    fn every_kind_appears_in_a_moderate_campaign() {
        let r = service_campaign(0xA11, 64, 4);
        assert!(r.ok(), "{r}");
        for (kind, t) in ServiceFaultKind::ALL.iter().zip(&r.by_kind) {
            assert!(t.injected > 0, "kind {kind} never drawn in 64 faults");
        }
    }
}
