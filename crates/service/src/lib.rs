#![warn(missing_docs)]
//! # chf-service — resilient compile-as-a-service
//!
//! A long-lived, in-process compile service wrapping the hyperblock
//! formation pipeline (see `chf-core`). It exists because the convergent
//! trial loop is exactly the kind of unbounded, occasionally-pathological
//! work that must never take a daemon down with it: every failure mode has
//! a *specified* terminal state, and the chaos harness (`chaos --service`)
//! tests that specification rather than trusting it.
//!
//! ## Request lifecycle
//!
//! ```text
//! submit ──► Queued ──► Running ──► Done       (full result, cacheable)
//!    │                     │  ├───► Degraded   (deadline hit mid-formation:
//!    │                     │  │                 the anytime partial result)
//!    │                     │  ├───► TimedOut   (deadline hit, fail-fast
//!    │                     │  │                 semantics requested)
//!    │                     │  └───► Failed     (contained permanent error)
//!    │                     └─retry─┐           (transient failures only,
//!    │                     ▲───────┘            capped exponential backoff)
//!    └────────────────────────────► Rejected   (queue full: load shed
//!                                               immediately, never blocks)
//! ```
//!
//! * **Backpressure**: the queue is bounded; a submit that finds it full is
//!   `Rejected` synchronously. The service never blocks a client or grows
//!   without bound.
//! * **Fault containment**: every compile runs under `catch_unwind`. A
//!   panic becomes [`ChfError::Panicked`] — transient by definition — and
//!   is retried with capped exponential backoff before being reported.
//! * **Deadlines**: a per-request wall-clock deadline is plumbed into the
//!   formation loop's trial-budget checkpoint
//!   ([`FormationConfig::deadline`](chf_core::convergent::FormationConfig)),
//!   so expiry is graceful: the blocks formed so far are finished through
//!   the backend and returned as `Degraded` — the paper's anytime
//!   convergent loop, surfaced as a service guarantee.
//! * **Memoization**: results of fully successful compiles are stored in a
//!   content-addressed, integrity-revalidated cache ([`cache`]); repeated
//!   submissions — the million-user traffic pattern — are served
//!   byte-identically without recompiling.
//!
//! ## Quickstart
//!
//! ```
//! use chf_service::{CompileRequest, CompileService, RequestStatus};
//!
//! let svc = CompileService::new(Default::default());
//! let id = svc.submit(CompileRequest::source(
//!     "fn id(params: 1, regs: 2)\nB0 \"entry\" (freq 1):\n  exits:\n    -> ret r0\n",
//! ));
//! assert_eq!(svc.wait(id).status, RequestStatus::Done);
//! ```

pub mod cache;
pub mod chaos;
pub mod parallel;
pub mod shape;
pub mod stats;

use cache::{cache_key, CacheKey, FormationCache, Lookup};
use chf_core::pipeline::{try_compile, CompileConfig, Compiled};
use chf_core::tournament::{baseline, improvement_permille, score, ScoreMetric, TournamentConfig};
use chf_core::{ChfError, PolicyKind};
use chf_ir::function::Function;
use chf_ir::fxhash::{FxHashMap, FxHasher};
use chf_ir::profile::ProfileData;
use shape::{ShapeCache, ShapeEntry};
use stats::{ServiceStats, StatsCollector};
use std::collections::VecDeque;
use std::hash::Hasher as _;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Identifies one submitted request for status polling.
pub type RequestId = u64;

/// Retry policy for *transient* failures ([`ChfError::is_transient`]):
/// capped exponential backoff. Permanent errors are never retried — they
/// are deterministic in the input.
#[derive(Copy, Clone, Debug)]
pub struct RetryPolicy {
    /// Attempts beyond the first (0 disables retry).
    pub max_retries: u32,
    /// Backoff before the first retry; doubles per subsequent retry.
    pub base_backoff: Duration,
    /// Ceiling on any single backoff sleep.
    pub max_backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(8),
        }
    }
}

impl RetryPolicy {
    /// Backoff before retry number `retry` (1-based): `base * 2^(retry-1)`,
    /// capped at `max_backoff`.
    pub fn backoff(&self, retry: u32) -> Duration {
        let factor = 1u32 << retry.saturating_sub(1).min(16);
        (self.base_backoff * factor).min(self.max_backoff)
    }
}

/// Static configuration of a [`CompileService`].
#[derive(Clone, Debug)]
pub struct ServiceConfig {
    /// Worker threads draining the queue. Interpreted exactly like
    /// `CHF_JOBS` (via [`parallel::clamp_jobs`]): clamped to
    /// `[1, available_parallelism]`.
    pub workers: usize,
    /// Bound on queued (not yet running) requests. A submit that finds the
    /// queue full is `Rejected` immediately; 0 rejects everything — useful
    /// as a drain mode.
    pub queue_capacity: usize,
    /// Formation-cache capacity in entries; 0 disables memoization.
    pub cache_capacity: usize,
    /// CFG-shape → tournament-winner cache capacity in shapes; 0 disables
    /// shape specialization (every tournament runs the full portfolio).
    pub shape_cache_capacity: usize,
    /// Deadline applied to requests that do not carry their own.
    pub default_deadline: Option<Duration>,
    /// Transient-failure retry policy.
    pub retry: RetryPolicy,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            workers: usize::MAX, // clamped to available parallelism
            queue_capacity: 256,
            cache_capacity: 1024,
            shape_cache_capacity: 1024,
            default_deadline: None,
            retry: RetryPolicy::default(),
        }
    }
}

/// Per-request options.
#[derive(Clone, Debug, Default)]
pub struct RequestOptions {
    /// Wall-clock budget for the compile, measured from the moment a worker
    /// starts it (queue wait is governed by backpressure, not deadlines).
    /// Overrides [`ServiceConfig::default_deadline`].
    pub deadline: Option<Duration>,
    /// Report deadline expiry as `TimedOut` (no artifact) instead of the
    /// default graceful `Degraded` (anytime partial artifact).
    pub fail_on_deadline: bool,
    /// Fault-injection hook: panic inside the worker on the first N compile
    /// attempts of this request. Exercises the containment + retry path
    /// deterministically; 0 (the default) injects nothing.
    pub inject_panics: u32,
}

/// The program payload of a request.
#[derive(Clone, Debug)]
pub enum Program {
    /// Textual `.til` IR, parsed (and verified) by the service.
    Source(String),
    /// Already-built IR.
    Ir(Function),
}

/// One compile request: a program, its training profile, a configuration,
/// and per-request options.
#[derive(Clone, Debug)]
pub struct CompileRequest {
    /// The program to compile.
    pub program: Program,
    /// Training profile (frequencies, trip histograms). An empty default
    /// compiles unprofiled.
    pub profile: ProfileData,
    /// Compiler configuration. `deadline` is overwritten per attempt from
    /// [`RequestOptions::deadline`]; setting `chaos` opts the request out
    /// of the cache (chaos alters committed merges by poisoning trial
    /// candidates, so memoizing it would alias distinct results).
    pub config: CompileConfig,
    /// Lifecycle options.
    pub options: RequestOptions,
}

impl CompileRequest {
    /// A request compiling `.til` text under the paper's best
    /// configuration.
    pub fn source(text: impl Into<String>) -> Self {
        CompileRequest {
            program: Program::Source(text.into()),
            profile: ProfileData::default(),
            config: CompileConfig::convergent(),
            options: RequestOptions::default(),
        }
    }

    /// A request compiling built IR with a training profile.
    pub fn ir(function: Function, profile: ProfileData) -> Self {
        CompileRequest {
            program: Program::Ir(function),
            profile,
            config: CompileConfig::convergent(),
            options: RequestOptions::default(),
        }
    }
}

/// Lifecycle states. `Queued` and `Running` are transient; the rest are
/// terminal.
#[derive(Copy, Clone, Debug, PartialEq, Eq)]
pub enum RequestStatus {
    /// Accepted; waiting for a worker.
    Queued,
    /// A worker is compiling it (possibly on a retry attempt).
    Running,
    /// Compiled fully.
    Done,
    /// Deadline expired mid-formation; the response carries the anytime
    /// partial result (valid, verified, behaviour-preserving — just fewer
    /// merges than an unbounded run).
    Degraded,
    /// Deadline expired and the request asked for fail-fast semantics.
    TimedOut,
    /// Shed at submission: the bounded queue was full.
    Rejected,
    /// Contained permanent error (verifier rejection, parse failure, or a
    /// transient failure that exhausted its retries).
    Failed,
}

impl RequestStatus {
    /// Whether this state ends the lifecycle.
    pub fn is_terminal(self) -> bool {
        !matches!(self, RequestStatus::Queued | RequestStatus::Running)
    }
}

/// Terminal outcome of a request.
#[derive(Clone, Debug)]
pub struct CompileResponse {
    /// The request this answers.
    pub id: RequestId,
    /// Terminal status.
    pub status: RequestStatus,
    /// The compiled artifact (`Done` always; `Degraded` carries the partial
    /// result).
    pub compiled: Option<Compiled>,
    /// The contained error (`Failed` only).
    pub error: Option<ChfError>,
    /// Whether the artifact was served from the formation cache.
    pub cache_hit: bool,
    /// Compile attempts beyond the first.
    pub retries: u32,
    /// Time spent queued before a worker picked the request up.
    pub queue_wait: Duration,
    /// Wall time of the (final) compile attempt, zero for cache hits and
    /// rejections.
    pub compile_time: Duration,
}

/// A batch of submitted requests, produced by
/// [`CompileService::submit_batch`]: the ids in submission order plus a
/// single collective wait.
#[must_use = "a batch that is never waited on leaves its responses unread"]
pub struct BatchHandle<'a> {
    svc: &'a CompileService,
    ids: Vec<RequestId>,
}

impl BatchHandle<'_> {
    /// Request ids, in submission order.
    pub fn ids(&self) -> &[RequestId] {
        &self.ids
    }

    /// Block until every request in the batch is terminal and return the
    /// responses in submission order. Requests shed at the door
    /// (`Rejected`) or failed synchronously are already terminal and
    /// return immediately.
    pub fn wait_all(self) -> Vec<CompileResponse> {
        self.ids.iter().map(|&id| self.svc.wait(id)).collect()
    }
}

/// One policy-tournament request: the program and profile to compile, the
/// training input to score entrants on, and the portfolio.
#[derive(Clone, Debug)]
pub struct TournamentRequest {
    /// The program, in basic-block form.
    pub function: Function,
    /// Training profile (also the shape fingerprint's skew input).
    pub profile: ProfileData,
    /// Arguments of the scoring run.
    pub args: Vec<i64>,
    /// Initial memory of the scoring run.
    pub memory: Vec<(i64, i64)>,
    /// Portfolio, metric, guard band, and base configuration.
    pub config: TournamentConfig,
}

/// Terminal outcome of a service-side tournament.
#[derive(Clone, Debug)]
pub struct TournamentOutcome {
    /// The winning artifact;
    /// `stats.tournament_entrants` records how many policy compiles
    /// produced it (1 = shape-cache hot path).
    pub compiled: Compiled,
    /// Winning policy.
    pub policy: PolicyKind,
    /// Winning trial budget.
    pub budget: Option<usize>,
    /// Winning entrant's label (`HF@16`, …).
    pub label: String,
    /// Winning score (lower is better).
    pub score: u64,
    /// Baseline score of the uncompiled input on the same metric.
    pub baseline: u64,
    /// CFG-shape key this tournament was cached under.
    pub shape: u64,
    /// Whether the shape cache answered (hot path: one policy compile).
    pub shape_hit: bool,
    /// Whether a shape hit regressed past the guard band and fell back to
    /// the full portfolio.
    pub guard_fallback: bool,
    /// Policy compiles run and scored for this tournament.
    pub entrants_run: usize,
}

impl TournamentOutcome {
    /// Winner's improvement over the uncompiled baseline, in permille.
    pub fn improvement_permille(&self) -> i64 {
        improvement_permille(self.baseline, self.score)
    }
}

enum State {
    Queued,
    Running,
    Terminal(Box<CompileResponse>),
}

struct Job {
    id: RequestId,
    function: Function,
    profile: ProfileData,
    config: CompileConfig,
    options: RequestOptions,
    key: Option<CacheKey>,
    enqueued: Instant,
}

struct Inner {
    retry: RetryPolicy,
    default_deadline: Option<Duration>,
    queue_capacity: usize,
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    states: Mutex<FxHashMap<RequestId, State>>,
    states_cv: Condvar,
    cache: FormationCache,
    shapes: ShapeCache,
    stats: StatsCollector,
    shutdown: AtomicBool,
    next_id: AtomicU64,
}

/// The long-lived compile service. Dropping it shuts the worker pool down
/// (draining nothing: queued jobs are abandoned, which is safe because
/// every client API is on this same object).
pub struct CompileService {
    inner: Arc<Inner>,
    workers: Vec<JoinHandle<()>>,
}

fn panic_text(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

impl CompileService {
    /// Start a service with `config.workers` worker threads.
    pub fn new(config: ServiceConfig) -> Self {
        let avail = std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1);
        let workers = parallel::clamp_jobs(Some(&config.workers.to_string()), avail);
        let inner = Arc::new(Inner {
            retry: config.retry,
            default_deadline: config.default_deadline,
            queue_capacity: config.queue_capacity,
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            states: Mutex::new(FxHashMap::default()),
            states_cv: Condvar::new(),
            cache: FormationCache::new(config.cache_capacity),
            shapes: ShapeCache::new(config.shape_cache_capacity),
            stats: StatsCollector::default(),
            shutdown: AtomicBool::new(false),
            next_id: AtomicU64::new(1),
        });
        let handles = (0..workers)
            .map(|_| {
                let inner = Arc::clone(&inner);
                std::thread::spawn(move || worker_loop(&inner))
            })
            .collect();
        CompileService {
            inner,
            workers: handles,
        }
    }

    /// Submit a request. Always returns an id whose lifecycle terminates:
    /// parse failures terminate as `Failed`, a full queue as `Rejected`
    /// (both synchronously), cache hits as `Done` without queueing.
    pub fn submit(&self, req: CompileRequest) -> RequestId {
        let inner = &self.inner;
        let id = inner.next_id.fetch_add(1, Ordering::Relaxed);
        StatsCollector::bump(&inner.stats.submitted);

        // Parse (and therefore size-check) up front, on the client's
        // thread: garbage text never occupies a queue slot.
        let function = match req.program {
            Program::Ir(f) => f,
            Program::Source(text) => match chf_ir::parse::parse_function(&text) {
                Ok(f) => f,
                Err(error) => {
                    StatsCollector::bump(&inner.stats.failed);
                    self.finish(CompileResponse {
                        id,
                        status: RequestStatus::Failed,
                        compiled: None,
                        error: Some(ChfError::Parse { error }),
                        cache_hit: false,
                        retries: 0,
                        queue_wait: Duration::ZERO,
                        compile_time: Duration::ZERO,
                    });
                    return id;
                }
            },
        };

        // Cache fast path. Chaos-instrumented and panic-injected requests
        // bypass it: the former compile to different (trial-poisoned)
        // results, the latter exist to exercise the worker path.
        let cacheable = req.config.chaos.is_none() && req.options.inject_panics == 0;
        let key = cacheable.then(|| cache_key(&function, &req.config, &req.profile));
        if let Some(k) = &key {
            match inner.cache.get(k) {
                Lookup::Hit(compiled) => {
                    StatsCollector::bump(&inner.stats.cache_hits);
                    StatsCollector::bump(&inner.stats.done);
                    self.finish(CompileResponse {
                        id,
                        status: RequestStatus::Done,
                        compiled: Some(*compiled),
                        error: None,
                        cache_hit: true,
                        retries: 0,
                        queue_wait: Duration::ZERO,
                        compile_time: Duration::ZERO,
                    });
                    return id;
                }
                Lookup::Corrupt => {
                    // Revalidation failed: the entry is already dropped;
                    // fall through to a cold compile.
                    StatsCollector::bump(&inner.stats.cache_corrupt_dropped);
                }
                Lookup::Miss => StatsCollector::bump(&inner.stats.cache_misses),
            }
        }

        // Bounded queue with load shedding: beyond capacity we answer
        // `Rejected` now — we never block the client and never buffer
        // unboundedly.
        {
            let mut q = inner.queue.lock().expect("queue lock");
            if q.len() >= inner.queue_capacity {
                drop(q);
                StatsCollector::bump(&inner.stats.rejected);
                self.finish(CompileResponse {
                    id,
                    status: RequestStatus::Rejected,
                    compiled: None,
                    error: None,
                    cache_hit: false,
                    retries: 0,
                    queue_wait: Duration::ZERO,
                    compile_time: Duration::ZERO,
                });
                return id;
            }
            inner
                .states
                .lock()
                .expect("states lock")
                .insert(id, State::Queued);
            q.push_back(Job {
                id,
                function,
                profile: req.profile,
                config: req.config,
                options: req.options,
                key,
                enqueued: Instant::now(),
            });
        }
        inner.queue_cv.notify_one();
        id
    }

    fn finish(&self, resp: CompileResponse) {
        finish(&self.inner, resp);
    }

    /// Current lifecycle state, or `None` for an unknown id.
    pub fn status(&self, id: RequestId) -> Option<RequestStatus> {
        let states = self.inner.states.lock().expect("states lock");
        states.get(&id).map(|s| match s {
            State::Queued => RequestStatus::Queued,
            State::Running => RequestStatus::Running,
            State::Terminal(r) => r.status,
        })
    }

    /// Block until `id` reaches a terminal state and return its response.
    ///
    /// # Panics
    /// Panics on an id this service never issued.
    pub fn wait(&self, id: RequestId) -> CompileResponse {
        self.wait_deadline(id, None)
            .expect("deadline-free wait always terminates")
    }

    /// [`CompileService::wait`] bounded by `timeout`; `None` when the
    /// request is still in flight at expiry.
    pub fn wait_timeout(&self, id: RequestId, timeout: Duration) -> Option<CompileResponse> {
        self.wait_deadline(id, Some(Instant::now() + timeout))
    }

    fn wait_deadline(&self, id: RequestId, until: Option<Instant>) -> Option<CompileResponse> {
        let mut states = self.inner.states.lock().expect("states lock");
        loop {
            match states.get(&id) {
                Some(State::Terminal(r)) => return Some((**r).clone()),
                Some(_) => {}
                None => panic!("unknown request id {id}"),
            }
            match until {
                None => {
                    states = self
                        .inner
                        .states_cv
                        .wait(states)
                        .expect("states lock poisoned");
                }
                Some(d) => {
                    let now = Instant::now();
                    if now >= d {
                        return None;
                    }
                    let (guard, _timeout) = self
                        .inner
                        .states_cv
                        .wait_timeout(states, d - now)
                        .expect("states lock poisoned");
                    states = guard;
                }
            }
        }
    }

    /// Point-in-time service health snapshot.
    pub fn stats(&self) -> ServiceStats {
        self.inner.stats.snapshot()
    }

    /// Entries currently memoized.
    pub fn cache_len(&self) -> usize {
        self.inner.cache.len()
    }

    /// Submit a vector of requests as one batch, reusing the ordinary
    /// queue and load-shedding semantics request by request (a full queue
    /// rejects the overflow, never the whole batch), and return a handle
    /// whose [`BatchHandle::wait_all`] collects every response in
    /// submission order.
    pub fn submit_batch(&self, reqs: Vec<CompileRequest>) -> BatchHandle<'_> {
        let ids = reqs.into_iter().map(|r| self.submit(r)).collect();
        BatchHandle { svc: self, ids }
    }

    /// Shapes currently cached in the tournament winner cache.
    pub fn shape_cache_len(&self) -> usize {
        self.inner.shapes.len()
    }

    /// Fault-injection / test hook: plant a winner entry for the shape
    /// `req` would hit, with an arbitrary (possibly inflated) cached
    /// improvement. An inflated score makes the next
    /// [`CompileService::compile_tournament`] hot path regress past the
    /// guard band and exercise the fallback. Returns the shape key.
    pub fn override_shape_winner(
        &self,
        req: &TournamentRequest,
        policy: PolicyKind,
        budget: Option<usize>,
        improvement_permille: i64,
    ) -> u64 {
        let shape = shape_key(&req.function, &req.profile, &req.config);
        self.inner.shapes.insert(
            shape,
            ShapeEntry {
                policy,
                budget,
                improvement_permille,
            },
        );
        shape
    }

    /// Run a per-function policy tournament through the service.
    ///
    /// Cold path (shape miss): every `(policy, budget)` entrant of the
    /// portfolio is fanned out through [`CompileService::submit_batch`],
    /// scored on the training input in deterministic portfolio order, and
    /// the winner (ties to the earlier entrant) is cached under the
    /// function's CFG-shape fingerprint.
    ///
    /// Hot path (shape hit): a *single* compile with the cached winning
    /// policy. The fresh artifact is re-scored; if its improvement over
    /// baseline regresses more than the configured guard band below the
    /// cached improvement, the entry is distrusted and the full tournament
    /// runs instead (refreshing the cache). A stale entry therefore costs
    /// one extra compile, never a worse artifact.
    ///
    /// Deterministic at any worker count: parallelism only changes when
    /// entrants finish, not how they score or tie-break.
    ///
    /// # Errors
    /// [`ChfError`] when the baseline cannot be established or every
    /// portfolio entrant fails (compile error, shed, or miscompile).
    pub fn compile_tournament(
        &self,
        req: &TournamentRequest,
    ) -> Result<TournamentOutcome, ChfError> {
        let stats = &self.inner.stats;
        StatsCollector::bump(&stats.tournaments);
        let shape = shape_key(&req.function, &req.profile, &req.config);
        let (digest, base_score) =
            baseline(&req.function, &req.args, &req.memory, req.config.metric).map_err(
                |message| ChfError::Panicked {
                    context: "tournament baseline",
                    message,
                },
            )?;

        if let Some(entry) = self.inner.shapes.get(shape) {
            StatsCollector::bump(&stats.shape_hits);
            StatsCollector::bump(&stats.tournament_entrants);
            let mut config = req.config.base.clone();
            config.policy = entry.policy;
            config.trial_budget = entry.budget;
            let resp = self.wait(self.submit(CompileRequest {
                program: Program::Ir(req.function.clone()),
                profile: req.profile.clone(),
                config,
                options: RequestOptions::default(),
            }));
            let hot = resp.compiled.and_then(|compiled| {
                score(
                    &compiled.function,
                    &req.args,
                    &req.memory,
                    req.config.metric,
                    &digest,
                )
                .ok()
                .map(|s| (compiled, s))
            });
            if let Some((mut compiled, s)) = hot {
                let improvement = improvement_permille(base_score, s);
                let band = req.config.guard_band_permille as i64;
                if improvement + band >= entry.improvement_permille {
                    compiled.stats.tournament_entrants = 1;
                    return Ok(TournamentOutcome {
                        compiled,
                        policy: entry.policy,
                        budget: entry.budget,
                        label: chf_core::tournament::entrant_label(entry.policy, entry.budget),
                        score: s,
                        baseline: base_score,
                        shape,
                        shape_hit: true,
                        guard_fallback: false,
                        entrants_run: 1,
                    });
                }
            }
            // Cached policy failed outright or regressed past the guard
            // band: distrust the entry, run the full portfolio.
            StatsCollector::bump(&stats.guard_fallbacks);
            let mut outcome = self.run_portfolio(req, shape, &digest, base_score)?;
            outcome.shape_hit = true;
            outcome.guard_fallback = true;
            outcome.entrants_run += 1; // the distrusted hot compile
            return Ok(outcome);
        }

        StatsCollector::bump(&stats.shape_misses);
        self.run_portfolio(req, shape, &digest, base_score)
    }

    /// Cold tournament: fan the portfolio out as a batch, score in entrant
    /// order, crown and cache the winner.
    fn run_portfolio(
        &self,
        req: &TournamentRequest,
        shape: u64,
        digest: &chf_core::tournament::BehaviourDigest,
        base_score: u64,
    ) -> Result<TournamentOutcome, ChfError> {
        let entrants = req.config.entrants();
        self.inner
            .stats
            .tournament_entrants
            .fetch_add(entrants.len() as u64, Ordering::Relaxed);
        let batch = self.submit_batch(
            entrants
                .iter()
                .map(|(_, config)| CompileRequest {
                    program: Program::Ir(req.function.clone()),
                    profile: req.profile.clone(),
                    config: config.clone(),
                    options: RequestOptions::default(),
                })
                .collect(),
        );
        let mut best: Option<(usize, u64, Compiled)> = None;
        for (idx, resp) in batch.wait_all().into_iter().enumerate() {
            let Some(compiled) = resp.compiled else {
                continue; // shed, failed, or timed out: not a contender
            };
            let Ok(s) = score(
                &compiled.function,
                &req.args,
                &req.memory,
                req.config.metric,
                digest,
            ) else {
                continue; // miscompile or sim failure: contained
            };
            // Strict `<` keeps the earliest entrant on ties, matching the
            // sequential core tournament at any worker count.
            if best.as_ref().map(|(_, b, _)| s < *b).unwrap_or(true) {
                best = Some((idx, s, compiled));
            }
        }
        let (idx, s, mut compiled) = best.ok_or(ChfError::Panicked {
            context: "tournament",
            message: "every portfolio entrant failed".to_string(),
        })?;
        let (label, config) = &entrants[idx];
        let improvement = improvement_permille(base_score, s);
        self.inner.shapes.insert(
            shape,
            ShapeEntry {
                policy: config.policy,
                budget: config.trial_budget,
                improvement_permille: improvement,
            },
        );
        compiled.stats.tournament_entrants = entrants.len();
        Ok(TournamentOutcome {
            compiled,
            policy: config.policy,
            budget: config.trial_budget,
            label: label.clone(),
            score: s,
            baseline: base_score,
            shape,
            shape_hit: false,
            guard_fallback: false,
            entrants_run: entrants.len(),
        })
    }

    /// Fault-injection hook (the `corrupted-cache-entry` chaos kind):
    /// corrupt the cached entry that `req` would hit, leaving its integrity
    /// digest stale. Returns `false` when the request has no cacheable key
    /// or no entry is present. See [`cache::FormationCache::corrupt_entry`].
    pub fn corrupt_cached(&self, req: &CompileRequest, seed: u64) -> bool {
        let function = match &req.program {
            Program::Ir(f) => f.clone(),
            Program::Source(text) => match chf_ir::parse::parse_function(text) {
                Ok(f) => f,
                Err(_) => return false,
            },
        };
        let key = cache_key(&function, &req.config, &req.profile);
        self.inner.cache.corrupt_entry(&key, seed)
    }

    /// Stop the workers and join them. Queued-but-unstarted jobs are marked
    /// `Rejected` so no waiter hangs.
    pub fn shutdown(mut self) {
        self.shutdown_impl();
    }

    fn shutdown_impl(&mut self) {
        self.inner.shutdown.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
        // Terminate anything still queued: a shut-down service must leave
        // no request in a non-terminal state.
        let drained: Vec<Job> = {
            let mut q = self.inner.queue.lock().expect("queue lock");
            q.drain(..).collect()
        };
        for job in drained {
            StatsCollector::bump(&self.inner.stats.rejected);
            finish(
                &self.inner,
                CompileResponse {
                    id: job.id,
                    status: RequestStatus::Rejected,
                    compiled: None,
                    error: None,
                    cache_hit: false,
                    retries: 0,
                    queue_wait: job.enqueued.elapsed(),
                    compile_time: Duration::ZERO,
                },
            );
        }
    }
}

impl Drop for CompileService {
    fn drop(&mut self) {
        self.shutdown_impl();
    }
}

/// Key of the shape→winner cache: the function's CFG-shape fingerprint
/// (stable under value renaming and block-label permutation — see
/// [`chf_ir::fingerprint`]) combined with everything that changes which
/// winner is valid: the base configuration (with the entrant-overridden
/// `policy`/`trial_budget` canonicalized out), the portfolio itself, and
/// the scoring metric. Two tournaments with different portfolios never
/// alias.
fn shape_key(f: &Function, profile: &ProfileData, config: &TournamentConfig) -> u64 {
    let mut base = config.base.clone();
    base.policy = PolicyKind::BreadthFirst;
    base.trial_budget = None;
    let mut h = FxHasher::default();
    h.write_u64(chf_ir::fingerprint::shape_fingerprint(f, profile));
    h.write_u64(cache::config_fingerprint(&base));
    for (label, _) in config.entrants() {
        h.write(label.as_bytes());
    }
    h.write_u8(match config.metric {
        ScoreMetric::DynamicBlocks => 0,
        ScoreMetric::EventCycles => 1,
    });
    h.finish()
}

fn finish(inner: &Inner, resp: CompileResponse) {
    let mut states = inner.states.lock().expect("states lock");
    states.insert(resp.id, State::Terminal(Box::new(resp)));
    drop(states);
    inner.states_cv.notify_all();
}

fn worker_loop(inner: &Inner) {
    loop {
        let job = {
            let mut q = inner.queue.lock().expect("queue lock");
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if inner.shutdown.load(Ordering::SeqCst) {
                    return;
                }
                q = inner.queue_cv.wait(q).expect("queue lock poisoned");
            }
        };
        inner
            .states
            .lock()
            .expect("states lock")
            .insert(job.id, State::Running);
        let resp = run_job(inner, &job);
        finish(inner, resp);
    }
}

/// Run one job to a terminal response: input verification, the contained
/// compile with deadline, and the transient-failure retry loop.
fn run_job(inner: &Inner, job: &Job) -> CompileResponse {
    let start = Instant::now();
    let queue_wait = start - job.enqueued;
    let respond = |status, compiled, error, retries, compile_time| CompileResponse {
        id: job.id,
        status,
        compiled,
        error,
        cache_hit: false,
        retries,
        queue_wait,
        compile_time,
    };

    // Front-end gate: a compile service is entitled to refuse structurally
    // invalid input outright — deterministically, without burning a retry.
    if let Err(error) = chf_ir::verify::verify_full(&job.function) {
        StatsCollector::bump(&inner.stats.failed);
        return respond(
            RequestStatus::Failed,
            None,
            Some(ChfError::Verify {
                context: "service input",
                error,
            }),
            0,
            Duration::ZERO,
        );
    }

    let deadline = job
        .options
        .deadline
        .or(inner.default_deadline)
        .map(|d| start + d);
    let mut config = job.config.clone();
    config.deadline = deadline;

    let mut retries = 0u32;
    loop {
        let attempt_no = retries + 1;
        let attempt = catch_unwind(AssertUnwindSafe(|| {
            if job.options.inject_panics >= attempt_no {
                panic!("chf-service injected worker fault (attempt {attempt_no})");
            }
            try_compile(&job.function, &job.profile, &config)
        }));
        let error = match attempt {
            Ok(Ok(compiled)) => {
                let elapsed = start.elapsed();
                inner.stats.record_compile(elapsed, compiled.stats.trials);
                return if compiled.stats.deadline_hit {
                    // Poison-safety: partial results are never cached.
                    if job.options.fail_on_deadline {
                        StatsCollector::bump(&inner.stats.timed_out);
                        respond(RequestStatus::TimedOut, None, None, retries, elapsed)
                    } else {
                        StatsCollector::bump(&inner.stats.degraded);
                        respond(
                            RequestStatus::Degraded,
                            Some(compiled),
                            None,
                            retries,
                            elapsed,
                        )
                    }
                } else {
                    if let Some(key) = job.key {
                        inner.cache.insert(key, &compiled);
                    }
                    StatsCollector::bump(&inner.stats.done);
                    respond(RequestStatus::Done, Some(compiled), None, retries, elapsed)
                };
            }
            Ok(Err(e)) => e,
            Err(payload) => ChfError::Panicked {
                context: "service worker",
                message: panic_text(payload.as_ref()),
            },
        };
        if error.is_transient() && retries < inner.retry.max_retries {
            retries += 1;
            StatsCollector::bump(&inner.stats.retries);
            std::thread::sleep(inner.retry.backoff(retries));
            continue;
        }
        StatsCollector::bump(&inner.stats.failed);
        return respond(
            RequestStatus::Failed,
            None,
            Some(error),
            retries,
            start.elapsed(),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::testgen::{generate, GenConfig};
    use chf_sim::functional::profile_run;

    fn request_for(seed: u64) -> (CompileRequest, Vec<i64>) {
        let f = generate(seed, &GenConfig::default());
        let args: Vec<i64> = (0..f.params).map(|i| i as i64 + 3).collect();
        let profile = profile_run(&f, &args, &[]).unwrap_or_default();
        (CompileRequest::ir(f, profile), args)
    }

    #[test]
    fn submit_wait_roundtrip_is_done_and_correct() {
        let svc = CompileService::new(ServiceConfig::default());
        let (req, args) = request_for(5);
        let Program::Ir(original) = req.program.clone() else {
            unreachable!()
        };
        let id = svc.submit(req);
        let resp = svc.wait(id);
        assert_eq!(resp.status, RequestStatus::Done);
        let compiled = resp.compiled.expect("done carries the artifact");
        let base = chf_sim::functional::run(
            &original,
            &args,
            &[],
            &chf_sim::functional::RunConfig::default(),
        )
        .unwrap();
        let got = chf_sim::functional::run(
            &compiled.function,
            &args,
            &[],
            &chf_sim::functional::RunConfig::default(),
        )
        .unwrap();
        assert_eq!(base.digest(), got.digest());
        assert_eq!(svc.stats().done, 1);
    }

    #[test]
    fn source_submission_parses_and_parse_errors_fail_typed() {
        let svc = CompileService::new(ServiceConfig::default());
        let ok = svc.submit(CompileRequest::source(
            "fn id(params: 1, regs: 2)\nB0 \"entry\" (freq 1):\n  exits:\n    -> ret r0\n",
        ));
        assert_eq!(svc.wait(ok).status, RequestStatus::Done);

        let bad = svc.submit(CompileRequest::source("fn broken(\n"));
        let resp = svc.wait(bad);
        assert_eq!(resp.status, RequestStatus::Failed);
        assert!(matches!(resp.error, Some(ChfError::Parse { .. })));
    }

    #[test]
    fn invalid_ir_is_refused_not_retried() {
        let svc = CompileService::new(ServiceConfig::default());
        let mut f = generate(8, &GenConfig::default());
        // Dangling edge: verify_full must refuse it at the service door.
        let entry = f.entry;
        let bogus = chf_ir::ids::BlockId(u32::MAX - 3);
        f.block_mut(entry).exits[0].target = chf_ir::block::ExitTarget::Block(bogus);
        let id = svc.submit(CompileRequest::ir(f, ProfileData::default()));
        let resp = svc.wait(id);
        assert_eq!(resp.status, RequestStatus::Failed);
        assert_eq!(resp.retries, 0);
        assert!(matches!(resp.error, Some(ChfError::Verify { .. })));
    }

    #[test]
    fn shutdown_terminates_queued_requests() {
        // One worker, deep queue, every job panics once to slow the drain;
        // shutdown must leave nothing in a non-terminal state.
        let svc = CompileService::new(ServiceConfig {
            workers: 1,
            queue_capacity: 64,
            ..ServiceConfig::default()
        });
        let ids: Vec<RequestId> = (0..6)
            .map(|i| {
                let (mut req, _) = request_for(20 + i);
                req.options.inject_panics = 1;
                svc.submit(req)
            })
            .collect();
        let inner = Arc::clone(&svc.inner);
        svc.shutdown();
        let states = inner.states.lock().unwrap();
        for id in ids {
            match states.get(&id) {
                Some(State::Terminal(_)) => {}
                other => panic!(
                    "request {id} not terminal after shutdown: {:?}",
                    other.map(|_| "non-terminal")
                ),
            }
        }
    }

    #[test]
    fn backoff_is_capped_exponential() {
        let r = RetryPolicy {
            max_retries: 5,
            base_backoff: Duration::from_millis(1),
            max_backoff: Duration::from_millis(4),
        };
        assert_eq!(r.backoff(1), Duration::from_millis(1));
        assert_eq!(r.backoff(2), Duration::from_millis(2));
        assert_eq!(r.backoff(3), Duration::from_millis(4));
        assert_eq!(r.backoff(4), Duration::from_millis(4));
    }
}
