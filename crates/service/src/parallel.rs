//! Parallel evaluation harness.
//!
//! Every cell of the evaluation matrix — (workload × configuration) for
//! Tables 1–3, Figure 7 and the ablation study — is an independent
//! compile-and-simulate job: compilation is deterministic and shares no
//! state across workloads. [`par_map`] fans those jobs across a scoped
//! thread pool using a shared atomic work index (no work-stealing deps, no
//! channels), then reassembles results **in input order**, so the rendered
//! tables and archived CSVs are byte-identical to a sequential run no matter
//! how the scheduler interleaves the workers.
//!
//! # Panic isolation and retry
//!
//! A panic inside a `par_map` job unwinds its worker thread and poisons the
//! whole run — one bad workload kills a table that took minutes to build.
//! [`par_map_isolated`] prevents that: each job runs under
//! `std::panic::catch_unwind`, and a panicked job is retried **once**
//! (compilation and simulation are deterministic, so the retry is not
//! wishful thinking about flakiness — it distinguishes an environmental
//! failure, e.g. a transient allocation failure, from a deterministic bug;
//! a job that panics twice is reported as poisoned). The returned
//! `Result<R, String>` carries the panic payload's message so the caller
//! can degrade to a marked table row / CSV sentinel instead of dying. Input
//! order (and therefore byte-determinism of the rendered output for
//! non-poisoned rows) is preserved exactly as with [`par_map`].

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Parse a raw `CHF_JOBS`-style setting into a worker count clamped to
/// `[1, cap]`. This is the single place the repo interprets a job-count
/// string: unset or unparseable input means "use everything" (`cap`), `0`
/// clamps up to `1` (forcing sequential execution), and oversubscription
/// clamps down to `cap` — oversubscribing compile-and-simulate jobs only
/// thrashes caches and, under cgroup CPU quotas, can stall the run. A
/// `cap` of `0` (a pathological caller) is treated as `1`.
pub fn clamp_jobs(raw: Option<&str>, cap: usize) -> usize {
    let cap = cap.max(1);
    match raw.and_then(|v| v.trim().parse::<usize>().ok()) {
        Some(n) => n.clamp(1, cap),
        None => cap,
    }
}

/// Number of worker threads to use: the `CHF_JOBS` environment variable
/// interpreted by [`clamp_jobs`] with the machine's available parallelism
/// as the cap (a value of `1` forces sequential execution).
pub fn workers() -> usize {
    let avail = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    clamp_jobs(std::env::var("CHF_JOBS").ok().as_deref(), avail)
}

/// Render a `catch_unwind` payload as a human-readable message.
fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Map `work` over `items` on `workers` threads, returning results in input
/// order.
///
/// Threads pull indices from a shared atomic counter, so long-running items
/// don't serialize behind a static partition. With `workers <= 1` (or a
/// single item) the map runs inline on the caller's thread — the sequential
/// path stays trivially identical.
pub fn par_map<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    if workers <= 1 || items.len() <= 1 {
        return items.iter().map(work).collect();
    }
    let next = AtomicUsize::new(0);
    let done: Mutex<Vec<(usize, R)>> = Mutex::new(Vec::with_capacity(items.len()));
    let threads = workers.min(items.len());
    std::thread::scope(|s| {
        for _ in 0..threads {
            s.spawn(|| {
                // Batch each worker's results and merge once at the end:
                // the lock is taken `workers` times, not `items` times.
                let mut local: Vec<(usize, R)> = Vec::new();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= items.len() {
                        break;
                    }
                    local.push((i, work(&items[i])));
                }
                done.lock().expect("worker panicked").extend(local);
            });
        }
    });
    let mut tagged = done.into_inner().expect("worker panicked");
    debug_assert_eq!(tagged.len(), items.len());
    // Deterministic output order: sort by input index.
    tagged.sort_by_key(|(i, _)| *i);
    tagged.into_iter().map(|(_, r)| r).collect()
}

/// [`par_map`] with per-job panic isolation: a job that panics is retried
/// once; a second panic yields `Err(message)` in that job's slot instead of
/// tearing down the run. See the module docs for the retry rationale.
pub fn par_map_isolated<T, R, F>(items: &[T], workers: usize, work: F) -> Vec<Result<R, String>>
where
    T: Sync,
    R: Send,
    F: Fn(&T) -> R + Sync,
{
    par_map(items, workers, |item| {
        match catch_unwind(AssertUnwindSafe(|| work(item))) {
            Ok(r) => Ok(r),
            Err(first) => match catch_unwind(AssertUnwindSafe(|| work(item))) {
                Ok(r) => Ok(r),
                Err(_) => Err(panic_message(first.as_ref())),
            },
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn preserves_input_order() {
        let items: Vec<usize> = (0..100).collect();
        let out = par_map(&items, 8, |&i| i * 3);
        assert_eq!(out, items.iter().map(|&i| i * 3).collect::<Vec<_>>());
    }

    #[test]
    fn matches_sequential_map() {
        let items: Vec<u64> = (0..37).map(|i| i * 7 + 1).collect();
        let seq: Vec<u64> = items.iter().map(|&x| x.wrapping_mul(x)).collect();
        for workers in [1, 2, 3, 16] {
            let par = par_map(&items, workers, |&x| x.wrapping_mul(x));
            assert_eq!(par, seq, "workers={workers}");
        }
    }

    #[test]
    fn handles_empty_and_singleton() {
        let empty: Vec<i32> = vec![];
        assert!(par_map(&empty, 4, |&x| x).is_empty());
        assert_eq!(par_map(&[42], 4, |&x| x + 1), vec![43]);
    }

    #[test]
    fn workers_is_at_least_one() {
        assert!(workers() >= 1);
    }

    #[test]
    fn clamp_jobs_handles_zero_garbage_and_huge() {
        // 0 forces sequential, never "use everything".
        assert_eq!(clamp_jobs(Some("0"), 8), 1);
        // Garbage and unset fall back to the cap.
        assert_eq!(clamp_jobs(Some("garbage"), 8), 8);
        assert_eq!(clamp_jobs(Some(""), 8), 8);
        assert_eq!(clamp_jobs(Some("-3"), 8), 8);
        assert_eq!(clamp_jobs(None, 8), 8);
        // Oversubscription clamps down to the cap.
        assert_eq!(clamp_jobs(Some("4096"), 8), 8);
        assert_eq!(clamp_jobs(Some(&usize::MAX.to_string()), 3), 3);
        // In-range values pass through (whitespace tolerated).
        assert_eq!(clamp_jobs(Some(" 3 "), 8), 3);
        assert_eq!(clamp_jobs(Some("1"), 8), 1);
        // A pathological cap of 0 still yields a usable count.
        assert_eq!(clamp_jobs(Some("5"), 0), 1);
        assert_eq!(clamp_jobs(None, 0), 1);
    }

    /// Serializes the tests that swap the process-global panic hook.
    static HOOK_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn isolated_map_contains_panics() {
        let _guard = HOOK_LOCK.lock().unwrap();
        // Suppress the expected panic backtraces for this test only.
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<i32> = (0..20).collect();
        let out = par_map_isolated(&items, 4, |&i| {
            assert!(i != 7 && i != 13, "poisoned item {i}");
            i * 2
        });
        std::panic::set_hook(prev);
        assert_eq!(out.len(), items.len());
        for (i, r) in out.iter().enumerate() {
            if i == 7 || i == 13 {
                let msg = r.as_ref().unwrap_err();
                assert!(msg.contains("poisoned item"), "unexpected message {msg:?}");
            } else {
                assert_eq!(*r.as_ref().unwrap(), (i as i32) * 2);
            }
        }
    }

    #[test]
    fn isolated_map_matches_plain_map_when_clean() {
        let items: Vec<u64> = (0..33).collect();
        let plain = par_map(&items, 4, |&x| x + 1);
        let isolated: Vec<u64> = par_map_isolated(&items, 4, |&x| x + 1)
            .into_iter()
            .map(|r| r.unwrap())
            .collect();
        assert_eq!(plain, isolated);
    }

    #[test]
    fn isolated_retry_recovers_transient_failures() {
        use std::collections::HashSet;
        let _guard = HOOK_LOCK.lock().unwrap();
        // Fail each item exactly once: the retry must recover every job.
        let failed_once: Mutex<HashSet<i32>> = Mutex::new(HashSet::new());
        let prev = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let items: Vec<i32> = (0..8).collect();
        let out = par_map_isolated(&items, 2, |&i| {
            if failed_once.lock().unwrap().insert(i) {
                panic!("transient failure on {i}");
            }
            i
        });
        std::panic::set_hook(prev);
        assert!(out.iter().all(|r| r.is_ok()), "{out:?}");
    }
}
