//! Service-level observability: counters, latency percentiles, throughput.
//!
//! The collector is written for the worker hot path: terminal-state and
//! cache counters are relaxed atomics, and only the latency recorder takes
//! a lock (appending one `u64` per completed compile). [`ServiceStats`] is
//! a point-in-time snapshot assembled on demand — computing percentiles at
//! snapshot time keeps the record path O(1).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use std::time::Duration;

/// Lock-free counter cluster + locked latency log.
#[derive(Default)]
pub(crate) struct StatsCollector {
    pub submitted: AtomicU64,
    pub rejected: AtomicU64,
    pub done: AtomicU64,
    pub degraded: AtomicU64,
    pub timed_out: AtomicU64,
    pub failed: AtomicU64,
    pub retries: AtomicU64,
    pub cache_hits: AtomicU64,
    pub cache_misses: AtomicU64,
    pub cache_corrupt_dropped: AtomicU64,
    pub trials: AtomicU64,
    pub compile_micros: AtomicU64,
    pub tournaments: AtomicU64,
    pub tournament_entrants: AtomicU64,
    pub shape_hits: AtomicU64,
    pub shape_misses: AtomicU64,
    pub guard_fallbacks: AtomicU64,
    /// Wall latency of every completed compile (cold path), microseconds.
    latencies: Mutex<Vec<u64>>,
}

impl StatsCollector {
    pub fn bump(counter: &AtomicU64) {
        counter.fetch_add(1, Ordering::Relaxed);
    }

    pub fn record_compile(&self, wall: Duration, trials: usize) {
        let us = wall.as_micros().min(u128::from(u64::MAX)) as u64;
        self.compile_micros.fetch_add(us, Ordering::Relaxed);
        self.trials.fetch_add(trials as u64, Ordering::Relaxed);
        self.latencies.lock().expect("stats lock").push(us);
    }

    pub fn snapshot(&self) -> ServiceStats {
        let mut lat = self.latencies.lock().expect("stats lock").clone();
        lat.sort_unstable();
        let pick = |q: f64| -> u64 {
            if lat.is_empty() {
                return 0;
            }
            let idx = ((lat.len() - 1) as f64 * q).round() as usize;
            lat[idx.min(lat.len() - 1)]
        };
        let compile_micros = self.compile_micros.load(Ordering::Relaxed);
        let trials = self.trials.load(Ordering::Relaxed);
        ServiceStats {
            submitted: self.submitted.load(Ordering::Relaxed),
            rejected: self.rejected.load(Ordering::Relaxed),
            done: self.done.load(Ordering::Relaxed),
            degraded: self.degraded.load(Ordering::Relaxed),
            timed_out: self.timed_out.load(Ordering::Relaxed),
            failed: self.failed.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            cache_hits: self.cache_hits.load(Ordering::Relaxed),
            cache_misses: self.cache_misses.load(Ordering::Relaxed),
            cache_corrupt_dropped: self.cache_corrupt_dropped.load(Ordering::Relaxed),
            tournaments: self.tournaments.load(Ordering::Relaxed),
            tournament_entrants: self.tournament_entrants.load(Ordering::Relaxed),
            shape_hits: self.shape_hits.load(Ordering::Relaxed),
            shape_misses: self.shape_misses.load(Ordering::Relaxed),
            guard_fallbacks: self.guard_fallbacks.load(Ordering::Relaxed),
            trials,
            compiles: lat.len() as u64,
            p50_compile_us: pick(0.50),
            p99_compile_us: pick(0.99),
            trials_per_sec: if compile_micros == 0 {
                0.0
            } else {
                trials as f64 / (compile_micros as f64 / 1e6)
            },
        }
    }
}

/// A point-in-time snapshot of service health. Counters are cumulative
/// since service start.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct ServiceStats {
    /// Requests submitted (including ones rejected at the door).
    pub submitted: u64,
    /// Requests shed by backpressure (queue full at submit).
    pub rejected: u64,
    /// Requests that completed fully.
    pub done: u64,
    /// Requests whose deadline expired mid-formation and returned the
    /// anytime (partial) result.
    pub degraded: u64,
    /// Requests whose deadline expired with fail-fast semantics requested.
    pub timed_out: u64,
    /// Requests that ended in a contained, permanent error.
    pub failed: u64,
    /// Compile attempts beyond the first, across all requests.
    pub retries: u64,
    /// Cache lookups served from a revalidated entry.
    pub cache_hits: u64,
    /// Cache lookups that found no entry.
    pub cache_misses: u64,
    /// Cache entries dropped because integrity revalidation failed
    /// (each one degraded to a cold compile instead of a miscompile).
    pub cache_corrupt_dropped: u64,
    /// Policy tournaments resolved (shape-cache hot paths included).
    pub tournaments: u64,
    /// Portfolio entrants compiled and scored across all tournaments
    /// (a shape-cache hot path contributes exactly 1).
    pub tournament_entrants: u64,
    /// Tournaments answered by the CFG-shape winner cache (one compile
    /// with the cached policy instead of a full portfolio).
    pub shape_hits: u64,
    /// Tournaments that found no usable shape-cache entry and ran the
    /// full portfolio.
    pub shape_misses: u64,
    /// Shape-cache hits whose cached policy scored past the guard band
    /// and fell back to a full tournament.
    pub guard_fallbacks: u64,
    /// Formation merge trials spent across all compiles.
    pub trials: u64,
    /// Compiles whose latency was recorded (cold completions).
    pub compiles: u64,
    /// Median cold-compile latency, microseconds.
    pub p50_compile_us: u64,
    /// 99th-percentile cold-compile latency, microseconds.
    pub p99_compile_us: u64,
    /// Formation trials per second of compile wall time.
    pub trials_per_sec: f64,
}

impl ServiceStats {
    /// Cache hit rate over lookups that reached the cache, in `[0, 1]`.
    pub fn cache_hit_rate(&self) -> f64 {
        let lookups = self.cache_hits + self.cache_misses + self.cache_corrupt_dropped;
        if lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / lookups as f64
        }
    }

    /// Amortized portfolio entrants per tournament — the shape cache's
    /// payoff metric. Converges from the portfolio size toward 1.0 as
    /// recurring shapes hit the winner cache.
    pub fn entrants_per_tournament(&self) -> f64 {
        if self.tournaments == 0 {
            0.0
        } else {
            self.tournament_entrants as f64 / self.tournaments as f64
        }
    }

    /// Requests that reached a terminal state.
    pub fn terminal(&self) -> u64 {
        self.rejected + self.done + self.degraded + self.timed_out + self.failed
    }

    /// One-line JSON rendering with stable keys (no trailing newline).
    pub fn json(&self) -> String {
        format!(
            "{{\"submitted\":{},\"rejected\":{},\"done\":{},\"degraded\":{},\
             \"timed_out\":{},\"failed\":{},\"retries\":{},\"cache_hits\":{},\
             \"cache_misses\":{},\"cache_corrupt_dropped\":{},\"cache_hit_rate\":{:.4},\
             \"tournaments\":{},\"tournament_entrants\":{},\"shape_hits\":{},\
             \"shape_misses\":{},\"guard_fallbacks\":{},\"entrants_per_tournament\":{:.2},\
             \"trials\":{},\"compiles\":{},\"p50_compile_us\":{},\"p99_compile_us\":{},\
             \"trials_per_sec\":{:.1}}}",
            self.submitted,
            self.rejected,
            self.done,
            self.degraded,
            self.timed_out,
            self.failed,
            self.retries,
            self.cache_hits,
            self.cache_misses,
            self.cache_corrupt_dropped,
            self.cache_hit_rate(),
            self.tournaments,
            self.tournament_entrants,
            self.shape_hits,
            self.shape_misses,
            self.guard_fallbacks,
            self.entrants_per_tournament(),
            self.trials,
            self.compiles,
            self.p50_compile_us,
            self.p99_compile_us,
            self.trials_per_sec,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentiles_and_rates() {
        let c = StatsCollector::default();
        for us in [100u64, 200, 300, 400, 1000] {
            c.record_compile(Duration::from_micros(us), 10);
        }
        let s = c.snapshot();
        assert_eq!(s.compiles, 5);
        assert_eq!(s.p50_compile_us, 300);
        assert_eq!(s.p99_compile_us, 1000);
        assert_eq!(s.trials, 50);
        assert!(s.trials_per_sec > 0.0);
    }

    #[test]
    fn empty_snapshot_is_zeroed() {
        let s = StatsCollector::default().snapshot();
        assert_eq!(s.p50_compile_us, 0);
        assert_eq!(s.cache_hit_rate(), 0.0);
        assert_eq!(s.terminal(), 0);
    }

    #[test]
    fn json_is_one_line_with_stable_keys() {
        let c = StatsCollector::default();
        StatsCollector::bump(&c.submitted);
        StatsCollector::bump(&c.done);
        let j = c.snapshot().json();
        assert!(!j.contains('\n'));
        for key in [
            "\"submitted\":1",
            "\"done\":1",
            "\"cache_hit_rate\":",
            "\"p99_compile_us\":",
        ] {
            assert!(j.contains(key), "missing {key} in {j}");
        }
    }
}
