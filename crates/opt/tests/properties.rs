//! Property-based tests: every scalar optimization preserves observable
//! behaviour on arbitrary generated programs and inputs, and the pipeline
//! is a proper fixpoint.

use chf_ir::testgen::{generate, GenConfig};
use chf_ir::verify::verify;
use chf_opt::{constfold, copyprop, dce, gvn, optimize, predopt, Pass};
use chf_sim::functional::{run, RunConfig};
use proptest::prelude::*;

fn digest(f: &chf_ir::function::Function, args: [i64; 2]) -> (Option<i64>, Vec<(i64, i64)>) {
    run(f, &args, &[], &RunConfig::default()).unwrap().digest()
}

fn pass_by_index(i: usize) -> Box<dyn Pass> {
    match i {
        0 => Box::new(constfold::ConstFold),
        1 => Box::new(copyprop::CopyProp),
        2 => Box::new(gvn::Gvn),
        3 => Box::new(predopt::PredOpt),
        _ => Box::new(dce::Dce),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Any single pass preserves behaviour.
    #[test]
    fn each_pass_preserves_behaviour(
        seed in any::<u64>(),
        pass_idx in 0usize..5,
        a in -100i64..100,
        b in -100i64..100,
    ) {
        let f0 = generate(seed, &GenConfig::default());
        let mut f1 = f0.clone();
        pass_by_index(pass_idx).run(&mut f1);
        prop_assert!(verify(&f1).is_ok(), "pass {pass_idx} broke the IR");
        prop_assert_eq!(digest(&f0, [a, b]), digest(&f1, [a, b]));
    }

    /// Any *sequence* of passes preserves behaviour (passes compose).
    #[test]
    fn pass_sequences_preserve_behaviour(
        seed in any::<u64>(),
        sequence in proptest::collection::vec(0usize..5, 1..8),
        a in -100i64..100,
    ) {
        let f0 = generate(seed, &GenConfig::default());
        let mut f1 = f0.clone();
        for i in sequence {
            pass_by_index(i).run(&mut f1);
        }
        prop_assert!(verify(&f1).is_ok());
        prop_assert_eq!(digest(&f0, [a, 7]), digest(&f1, [a, 7]));
    }

    /// The full pipeline converges to a fixpoint: optimizing twice equals
    /// optimizing once.
    #[test]
    fn optimize_is_idempotent(seed in any::<u64>()) {
        let mut f = generate(seed, &GenConfig::default());
        optimize(&mut f);
        let once = f.to_string();
        optimize(&mut f);
        prop_assert_eq!(once, f.to_string());
    }

    /// Optimization never grows the program.
    #[test]
    fn optimize_never_grows_code(seed in any::<u64>()) {
        let mut f = generate(seed, &GenConfig::default());
        let before = f.static_size();
        optimize(&mut f);
        prop_assert!(
            f.static_size() <= before,
            "optimize grew {} -> {}",
            before,
            f.static_size()
        );
    }

    /// DCE after the pipeline leaves no instruction whose destination is
    /// never read and has no side effect.
    #[test]
    fn no_trivially_dead_code_after_optimize(seed in any::<u64>()) {
        let mut f = generate(seed, &GenConfig::default());
        optimize(&mut f);
        let mut d = dce::Dce;
        prop_assert!(!d.run(&mut f), "DCE still found dead code after optimize");
    }
}
