//! Liveness-based dead-code elimination.
//!
//! Removes instructions whose destination is dead and that have no side
//! effect. Predicated definitions are *may*-defs: they never make the
//! previous value dead, so a live destination keeps both the predicated def
//! and whatever defined the register before it.

use crate::Pass;
use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::fxhash::FxHashSet;
use chf_ir::ids::Reg;
use chf_ir::liveness::Liveness;

/// The dead-code-elimination pass.
#[derive(Debug, Default)]
pub struct Dce;

/// Remove dead instructions from block `b`, given `live`, the function-wide
/// liveness solution. Mutates only `b`.
fn sweep_block(f: &mut Function, b: chf_ir::ids::BlockId, live: &Liveness) -> bool {
    // Live set at the end of the instruction list: successors'
    // needs plus this block's own exit uses.
    let mut alive: FxHashSet<Reg> = live.live_out(b).to_set();
    let mut changed = false;
    let blk = f.block_mut(b);
    for e in &blk.exits {
        if let Some(p) = e.pred {
            alive.insert(p.reg);
        }
        if let ExitTarget::Return(Some(op)) = e.target {
            if let Some(r) = op.as_reg() {
                alive.insert(r);
            }
        }
    }

    // Backward sweep.
    let mut keep = vec![true; blk.insts.len()];
    for (i, inst) in blk.insts.iter().enumerate().rev() {
        if inst.has_side_effect() {
            for u in inst.uses() {
                alive.insert(u);
            }
            continue;
        }
        let d = inst.def().expect("non-store ops define a register");
        if !alive.contains(&d) {
            keep[i] = false;
            changed = true;
            continue;
        }
        if inst.pred.is_none() {
            alive.remove(&d);
        }
        for u in inst.uses() {
            alive.insert(u);
        }
    }

    if keep.iter().any(|k| !k) {
        let mut idx = 0;
        blk.insts.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }
    changed
}

/// Run dead-code elimination on a single block, using a fresh function-wide
/// liveness solution (dataflow must stay global — the block's `live_out`
/// depends on its successors). Block-scoped entry point for formation's
/// trial optimizer; mutates only `b`.
pub fn eliminate_in_block(f: &mut Function, b: chf_ir::ids::BlockId) -> bool {
    let live = Liveness::compute(f);
    sweep_block(f, b, &live)
}

impl Pass for Dce {
    fn name(&self) -> &'static str {
        "dce"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let live = Liveness::compute(f);
        let mut changed = false;
        let ids: Vec<_> = f.block_ids().collect();
        for b in ids {
            changed |= sweep_block(f, b, &live);
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::{Instr, Operand, Pred};

    #[test]
    fn removes_unused_computation() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let dead = fb.mul(Operand::Reg(fb.param(0)), Operand::Imm(3));
        let _ = dead;
        let x = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        fb.ret(Some(Operand::Reg(x)));
        let mut f = fb.build().unwrap();
        assert!(Dce.run(&mut f));
        assert_eq!(f.block(f.entry).insts.len(), 1);
    }

    #[test]
    fn keeps_stores() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        fb.store(Operand::Imm(0), Operand::Reg(fb.param(0)));
        fb.ret(None);
        let mut f = fb.build().unwrap();
        assert!(!Dce.run(&mut f));
        assert_eq!(f.block(f.entry).insts.len(), 1);
    }

    #[test]
    fn removes_transitively_dead_chains() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let a = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        let b = fb.mul(Operand::Reg(a), Operand::Imm(2));
        let _ = b;
        fb.ret(Some(Operand::Imm(0)));
        let mut f = fb.build().unwrap();
        assert!(Dce.run(&mut f));
        assert!(f.block(f.entry).insts.is_empty());
    }

    #[test]
    fn predicated_def_keeps_earlier_def_alive() {
        // out = 0; [p] out = 1; return out — both defs must survive.
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let out = fb.mov(Operand::Imm(0));
        let p = fb.cmp_gt(Operand::Reg(fb.param(0)), Operand::Imm(5));
        fb.push(Instr::mov(out, Operand::Imm(1)).predicated(Pred::on_true(p)));
        fb.ret(Some(Operand::Reg(out)));
        let mut f = fb.build().unwrap();
        assert!(!Dce.run(&mut f));
        assert_eq!(f.block(f.entry).insts.len(), 3);
    }

    #[test]
    fn value_live_across_blocks_kept() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let next = fb.create_block();
        fb.switch_to(e);
        let x = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        fb.jump(next);
        fb.switch_to(next);
        fb.ret(Some(Operand::Reg(x)));
        let mut f = fb.build().unwrap();
        assert!(!Dce.run(&mut f));
    }

    #[test]
    fn dead_predicated_def_removed() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let p = fb.cmp_ne(Operand::Reg(fb.param(1)), Operand::Imm(0));
        let dead = fb.fresh_reg();
        fb.push(Instr::mov(dead, Operand::Imm(1)).predicated(Pred::on_true(p)));
        fb.ret(Some(Operand::Reg(fb.param(0))));
        let mut f = fb.build().unwrap();
        assert!(Dce.run(&mut f));
        // The predicate computation also dies in the same sweep.
        assert!(f.block(f.entry).insts.is_empty());
    }

    #[test]
    fn behaviour_preserved_on_random_programs() {
        crate::testutil::assert_preserves_behaviour(
            |f| {
                Dce.run(f);
            },
            0..40,
        );
    }
}
