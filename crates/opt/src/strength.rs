//! Strength reduction: replace expensive operations with cheaper
//! equivalents. On TRIPS the win is latency (multiply is 3 cycles, divide
//! 12, shifts and masks 1), which directly shortens the dependence chains
//! that bound dataflow block execution.
//!
//! Rules (for non-negative or sign-safe cases only — the IR uses signed
//! 64-bit arithmetic, so `div`/`rem` by powers of two round differently
//! than shifts for negative operands and are rewritten only when the
//! operand is provably non-negative):
//!
//! * `x * 2^k` → `x << k` (always valid: two's-complement wrapping agrees);
//! * `x / 2^k` → `x >> k` when `x` is provably non-negative;
//! * `x % 2^k` → `x & (2^k − 1)` when `x` is provably non-negative.

use crate::Pass;
use chf_ir::block::Block;
use chf_ir::function::Function;
use chf_ir::ids::Reg;
use chf_ir::instr::{Instr, Opcode, Operand};
use std::collections::HashSet;

/// The strength-reduction pass.
#[derive(Debug, Default)]
pub struct Strength;

fn power_of_two(v: i64) -> Option<u32> {
    if v > 0 && (v & (v - 1)) == 0 {
        Some(v.trailing_zeros())
    } else {
        None
    }
}

/// Run strength reduction over one block (the block-scoped entry point used
/// by formation's trial optimizer).
///
/// Per-block tracking of registers that provably hold non-negative values:
/// comparison results (0/1), `and` with a non-negative immediate, shifts of
/// non-negative values, and copies/additions of non-negative values with
/// small enough magnitude to not overflow (we only accept compare outputs,
/// masks, and unsigned-style counters built from them — conservative).
pub fn reduce_block(blk: &mut Block) -> bool {
    let mut non_negative: HashSet<Reg> = HashSet::new();
    let mut changed = false;

    let operand_non_negative = |set: &HashSet<Reg>, o: Option<Operand>| match o {
        Some(Operand::Imm(v)) => v >= 0,
        Some(Operand::Reg(r)) => set.contains(&r),
        None => false,
    };

    for inst in &mut blk.insts {
        // Rewrite using the *pre-instruction* facts.
        if let (Some(a), Some(Operand::Imm(c))) = (inst.a, inst.b) {
            if let Some(k) = power_of_two(c) {
                let rewritten = match inst.op {
                    Opcode::Mul => Some(Instr {
                        op: Opcode::Shl,
                        b: Some(Operand::Imm(k as i64)),
                        ..inst.clone()
                    }),
                    Opcode::Div if operand_non_negative(&non_negative, Some(a)) => Some(Instr {
                        op: Opcode::Shr,
                        b: Some(Operand::Imm(k as i64)),
                        ..inst.clone()
                    }),
                    Opcode::Rem if operand_non_negative(&non_negative, Some(a)) => Some(Instr {
                        op: Opcode::And,
                        b: Some(Operand::Imm(c - 1)),
                        ..inst.clone()
                    }),
                    _ => None,
                };
                if let Some(new) = rewritten {
                    *inst = new;
                    changed = true;
                }
            }
        }

        // Update non-negativity facts (unpredicated defs only: a predicated
        // def may leave an arbitrary old value).
        if let Some(d) = inst.def() {
            let fact = inst.pred.is_none()
                && match inst.op {
                    op if op.is_compare() => true,
                    Opcode::And => {
                        // Non-negative if either side is a non-negative
                        // immediate (masking clears the sign bit) or both
                        // operands are non-negative.
                        matches!(inst.a, Some(Operand::Imm(v)) if v >= 0)
                            || matches!(inst.b, Some(Operand::Imm(v)) if v >= 0)
                            || (operand_non_negative(&non_negative, inst.a)
                                && operand_non_negative(&non_negative, inst.b))
                    }
                    Opcode::Shr => operand_non_negative(&non_negative, inst.a),
                    Opcode::Mov => operand_non_negative(&non_negative, inst.a),
                    Opcode::Rem => {
                        // x % m has the sign of x.
                        operand_non_negative(&non_negative, inst.a)
                    }
                    _ => false,
                };
            if fact {
                non_negative.insert(d);
            } else {
                non_negative.remove(&d);
            }
        }
    }
    changed
}

impl Pass for Strength {
    fn name(&self) -> &'static str {
        "strength"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let mut changed = false;
        let ids: Vec<_> = f.block_ids().collect();
        for b in ids {
            changed |= reduce_block(f.block_mut(b));
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;

    #[test]
    fn multiply_by_power_of_two_becomes_shift() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.mul(Operand::Reg(fb.param(0)), Operand::Imm(8));
        fb.ret(Some(Operand::Reg(x)));
        let mut f = fb.build().unwrap();
        assert!(Strength.run(&mut f));
        let inst = &f.block(f.entry).insts[0];
        assert_eq!(inst.op, Opcode::Shl);
        assert_eq!(inst.b, Some(Operand::Imm(3)));
    }

    #[test]
    fn signed_division_not_rewritten_blindly() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.div(Operand::Reg(fb.param(0)), Operand::Imm(4));
        fb.ret(Some(Operand::Reg(x)));
        let mut f = fb.build().unwrap();
        // The parameter's sign is unknown: no rewrite.
        assert!(!Strength.run(&mut f));
        assert_eq!(f.block(f.entry).insts[0].op, Opcode::Div);
    }

    #[test]
    fn masked_value_divides_via_shift() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let m = fb.and(Operand::Reg(fb.param(0)), Operand::Imm(1023)); // non-negative
        let d = fb.div(Operand::Reg(m), Operand::Imm(4));
        let r = fb.rem(Operand::Reg(m), Operand::Imm(16));
        let s = fb.add(Operand::Reg(d), Operand::Reg(r));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        assert!(Strength.run(&mut f));
        assert_eq!(f.block(f.entry).insts[1].op, Opcode::Shr);
        assert_eq!(f.block(f.entry).insts[2].op, Opcode::And);
        assert_eq!(f.block(f.entry).insts[2].b, Some(Operand::Imm(15)));
    }

    #[test]
    fn non_power_of_two_untouched() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.mul(Operand::Reg(fb.param(0)), Operand::Imm(6));
        fb.ret(Some(Operand::Reg(x)));
        let mut f = fb.build().unwrap();
        assert!(!Strength.run(&mut f));
    }

    #[test]
    fn behaviour_preserved_on_random_programs() {
        crate::testutil::assert_preserves_behaviour(
            |f| {
                Strength.run(f);
            },
            0..60,
        );
    }

    #[test]
    fn negative_inputs_exercised_directly() {
        use chf_sim::functional::{run, RunConfig};
        // mul by power of two must agree for negatives (wrapping shl).
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.mul(Operand::Reg(fb.param(0)), Operand::Imm(16));
        fb.ret(Some(Operand::Reg(x)));
        let f0 = fb.build().unwrap();
        let mut f1 = f0.clone();
        Strength.run(&mut f1);
        for v in [-5, -1, 0, 3, i64::MAX / 8] {
            let a = run(&f0, &[v], &[], &RunConfig::default()).unwrap().ret;
            let b = run(&f1, &[v], &[], &RunConfig::default()).unwrap().ret;
            assert_eq!(a, b, "v = {v}");
        }
    }
}
