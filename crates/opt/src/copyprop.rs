//! Predicate-aware copy propagation (within blocks).
//!
//! Forwards the source of `mov` instructions into later uses. A copy made
//! under a predicate may only feed instructions guarded by the *same*
//! predicate (they execute together or not at all); unpredicated copies feed
//! anything. Entries are invalidated when their destination, source, or
//! predicate register is redefined.

use crate::Pass;
use chf_ir::function::Function;
use chf_ir::fxhash::FxHashMap;
use chf_ir::ids::Reg;
use chf_ir::instr::{Opcode, Operand, Pred};

#[derive(Copy, Clone, Debug)]
struct CopyInfo {
    src: Operand,
    pred: Option<Pred>,
}

/// The copy-propagation pass.
#[derive(Debug, Default)]
pub struct CopyProp;

fn usable(info: &CopyInfo, use_pred: Option<Pred>) -> bool {
    match info.pred {
        None => true,
        Some(p) => use_pred == Some(p),
    }
}

fn invalidate(copies: &mut FxHashMap<Reg, CopyInfo>, defined: Reg) {
    copies.retain(|dst, info| {
        *dst != defined
            && info.src != Operand::Reg(defined)
            && info.pred.map(|p| p.reg) != Some(defined)
    });
}

/// Run copy propagation over one block (the block-scoped entry point used
/// by formation's trial optimizer — the pass is intra-block anyway).
pub fn propagate_block(blk: &mut chf_ir::block::Block) -> bool {
    let mut copies: FxHashMap<Reg, CopyInfo> = FxHashMap::default();
    let mut changed = false;

    for inst in &mut blk.insts {
        // 1. Rewrite source operands.
        let use_pred = inst.pred;
        for o in [inst.a.as_mut(), inst.b.as_mut()].into_iter().flatten() {
            if let Operand::Reg(r) = *o {
                if let Some(info) = copies.get(&r) {
                    if usable(info, use_pred) {
                        *o = info.src;
                        changed = true;
                    }
                }
            }
        }
        // Rewrite the predicate register through unpredicated reg-to-reg
        // copies only (a predicate operand must stay a register and must be
        // valid whenever the instruction is evaluated).
        if let Some(p) = inst.pred.as_mut() {
            if let Some(info) = copies.get(&p.reg) {
                if info.pred.is_none() {
                    if let Operand::Reg(src) = info.src {
                        p.reg = src;
                        changed = true;
                    }
                }
            }
        }

        // 2. Process the definition.
        if let Some(d) = inst.def() {
            invalidate(&mut copies, d);
            if inst.op == Opcode::Mov {
                let src = inst.a.expect("mov has a source");
                // Self-copies carry no information.
                if src != Operand::Reg(d) {
                    copies.insert(
                        d,
                        CopyInfo {
                            src,
                            pred: inst.pred,
                        },
                    );
                }
            }
        }
    }

    // 3. Rewrite exits through unpredicated copies.
    for e in &mut blk.exits {
        if let Some(p) = e.pred.as_mut() {
            if let Some(info) = copies.get(&p.reg) {
                if info.pred.is_none() {
                    if let Operand::Reg(src) = info.src {
                        p.reg = src;
                        changed = true;
                    }
                }
            }
        }
        if let chf_ir::block::ExitTarget::Return(Some(op)) = &mut e.target {
            if let Operand::Reg(r) = *op {
                if let Some(info) = copies.get(&r) {
                    if info.pred.is_none() {
                        *op = info.src;
                        changed = true;
                    }
                }
            }
        }
    }

    changed
}

impl Pass for CopyProp {
    fn name(&self) -> &'static str {
        "copyprop"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let mut changed = false;
        let ids: Vec<_> = f.block_ids().collect();
        for b in ids {
            changed |= propagate_block(f.block_mut(b));
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::Instr;

    #[test]
    fn propagates_simple_copy() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.mov(Operand::Reg(fb.param(0)));
        let y = fb.add(Operand::Reg(x), Operand::Imm(1));
        fb.ret(Some(Operand::Reg(y)));
        let mut f = fb.build().unwrap();
        assert!(CopyProp.run(&mut f));
        // The add now reads the parameter directly.
        assert_eq!(f.block(f.entry).insts[1].a, Some(Operand::Reg(Reg(0))));
    }

    #[test]
    fn redefinition_invalidates() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let p0 = fb.param(0);
        let x = fb.mov(Operand::Reg(p0)); // x = p0
        fb.mov_to(p0, Operand::Imm(99)); // p0 redefined: copy is stale
        let y = fb.add(Operand::Reg(x), Operand::Imm(1));
        fb.ret(Some(Operand::Reg(y)));
        let mut f = fb.build().unwrap();
        CopyProp.run(&mut f);
        // y must still read x, not p0.
        assert_eq!(f.block(f.entry).insts[2].a, Some(Operand::Reg(x)));
    }

    #[test]
    fn predicated_copy_feeds_same_predicate_only() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let p = fb.cmp_ne(Operand::Reg(fb.param(1)), Operand::Imm(0));
        let x = fb.fresh_reg();
        let src = fb.param(0);
        fb.push(Instr::mov(x, Operand::Reg(src)).predicated(Pred::on_true(p)));
        // Same predicate: may forward.
        let y = fb.fresh_reg();
        fb.push(Instr::add(y, Operand::Reg(x), Operand::Imm(1)).predicated(Pred::on_true(p)));
        // Different predicate: must not forward.
        let z = fb.fresh_reg();
        fb.push(Instr::add(z, Operand::Reg(x), Operand::Imm(2)).predicated(Pred::on_false(p)));
        let s = fb.add(Operand::Reg(y), Operand::Reg(z));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        CopyProp.run(&mut f);
        let insts = &f.block(f.entry).insts;
        assert_eq!(
            insts[2].a,
            Some(Operand::Reg(src)),
            "same-pred use forwarded"
        );
        assert_eq!(
            insts[3].a,
            Some(Operand::Reg(x)),
            "other-pred use untouched"
        );
    }

    #[test]
    fn return_operand_rewritten() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.mov(Operand::Imm(42));
        fb.ret(Some(Operand::Reg(x)));
        let mut f = fb.build().unwrap();
        CopyProp.run(&mut f);
        let last = &f.block(f.entry).exits[0];
        assert_eq!(
            last.target,
            chf_ir::block::ExitTarget::Return(Some(Operand::Imm(42)))
        );
    }

    #[test]
    fn behaviour_preserved_on_random_programs() {
        crate::testutil::assert_preserves_behaviour(
            |f| {
                CopyProp.run(f);
            },
            0..40,
        );
    }
}
