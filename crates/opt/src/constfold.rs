//! Constant folding and algebraic simplification.

use crate::Pass;
use chf_ir::function::Function;
use chf_ir::instr::{Instr, Opcode, Operand};

/// Folds instructions whose operands are immediates and applies safe
/// algebraic identities (`x+0`, `x*1`, `x*0`, `x-x`, …), rewriting them to
/// `mov`s that later passes propagate and eliminate.
#[derive(Debug, Default)]
pub struct ConstFold;

fn fold_constants(op: Opcode, a: i64, b: i64) -> Option<i64> {
    Some(match op {
        Opcode::Add => a.wrapping_add(b),
        Opcode::Sub => a.wrapping_sub(b),
        Opcode::Mul => a.wrapping_mul(b),
        Opcode::Div => {
            if b == 0 {
                0
            } else {
                a.wrapping_div(b)
            }
        }
        Opcode::Rem => {
            if b == 0 {
                0
            } else {
                a.wrapping_rem(b)
            }
        }
        Opcode::And => a & b,
        Opcode::Or => a | b,
        Opcode::Xor => a ^ b,
        Opcode::Shl => a.wrapping_shl((b & 63) as u32),
        Opcode::Shr => a.wrapping_shr((b & 63) as u32),
        Opcode::CmpEq => (a == b) as i64,
        Opcode::CmpNe => (a != b) as i64,
        Opcode::CmpLt => (a < b) as i64,
        Opcode::CmpLe => (a <= b) as i64,
        Opcode::CmpGt => (a > b) as i64,
        Opcode::CmpGe => (a >= b) as i64,
        _ => return None,
    })
}

fn fold_unary(op: Opcode, a: i64) -> Option<i64> {
    Some(match op {
        Opcode::Not => !a,
        Opcode::Neg => a.wrapping_neg(),
        Opcode::Mov => a,
        _ => return None,
    })
}

/// Try to simplify one instruction. Returns the replacement if simplified.
fn simplify(inst: &Instr) -> Option<Instr> {
    let dst = inst.dst?;
    let rebuild = |src: Operand| {
        let mut i = Instr::mov(dst, src);
        i.pred = inst.pred;
        i
    };

    match (inst.op.arity(), inst.a, inst.b) {
        (1, Some(Operand::Imm(a)), _) if inst.op != Opcode::Load => {
            let v = fold_unary(inst.op, a)?;
            // mov of the same imm is not progress
            if inst.op == Opcode::Mov {
                return None;
            }
            Some(rebuild(Operand::Imm(v)))
        }
        (2, Some(Operand::Imm(a)), Some(Operand::Imm(b))) => {
            let v = fold_constants(inst.op, a, b)?;
            Some(rebuild(Operand::Imm(v)))
        }
        (2, Some(a), Some(b)) => {
            // Algebraic identities with one immediate operand.
            match (inst.op, a, b) {
                (Opcode::Add, x, Operand::Imm(0)) | (Opcode::Add, Operand::Imm(0), x) => {
                    Some(rebuild(x))
                }
                (Opcode::Sub, x, Operand::Imm(0)) => Some(rebuild(x)),
                (Opcode::Mul, x, Operand::Imm(1)) | (Opcode::Mul, Operand::Imm(1), x) => {
                    Some(rebuild(x))
                }
                (Opcode::Mul, _, Operand::Imm(0)) | (Opcode::Mul, Operand::Imm(0), _) => {
                    Some(rebuild(Operand::Imm(0)))
                }
                (Opcode::Div, x, Operand::Imm(1)) => Some(rebuild(x)),
                (Opcode::And, _, Operand::Imm(0)) | (Opcode::And, Operand::Imm(0), _) => {
                    Some(rebuild(Operand::Imm(0)))
                }
                (Opcode::Or, x, Operand::Imm(0)) | (Opcode::Or, Operand::Imm(0), x) => {
                    Some(rebuild(x))
                }
                (Opcode::Xor, x, Operand::Imm(0)) | (Opcode::Xor, Operand::Imm(0), x) => {
                    Some(rebuild(x))
                }
                (Opcode::Shl, x, Operand::Imm(0)) | (Opcode::Shr, x, Operand::Imm(0)) => {
                    Some(rebuild(x))
                }
                (Opcode::Sub, Operand::Reg(x), Operand::Reg(y)) if x == y => {
                    Some(rebuild(Operand::Imm(0)))
                }
                (Opcode::Xor, Operand::Reg(x), Operand::Reg(y)) if x == y => {
                    Some(rebuild(Operand::Imm(0)))
                }
                (Opcode::CmpEq, Operand::Reg(x), Operand::Reg(y)) if x == y => {
                    Some(rebuild(Operand::Imm(1)))
                }
                (Opcode::CmpNe, Operand::Reg(x), Operand::Reg(y))
                | (Opcode::CmpLt, Operand::Reg(x), Operand::Reg(y))
                | (Opcode::CmpGt, Operand::Reg(x), Operand::Reg(y))
                    if x == y =>
                {
                    Some(rebuild(Operand::Imm(0)))
                }
                (Opcode::CmpLe, Operand::Reg(x), Operand::Reg(y))
                | (Opcode::CmpGe, Operand::Reg(x), Operand::Reg(y))
                    if x == y =>
                {
                    Some(rebuild(Operand::Imm(1)))
                }
                _ => None,
            }
        }
        _ => None,
    }
}

/// Per-block boolean-value tracking: a register is *boolean* after an
/// unpredicated comparison, a logical op over booleans, or a copy of a
/// boolean. Guard chains built by if-conversion are boolean throughout, so
/// `ne g, #0` and `and g, #1` collapse to copies.
fn simplify_booleans(blk: &mut chf_ir::block::Block) -> bool {
    use std::collections::{HashMap, HashSet};
    let mut bools: HashSet<chf_ir::ids::Reg> = HashSet::new();
    // `cond_bools[r] = g`: r's last def is a comparison predicated on
    // `[g]` — boolean whenever g fired, so `and g, r` is boolean.
    let mut cond_bools: HashMap<chf_ir::ids::Reg, chf_ir::ids::Reg> = HashMap::new();
    let mut changed = false;
    let is_bool = |bools: &HashSet<chf_ir::ids::Reg>, o: Option<Operand>| match o {
        Some(Operand::Reg(r)) => bools.contains(&r),
        Some(Operand::Imm(v)) => v == 0 || v == 1,
        None => false,
    };
    for inst in &mut blk.insts {
        // Rewrite using the *pre-instruction* boolean state.
        let rebuild = |inst: &Instr, src: Operand| {
            let mut i = Instr::mov(inst.dst.expect("dst"), src);
            i.pred = inst.pred;
            i
        };
        let new = match (inst.op, inst.a, inst.b) {
            (Opcode::CmpNe, Some(a @ Operand::Reg(_)), Some(Operand::Imm(0)))
                if is_bool(&bools, Some(a)) =>
            {
                Some(rebuild(inst, a))
            }
            (Opcode::And, Some(a @ Operand::Reg(_)), Some(Operand::Imm(1)))
                if is_bool(&bools, Some(a)) =>
            {
                Some(rebuild(inst, a))
            }
            (Opcode::And, Some(Operand::Imm(1)), Some(b @ Operand::Reg(_)))
                if is_bool(&bools, Some(b)) =>
            {
                Some(rebuild(inst, b))
            }
            (Opcode::And, Some(a @ Operand::Reg(x)), Some(Operand::Reg(y)))
                if x == y && is_bool(&bools, Some(a)) =>
            {
                Some(rebuild(inst, a))
            }
            _ => None,
        };
        if let Some(n) = new {
            *inst = n;
            changed = true;
        }
        // Update tracking.
        if let Some(d) = inst.def() {
            cond_bools.remove(&d);
            cond_bools.retain(|_, g| *g != d);
            let and_cond_bool = inst.op == Opcode::And
                && match (inst.a, inst.b) {
                    (Some(Operand::Reg(a)), Some(Operand::Reg(b))) => {
                        (bools.contains(&a) && cond_bools.get(&b) == Some(&a))
                            || (bools.contains(&b) && cond_bools.get(&a) == Some(&b))
                    }
                    _ => false,
                };
            let op_is_bool = inst.op.is_compare()
                || (matches!(inst.op, Opcode::And | Opcode::Or | Opcode::Xor)
                    && is_bool(&bools, inst.a)
                    && is_bool(&bools, inst.b))
                || and_cond_bool
                || (inst.op == Opcode::Mov && is_bool(&bools, inst.a));
            if op_is_bool && inst.pred.is_none() {
                bools.insert(d);
            } else {
                bools.remove(&d);
                if inst.op.is_compare() {
                    if let Some(p) = inst.pred {
                        if p.if_true {
                            cond_bools.insert(d, p.reg);
                        }
                    }
                }
            }
        }
    }
    changed
}

/// Run constant folding and boolean simplification over a single block.
/// Block-scoped entry point for the trial optimizer of convergent
/// formation, which only needs the merged block cleaned up.
pub fn fold_block(blk: &mut chf_ir::block::Block) -> bool {
    let mut changed = false;
    for inst in &mut blk.insts {
        if let Some(new) = simplify(inst) {
            *inst = new;
            changed = true;
        }
    }
    changed |= simplify_booleans(blk);
    changed
}

impl Pass for ConstFold {
    fn name(&self) -> &'static str {
        "constfold"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let mut changed = false;
        let ids: Vec<_> = f.block_ids().collect();
        for b in ids {
            changed |= fold_block(f.block_mut(b));
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::ids::Reg;
    use chf_ir::instr::Pred;

    fn fold_one(inst: Instr) -> Option<Instr> {
        simplify(&inst)
    }

    #[test]
    fn folds_constant_binary() {
        let i = Instr::add(Reg(0), Operand::Imm(2), Operand::Imm(3));
        let s = fold_one(i).unwrap();
        assert_eq!(s, Instr::mov(Reg(0), Operand::Imm(5)));
    }

    #[test]
    fn folds_identities() {
        let x = Operand::Reg(Reg(1));
        assert_eq!(
            fold_one(Instr::add(Reg(0), x, Operand::Imm(0))).unwrap(),
            Instr::mov(Reg(0), x)
        );
        assert_eq!(
            fold_one(Instr::mul(Reg(0), x, Operand::Imm(0))).unwrap(),
            Instr::mov(Reg(0), Operand::Imm(0))
        );
        assert_eq!(
            fold_one(Instr::sub(Reg(0), x, x)).unwrap(),
            Instr::mov(Reg(0), Operand::Imm(0))
        );
        assert_eq!(
            fold_one(Instr::binary(Opcode::CmpLe, Reg(0), x, x)).unwrap(),
            Instr::mov(Reg(0), Operand::Imm(1))
        );
    }

    #[test]
    fn preserves_predicate() {
        let i =
            Instr::add(Reg(0), Operand::Imm(1), Operand::Imm(1)).predicated(Pred::on_false(Reg(3)));
        let s = fold_one(i).unwrap();
        assert_eq!(s.pred, Some(Pred::on_false(Reg(3))));
        assert_eq!(s.a, Some(Operand::Imm(2)));
    }

    #[test]
    fn does_not_touch_loads() {
        let i = Instr::load(Reg(0), Operand::Imm(5));
        assert!(fold_one(i).is_none());
    }

    #[test]
    fn division_by_zero_folds_to_zero() {
        let i = Instr::binary(Opcode::Div, Reg(0), Operand::Imm(9), Operand::Imm(0));
        assert_eq!(fold_one(i).unwrap(), Instr::mov(Reg(0), Operand::Imm(0)));
    }

    #[test]
    fn pass_reports_change() {
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.add(Operand::Imm(1), Operand::Imm(2));
        fb.ret(Some(Operand::Reg(x)));
        let mut f = fb.build().unwrap();
        assert!(ConstFold.run(&mut f));
        assert!(!ConstFold.run(&mut f));
    }

    #[test]
    fn behaviour_preserved_on_random_programs() {
        crate::testutil::assert_preserves_behaviour(
            |f| {
                ConstFold.run(f);
            },
            0..40,
        );
    }
}
