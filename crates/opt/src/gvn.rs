//! Value numbering.
//!
//! Two cooperating redundancy eliminations:
//!
//! * **Local value numbering** — within a block, predicate- and
//!   memory-aware. This is where hyperblock formation gets its payoff: after
//!   if-conversion and head duplication, the redundancy created by merging
//!   duplicated code is *intra-block*, exactly what the paper's iterative
//!   `Optimize` step targets. Loads are value-numbered against a memory
//!   epoch that stores advance.
//!
//! * **Dominator-scoped GVN over invariant expressions** — an expression
//!   whose value provably never changes during execution (operands are
//!   parameters or single-def registers defined outside all loops, computed
//!   unpredicated) is reused in any block dominated by its definition. This
//!   is the classical dominator-based global value numbering the paper cites,
//!   restricted to the cases that are sound without SSA.

use crate::Pass;
use chf_ir::block::Block;
use chf_ir::dom::DomTree;
use chf_ir::function::Function;
use chf_ir::fxhash::{FxHashMap, FxHashSet};
use chf_ir::ids::{BlockId, Reg};
use chf_ir::instr::{Instr, Opcode, Operand, Pred};
use chf_ir::loops::LoopForest;

/// The value-numbering pass.
#[derive(Debug, Default)]
pub struct Gvn;

/// A value number: either a known constant or an opaque id.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
enum Vn {
    Imm(i64),
    Id(u32),
}

/// Normalized predicate component of an expression key.
#[derive(Copy, Clone, PartialEq, Eq, Hash, Debug)]
struct PredKey {
    vn: Vn,
    polarity: bool,
}

#[derive(Clone, PartialEq, Eq, Hash, Debug)]
struct ExprKey {
    op: Opcode,
    a: Vn,
    b: Option<Vn>,
    /// Memory epoch, for loads only.
    epoch: u64,
    pred: Option<PredKey>,
}

struct LocalVn {
    reg_vn: FxHashMap<Reg, Vn>,
    exprs: FxHashMap<ExprKey, (Reg, Vn)>,
    next_id: u32,
    epoch: u64,
}

impl LocalVn {
    fn new() -> Self {
        LocalVn {
            reg_vn: FxHashMap::default(),
            exprs: FxHashMap::default(),
            next_id: 0,
            epoch: 0,
        }
    }

    fn fresh(&mut self) -> Vn {
        let id = self.next_id;
        self.next_id += 1;
        Vn::Id(id)
    }

    fn reg(&mut self, r: Reg) -> Vn {
        if let Some(v) = self.reg_vn.get(&r) {
            *v
        } else {
            let v = self.fresh();
            self.reg_vn.insert(r, v);
            v
        }
    }

    fn operand(&mut self, o: Operand) -> Vn {
        match o {
            Operand::Imm(v) => Vn::Imm(v),
            Operand::Reg(r) => self.reg(r),
        }
    }

    fn pred_key(&mut self, p: Option<Pred>) -> Option<PredKey> {
        p.map(|p| PredKey {
            vn: self.reg(p.reg),
            polarity: p.if_true,
        })
    }
}

fn normalize(op: Opcode, a: Vn, b: Option<Vn>) -> (Vn, Option<Vn>) {
    if let Some(bv) = b {
        if op.is_commutative() {
            // Canonical operand order for commutative ops.
            let (x, y) = match (a, bv) {
                (Vn::Imm(i), Vn::Id(j)) => (Vn::Id(j), Vn::Imm(i)),
                (Vn::Id(i), Vn::Id(j)) if j < i => (Vn::Id(j), Vn::Id(i)),
                (Vn::Imm(i), Vn::Imm(j)) if j < i => (Vn::Imm(j), Vn::Imm(i)),
                other => other,
            };
            return (x, Some(y));
        }
    }
    (a, b)
}

/// Run local value numbering over one block (the block-scoped entry point
/// used by formation's trial optimizer).
pub fn value_number_block(blk: &mut Block) -> bool {
    let mut vn = LocalVn::new();
    let mut changed = false;

    for inst in &mut blk.insts {
        match inst.op {
            Opcode::Store => {
                // Conservative: any store invalidates all prior loads.
                vn.epoch += 1;
                continue;
            }
            Opcode::Mov => {
                let d = inst.dst.expect("mov dst");
                let src_vn = vn.operand(inst.a.expect("mov src"));
                let new_vn = if inst.pred.is_none() {
                    src_vn
                } else {
                    vn.fresh()
                };
                vn.reg_vn.insert(d, new_vn);
                continue;
            }
            _ => {}
        }

        let d = inst.dst.expect("pure ops have a dst");
        let a = vn.operand(inst.a.expect("operand a"));
        let b = inst.b.map(|o| vn.operand(o));
        let (a, b) = normalize(inst.op, a, b);
        let pk = vn.pred_key(inst.pred);
        let epoch = if inst.op == Opcode::Load { vn.epoch } else { 0 };

        // Try the exact key, then (for predicated instructions) an
        // unpredicated computation of the same expression, which is always
        // available.
        let mut found: Option<(Reg, Vn)> = None;
        for key in [
            Some(ExprKey {
                op: inst.op,
                a,
                b,
                epoch,
                pred: pk,
            }),
            pk.map(|_| ExprKey {
                op: inst.op,
                a,
                b,
                epoch,
                pred: None,
            }),
        ]
        .into_iter()
        .flatten()
        {
            if let Some(&(r_prev, res_vn)) = vn.exprs.get(&key) {
                // The holder register must still carry that value.
                if vn.reg_vn.get(&r_prev) == Some(&res_vn) && r_prev != d {
                    found = Some((r_prev, res_vn));
                    break;
                }
            }
        }

        if let Some((r_prev, res_vn)) = found {
            let mut new = Instr::mov(d, Operand::Reg(r_prev));
            new.pred = inst.pred;
            *inst = new;
            changed = true;
            let new_vn = if inst.pred.is_none() {
                res_vn
            } else {
                vn.fresh()
            };
            vn.reg_vn.insert(d, new_vn);
        } else {
            let res_vn = vn.fresh();
            let key = ExprKey {
                op: inst.op,
                a,
                b,
                epoch,
                pred: pk,
            };
            vn.exprs.insert(key, (d, res_vn));
            let new_vn = if inst.pred.is_none() {
                res_vn
            } else {
                vn.fresh()
            };
            vn.reg_vn.insert(d, new_vn);
        }
    }
    changed
}

/// Registers whose value is fixed for the whole execution: never-redefined
/// parameters, and single-def unpredicated non-memory defs outside all loops
/// whose operands are themselves invariant.
fn invariant_regs(f: &Function, forest: &LoopForest) -> FxHashSet<Reg> {
    let mut def_count: FxHashMap<Reg, u32> = FxHashMap::default();
    for (_, blk) in f.blocks() {
        for inst in &blk.insts {
            if let Some(d) = inst.def() {
                *def_count.entry(d).or_insert(0) += 1;
            }
        }
    }
    // A parameter's implicit entry definition counts as a def: a parameter
    // that is also written by an instruction is not single-def.
    for p in 0..f.params {
        *def_count.entry(Reg(p)).or_insert(0) += 1;
    }

    let mut invariant: FxHashSet<Reg> = (0..f.params)
        .map(Reg)
        .filter(|r| def_count.get(r) == Some(&1))
        .collect();

    // Fixpoint over the def chain.
    let mut changed = true;
    while changed {
        changed = false;
        for (b, blk) in f.blocks() {
            if forest.depth(b) > 0 {
                continue; // defs inside loops may execute repeatedly
            }
            for inst in &blk.insts {
                let Some(d) = inst.def() else { continue };
                if invariant.contains(&d)
                    || inst.pred.is_some()
                    || inst.op == Opcode::Load
                    || def_count.get(&d) != Some(&1)
                {
                    continue;
                }
                if inst.uses().all(|u| invariant.contains(&u)) {
                    invariant.insert(d);
                    changed = true;
                }
            }
        }
    }
    invariant
}

/// Dominator-scoped GVN over invariant expressions.
fn run_global(f: &mut Function) -> bool {
    run_global_scoped(f, None)
}

/// [`run_global`] restricted to rewrites *landing in* `scope` (when given):
/// the dominator/invariant analyses still look at the whole function, but
/// only instructions of the scoped block are rewritten. This is what the
/// block-scoped trial optimizer needs — global facts, local edits.
pub fn run_global_scoped(f: &mut Function, scope: Option<BlockId>) -> bool {
    let dom = DomTree::compute(f);
    let forest = LoopForest::compute(f, &dom);
    let invariant = invariant_regs(f, &forest);
    let is_inv_operand = |o: Operand| match o {
        Operand::Imm(_) => true,
        Operand::Reg(r) => invariant.contains(&r),
    };

    // Collect invariant expressions keyed syntactically.
    #[derive(PartialEq, Eq, Hash)]
    struct Key(Opcode, Operand, Option<Operand>);
    let mut table: FxHashMap<Key, (BlockId, usize, Reg)> = FxHashMap::default();
    let mut rewrites: Vec<(BlockId, usize, Reg)> = Vec::new();

    let order = dom.rpo();
    for &b in &order {
        let blk = f.block(b);
        for (i, inst) in blk.insts.iter().enumerate() {
            let Some(d) = inst.def() else { continue };
            if !invariant.contains(&d) || inst.op == Opcode::Mov {
                continue;
            }
            if !(inst.a.map(is_inv_operand).unwrap_or(true)
                && inst.b.map(is_inv_operand).unwrap_or(true))
            {
                continue;
            }
            let key = Key(inst.op, inst.a.expect("operand"), inst.b);
            match table.get(&key) {
                Some(&(pb, pi, pr)) if dom.strictly_dominates(pb, b) || (pb == b && pi < i) => {
                    if pr != d && scope.map(|s| s == b).unwrap_or(true) {
                        rewrites.push((b, i, pr));
                    }
                }
                _ => {
                    table.insert(key, (b, i, d));
                }
            }
        }
    }

    let changed = !rewrites.is_empty();
    for (b, i, pr) in rewrites {
        let inst = &mut f.block_mut(b).insts[i];
        let d = inst.dst.expect("dst");
        *inst = Instr::mov(d, Operand::Reg(pr));
    }
    changed
}

impl Pass for Gvn {
    fn name(&self) -> &'static str {
        "gvn"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let mut changed = false;
        let ids: Vec<_> = f.block_ids().collect();
        for b in ids {
            changed |= value_number_block(f.block_mut(b));
        }
        changed |= run_global(f);
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;

    #[test]
    fn local_redundancy_eliminated() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let a = Operand::Reg(fb.param(0));
        let b = Operand::Reg(fb.param(1));
        let x = fb.add(a, b);
        let y = fb.add(a, b); // redundant
        let s = fb.mul(Operand::Reg(x), Operand::Reg(y));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        assert!(Gvn.run(&mut f));
        assert_eq!(f.block(f.entry).insts[1], Instr::mov(y, Operand::Reg(x)));
    }

    #[test]
    fn commutative_operands_normalized() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let a = Operand::Reg(fb.param(0));
        let b = Operand::Reg(fb.param(1));
        let x = fb.add(a, b);
        let y = fb.add(b, a); // commuted duplicate
        let s = fb.sub(Operand::Reg(x), Operand::Reg(y));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        assert!(Gvn.run(&mut f));
        assert_eq!(f.block(f.entry).insts[1].op, Opcode::Mov);
    }

    #[test]
    fn redefinition_blocks_reuse() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let p0 = fb.param(0);
        let x = fb.add(Operand::Reg(p0), Operand::Imm(1));
        fb.mov_to(p0, Operand::Imm(5)); // p0 changes
        let y = fb.add(Operand::Reg(p0), Operand::Imm(1)); // NOT redundant
        let s = fb.mul(Operand::Reg(x), Operand::Reg(y));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        Gvn.run(&mut f);
        assert_eq!(f.block(f.entry).insts[2].op, Opcode::Add);
    }

    #[test]
    fn loads_separated_by_store_not_merged() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let a = fb.load(Operand::Imm(0));
        fb.store(Operand::Imm(0), Operand::Imm(9));
        let b = fb.load(Operand::Imm(0)); // must re-load
        let s = fb.add(Operand::Reg(a), Operand::Reg(b));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        Gvn.run(&mut f);
        assert_eq!(f.block(f.entry).insts[2].op, Opcode::Load);
    }

    #[test]
    fn repeated_loads_merged() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let a = fb.load(Operand::Imm(0));
        let b = fb.load(Operand::Imm(0)); // same epoch: redundant
        let s = fb.add(Operand::Reg(a), Operand::Reg(b));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        assert!(Gvn.run(&mut f));
        assert_eq!(f.block(f.entry).insts[1].op, Opcode::Mov);
    }

    #[test]
    fn predicated_reuses_unpredicated_value() {
        use chf_ir::instr::Pred;
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let a = Operand::Reg(fb.param(0));
        let x = fb.add(a, Operand::Imm(3));
        let p = fb.cmp_ne(Operand::Reg(fb.param(1)), Operand::Imm(0));
        let y = fb.fresh_reg();
        fb.push(Instr::add(y, a, Operand::Imm(3)).predicated(Pred::on_true(p)));
        let s = fb.add(Operand::Reg(x), Operand::Reg(y));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        assert!(Gvn.run(&mut f));
        let inst = &f.block(f.entry).insts[2];
        assert_eq!(inst.op, Opcode::Mov);
        assert!(inst.pred.is_some(), "guard must be preserved");
    }

    #[test]
    fn global_invariant_reused_across_blocks() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        let next = fb.create_block();
        fb.switch_to(e);
        let a = Operand::Reg(fb.param(0));
        let b = Operand::Reg(fb.param(1));
        let x = fb.mul(a, b);
        fb.jump(next);
        fb.switch_to(next);
        let y = fb.mul(a, b); // invariant, dominated by def of x
        let s = fb.add(Operand::Reg(x), Operand::Reg(y));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        assert!(Gvn.run(&mut f));
        assert_eq!(f.block(BlockId(1)).insts[0], Instr::mov(y, Operand::Reg(x)));
    }

    #[test]
    fn loop_variant_not_merged_globally() {
        // i changes per iteration: add inside loop must not reuse the one
        // outside.
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let body = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        let pre = fb.add(Operand::Reg(i), Operand::Imm(1));
        let _ = pre;
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(Operand::Reg(i), Operand::Reg(fb.param(0)));
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let i2 = fb.add(Operand::Reg(i), Operand::Imm(1)); // variant!
        fb.mov_to(i, Operand::Reg(i2));
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(Operand::Reg(i)));
        let mut f = fb.build().unwrap();
        Gvn.run(&mut f);
        assert_eq!(f.block(body).insts[0].op, Opcode::Add);
    }

    #[test]
    fn behaviour_preserved_on_random_programs() {
        crate::testutil::assert_preserves_behaviour(
            |f| {
                Gvn.run(f);
            },
            0..60,
        );
    }
}
