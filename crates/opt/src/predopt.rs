//! Predicate optimizations (dataflow predication, the paper's \[25\]).
//!
//! Three rewrites over predicated blocks:
//!
//! 1. **Instruction merging** — identical instructions guarded by
//!    complementary predicates (`[p] X` / `[!p] X`) collapse to a single
//!    unpredicated `X`. This is the paper's example of an optimization
//!    "difficult to express in the control-flow domain": the two copies come
//!    from different control-flow paths that if-conversion put side by side.
//!
//! 2. **Predicate constant folding** — an instruction whose predicate
//!    register provably holds a constant either drops its guard (always
//!    executes) or disappears (never executes).
//!
//! 3. **Exit simplification** — exits with constant predicates are removed
//!    (never taken) or become the new default (always taken, making later
//!    exits unreachable). This implements branch removal inside hyperblocks.

use crate::Pass;
use chf_ir::block::Block;
use chf_ir::function::Function;
use chf_ir::fxhash::FxHashMap;
use chf_ir::ids::Reg;
use chf_ir::instr::{Instr, Opcode, Operand};

/// The predicate-optimization pass.
#[derive(Debug, Default)]
pub struct PredOpt;

/// Two instructions are mergeable if their bodies are identical and their
/// predicates are complementary.
fn mergeable(a: &Instr, b: &Instr) -> bool {
    if a.op != b.op || a.dst != b.dst || a.a != b.a || a.b != b.b {
        return false;
    }
    match (a.pred, b.pred) {
        (Some(pa), Some(pb)) => pa.is_complement_of(pb),
        _ => false,
    }
}

/// Registers touched (defined) by `inst`.
fn defines(inst: &Instr, r: Reg) -> bool {
    inst.def() == Some(r)
}

/// Whether any instruction in `insts[i+1..j]` invalidates merging `insts[i]`
/// with `insts[j]`: redefining an operand, the destination, or the predicate
/// register — or, for loads, writing memory.
fn merge_blocked(insts: &[Instr], i: usize, j: usize) -> bool {
    let subject = &insts[i];
    let mut watched: Vec<Reg> = subject.uses().collect();
    watched.extend(subject.def());
    let is_load = subject.op == Opcode::Load;
    let is_store = subject.op == Opcode::Store;
    for inst in &insts[i + 1..j] {
        if watched.iter().any(|r| defines(inst, *r)) {
            return true;
        }
        if (is_load || is_store) && inst.op == Opcode::Store {
            return true;
        }
    }
    false
}

fn merge_complementary(blk: &mut Block) -> bool {
    let mut changed = false;
    'restart: loop {
        let n = blk.insts.len();
        for i in 0..n {
            if blk.insts[i].pred.is_none() {
                continue;
            }
            for j in i + 1..n {
                if mergeable(&blk.insts[i], &blk.insts[j]) && !merge_blocked(&blk.insts, i, j) {
                    blk.insts[i].pred = None;
                    blk.insts.remove(j);
                    changed = true;
                    continue 'restart;
                }
            }
        }
        return changed;
    }
}

/// Constant values of registers at each point, from unpredicated
/// `mov reg, #imm` instructions (invalidated on redefinition).
fn fold_predicates(blk: &mut Block) -> bool {
    let mut consts: FxHashMap<Reg, i64> = FxHashMap::default();
    let mut changed = false;
    let mut keep: Vec<bool> = Vec::with_capacity(blk.insts.len());

    for inst in &mut blk.insts {
        // Resolve this instruction's predicate if constant.
        let mut retain = true;
        if let Some(p) = inst.pred {
            if let Some(&v) = consts.get(&p.reg) {
                if (v != 0) == p.if_true {
                    inst.pred = None;
                } else {
                    retain = false; // never executes
                }
                changed = true;
            }
        }
        keep.push(retain);
        if !retain {
            continue;
        }
        if let Some(d) = inst.def() {
            consts.remove(&d);
            if inst.op == Opcode::Mov && inst.pred.is_none() {
                if let Some(Operand::Imm(v)) = inst.a {
                    consts.insert(d, v);
                }
            }
        }
    }

    if keep.iter().any(|k| !k) {
        let mut idx = 0;
        blk.insts.retain(|_| {
            let k = keep[idx];
            idx += 1;
            k
        });
    }

    // Exit simplification with the block-final constant environment.
    let mut new_exits = Vec::with_capacity(blk.exits.len());
    let mut truncated = false;
    for e in &blk.exits {
        let mut e = *e;
        match e.pred {
            Some(p) => match consts.get(&p.reg) {
                Some(&v) if (v != 0) == p.if_true => {
                    // Always taken: becomes the default; drop the rest.
                    e.pred = None;
                    new_exits.push(e);
                    truncated = true;
                    changed = true;
                    break;
                }
                Some(_) => {
                    // Never taken: drop this exit.
                    changed = true;
                }
                None => new_exits.push(e),
            },
            None => {
                new_exits.push(e);
                truncated = true;
                break;
            }
        }
    }
    debug_assert!(truncated, "default exit must remain");
    if new_exits.len() != blk.exits.len() || changed {
        blk.exits = new_exits;
    }
    changed
}

/// Run the predicate optimizations over one block: complementary-instruction
/// merging, predicate constant folding, and exit deduplication. Block-scoped
/// entry point for formation's trial optimizer; unlike the [`Pass`], it does
/// *not* remove blocks that become unreachable (the trial must not mutate
/// blocks outside its snapshot).
pub fn optimize_block(blk: &mut Block) -> bool {
    let mut changed = false;
    changed |= merge_complementary(blk);
    changed |= fold_predicates(blk);
    changed |= blk.dedupe_exits();
    changed
}

impl Pass for PredOpt {
    fn name(&self) -> &'static str {
        "predopt"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let mut changed = false;
        let ids: Vec<_> = f.block_ids().collect();
        for b in ids {
            changed |= optimize_block(f.block_mut(b));
        }
        if changed {
            chf_ir::cfg::remove_unreachable(f);
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::Pred;

    #[test]
    fn complementary_instructions_merge() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let p = fb.cmp_ne(Operand::Reg(fb.param(1)), Operand::Imm(0));
        let out = fb.fresh_reg();
        fb.push(
            Instr::add(out, Operand::Reg(fb.param(0)), Operand::Imm(1))
                .predicated(Pred::on_true(p)),
        );
        fb.push(
            Instr::add(out, Operand::Reg(fb.param(0)), Operand::Imm(1))
                .predicated(Pred::on_false(p)),
        );
        fb.ret(Some(Operand::Reg(out)));
        let mut f = fb.build().unwrap();
        assert!(PredOpt.run(&mut f));
        let insts = &f.block(f.entry).insts;
        assert_eq!(insts.len(), 2);
        assert!(insts[1].pred.is_none());
    }

    #[test]
    fn merge_blocked_by_intervening_def() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let p0 = fb.param(0);
        let p = fb.cmp_ne(Operand::Reg(fb.param(1)), Operand::Imm(0));
        let out = fb.fresh_reg();
        fb.push(Instr::add(out, Operand::Reg(p0), Operand::Imm(1)).predicated(Pred::on_true(p)));
        fb.mov_to(p0, Operand::Imm(7)); // operand changes between the pair
        fb.push(Instr::add(out, Operand::Reg(p0), Operand::Imm(1)).predicated(Pred::on_false(p)));
        fb.ret(Some(Operand::Reg(out)));
        let mut f = fb.build().unwrap();
        PredOpt.run(&mut f);
        assert_eq!(f.block(f.entry).insts.len(), 4, "must not merge");
    }

    #[test]
    fn complementary_stores_merge() {
        let mut fb = FunctionBuilder::new("f", 2);
        let e = fb.create_block();
        fb.switch_to(e);
        let p = fb.cmp_ne(Operand::Reg(fb.param(1)), Operand::Imm(0));
        fb.push(
            Instr::store(Operand::Imm(3), Operand::Reg(fb.param(0))).predicated(Pred::on_true(p)),
        );
        fb.push(
            Instr::store(Operand::Imm(3), Operand::Reg(fb.param(0))).predicated(Pred::on_false(p)),
        );
        fb.ret(None);
        let mut f = fb.build().unwrap();
        assert!(PredOpt.run(&mut f));
        let insts = &f.block(f.entry).insts;
        // cmp may remain (dce's job); the two stores must be one.
        assert_eq!(insts.iter().filter(|i| i.op == Opcode::Store).count(), 1);
    }

    #[test]
    fn constant_predicate_drops_guard() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let t = fb.mov(Operand::Imm(1));
        let out = fb.fresh_reg();
        fb.push(Instr::mov(out, Operand::Imm(5)).predicated(Pred::on_true(t)));
        fb.ret(Some(Operand::Reg(out)));
        let mut f = fb.build().unwrap();
        assert!(PredOpt.run(&mut f));
        assert!(f.block(f.entry).insts[1].pred.is_none());
    }

    #[test]
    fn never_executing_instruction_removed() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let t = fb.mov(Operand::Imm(0));
        let out = fb.mov(Operand::Imm(7));
        fb.push(Instr::mov(out, Operand::Imm(5)).predicated(Pred::on_true(t)));
        fb.ret(Some(Operand::Reg(out)));
        let mut f = fb.build().unwrap();
        assert!(PredOpt.run(&mut f));
        assert_eq!(f.block(f.entry).insts.len(), 2);
    }

    #[test]
    fn constant_exit_simplifies_cfg() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let a = fb.create_block();
        let b = fb.create_block();
        fb.switch_to(e);
        let t = fb.mov(Operand::Imm(1));
        fb.branch(t, a, b);
        fb.switch_to(a);
        fb.ret(Some(Operand::Imm(1)));
        fb.switch_to(b);
        fb.ret(Some(Operand::Imm(0)));
        let mut f = fb.build().unwrap();
        assert!(PredOpt.run(&mut f));
        assert_eq!(f.block(f.entry).exits.len(), 1);
        assert!(f.block(f.entry).exits[0].pred.is_none());
        // b is now unreachable and removed.
        assert!(!f.contains_block(b));
    }

    #[test]
    fn behaviour_preserved_on_random_programs() {
        crate::testutil::assert_preserves_behaviour(
            |f| {
                PredOpt.run(f);
            },
            0..40,
        );
    }
}
