#![warn(missing_docs)]
//! # chf-opt — scalar optimizations for hyperblock formation
//!
//! The `Optimize` step of the paper's `MergeBlocks` procedure (§4.2):
//! after each trial merge, the compiler "attempts to eliminate instructions
//! in the merged block" using *dominator-based global value numbering* and
//! *predicate optimizations* so the merged block fits the structural
//! constraints more often. This crate provides those passes plus the
//! classical cleanups they rely on:
//!
//! * [`constfold`] — constant folding and algebraic simplification;
//! * [`copyprop`] — predicate-aware copy propagation within blocks;
//! * [`gvn`] — local value numbering (predicate- and memory-aware) and
//!   dominator-scoped global value numbering over single-def registers;
//! * [`predopt`] — instruction merging across complementary predicates and
//!   predicate constant folding (from the dataflow-predication work the
//!   paper cites as \[25\]);
//! * [`strength`] — strength reduction (multiplies/divides by powers of two
//!   become shifts and masks, shortening dataflow chains);
//! * [`jumpthread`] — bypassing of empty forwarding blocks;
//! * [`dce`] — liveness-based dead-code elimination.
//!
//! All passes implement [`Pass`]; [`optimize`] runs the standard fixpoint
//! pipeline the convergent formation loop invokes after every merge.
//!
//! Every pass preserves observable behaviour (return value and final memory
//! image); the test suite enforces this over thousands of generated
//! programs.

use chf_ir::function::Function;

pub mod constfold;
pub mod copyprop;
pub mod dce;
pub mod gvn;
pub mod jumpthread;
pub mod predopt;
pub mod strength;

/// A scalar optimization pass.
pub trait Pass {
    /// Diagnostic name of the pass.
    fn name(&self) -> &'static str;

    /// Run over `f`; returns `true` if anything changed.
    fn run(&mut self, f: &mut Function) -> bool;
}

/// Runs a sequence of passes to a fixpoint (bounded by `max_rounds`).
pub struct PassManager {
    passes: Vec<Box<dyn Pass>>,
    max_rounds: usize,
}

impl PassManager {
    /// A pass manager over the given passes.
    pub fn new(passes: Vec<Box<dyn Pass>>) -> Self {
        PassManager {
            passes,
            max_rounds: 16,
        }
    }

    /// The standard pipeline used by convergent hyperblock formation.
    pub fn standard() -> Self {
        Self::new(vec![
            Box::new(constfold::ConstFold),
            Box::new(strength::Strength),
            Box::new(copyprop::CopyProp),
            Box::new(gvn::Gvn),
            Box::new(predopt::PredOpt),
            Box::new(jumpthread::JumpThread),
            Box::new(dce::Dce),
        ])
    }

    /// Limit fixpoint iteration.
    pub fn with_max_rounds(mut self, rounds: usize) -> Self {
        self.max_rounds = rounds;
        self
    }

    /// Run all passes repeatedly until none changes anything (or the round
    /// budget is exhausted). Returns the number of rounds executed.
    pub fn run(&mut self, f: &mut Function) -> usize {
        for round in 0..self.max_rounds {
            let mut changed = false;
            for p in &mut self.passes {
                let c = p.run(f);
                debug_assert!(
                    chf_ir::verify::verify(f).is_ok(),
                    "pass {} broke the IR:\n{f}",
                    p.name()
                );
                changed |= c;
            }
            if !changed {
                return round + 1;
            }
        }
        self.max_rounds
    }
}

/// Run the standard scalar-optimization fixpoint over `f`.
///
/// This is the `Optimize` call of the paper's Figure 5.
pub fn optimize(f: &mut Function) {
    PassManager::standard().run(f);
}

/// A cheaper variant for the inner loop of convergent formation: two rounds
/// of the standard pipeline, which removes the redundancy a single merge
/// introduces without iterating to a full fixpoint. The formation driver
/// runs the full [`optimize`] once at the end.
pub fn optimize_quick(f: &mut Function) {
    PassManager::standard().with_max_rounds(2).run(f);
}

/// Block-scoped counterpart of [`optimize_quick`]: two rounds of the
/// standard pipeline restricted to block `b`. Analyses that must be global
/// to stay sound (liveness for DCE, dominators/invariants for global GVN)
/// are still computed over the whole function, but **only `b` is mutated**.
///
/// This is the trial optimizer of convergent formation's in-place
/// trial/commit path: a merge trial optimizes just the merged block to
/// decide whether it fits the structural constraints, and the decision must
/// not disturb any block outside the trial's snapshot (rollback restores
/// only the snapshot). The whole-function [`optimize_quick`] then runs once
/// per *committed* merge, not once per trial.
pub fn optimize_block_quick(f: &mut Function, b: chf_ir::ids::BlockId) {
    // Purely local rounds first (no whole-function analyses), then one
    // global round: scoped global value numbering, exit threading, and
    // liveness-based DCE, followed by a final local cleanup of whatever
    // the global round exposed. This mirrors what two full pipeline rounds
    // achieve on the merged block while computing the expensive global
    // analyses (dominators, loop forest, liveness) once instead of twice.
    let local = |f: &mut Function| {
        let mut changed = false;
        changed |= constfold::fold_block(f.block_mut(b));
        changed |= strength::reduce_block(f.block_mut(b));
        changed |= copyprop::propagate_block(f.block_mut(b));
        changed |= gvn::value_number_block(f.block_mut(b));
        changed |= predopt::optimize_block(f.block_mut(b));
        changed
    };
    for _ in 0..2 {
        if !local(f) {
            break;
        }
    }
    let mut changed = false;
    changed |= gvn::run_global_scoped(f, Some(b));
    changed |= jumpthread::thread_block_exits(f, b);
    changed |= dce::eliminate_in_block(f, b);
    if changed {
        local(f);
        dce::eliminate_in_block(f, b);
    }
    debug_assert!(
        chf_ir::verify::verify(f).is_ok(),
        "block-scoped optimization broke the IR:\n{f}"
    );
}

#[cfg(test)]
pub(crate) mod testutil {
    use chf_ir::function::Function;
    use chf_ir::testgen::{generate, GenConfig};
    use chf_sim::functional::{run, RunConfig};

    /// Assert that `transform` preserves observable behaviour on a swarm of
    /// generated programs and inputs.
    pub fn assert_preserves_behaviour(
        transform: impl Fn(&mut Function),
        seeds: std::ops::Range<u64>,
    ) {
        let cfg = GenConfig::default();
        for seed in seeds {
            let f0 = generate(seed, &cfg);
            let mut f1 = f0.clone();
            transform(&mut f1);
            chf_ir::verify::verify(&f1).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{f1}"));
            for args in [[0, 0], [1, 7], [13, 5], [100, 255], [-9, 3]] {
                let r0 = run(&f0, &args, &[], &RunConfig::default()).unwrap();
                let r1 = run(&f1, &args, &[], &RunConfig::default()).unwrap();
                assert_eq!(
                    r0.digest(),
                    r1.digest(),
                    "behaviour changed: seed {seed}, args {args:?}\nBEFORE:\n{f0}\nAFTER:\n{f1}"
                );
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn standard_pipeline_preserves_behaviour() {
        testutil::assert_preserves_behaviour(optimize, 0..60);
    }

    #[test]
    fn optimize_is_idempotent_on_generated_programs() {
        use chf_ir::testgen::{generate, GenConfig};
        for seed in 0..20 {
            let mut f = generate(seed, &GenConfig::default());
            optimize(&mut f);
            let once = f.to_string();
            optimize(&mut f);
            assert_eq!(once, f.to_string(), "seed {seed}");
        }
    }

    #[test]
    fn optimize_shrinks_code() {
        use chf_ir::testgen::{generate, GenConfig};
        let mut total_before = 0usize;
        let mut total_after = 0usize;
        for seed in 0..30 {
            let mut f = generate(seed, &GenConfig::default());
            total_before += f.static_size();
            optimize(&mut f);
            total_after += f.static_size();
        }
        assert!(
            total_after < total_before,
            "optimizer should remove instructions overall: {total_after} !< {total_before}"
        );
    }
}
