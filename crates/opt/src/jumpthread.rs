//! Jump threading: bypass empty forwarding blocks.
//!
//! CFG surgery (duplication, exit deduplication, DCE) can leave blocks that
//! contain no instructions and a single unconditional exit. Threading their
//! predecessors directly to the destination removes a dynamic block
//! execution per visit — on TRIPS that is a whole fetch/map/commit round,
//! so this cleanup directly serves the paper's block-count metric.

use crate::Pass;
use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::ids::BlockId;

/// The jump-threading pass.
#[derive(Debug, Default)]
pub struct JumpThread;

/// The forwarding target of `b`, if `b` is an empty unconditional block.
fn forward_target(f: &Function, b: BlockId) -> Option<BlockId> {
    let blk = f.block(b);
    if !blk.insts.is_empty() || blk.exits.len() != 1 {
        return None;
    }
    match blk.exits[0].target {
        ExitTarget::Block(t) if t != b => Some(t),
        _ => None,
    }
}

/// Thread the exits of block `b` past empty forwarding blocks, mutating only
/// `b` itself. Block-scoped entry point for formation's trial optimizer: the
/// forwarders are left in place (they may still have other predecessors, and
/// the trial must not mutate blocks outside its snapshot).
pub fn thread_block_exits(f: &mut Function, b: BlockId) -> bool {
    let targets: Vec<BlockId> = f
        .block(b)
        .exits
        .iter()
        .filter_map(|e| e.target.block())
        .collect();
    let mut resolved: chf_ir::fxhash::FxHashMap<BlockId, BlockId> =
        chf_ir::fxhash::FxHashMap::default();
    for t in targets {
        if resolved.contains_key(&t) {
            continue;
        }
        let mut seen = vec![t];
        let mut cur = t;
        while let Some(n) = forward_target(f, cur) {
            if seen.contains(&n) {
                break; // cycle of empty blocks
            }
            seen.push(n);
            cur = n;
        }
        if cur != t && forward_target(f, t).is_some() {
            resolved.insert(t, cur);
        }
    }
    if resolved.is_empty() {
        return false;
    }
    let mut changed = false;
    for e in &mut f.block_mut(b).exits {
        if let ExitTarget::Block(t) = e.target {
            if let Some(&dst) = resolved.get(&t) {
                e.target = ExitTarget::Block(dst);
                changed = true;
            }
        }
    }
    changed
}

impl Pass for JumpThread {
    fn name(&self) -> &'static str {
        "jumpthread"
    }

    fn run(&mut self, f: &mut Function) -> bool {
        let mut changed = false;
        // Resolve forwarding chains (with a visited set so a cycle of empty
        // blocks does not loop forever).
        let ids: Vec<BlockId> = f.block_ids().collect();
        let mut resolved: chf_ir::fxhash::FxHashMap<BlockId, BlockId> =
            chf_ir::fxhash::FxHashMap::default();
        for &b in &ids {
            let mut seen = vec![b];
            let mut cur = b;
            while let Some(t) = forward_target(f, cur) {
                if seen.contains(&t) {
                    break; // cycle of empty blocks
                }
                seen.push(t);
                cur = t;
            }
            if cur != b && forward_target(f, b).is_some() {
                resolved.insert(b, cur);
            }
        }
        if resolved.is_empty() {
            return false;
        }
        for &b in &ids {
            let blk = f.block_mut(b);
            for e in &mut blk.exits {
                if let ExitTarget::Block(t) = e.target {
                    if let Some(&dst) = resolved.get(&t) {
                        // Do not thread a block into itself via its own
                        // forwarding (b might be the forwarder).
                        e.target = ExitTarget::Block(dst);
                        changed = true;
                    }
                }
            }
        }
        if changed {
            // Entry may itself forward; keep it (it cannot be removed), but
            // drop newly unreachable forwarders.
            chf_ir::cfg::remove_unreachable(f);
        }
        changed
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::Operand;
    use chf_ir::verify::verify;

    #[test]
    fn threads_through_empty_block() {
        // e -> fwd -> target
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let fwd = fb.create_block();
        let target = fb.create_block();
        fb.switch_to(e);
        let x = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        fb.jump(fwd);
        fb.switch_to(fwd);
        fb.jump(target);
        fb.switch_to(target);
        fb.ret(Some(Operand::Reg(x)));
        let mut f = fb.build().unwrap();
        assert!(JumpThread.run(&mut f));
        verify(&f).unwrap();
        assert!(!f.contains_block(fwd), "forwarder should be removed");
        assert!(f.block(e).successors().any(|s| s == target));
    }

    #[test]
    fn threads_chains() {
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        let f1 = fb.create_block();
        let f2 = fb.create_block();
        let t = fb.create_block();
        fb.switch_to(e);
        fb.jump(f1);
        fb.switch_to(f1);
        fb.jump(f2);
        fb.switch_to(f2);
        fb.jump(t);
        fb.switch_to(t);
        fb.ret(None);
        let mut f = fb.build().unwrap();
        assert!(JumpThread.run(&mut f));
        assert_eq!(f.block_count(), 2);
        assert!(f.block(e).successors().any(|s| s == t));
    }

    #[test]
    fn leaves_nonempty_blocks_alone() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let mid = fb.create_block();
        let t = fb.create_block();
        fb.switch_to(e);
        fb.jump(mid);
        fb.switch_to(mid);
        let x = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        let _ = x;
        fb.jump(t);
        fb.switch_to(t);
        fb.ret(None);
        let mut f = fb.build().unwrap();
        assert!(!JumpThread.run(&mut f));
        assert_eq!(f.block_count(), 3);
    }

    #[test]
    fn tolerates_empty_cycles() {
        // Two empty blocks jumping at each other (an infinite loop the
        // program may never reach) must not hang the pass.
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        let a = fb.create_block();
        let b = fb.create_block();
        let out = fb.create_block();
        fb.switch_to(e);
        let c = fb.cmp_gt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        fb.branch(c, out, a);
        fb.switch_to(a);
        fb.jump(b);
        fb.switch_to(b);
        fb.jump(a);
        fb.switch_to(out);
        fb.ret(None);
        let mut f = fb.build().unwrap();
        JumpThread.run(&mut f); // must terminate
        verify(&f).unwrap();
    }

    #[test]
    fn reduces_dynamic_block_counts() {
        use chf_sim::functional::{run, RunConfig};
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        let h = fb.create_block();
        let fwd = fb.create_block();
        let body = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(Operand::Reg(i), Operand::Imm(50));
        fb.branch(c, fwd, x);
        fb.switch_to(fwd);
        fb.jump(body);
        fb.switch_to(body);
        let i2 = fb.add(Operand::Reg(i), Operand::Imm(1));
        fb.mov_to(i, Operand::Reg(i2));
        fb.jump(h);
        fb.switch_to(x);
        fb.ret(Some(Operand::Reg(i)));
        let mut f = fb.build().unwrap();
        let before = run(&f, &[], &[], &RunConfig::default()).unwrap();
        assert!(JumpThread.run(&mut f));
        let after = run(&f, &[], &[], &RunConfig::default()).unwrap();
        assert_eq!(before.digest(), after.digest());
        assert!(after.blocks_executed + 50 <= before.blocks_executed);
    }

    #[test]
    fn behaviour_preserved_on_random_programs() {
        crate::testutil::assert_preserves_behaviour(
            |f| {
                JumpThread.run(f);
            },
            0..40,
        );
    }
}
