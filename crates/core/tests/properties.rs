//! Property-based tests over convergent hyperblock formation: behaviour
//! preservation and constraint conformance under arbitrary programs,
//! inputs, policies, and configuration knobs.

use chf_core::constraints::BlockConstraints;
use chf_core::convergent::{form_hyperblocks_with_profile, FormationConfig};
use chf_core::policy::PolicyKind;
use chf_ir::testgen::{generate, GenConfig};
use chf_ir::verify::verify;
use chf_sim::functional::{profile_run, run, RunConfig};
use proptest::prelude::*;

fn policy_by_index(i: usize) -> PolicyKind {
    match i {
        0 => PolicyKind::BreadthFirst,
        1 => PolicyKind::BreadthFirstLookahead,
        2 => PolicyKind::DepthFirst,
        _ => PolicyKind::Vliw,
    }
}

fn formation_config() -> impl Strategy<Value = FormationConfig> {
    (
        24usize..128,
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        any::<bool>(),
        8usize..64,
    )
        .prop_map(
            |(max_insts, head, tail, iterative, speculation, tail_limit)| FormationConfig {
                constraints: BlockConstraints {
                    max_insts,
                    headroom_percent: 0,
                    ..BlockConstraints::trips()
                },
                head_duplication: head,
                tail_duplication: tail,
                iterative_opt: iterative,
                trip_aware_unroll: true,
                speculation,
                max_tail_dup_size: tail_limit,
                max_merges_per_block: 32,
                ..FormationConfig::default()
            },
        )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// Formation preserves observable behaviour for every policy and any
    /// combination of configuration knobs.
    #[test]
    fn formation_preserves_behaviour(
        seed in any::<u64>(),
        policy_idx in 0usize..4,
        config in formation_config(),
        a in -50i64..50,
        b in -50i64..50,
    ) {
        let mut f = generate(seed, &GenConfig::default());
        let profile = profile_run(&f, &[3, 7], &[]).unwrap();
        profile.apply(&mut f);
        let orig = f.clone();
        let mut policy = policy_by_index(policy_idx).instantiate();
        form_hyperblocks_with_profile(&mut f, policy.as_mut(), &config, Some(&profile));
        prop_assert!(verify(&f).is_ok(), "formation broke the IR:\n{f}");
        let r0 = run(&orig, &[a, b], &[], &RunConfig::default()).unwrap();
        let r1 = run(&f, &[a, b], &[], &RunConfig::default()).unwrap();
        prop_assert_eq!(r0.digest(), r1.digest());
    }

    /// Formed blocks respect the size constraint they were given.
    #[test]
    fn formation_respects_size_constraint(
        seed in any::<u64>(),
        max_insts in 24usize..96,
    ) {
        let mut f = generate(seed, &GenConfig::default());
        let profile = profile_run(&f, &[3, 7], &[]).unwrap();
        profile.apply(&mut f);
        let config = FormationConfig {
            constraints: BlockConstraints {
                max_insts,
                headroom_percent: 0,
                ..BlockConstraints::trips()
            },
            ..FormationConfig::default()
        };
        let pre_max = f.blocks().map(|(_, b)| b.size()).max().unwrap_or(0);
        let mut policy = PolicyKind::BreadthFirst.instantiate();
        form_hyperblocks_with_profile(&mut f, policy.as_mut(), &config, Some(&profile));
        for (b, blk) in f.blocks() {
            // Blocks that were already over the limit before formation are
            // the backend splitter's job; formation must not create new
            // violations.
            prop_assert!(
                blk.size() <= max_insts.max(pre_max),
                "block {} has {} slots (limit {})",
                b,
                blk.size(),
                max_insts
            );
        }
    }

    /// Formation never increases the dynamic block count.
    #[test]
    fn formation_never_increases_dynamic_blocks(seed in any::<u64>()) {
        let mut f = generate(seed, &GenConfig::default());
        let profile = profile_run(&f, &[3, 7], &[]).unwrap();
        profile.apply(&mut f);
        let orig = f.clone();
        let mut policy = PolicyKind::BreadthFirst.instantiate();
        form_hyperblocks_with_profile(
            &mut f,
            policy.as_mut(),
            &FormationConfig::default(),
            Some(&profile),
        );
        let r0 = run(&orig, &[3, 7], &[], &RunConfig::default()).unwrap();
        let r1 = run(&f, &[3, 7], &[], &RunConfig::default()).unwrap();
        prop_assert!(
            r1.blocks_executed <= r0.blocks_executed,
            "{} > {}",
            r1.blocks_executed,
            r0.blocks_executed
        );
    }

    /// The whole compile pipeline (any ordering) preserves behaviour — the
    /// umbrella property the evaluation harness relies on.
    #[test]
    fn pipeline_preserves_behaviour(
        seed in any::<u64>(),
        ordering_idx in 0usize..5,
        a in -50i64..50,
    ) {
        use chf_core::pipeline::{compile, CompileConfig, PhaseOrdering};
        let ordering = [
            PhaseOrdering::BasicBlocks,
            PhaseOrdering::Upio,
            PhaseOrdering::Iupo,
            PhaseOrdering::IupThenO,
            PhaseOrdering::Iupo_,
        ][ordering_idx];
        let f = generate(seed, &GenConfig::default());
        let profile = profile_run(&f, &[3, 7], &[]).unwrap();
        let c = compile(&f, &profile, &CompileConfig::with_ordering(ordering));
        prop_assert!(verify(&c.function).is_ok());
        let r0 = run(&f, &[a, 9], &[], &RunConfig::default()).unwrap();
        let r1 = run(&c.function, &[a, 9], &[], &RunConfig::default()).unwrap();
        prop_assert_eq!(r0.digest(), r1.digest());
    }
}
