//! Property: fault injection never aborts the process. For arbitrary
//! seeds, a campaign of injected faults (IR corruption, profile
//! corruption, mid-trial corruption) must classify every fault as
//! detected, rolled back, or survived — with zero escapes (panics) and
//! zero undetected miscompiles.

use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn injected_faults_are_contained(seed in any::<u64>()) {
        let report = chf_core::chaos::campaign(seed, 5, None);
        prop_assert!(
            report.ok(),
            "campaign under seed {seed} escaped containment: {report}"
        );
    }

    /// The fault stream is a pure function of the seed: re-running a
    /// campaign reproduces its classification exactly (the property that
    /// makes `CHF_FAULT_SEED` a usable bug report).
    #[test]
    fn campaigns_are_replayable(seed in any::<u64>()) {
        let a = chf_core::chaos::campaign(seed, 3, None);
        let b = chf_core::chaos::campaign(seed, 3, None);
        prop_assert_eq!(
            (a.detected, a.rolled_back, a.survived, a.aborts, a.miscompiles),
            (b.detected, b.rolled_back, b.survived, b.aborts, b.miscompiles)
        );
    }
}
