//! Properties of the profile-guided policy layer.
//!
//! 1. **Uniform-profile equivalence**: with no profile signal (all edge
//!    weights zero), the hot-first policy's scores tie at 0.0 and its
//!    `(depth, order)` tie-break *is* breadth-first — so formation under
//!    hot-first must be byte-identical to breadth-first, transform counts
//!    included. This pins the fallback contract that makes `HF` safe to
//!    run on unprofiled code.
//! 2. **Ledger containment**: for arbitrary programs and caps, the trial
//!    ledger never overruns its budget, and formation under a binding
//!    budget still preserves behaviour.

use chf_core::convergent::{form_hyperblocks, FormationConfig, SeedOrder};
use chf_core::policy::{BreadthFirst, HotFirst};
use chf_ir::testgen::{generate, GenConfig};
use chf_sim::functional::run;
use chf_sim::functional::RunConfig;
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn hot_first_equals_breadth_first_without_profile(seed in any::<u64>()) {
        let base = generate(seed, &GenConfig::default());
        // No profile applied: every block freq and edge count stays 0, the
        // "uniform" case. Run both policies with their pipeline-matched
        // seed orders (which also coincide at weight 0).
        let mut bf = base.clone();
        let bf_stats = form_hyperblocks(&mut bf, &mut BreadthFirst, &FormationConfig::default());
        let mut hf = base.clone();
        let hf_config = FormationConfig {
            seed_order: SeedOrder::HotFirst,
            ..FormationConfig::default()
        };
        let hf_stats = form_hyperblocks(&mut hf, &mut HotFirst, &hf_config);
        prop_assert_eq!(
            bf_stats.mtup(),
            hf_stats.mtup(),
            "transform counts diverged on seed {}",
            seed
        );
        prop_assert_eq!(
            format!("{bf}"),
            format!("{hf}"),
            "formed functions diverged on seed {}",
            seed
        );
    }

    #[test]
    fn trial_ledger_never_overruns(seed in any::<u64>(), cap in 0usize..24) {
        let mut f = generate(seed, &GenConfig::default());
        let orig = f.clone();
        let config = FormationConfig {
            trial_budget: Some(cap),
            ..FormationConfig::default()
        };
        let stats = form_hyperblocks(&mut f, &mut BreadthFirst, &config);
        prop_assert!(
            stats.trials <= cap,
            "seed {}: {} trials exceed cap {}",
            seed,
            stats.trials,
            cap
        );
        chf_ir::verify::verify(&f)
            .map_err(|e| TestCaseError::fail(format!("seed {seed}: {e}")))?;
        for args in [[3, 7], [0, 0], [-5, 11]] {
            let a = run(&orig, &args, &[], &RunConfig::default()).unwrap();
            let b = run(&f, &args, &[], &RunConfig::default()).unwrap();
            prop_assert_eq!(a.digest(), b.digest(), "seed {} args {:?}", seed, args);
        }
    }
}
