//! Head and tail duplication (paper §4.1, Figures 2–4).
//!
//! The paper's central observation is that tail duplication, loop peeling,
//! and loop unrolling are *one* CFG transformation applied in three
//! situations. To merge a successor `S` that has side entrances (other
//! predecessors, possibly including a loop back edge), the compiler:
//!
//! 1. copies `S` to `S'`;
//! 2. redirects the hyperblock's edge `HB → S` to `S'`;
//! 3. leaves `S'`'s exits pointing wherever `S`'s pointed.
//!
//! If `S` was an ordinary merge point, the result is classical **tail
//! duplication** (Figure 2). If `S` is a loop header reached by a loop-entry
//! edge, step 3 makes `S' → S` a loop entrance and the copy is a **peeled
//! iteration** (Figure 3). If `HB` *is* the loop (`HB → S` is its own back
//! edge), step 3 yields a fresh back edge `S' → S` and the copy is an
//! **unrolled iteration** (Figure 4) — and because the transformation
//! "saves the original loop body and appends one additional iteration at a
//! time", unrolling is not restricted to powers of two.
//!
//! After duplication, `S'` has exactly one predecessor and
//! [`crate::ifconvert::combine`] can fold it into `HB`.

use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::ids::BlockId;
use chf_ir::loops::LoopForest;

/// How a duplication is classified, for the paper's `m/t/u/p` statistics
/// and for policies that limit tail duplication.
#[derive(Copy, Clone, PartialEq, Eq, Debug)]
pub enum DuplicationKind {
    /// `S` had one predecessor; no copy was needed.
    None,
    /// `HB → S` is a back edge of the loop headed by `S` — the copy is an
    /// unrolled iteration (Figure 4).
    Unroll,
    /// `S` heads a loop and `HB → S` enters it — the copy is a peeled
    /// iteration (Figure 3).
    Peel,
    /// Classical tail duplication of a merge point (Figure 2).
    Tail,
}

/// Classify what merging `s` into `hb` requires, per Figure 5 lines 7–15.
pub fn classify(f: &Function, forest: &LoopForest, hb: BlockId, s: BlockId) -> DuplicationKind {
    if chf_ir::cfg::predecessor_count(f, s) == 1 && !forest.is_back_edge(hb, s) {
        return DuplicationKind::None;
    }
    if forest.is_back_edge(hb, s) {
        // Figure 5 line 10 names the self-loop case (`HB == S`); after prior
        // merges a multi-block loop body has collapsed into its header, so
        // any back edge from the hyperblock reaching a header it belongs to
        // is an unroll.
        return DuplicationKind::Unroll;
    }
    if forest.is_header(s) {
        return DuplicationKind::Peel;
    }
    DuplicationKind::Tail
}

/// Duplicate `s` so that `hb` gets a private copy: copy `s`, retarget every
/// `hb → s` exit to the copy, and rescale the profile so the copy carries
/// the flow that entered through `hb`.
///
/// Returns the id of the copy.
///
/// # Panics
/// Panics if `hb` has no exit targeting `s`.
pub fn duplicate_for_merge(f: &mut Function, hb: BlockId, s: BlockId) -> BlockId {
    let copy = f.duplicate_block(s);

    // Flow into the copy = profile flow along hb -> s.
    let inflow: f64 = f
        .block(hb)
        .exits
        .iter()
        .filter(|e| e.target == ExitTarget::Block(s))
        .map(|e| e.count)
        .sum();

    let retargeted = f.block_mut(hb).retarget_exits(s, copy);
    assert!(retargeted > 0, "no edge {hb} -> {s} to retarget");

    // Rescale profiles: the original keeps the remaining flow, the copy gets
    // the diverted flow, with exit counts split proportionally.
    let s_freq = f.block(s).freq;
    let share = if s_freq > 0.0 {
        (inflow / s_freq).min(1.0)
    } else {
        0.0
    };
    {
        let blk = f.block_mut(s);
        blk.freq = (blk.freq - inflow).max(0.0);
        for e in &mut blk.exits {
            e.count *= 1.0 - share;
        }
    }
    {
        let blk = f.block_mut(copy);
        blk.freq = inflow;
        for e in &mut blk.exits {
            e.count *= share;
        }
    }
    copy
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::Operand;
    use chf_ir::verify::verify;

    fn reg(r: chf_ir::ids::Reg) -> Operand {
        Operand::Reg(r)
    }

    /// Figure 2 shape: A -> {B, D}; B -> D; D -> ret   (D is a merge point)
    fn fig2() -> (Function, BlockId, BlockId, BlockId) {
        let mut fb = FunctionBuilder::new("fig2", 1);
        let a = fb.create_named_block("A");
        let b = fb.create_named_block("B");
        let d = fb.create_named_block("D");
        fb.switch_to(a);
        let c = fb.cmp_lt(reg(fb.param(0)), Operand::Imm(5));
        fb.branch(c, b, d);
        fb.switch_to(b);
        fb.store(Operand::Imm(1), Operand::Imm(11));
        fb.jump(d);
        fb.switch_to(d);
        let x = fb.load(Operand::Imm(1));
        fb.ret(Some(reg(x)));
        (fb.build().unwrap(), a, b, d)
    }

    /// Figure 3/4 shape: E -> B; B -> B | C; C -> ret   (B self-loop header)
    fn self_loop() -> (Function, BlockId, BlockId, BlockId) {
        let mut fb = FunctionBuilder::new("selfloop", 1);
        let e = fb.create_named_block("E");
        let b = fb.create_named_block("B");
        let c = fb.create_named_block("C");
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        fb.jump(b);
        fb.switch_to(b);
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        let t = fb.cmp_lt(reg(i), reg(fb.param(0)));
        fb.branch(t, b, c);
        fb.switch_to(c);
        fb.ret(Some(reg(i)));
        (fb.build().unwrap(), e, b, c)
    }

    #[test]
    fn classify_merge_point_as_tail() {
        let (f, a, b, d) = fig2();
        let forest = LoopForest::of(&f);
        assert_eq!(classify(&f, &forest, a, b), DuplicationKind::None);
        assert_eq!(classify(&f, &forest, a, d), DuplicationKind::Tail);
        assert_eq!(classify(&f, &forest, b, d), DuplicationKind::Tail);
    }

    #[test]
    fn classify_loop_cases() {
        let (f, e, b, _c) = self_loop();
        let forest = LoopForest::of(&f);
        // Entering the loop header from outside = peel.
        assert_eq!(classify(&f, &forest, e, b), DuplicationKind::Peel);
        // The self back edge = unroll.
        assert_eq!(classify(&f, &forest, b, b), DuplicationKind::Unroll);
    }

    #[test]
    fn tail_duplication_preserves_behaviour() {
        let (mut f, a, _b, d) = fig2();
        let orig = f.clone();
        let copy = duplicate_for_merge(&mut f, a, d);
        verify(&f).unwrap();
        assert_eq!(chf_ir::cfg::predecessor_count(&f, copy), 1);
        // Original d still reachable from b.
        assert!(f.block(BlockId(1)).successors().any(|s| s == d));
        let run = |f: &Function, x: i64| {
            chf_sim::functional::run(f, &[x], &[], &Default::default())
                .unwrap()
                .digest()
        };
        for x in [0, 4, 5, 9] {
            assert_eq!(run(&f, x), run(&orig, x));
        }
    }

    #[test]
    fn peel_creates_loop_entrance() {
        let (mut f, e, b, _c) = self_loop();
        let orig = f.clone();
        let copy = duplicate_for_merge(&mut f, e, b);
        verify(&f).unwrap();
        // The copy's back edge targets the original header: a loop entrance.
        assert!(f.block(copy).successors().any(|s| s == b));
        assert!(f.block(e).successors().any(|s| s == copy));
        let run = |f: &Function, x: i64| {
            chf_sim::functional::run(f, &[x], &[], &Default::default())
                .unwrap()
                .digest()
        };
        for x in [0, 1, 3, 10] {
            assert_eq!(run(&f, x), run(&orig, x));
        }
    }

    #[test]
    fn unroll_creates_new_back_edge() {
        let (mut f, _e, b, _c) = self_loop();
        let orig = f.clone();
        let copy = duplicate_for_merge(&mut f, b, b);
        verify(&f).unwrap();
        // B -> B' and B' -> B: the loop now alternates between the two.
        assert!(f.block(b).successors().any(|s| s == copy));
        assert!(f.block(copy).successors().any(|s| s == b));
        let run = |f: &Function, x: i64| {
            chf_sim::functional::run(f, &[x], &[], &Default::default())
                .unwrap()
                .digest()
        };
        for x in [0, 1, 2, 5, 6] {
            assert_eq!(run(&f, x), run(&orig, x));
        }
    }

    #[test]
    fn profile_split_on_duplication() {
        let (mut f, a, _b, d) = fig2();
        // Stamp a profile: a executed 100 times, 30 go directly a->d,
        // 70 via b; d executed 100 times.
        f.block_mut(a).freq = 100.0;
        f.block_mut(a).exits[0].count = 70.0;
        f.block_mut(a).exits[1].count = 30.0;
        f.block_mut(d).freq = 100.0;
        f.block_mut(d).exits[0].count = 100.0;
        let copy = duplicate_for_merge(&mut f, a, d);
        assert!((f.block(copy).freq - 30.0).abs() < 1e-9);
        assert!((f.block(d).freq - 70.0).abs() < 1e-9);
        assert!((f.block(copy).exits[0].count - 30.0).abs() < 1e-9);
        assert!((f.block(d).exits[0].count - 70.0).abs() < 1e-9);
    }
}
