//! Register allocation (paper §6).
//!
//! The Scale flow runs register allocation after hyperblock formation; if
//! spill code pushes a block over the structural constraints, the compiler
//! reverse-if-converts the block and repeats. TRIPS has 128 architectural
//! registers in 4 banks, and "Scale rarely needs to split blocks in this
//! manner, both because TRIPS has a large number of architectural registers
//! and because the compiler attempts to avoid inserting spill code in
//! nearly full hyperblocks."
//!
//! This module models that stage faithfully at the IR level: it measures
//! register pressure (the maximum number of simultaneously live *cross-block*
//! values), and when pressure exceeds the register file, it spills the
//! longest-lived values to a dedicated spill area in memory — a store after
//! every definition and a load before each block's first use. Block-local
//! values never need architectural registers on TRIPS (direct instruction
//! communication), so only values live across block boundaries count
//! against the register file.

use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::ids::{BlockId, Reg};
use chf_ir::instr::{Instr, Operand};
use chf_ir::liveness::Liveness;
use std::collections::{HashMap, HashSet};

/// Register-file shape of the target.
#[derive(Clone, Debug)]
pub struct RegFileSpec {
    /// Total architectural registers (TRIPS: 128).
    pub num_regs: usize,
    /// Base address of the compiler-reserved spill area. Negative by
    /// convention so it cannot collide with workload data.
    pub spill_base: i64,
}

impl RegFileSpec {
    /// The TRIPS register file: 128 registers.
    pub fn trips() -> Self {
        RegFileSpec {
            num_regs: 128,
            spill_base: -1_000_000,
        }
    }
}

/// What allocation did.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct AllocStats {
    /// Maximum cross-block register pressure before spilling.
    pub max_pressure: usize,
    /// Virtual registers spilled to memory.
    pub spilled: usize,
    /// Spill store/load instructions inserted.
    pub spill_code: usize,
}

/// Cross-block register pressure: for each block boundary, the number of
/// live values. Returns the maximum and, for spill-candidate selection, the
/// number of boundaries at which each register is live.
fn pressure(f: &Function, lv: &Liveness) -> (usize, HashMap<Reg, usize>) {
    let mut max_pressure = 0;
    let mut liveness_span: HashMap<Reg, usize> = HashMap::new();
    for b in f.block_ids() {
        let out = lv.live_out(b);
        max_pressure = max_pressure.max(out.len());
        for r in out.iter() {
            *liveness_span.entry(r).or_insert(0) += 1;
        }
    }
    (max_pressure, liveness_span)
}

/// Spill register `r` of `f` to `slot`: store `r` after every unpredicated
/// or predicated definition, and reload it at the top of every block that
/// has `r` live-in and uses it. Parameters are additionally stored at the
/// function entry.
fn spill_register(f: &mut Function, r: Reg, slot: i64, lv: &Liveness) -> usize {
    let mut inserted = 0;
    let ids: Vec<BlockId> = f.block_ids().collect();
    let is_param = r.0 < f.params;
    for b in &ids {
        let needs_reload = lv.live_in(*b).contains(&r)
            && f.block(*b).insts.iter().any(|i| i.uses().any(|u| u == r))
            || f.block(*b).exits.iter().any(|e| {
                e.pred.map(|p| p.reg == r).unwrap_or(false)
                    || matches!(e.target, ExitTarget::Return(Some(Operand::Reg(x))) if x == r)
            }) && lv.live_in(*b).contains(&r);
        let blk = f.block_mut(*b);
        let mut new_insts = Vec::with_capacity(blk.insts.len() + 4);
        if needs_reload {
            new_insts.push(Instr::load(r, Operand::Imm(slot)));
            inserted += 1;
        }
        for inst in blk.insts.drain(..) {
            let defines = inst.def() == Some(r);
            let pred = inst.pred;
            new_insts.push(inst);
            if defines {
                // The spill store executes under the same predicate as the
                // definition: a nullified def must not overwrite the slot.
                let mut st = Instr::store(Operand::Imm(slot), Operand::Reg(r));
                st.pred = pred;
                new_insts.push(st);
                inserted += 1;
            }
        }
        blk.insts = new_insts;
    }
    if is_param {
        let entry = f.entry;
        f.block_mut(entry)
            .insts
            .insert(0, Instr::store(Operand::Imm(slot), Operand::Reg(r)));
        inserted += 1;
    }
    inserted
}

/// Run the allocation stage: measure pressure and spill until the
/// cross-block live set fits in `spec.num_regs` everywhere.
///
/// Returns the statistics; the function is modified in place. Spilling
/// preserves observable behaviour (enforced by this crate's tests).
pub fn allocate_registers(f: &mut Function, spec: &RegFileSpec) -> AllocStats {
    let mut stats = AllocStats::default();
    let mut next_slot = spec.spill_base;
    let mut spilled: HashSet<Reg> = HashSet::new();

    loop {
        let lv = Liveness::compute(f);
        let (max_pressure, spans) = pressure(f, &lv);
        if stats.spilled == 0 {
            stats.max_pressure = max_pressure;
        }
        if max_pressure <= spec.num_regs {
            return stats;
        }
        // Spill the widest-span register not yet spilled (classic
        // furthest-use approximation at block granularity).
        let Some((victim, _)) = spans
            .into_iter()
            .filter(|(r, _)| !spilled.contains(r))
            .max_by_key(|(r, span)| (*span, std::cmp::Reverse(r.0)))
        else {
            return stats; // nothing left to spill
        };
        let lv = Liveness::compute(f);
        stats.spill_code += spill_register(f, victim, next_slot, &lv);
        stats.spilled += 1;
        spilled.insert(victim);
        next_slot += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::verify::verify;
    use chf_sim::functional::{run, RunConfig};

    fn digest(f: &Function, args: &[i64]) -> (Option<i64>, Vec<(i64, i64)>) {
        let r = run(f, args, &[], &RunConfig::default()).unwrap();
        // Exclude the spill area from the digest: it is compiler-private.
        let (ret, mem) = r.digest();
        (ret, mem.into_iter().filter(|(a, _)| *a >= 0).collect())
    }

    /// A function with `n` values all live across a block boundary.
    fn high_pressure(n: usize) -> Function {
        let mut fb = FunctionBuilder::new("hp", 1);
        let e = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let vals: Vec<_> = (0..n)
            .map(|k| fb.add(Operand::Reg(fb.param(0)), Operand::Imm(k as i64)))
            .collect();
        fb.jump(x);
        fb.switch_to(x);
        let mut acc = fb.mov(Operand::Imm(0));
        for v in vals {
            acc = fb.xor(Operand::Reg(acc), Operand::Reg(v));
        }
        fb.ret(Some(Operand::Reg(acc)));
        fb.build().unwrap()
    }

    #[test]
    fn no_spills_under_pressure_limit() {
        let mut f = high_pressure(10);
        let stats = allocate_registers(&mut f, &RegFileSpec::trips());
        assert_eq!(stats.spilled, 0);
        assert!(stats.max_pressure >= 10);
    }

    #[test]
    fn spills_when_pressure_exceeds_registers() {
        let mut f = high_pressure(20);
        let orig = f.clone();
        let spec = RegFileSpec {
            num_regs: 12,
            spill_base: -1_000_000,
        };
        let stats = allocate_registers(&mut f, &spec);
        assert!(stats.spilled > 0, "{stats:?}");
        assert!(stats.spill_code >= stats.spilled * 2);
        verify(&f).unwrap();
        for a in [0, 3, -9] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
        // Post-allocation pressure fits.
        let lv = Liveness::compute(&f);
        let (p, _) = pressure(&f, &lv);
        assert!(p <= spec.num_regs, "residual pressure {p}");
    }

    #[test]
    fn spilling_predicated_defs_preserves_behaviour() {
        use chf_ir::instr::Pred;
        // A predicated def live across blocks: the spill store must carry
        // the same predicate.
        let mut fb = FunctionBuilder::new("pred", 2);
        let e = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let v = fb.mov(Operand::Imm(100));
        let c = fb.cmp_gt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        fb.push(Instr::mov(v, Operand::Imm(200)).predicated(Pred::on_true(c)));
        // Lots of other live values to force v's spill.
        let vals: Vec<_> = (0..16)
            .map(|k| fb.add(Operand::Reg(fb.param(1)), Operand::Imm(k)))
            .collect();
        fb.jump(x);
        fb.switch_to(x);
        let mut acc = fb.mov(Operand::Reg(v));
        for w in vals {
            acc = fb.add(Operand::Reg(acc), Operand::Reg(w));
        }
        fb.ret(Some(Operand::Reg(acc)));
        let mut f = fb.build().unwrap();
        let orig = f.clone();
        let spec = RegFileSpec {
            num_regs: 8,
            spill_base: -1_000_000,
        };
        let stats = allocate_registers(&mut f, &spec);
        assert!(stats.spilled > 0);
        verify(&f).unwrap();
        for args in [[1, 2], [-1, 2]] {
            assert_eq!(digest(&f, &args), digest(&orig, &args), "{args:?}");
        }
    }

    #[test]
    fn formed_workloads_fit_trips_register_file() {
        // The paper's observation: with 128 registers, spills are rare.
        for w in chf_workloads_smoke() {
            let mut f = w;
            let stats = allocate_registers(&mut f, &RegFileSpec::trips());
            assert_eq!(stats.spilled, 0, "unexpected spill");
        }
    }

    /// A couple of small, formed functions standing in for real workloads
    /// (the full-suite check lives in the workspace integration tests).
    fn chf_workloads_smoke() -> Vec<Function> {
        use chf_ir::testgen::{generate, GenConfig};
        (0..5).map(|s| generate(s, &GenConfig::default())).collect()
    }
}
