//! Reverse if-conversion: block splitting (paper §6).
//!
//! When post-formation phases (spill code, fanout insertion) push a block
//! over the structural constraints, the Scale compiler performs reverse
//! if-conversion on the block and repeats register allocation. In this
//! representation predicates are ordinary registers, so a block can be
//! split at *any* instruction boundary: values computed in the first half
//! (including predicate registers) flow to the second half through
//! registers.

use crate::constraints::BlockConstraints;
use chf_ir::block::{Block, Exit};
use chf_ir::function::Function;
use chf_ir::ids::BlockId;

/// Split block `b` at instruction index `at`: the first `at` instructions
/// stay in `b`; the rest, plus all exits, move to a new block that `b`
/// jumps to. Returns the new block's id.
///
/// # Panics
/// Panics if `at` is out of range (`at > insts.len()`).
pub fn split_block(f: &mut Function, b: BlockId, at: usize) -> BlockId {
    let (tail_insts, exits, freq, name) = {
        let blk = f.block_mut(b);
        assert!(at <= blk.insts.len(), "split point out of range");
        let tail = blk.insts.split_off(at);
        let exits = std::mem::take(&mut blk.exits);
        (tail, exits, blk.freq, blk.name.clone())
    };
    let tail = Block {
        insts: tail_insts,
        exits,
        freq,
        name: name.map(|n| format!("{n}.tail")),
    };
    let new = f.add_block(tail);
    f.block_mut(b).exits.push(Exit::jump(new));
    new
}

/// Pick the split index in the middle half of block `b` that minimizes the
/// number of registers communicated across the cut (paper §9, "Basic block
/// splitting": "the compiler should seek to minimize cross-block
/// communication, thus minimizing register pressure and the resultant
/// spills").
///
/// A register crosses the cut at index `k` if it is defined before `k` and
/// used at-or-after `k` (or live out of the block).
pub fn best_split_point(f: &Function, b: BlockId) -> usize {
    let blk = f.block(b);
    let n = blk.insts.len();
    if n < 2 {
        return n / 2;
    }
    let live_out = chf_ir::liveness::Liveness::compute(f);
    let live_out = live_out.live_out(b);

    // For each register: last def index and last use index within the block
    // (use = operands, predicates, exits).
    use std::collections::HashMap;
    let mut first_def: HashMap<chf_ir::ids::Reg, usize> = HashMap::new();
    let mut last_use: HashMap<chf_ir::ids::Reg, usize> = HashMap::new();
    for (k, inst) in blk.insts.iter().enumerate() {
        for u in inst.uses() {
            last_use.insert(u, k);
        }
        if let Some(d) = inst.def() {
            first_def.entry(d).or_insert(k);
        }
    }
    for e in &blk.exits {
        if let Some(p) = e.pred {
            last_use.insert(p.reg, n);
        }
        if let chf_ir::block::ExitTarget::Return(Some(chf_ir::instr::Operand::Reg(r))) = e.target {
            last_use.insert(r, n);
        }
    }

    // Evaluate candidate cut points in the middle half (a cut near either
    // end barely shrinks the block).
    let (lo, hi) = (n / 4, (3 * n) / 4);
    let mut best = (usize::MAX, n / 2);
    for k in lo..=hi.max(lo + 1) {
        let mut crossing = 0usize;
        for (r, &d) in &first_def {
            if d < k {
                let used_later = last_use.get(r).map(|&u| u >= k).unwrap_or(false);
                if used_later || live_out.contains(r) {
                    crossing += 1;
                }
            }
        }
        if crossing < best.0 {
            best = (crossing, k);
        }
    }
    best.1
}

/// Repeatedly split any block that violates the size or memory-op
/// constraints until every block conforms (or blocks cannot shrink
/// further). Split points are chosen by [`best_split_point`]. Returns the
/// number of splits performed.
///
/// Register-bank violations are not fixable by splitting alone (splitting
/// can only increase cross-block register traffic) and are left to the
/// register allocator's spill logic; only size and memory violations are
/// handled here.
pub fn split_oversized(f: &mut Function, constraints: &BlockConstraints) -> usize {
    let mut splits = 0;
    let mut work: Vec<BlockId> = f.block_ids().collect();
    while let Some(b) = work.pop() {
        if !f.contains_block(b) {
            continue;
        }
        let blk = f.block(b);
        let too_big = blk.size() > constraints.effective_max_insts();
        let too_many_mem = blk.memory_ops() > constraints.max_memory_ops;
        if !(too_big || too_many_mem) {
            continue;
        }
        if blk.insts.len() < 2 {
            continue; // cannot split further
        }
        let at = best_split_point(f, b);
        let at = at.clamp(1, f.block(b).insts.len() - 1);
        let new = split_block(f, b, at);
        splits += 1;
        work.push(b);
        work.push(new);
    }
    splits
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::{Instr, Operand, Pred};
    use chf_ir::verify::verify;
    use chf_sim::functional::{run, RunConfig};

    fn digest(f: &Function, args: &[i64]) -> (Option<i64>, Vec<(i64, i64)>) {
        run(f, args, &[], &RunConfig::default()).unwrap().digest()
    }

    fn big_block(n: usize) -> Function {
        let mut fb = FunctionBuilder::new("big", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let mut x = fb.param(0);
        for _ in 0..n {
            x = fb.add(Operand::Reg(x), Operand::Imm(1));
        }
        fb.ret(Some(Operand::Reg(x)));
        fb.build().unwrap()
    }

    #[test]
    fn split_preserves_behaviour() {
        let mut f = big_block(10);
        let orig = f.clone();
        let entry = f.entry;
        let new = split_block(&mut f, entry, 5);
        verify(&f).unwrap();
        assert_eq!(f.block(f.entry).insts.len(), 5);
        assert_eq!(f.block(new).insts.len(), 5);
        assert_eq!(digest(&f, &[7]), digest(&orig, &[7]));
    }

    #[test]
    fn split_predicated_block() {
        // Predicate defined in the first half, used in the second.
        let mut fb = FunctionBuilder::new("p", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let p = fb.cmp_gt(Operand::Reg(fb.param(0)), Operand::Imm(0));
        let out = fb.mov(Operand::Imm(0));
        fb.push(Instr::mov(out, Operand::Imm(1)).predicated(Pred::on_true(p)));
        fb.ret(Some(Operand::Reg(out)));
        let mut f = fb.build().unwrap();
        let orig = f.clone();
        let entry = f.entry;
        split_block(&mut f, entry, 2);
        verify(&f).unwrap();
        for a in [-1, 1] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]));
        }
    }

    #[test]
    fn split_oversized_until_conforming() {
        let mut f = big_block(300);
        let orig = f.clone();
        let c = BlockConstraints::trips();
        let n = split_oversized(&mut f, &c);
        assert!(n >= 2);
        verify(&f).unwrap();
        assert!(c.check_function(&f).is_ok());
        assert_eq!(digest(&f, &[3]), digest(&orig, &[3]));
    }

    #[test]
    fn split_at_boundaries() {
        let mut f = big_block(4);
        let entry = f.entry;
        let new = split_block(&mut f, entry, 0);
        verify(&f).unwrap();
        assert!(f.block(f.entry).insts.is_empty());
        assert_eq!(f.block(new).insts.len(), 4);
    }

    #[test]
    fn best_split_point_minimizes_crossing_values() {
        // First half computes many independent temporaries that all die at
        // one reduction point; cutting after the reduction crosses only one
        // value, cutting before it crosses many.
        let mut fb = FunctionBuilder::new("cut", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let mut vals = Vec::new();
        for k in 0..6 {
            vals.push(fb.add(Operand::Reg(fb.param(0)), Operand::Imm(k)));
        }
        let mut acc = fb.mov(Operand::Imm(0));
        for v in vals {
            acc = fb.add(Operand::Reg(acc), Operand::Reg(v));
        }
        // Tail: a chain only depending on acc.
        for _ in 0..6 {
            acc = fb.mul(Operand::Reg(acc), Operand::Imm(3));
        }
        fb.ret(Some(Operand::Reg(acc)));
        let f = fb.build().unwrap();
        let at = best_split_point(&f, f.entry);
        // The reduction finishes at instruction 13 (6 adds + mov + 6 adds);
        // the best cut in the middle half is at-or-after it, never inside
        // the wide first phase.
        assert!(at >= 12, "cut at {at} crosses the wide phase");
        // And splitting there still preserves behaviour.
        let mut g = f.clone();
        let entry = g.entry;
        split_block(&mut g, entry, at);
        verify(&g).unwrap();
        assert_eq!(digest(&g, &[5]), digest(&f, &[5]));
    }

    #[test]
    fn memory_violation_split() {
        let mut fb = FunctionBuilder::new("mem", 0);
        let e = fb.create_block();
        fb.switch_to(e);
        for i in 0..40 {
            fb.store(Operand::Imm(i), Operand::Imm(i * 2));
        }
        fb.ret(None);
        let mut f = fb.build().unwrap();
        let c = BlockConstraints::trips();
        assert!(c.check_function(&f).is_err());
        split_oversized(&mut f, &c);
        assert!(c.check_function(&f).is_ok());
    }
}
