//! For-loop recognition and test-removing unrolling.
//!
//! The Scale compiler performs *for-loop* unrolling in its front end
//! (paper §6, Figure 6): when the trip count is governed by an affine
//! induction variable with loop-invariant bounds, intermediate exit tests
//! can be removed outright — unlike while-loop unrolling, which "requires
//! hyperblock formation to predicate each iteration" (§3). The paper's §9
//! lists moving this into the back end as future work; this module provides
//! the mechanism at the IR level so pipelines can model the front-end
//! phase.
//!
//! Recognized shape (what [`crate::unroll`] and the builder produce):
//!
//! ```text
//! header:  c = lt i, <invariant>     body:   ...
//!          [c] -> body                       i = i + <const>   (last update)
//!          -> exit                           -> header
//! ```
//!
//! [`unroll_for_loop`] peels the test structure apart: a *main* unrolled
//! loop runs `factor` bodies per test (the test is hoisted: `i + (factor-1)*step < bound`),
//! and the original loop remains as the remainder loop.

use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::ids::{BlockId, Reg};
use chf_ir::instr::{Instr, Opcode, Operand};
use chf_ir::loops::LoopForest;

/// A recognized counted (for-) loop.
#[derive(Clone, Debug, PartialEq)]
pub struct ForLoop {
    /// The loop header holding the exit test.
    pub header: BlockId,
    /// The single body block.
    pub body: BlockId,
    /// Induction register.
    pub induction: Reg,
    /// Loop-invariant bound operand of the `lt` test.
    pub bound: Operand,
    /// Constant per-iteration increment.
    pub step: i64,
}

/// Recognize the counted-loop shape around `header`.
///
/// Requirements (conservative, matching what the front end would know):
/// the header's only instruction chain ends in `c = lt i, bound` with the
/// predicated exit into a single-block body; the body's *last* write to `i`
/// is `i = i + #step` (via an `add` to a temporary then `mov`, or a direct
/// add), the body jumps back to the header unconditionally, and neither
/// block otherwise writes `i` or the bound.
pub fn recognize(f: &Function, header: BlockId) -> Option<ForLoop> {
    let forest = LoopForest::of(f);
    let l = forest.loop_of_header(header)?;
    if l.body.len() != 2 {
        return None; // header + single body block
    }
    let body = *l.body.iter().find(|b| **b != header)?;

    // Header: exactly `c = lt i, bound` + exits `[c] -> body, -> exit`.
    let hb = f.block(header);
    if hb.insts.len() != 1 || hb.exits.len() != 2 {
        return None;
    }
    let test = &hb.insts[0];
    if test.op != Opcode::CmpLt || test.pred.is_some() {
        return None;
    }
    let induction = test.a?.as_reg()?;
    let bound = test.b?;
    // Bound must be invariant: an immediate, or a register neither block
    // writes.
    if let Operand::Reg(r) = bound {
        let writes = |b: BlockId| f.block(b).insts.iter().any(|i| i.def() == Some(r));
        if writes(header) || writes(body) {
            return None;
        }
    }
    let c = test.dst?;
    let e0 = &hb.exits[0];
    let e1 = &hb.exits[1];
    if e0.pred.map(|p| p.reg != c || !p.if_true).unwrap_or(true) {
        return None;
    }
    if e0.target != ExitTarget::Block(body) || e1.pred.is_some() {
        return None;
    }

    // Body: unconditional back edge, unpredicated, with a final
    // `i = i + #step` update (possibly through a temporary).
    let bb = f.block(body);
    if bb.exits.len() != 1 || bb.exits[0].target != ExitTarget::Block(header) {
        return None;
    }
    if bb.insts.iter().any(|i| i.pred.is_some()) {
        return None;
    }
    let step = induction_step(bb, induction)?;
    Some(ForLoop {
        header,
        body,
        induction,
        bound,
        step,
    })
}

/// The constant step if the block's writes to `i` amount to exactly one
/// `i += #step` at the end (directly or via `t = add i, #s; i = mov t`).
fn induction_step(blk: &chf_ir::block::Block, i: Reg) -> Option<i64> {
    let defs: Vec<usize> = blk
        .insts
        .iter()
        .enumerate()
        .filter(|(_, inst)| inst.def() == Some(i))
        .map(|(k, _)| k)
        .collect();
    let [k] = defs.as_slice() else { return None };
    let upd = &blk.insts[*k];
    match (upd.op, upd.a, upd.b) {
        (Opcode::Add, Some(Operand::Reg(r)), Some(Operand::Imm(s))) if r == i => Some(s),
        (Opcode::Mov, Some(Operand::Reg(t)), None) => {
            // t must be `add i, #s` with no redefinition of i/t in between.
            let def_t = blk.insts[..*k]
                .iter()
                .rev()
                .find(|inst| inst.def() == Some(t))?;
            match (def_t.op, def_t.a, def_t.b) {
                (Opcode::Add, Some(Operand::Reg(r)), Some(Operand::Imm(s))) if r == i => Some(s),
                _ => None,
            }
        }
        _ => None,
    }
}

/// Statistics from [`unroll_for_loops`].
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct ForLoopStats {
    /// Loops recognized as counted.
    pub recognized: usize,
    /// Loops unrolled (main-loop copies created = factor − 1 each).
    pub unrolled: usize,
}

/// Unroll a recognized for-loop by `factor`, removing intermediate tests.
///
/// Structure produced:
///
/// ```text
/// header':  c' = lt i + (factor-1)*step, bound   // all f iterations fit?
///           [c'] -> big_body
///           -> header                            // remainder loop (original)
/// big_body: body ; body ; ... (factor copies, no tests)
///           -> header'
/// ```
///
/// Entry edges are redirected to `header'`. Returns `false` (no change)
/// when `factor < 2` or the shape no longer matches.
pub fn unroll_for_loop(f: &mut Function, fl: &ForLoop, factor: usize) -> bool {
    if factor < 2 || recognize(f, fl.header) != Some(fl.clone()) {
        return false;
    }

    // Guard header: i + (factor-1)*step < bound  (for positive step; the
    // recognizer only accepts `lt`, and a non-positive step would loop
    // forever anyway, so require step > 0).
    if fl.step <= 0 {
        return false;
    }
    let lookahead = (factor as i64 - 1) * fl.step;

    let mut guard = chf_ir::block::Block::new();
    let probe = f.new_reg();
    let cond = f.new_reg();
    guard.insts.push(Instr::add(
        probe,
        Operand::Reg(fl.induction),
        Operand::Imm(lookahead),
    ));
    guard.insts.push(Instr::binary(
        Opcode::CmpLt,
        cond,
        Operand::Reg(probe),
        fl.bound,
    ));
    guard.name = Some("for.guard".into());

    // Big body: factor copies of the body's instructions.
    let mut big = chf_ir::block::Block::new();
    for _ in 0..factor {
        big.insts.extend(f.block(fl.body).insts.iter().cloned());
    }
    big.name = Some("for.unrolled".into());

    let guard_id = f.add_block(guard);
    let big_id = f.add_block(big);
    {
        let g = f.block_mut(guard_id);
        g.exits.push(chf_ir::block::Exit::when(
            chf_ir::instr::Pred::on_true(cond),
            big_id,
        ));
        g.exits.push(chf_ir::block::Exit::jump(fl.header));
    }
    f.block_mut(big_id)
        .exits
        .push(chf_ir::block::Exit::jump(guard_id));

    // Redirect loop-entry edges (all predecessors of header except the
    // body's back edge) to the guard.
    let preds: Vec<BlockId> = f
        .block_ids()
        .filter(|&p| p != fl.body && p != guard_id)
        .filter(|&p| f.block(p).successors().any(|s| s == fl.header))
        .collect();
    for p in preds {
        f.block_mut(p).retarget_exits(fl.header, guard_id);
    }
    true
}

/// Recognize and unroll every counted loop in `f` by `factor`.
pub fn unroll_for_loops(f: &mut Function, factor: usize) -> ForLoopStats {
    let mut stats = ForLoopStats::default();
    let headers: Vec<BlockId> = {
        let forest = LoopForest::of(f);
        forest.loops.iter().map(|l| l.header).collect()
    };
    for h in headers {
        if !f.contains_block(h) {
            continue;
        }
        if let Some(fl) = recognize(f, h) {
            stats.recognized += 1;
            if unroll_for_loop(f, &fl, factor) {
                stats.unrolled += 1;
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::verify::verify;
    use chf_sim::functional::{run, RunConfig};

    fn reg(r: Reg) -> Operand {
        Operand::Reg(r)
    }

    /// sum 0..n as a canonical counted loop.
    fn counted(n_param: bool) -> Function {
        let mut fb = FunctionBuilder::new("c", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let b = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        let acc = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        let bound = if n_param {
            reg(fb.param(0))
        } else {
            Operand::Imm(17)
        };
        let c = fb.cmp_lt(reg(i), bound);
        fb.branch(c, b, x);
        fb.switch_to(b);
        let a2 = fb.add(reg(acc), reg(i));
        fb.mov_to(acc, reg(a2));
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        fb.jump(h);
        fb.switch_to(x);
        fb.ret(Some(reg(acc)));
        fb.build().unwrap()
    }

    #[test]
    fn recognizes_counted_loop() {
        let f = counted(true);
        let fl = recognize(&f, BlockId(1)).expect("should recognize");
        assert_eq!(fl.step, 1);
        assert_eq!(fl.body, BlockId(2));
        assert_eq!(fl.bound, Operand::Reg(Reg(0)));
    }

    #[test]
    fn rejects_non_counted_shapes() {
        // A data-dependent while loop must not be recognized.
        let mut fb = FunctionBuilder::new("w", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let b = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let v = fb.mov(reg(fb.param(0)));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(reg(v), Operand::Imm(100));
        fb.branch(c, b, x);
        fb.switch_to(b);
        let v2 = fb.mul(reg(v), Operand::Imm(3)); // multiplicative: not affine step
        fb.mov_to(v, reg(v2));
        fb.jump(h);
        fb.switch_to(x);
        fb.ret(Some(reg(v)));
        let f = fb.build().unwrap();
        assert_eq!(recognize(&f, BlockId(1)), None);
    }

    #[test]
    fn unroll_removes_intermediate_tests() {
        let mut f = counted(true);
        let orig = f.clone();
        let fl = recognize(&f, BlockId(1)).unwrap();
        assert!(unroll_for_loop(&mut f, &fl, 4));
        verify(&f).unwrap();
        for n in [0, 1, 3, 4, 7, 8, 16, 17] {
            let a = run(&orig, &[n], &[], &RunConfig::default()).unwrap();
            let b = run(&f, &[n], &[], &RunConfig::default()).unwrap();
            assert_eq!(a.digest(), b.digest(), "n = {n}");
        }
        // The unrolled loop executes far fewer blocks for large n: each
        // guarded round covers 4 iterations with ONE test.
        let a = run(&orig, &[100], &[], &RunConfig::default()).unwrap();
        let b = run(&f, &[100], &[], &RunConfig::default()).unwrap();
        assert!(
            b.blocks_executed * 2 < a.blocks_executed,
            "{} !< {}/2",
            b.blocks_executed,
            a.blocks_executed
        );
        // And, unlike while-loop unrolling, fewer *executed* instructions
        // (intermediate tests gone, nothing predicated).
        assert!(b.insts_executed < a.insts_executed);
    }

    #[test]
    fn unroll_handles_immediate_bounds_and_bigger_steps() {
        let mut fb = FunctionBuilder::new("s2", 0);
        let e = fb.create_block();
        let h = fb.create_block();
        let b = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        let acc = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(reg(i), Operand::Imm(25));
        fb.branch(c, b, x);
        fb.switch_to(b);
        let a2 = fb.xor(reg(acc), reg(i));
        fb.mov_to(acc, reg(a2));
        let i2 = fb.add(reg(i), Operand::Imm(3));
        fb.mov_to(i, reg(i2));
        fb.jump(h);
        fb.switch_to(x);
        fb.ret(Some(reg(acc)));
        let mut f = fb.build().unwrap();
        let orig = f.clone();
        let stats = unroll_for_loops(&mut f, 3);
        assert_eq!(stats.recognized, 1);
        assert_eq!(stats.unrolled, 1);
        verify(&f).unwrap();
        let a = run(&orig, &[], &[], &RunConfig::default()).unwrap();
        let b = run(&f, &[], &[], &RunConfig::default()).unwrap();
        assert_eq!(a.digest(), b.digest());
    }

    #[test]
    fn unrolled_for_loop_feeds_formation() {
        // Front-end for-loop unrolling followed by convergent formation:
        // the big body merges with its guard into one hyperblock.
        use crate::convergent::{form_hyperblocks, FormationConfig};
        use crate::policy::PolicyKind;
        use chf_sim::functional::profile_run;
        let mut f = counted(true);
        let fl = recognize(&f, BlockId(1)).unwrap();
        assert!(unroll_for_loop(&mut f, &fl, 4));
        let profile = profile_run(&f, &[40], &[]).unwrap();
        profile.apply(&mut f);
        let orig = f.clone();
        let mut p = PolicyKind::BreadthFirst.instantiate();
        form_hyperblocks(&mut f, p.as_mut(), &FormationConfig::default());
        verify(&f).unwrap();
        for n in [0, 3, 40] {
            let a = run(&orig, &[n], &[], &RunConfig::default()).unwrap();
            let b = run(&f, &[n], &[], &RunConfig::default()).unwrap();
            assert_eq!(a.digest(), b.digest(), "n = {n}");
        }
    }
}
