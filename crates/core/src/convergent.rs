//! Convergent hyperblock formation — the paper's Figure 5.
//!
//! [`expand_block`] implements `ExpandBlock`: starting from a seed block, it
//! repeatedly asks the policy for the best candidate successor, attempts the
//! merge as an *in-place trial* ([`merge_blocks`] snapshots the blocks the
//! merge can touch, transforms the CFG directly, optionally optimizes the
//! merged block, checks the structural constraints, and rolls the snapshot
//! back on failure), and keeps only successful merges. The paper's
//! implementation tested merges in scratch space to "avoid a more
//! complicated undo step"; cloning the whole function per trial dominated
//! compile time here, so the undo step is now explicit — a merge only ever
//! writes the hyperblock, the merged successor, freshly appended blocks and
//! fresh registers, all of which [`chf_ir::function::BlocksSnapshot`]
//! restores exactly.
//!
//! [`form_hyperblocks`] drives `ExpandBlock` over the whole function in
//! descending frequency order, so hot loop bodies unroll before colder
//! code competes for their blocks. Loop analyses are cached across trials
//! in a formation context and invalidated only when a merge commits (a
//! rolled-back trial leaves the CFG bit-identical, so the cache stays
//! valid).

use crate::chaos::{ChaosRng, ChaosSpec};
use crate::constraints::BlockConstraints;
use crate::duplication::{classify, duplicate_for_merge, DuplicationKind};
use crate::error::ChfError;
use crate::ifconvert::combine_with_liveness;
use crate::oracle::OracleConfig;
use crate::policy::{Candidate, Policy};
use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::ids::BlockId;
use chf_ir::loops::LoopForest;
use chf_ir::profile::ProfileData;

/// Configuration of the formation loop.
#[derive(Clone, Debug)]
pub struct FormationConfig {
    /// Structural constraints every formed block must satisfy.
    pub constraints: BlockConstraints,
    /// Allow unroll/peel merges (head duplication). Off for the classical
    /// phase orderings that run a discrete unroll pass instead.
    pub head_duplication: bool,
    /// Allow tail duplication. (Always on in the paper; exposed for
    /// ablation.)
    pub tail_duplication: bool,
    /// Run scalar optimizations on the merged block before the legality
    /// check — the difference between `(IUP)O` and `(IUPO)`.
    pub iterative_opt: bool,
    /// Limit unrolling by the loop's expected trip count, estimated from
    /// the profiled back-edge probability (§5: the peeling/unrolling policy
    /// should consult trip counts, not just fill blocks). Unrolling a loop
    /// beyond its typical iteration count only adds nullified instructions
    /// and unpredictable exits.
    pub trip_aware_unroll: bool,
    /// Execute merged instructions speculatively where safe (predicate
    /// promotion). Always on in real hyperblock compilers; exposed for the
    /// ablation study.
    pub speculation: bool,
    /// Refuse tail duplication of blocks larger than this many slots
    /// (§5, "Limiting tail duplication": duplicating a large merge point
    /// bloats code and makes its contents data-dependent on the exit test).
    pub max_tail_dup_size: usize,
    /// Safety cap on merges per seed block.
    pub max_merges_per_block: usize,
    /// Verify the IR after every combine trial and *contain* a violation by
    /// rolling the trial back and skipping the candidate (recorded in
    /// [`FormationStats::skipped`]), instead of panicking via a
    /// `debug_assert`. On by default: the verify is cheap relative to the
    /// combine itself, and it turns a formation bug from a compiler abort
    /// into a degraded (but correct) compilation.
    pub verify_trials: bool,
    /// Differential oracle: after each *committed* merge, re-execute the
    /// function on seeded inputs against its pre-merge self and roll the
    /// merge back on any behaviour change (see [`crate::oracle`]). `None`
    /// disables the oracle (the default — it re-runs the functional
    /// simulator per commit, so it is a debugging/hardening tool, not a
    /// production setting).
    pub oracle: Option<OracleConfig>,
    /// Deterministic mid-trial fault injection (see [`crate::chaos`]):
    /// periodically corrupts the merged block *inside* the trial window so
    /// the verify-and-rollback path is exercised. Requires `verify_trials`;
    /// `None` (the default) injects nothing.
    pub chaos: Option<ChaosSpec>,
    /// Trial-budget ledger: cap on merge *trials* (attempted merges,
    /// successful or not) per formation run — one whole-function
    /// [`form_hyperblocks`] call, or one [`expand_block`] call when driven
    /// block-at-a-time. `None` (the default) reproduces today's unbounded
    /// behaviour exactly. When the ledger runs dry, remaining candidates
    /// are skipped and counted in [`FormationStats::budget_skipped`]; the
    /// trials actually spent are in [`FormationStats::trials`] either way.
    /// Profile-guided orderings ([`SeedOrder::HotFirst`] seeds plus the
    /// [`crate::policy::HotFirst`] candidate policy) exist to spend this
    /// budget on the hottest merges first.
    pub trial_budget: Option<usize>,
    /// Wall-clock deadline checked at the same point as the trial-budget
    /// ledger (between trials, never inside one). On expiry the remaining
    /// frontier is charged to [`FormationStats::budget_skipped`],
    /// [`FormationStats::deadline_hit`] is set, and formation stops
    /// *gracefully*: every block formed so far is kept, so the caller gets
    /// the anytime result of the convergent loop rather than an error.
    /// `None` (the default) never expires.
    pub deadline: Option<std::time::Instant>,
    /// In which order [`form_hyperblocks`] visits seed blocks — who gets
    /// first claim on the trial budget.
    pub seed_order: SeedOrder,
}

/// Order in which [`form_hyperblocks`] processes seed blocks.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub enum SeedOrder {
    /// Descending profiled block frequency, ties on block id — the
    /// historical behaviour and the default.
    #[default]
    Frequency,
    /// Profile-weighted: descending `freq + hottest outgoing edge weight`
    /// ([`chf_ir::block::Block::hottest_edge_weight`]), ties on block id.
    /// Seeds that head hot *edges* — whose expansion will merge profiled
    /// flow rather than merely sit on a hot block — claim the trial budget
    /// first. With an unprofiled (all-zero-edge) CFG this degenerates to
    /// [`SeedOrder::Frequency`] exactly.
    HotFirst,
}

impl Default for FormationConfig {
    fn default() -> Self {
        FormationConfig {
            constraints: BlockConstraints::trips(),
            head_duplication: true,
            tail_duplication: true,
            iterative_opt: true,
            trip_aware_unroll: true,
            speculation: true,
            max_tail_dup_size: 24,
            max_merges_per_block: 64,
            verify_trials: true,
            oracle: None,
            chaos: None,
            trial_budget: None,
            deadline: None,
            seed_order: SeedOrder::Frequency,
        }
    }
}

/// Static transformation counts — the paper's `m/t/u/p` columns.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct FormationStats {
    /// Blocks merged (`m`).
    pub merges: usize,
    /// Tail-duplicated blocks (`t`).
    pub tail_dups: usize,
    /// Unrolled iterations (`u`).
    pub unrolls: usize,
    /// Peeled iterations (`p`).
    pub peels: usize,
    /// Merge attempts rejected by the constraints or combine hazards.
    pub failures: usize,
    /// Trials contained by the crash-safety net: a verifier violation or
    /// oracle mismatch detected mid-formation, rolled back, and skipped
    /// (see [`MergeOutcome::Skipped`]). Deliberately *not* part of
    /// [`FormationStats::mtup`] — the paper's `m/t/u/p` column reports only
    /// committed transformations, and the golden snapshots must stay
    /// byte-identical when nothing is skipped.
    pub skipped: usize,
    /// Trial-budget ledger: merge trials actually attempted (every
    /// [`merge_blocks`] call made by the expansion loop, whatever its
    /// outcome).
    pub trials: usize,
    /// Trial-budget ledger: candidates the expansion loop *wanted* to try
    /// but dropped because [`FormationConfig::trial_budget`] was exhausted.
    /// Always 0 under the default unbounded budget, so the default `mtup`
    /// rendering (and every golden snapshot) is unchanged.
    pub budget_skipped: usize,
    /// Whether [`FormationConfig::deadline`] expired during this run and
    /// cut formation short. Candidates dropped by the deadline are counted
    /// in [`FormationStats::budget_skipped`] alongside ledger-dropped ones;
    /// this flag is what distinguishes "budget policy" from "out of time" —
    /// the compile service reports the latter as a `Degraded` response.
    /// Never set under the default `deadline: None`, so golden snapshots
    /// are unaffected.
    pub deadline_hit: bool,
    /// Mean block fill of the final artifact as instruction slots per
    /// `max_insts` (TRIPS: 128), in permille. Computed once per compile by
    /// the pipeline after the backend runs; 0 until then. Kept as an
    /// integer so the stats stay `Copy + Eq` and hash-stable for the
    /// service cache's integrity digest.
    pub util_insts_permille: u32,
    /// Mean memory-op fill per `max_memory_ops` (TRIPS: 32), in permille.
    pub util_mem_permille: u32,
    /// Mean register-bank port fill — reads plus writes over the total
    /// bank read/write ports (TRIPS: 4 banks × (8 + 8)) — in permille.
    pub util_bank_permille: u32,
    /// Policy-tournament provenance: how many portfolio entrants were
    /// compiled and scored to produce this artifact. 0 = no tournament
    /// (the default fixed-policy path), 1 = the shape cache's hot path
    /// (single compile with a cached winning policy), ≥ 2 = a full
    /// tournament. Not part of [`FormationStats::mtup`].
    pub tournament_entrants: usize,
}

impl FormationStats {
    /// Accumulate another stats record.
    pub fn merge(&mut self, other: &FormationStats) {
        self.merges += other.merges;
        self.tail_dups += other.tail_dups;
        self.unrolls += other.unrolls;
        self.peels += other.peels;
        self.failures += other.failures;
        self.skipped += other.skipped;
        self.trials += other.trials;
        self.budget_skipped += other.budget_skipped;
        self.deadline_hit |= other.deadline_hit;
        // Utilization is measured once, on the final artifact; when two
        // records are folded (phase accumulation, suite totals) keep the
        // larger measurement rather than inventing an average.
        self.util_insts_permille = self.util_insts_permille.max(other.util_insts_permille);
        self.util_mem_permille = self.util_mem_permille.max(other.util_mem_permille);
        self.util_bank_permille = self.util_bank_permille.max(other.util_bank_permille);
        self.tournament_entrants += other.tournament_entrants;
    }

    /// Render as the paper's `m/t/u/p` column. When a trial budget was in
    /// play and actually bit (`budget_skipped > 0`), the ledger is appended
    /// as `(b:spent/skipped)`; unbounded runs render exactly as before, so
    /// archived tables and golden snapshots stay byte-identical.
    pub fn mtup(&self) -> String {
        let base = format!(
            "{}/{}/{}/{}",
            self.merges, self.tail_dups, self.unrolls, self.peels
        );
        if self.budget_skipped > 0 {
            format!("{base}(b:{}/{})", self.trials, self.budget_skipped)
        } else {
            base
        }
    }

    /// The trial-budget ledger as a stable `spent/skipped` pair, for CSV
    /// columns that want the ledger unconditionally (unlike
    /// [`FormationStats::mtup`], which only appends it when the budget
    /// bit).
    pub fn ledger(&self) -> String {
        format!("{}/{}", self.trials, self.budget_skipped)
    }

    /// The block-utilization metric as a stable `insts/mem/banks` permille
    /// triple (e.g. `512/188/266` = blocks half full of instructions).
    /// Zeroes until the pipeline measures the final artifact.
    pub fn utilization(&self) -> String {
        format!(
            "{}/{}/{}",
            self.util_insts_permille, self.util_mem_permille, self.util_bank_permille
        )
    }
}

/// Outcome of one [`merge_blocks`] attempt.
#[derive(Clone, Debug, PartialEq)]
pub enum MergeOutcome {
    /// The merge was committed; the kind of duplication it used.
    Success(DuplicationKind),
    /// The merged block would violate the constraints, or combining was
    /// structurally impossible; the function is unchanged.
    Failure,
    /// The configuration forbids this kind of merge.
    Disallowed,
    /// The crash-safety net fired: the trial produced IR the verifier
    /// rejected (and was rolled back bit-identically), or the committed
    /// merge failed the differential oracle (and was undone from the
    /// pre-merge clone). Either way the function is semantically unchanged
    /// and formation may continue with the remaining candidates.
    Skipped(ChfError),
}

/// Per-run formation state: CFG analyses cached across merge trials.
///
/// The loop forest is valid for the *current* CFG. Failed trials roll the
/// CFG back to a bit-identical state, so the cache survives them; only a
/// committed merge invalidates it. Peel budgets depend only on the training
/// profile (fixed for the run) and are memoized forever.
struct FormationCtx {
    forest: Option<LoopForest>,
    /// Liveness of the current CFG, reused for the speculation-safety set
    /// of plain (duplication-free) merge trials. Taken out for the trial
    /// and put back only if the trial rolled back.
    liveness: Option<chf_ir::liveness::Liveness>,
    peel_budgets: chf_ir::fxhash::FxHashMap<BlockId, usize>,
    /// Deterministic PRNG for mid-trial fault injection, seeded lazily from
    /// [`FormationConfig::chaos`]. Lives in the context so a formation run
    /// draws one reproducible fault sequence regardless of how trials are
    /// batched.
    chaos: Option<ChaosRng>,
    /// Trial-budget ledger: merge trials spent so far in this formation
    /// run. Lives in the context (not per-seed stats) so the cap in
    /// [`FormationConfig::trial_budget`] is a *function-level* budget that
    /// hot seeds, processed first, get first claim on.
    trials_spent: usize,
}

impl FormationCtx {
    fn new() -> Self {
        FormationCtx {
            forest: None,
            liveness: None,
            peel_budgets: chf_ir::fxhash::FxHashMap::default(),
            chaos: None,
            trials_spent: 0,
        }
    }

    /// Whether the budget (if any) still has room for another trial.
    fn budget_open(&self, config: &FormationConfig) -> bool {
        config
            .trial_budget
            .is_none_or(|cap| self.trials_spent < cap)
    }

    /// The fault-injection PRNG, created on first use from the spec's seed.
    fn chaos_rng(&mut self, spec: ChaosSpec) -> &mut ChaosRng {
        self.chaos.get_or_insert_with(|| ChaosRng::new(spec.seed))
    }

    /// Whether the next injection point fires: one fault per `spec.period`
    /// trials on average, drawn deterministically from the seeded stream.
    fn chaos_fire(&mut self, spec: ChaosSpec) -> bool {
        let period = u64::from(spec.period.max(1));
        self.chaos_rng(spec).next_u64().is_multiple_of(period)
    }

    /// The loop forest of the current CFG, computed at most once between
    /// committed merges.
    fn forest(&mut self, f: &Function) -> &LoopForest {
        if self.forest.is_none() {
            self.forest = Some(LoopForest::of(f));
        }
        self.forest.as_ref().expect("just filled")
    }

    /// Invalidate CFG-shape caches after a committed merge.
    fn invalidate(&mut self) {
        self.forest = None;
        self.liveness = None;
    }

    /// Memoized [`peel_budget`] (profile-only, never invalidated).
    fn peel_budget(&mut self, profile: Option<&ProfileData>, header: BlockId) -> usize {
        *self
            .peel_budgets
            .entry(header)
            .or_insert_with(|| peel_budget(profile, header))
    }
}

/// Cheap structural pre-checks before attempting a merge.
fn legal_merge(f: &Function, hb: BlockId, s: BlockId) -> bool {
    if !f.contains_block(hb) || !f.contains_block(s) || s == f.entry {
        return false;
    }
    // Exactly one exit of hb may target s.
    f.block(hb)
        .exits
        .iter()
        .filter(|e| e.target == ExitTarget::Block(s))
        .count()
        == 1
}

/// `MergeBlocks` (Figure 5): attempt to merge `s` into `hb`, duplicating
/// `s` first when it has side entrances, optimizing if configured, and
/// committing only if the result satisfies the constraints.
pub fn merge_blocks(
    f: &mut Function,
    hb: BlockId,
    s: BlockId,
    config: &FormationConfig,
) -> MergeOutcome {
    merge_blocks_with_body(f, hb, s, config, None)
}

/// Instantiate a saved loop body as a fresh block whose back edge targets
/// `hb`, retargeting `hb`'s self edge to it. Returns `None` (no change) if
/// any of the saved body's exit targets no longer exists.
fn append_saved_iteration(
    f: &mut Function,
    hb: BlockId,
    body: &chf_ir::block::Block,
) -> Option<BlockId> {
    for e in &body.exits {
        if let Some(t) = e.target.block() {
            if t != hb && !f.contains_block(t) {
                return None;
            }
        }
    }
    let mut copy = body.clone();
    // Profile: the appended iteration carries the flow of the back edge.
    let inflow: f64 = f
        .block(hb)
        .exits
        .iter()
        .filter(|e| e.target == ExitTarget::Block(hb))
        .map(|e| e.count)
        .sum();
    let scale = if copy.freq > 0.0 {
        inflow / copy.freq
    } else {
        0.0
    };
    copy.freq = inflow;
    for e in &mut copy.exits {
        e.count *= scale;
    }
    let new = f.add_block(copy);
    let n = f.block_mut(hb).retarget_exits(hb, new);
    debug_assert!(n > 0, "no self edge to retarget");
    Some(new)
}

/// [`merge_blocks`] with an optional *saved loop body*: when the merge is an
/// unroll (`hb == s`), the appended iteration is instantiated from the body
/// saved before the first unroll, rather than from the current (already
/// unrolled) block — the paper's "saves the original loop body and appends
/// one additional iteration at a time", which keeps unroll granularity at
/// one iteration instead of doubling.
pub fn merge_blocks_with_body(
    f: &mut Function,
    hb: BlockId,
    s: BlockId,
    config: &FormationConfig,
    saved_body: Option<&chf_ir::block::Block>,
) -> MergeOutcome {
    merge_blocks_in_ctx(f, hb, s, config, saved_body, &mut FormationCtx::new())
}

/// The in-place trial/commit core of [`merge_blocks_with_body`].
///
/// A merge attempt touches a known, small set of state: the hyperblock `hb`
/// (guard code and spliced instructions/exits), the successor `s` (profile
/// rescaling during duplication, removal when merged directly), blocks
/// *appended* by duplication, and freshly allocated registers. Snapshotting
/// exactly that set makes rollback an exact inverse, so a failed trial
/// leaves `f` bit-identical to its pre-trial state — no whole-function
/// scratch clone per trial.
///
/// With `iterative_opt`, the fit decision runs the scalar pipeline scoped
/// to the merged block ([`chf_opt::optimize_block_quick`]), which mutates
/// nothing outside the snapshot. On success the scoped cleanup is rewound
/// and the historical whole-function [`chf_opt::optimize_quick`] runs once
/// at commit, reproducing the exact committed state of the scratch-space
/// implementation.
fn merge_blocks_in_ctx(
    f: &mut Function,
    hb: BlockId,
    s: BlockId,
    config: &FormationConfig,
    saved_body: Option<&chf_ir::block::Block>,
    ctx: &mut FormationCtx,
) -> MergeOutcome {
    if !legal_merge(f, hb, s) {
        return MergeOutcome::Failure;
    }
    let kind = classify(f, ctx.forest(f), hb, s);
    match kind {
        DuplicationKind::Tail if !config.tail_duplication => return MergeOutcome::Disallowed,
        DuplicationKind::Tail if f.block(s).size() > config.max_tail_dup_size => {
            return MergeOutcome::Disallowed
        }
        DuplicationKind::Unroll | DuplicationKind::Peel if !config.head_duplication => {
            return MergeOutcome::Disallowed
        }
        _ => {}
    }

    // Differential-oracle baseline: the pre-merge function, cloned only
    // when the oracle is enabled (it is `None` in production configs, so
    // the hot path never pays for the clone).
    let oracle_orig = config.oracle.as_ref().map(|_| f.clone());

    // In-place trial: snapshot the touched blocks, transform, check, then
    // keep or roll back.
    let snap = f.snapshot_blocks([hb, s]);
    // Plain merges touch nothing before `combine_with`, so the cached
    // pre-trial liveness solution (still exact — failed trials roll back
    // bit-identically) supplies the speculation-safety set. Duplication
    // trials mutate `f` first and must recompute.
    let mut cached_lv = match kind {
        DuplicationKind::None => Some(
            ctx.liveness
                .take()
                .unwrap_or_else(|| chf_ir::liveness::Liveness::compute(f)),
        ),
        _ => None,
    };
    let s_eff = match kind {
        DuplicationKind::None => s,
        DuplicationKind::Unroll if s == hb && saved_body.is_some() => {
            match append_saved_iteration(f, hb, saved_body.expect("checked")) {
                Some(b) => b,
                None => duplicate_for_merge(f, hb, s),
            }
        }
        _ => duplicate_for_merge(f, hb, s),
    };
    if combine_with_liveness(f, hb, s_eff, config.speculation, cached_lv.as_ref()).is_err() {
        f.restore_blocks(snap);
        ctx.liveness = cached_lv.take().or(ctx.liveness.take());
        return MergeOutcome::Failure;
    }
    // Canonicalize the exit list: merging both arms of a diamond leaves two
    // exits to the join; collapsing them removes the dead branch and lets
    // the join itself become a single-predecessor merge candidate.
    f.block_mut(hb).dedupe_exits();
    if config.verify_trials {
        // Crash-safety net. The combine above is exactly the class of CFG
        // surgery the verifier polices; a violation here is a compiler bug,
        // but one we can *contain*: the snapshot is a complete undo record,
        // so roll the trial back bit-identically and skip the candidate
        // instead of aborting the whole compilation.
        //
        // Fault-injection hook: with `config.chaos` set, periodically
        // corrupt the merged block inside the trial window — every injected
        // fault must be caught right here and survived via rollback, which
        // is what `chaos::campaign` asserts.
        if let Some(spec) = config.chaos {
            if ctx.chaos_fire(spec) {
                let rng = ctx.chaos_rng(spec);
                crate::chaos::corrupt_trial_block(f, hb, rng);
            }
        }
        if let Err(error) = chf_ir::verify::verify(f) {
            f.restore_blocks(snap);
            ctx.liveness = cached_lv.take().or(ctx.liveness.take());
            return MergeOutcome::Skipped(ChfError::Verify {
                context: "merge trial",
                error,
            });
        }
    } else {
        debug_assert!(chf_ir::verify::verify(f).is_ok(), "merge broke IR:\n{f}");
    }
    if config.iterative_opt {
        // Decide on the *scoped* optimization of the merged block: same
        // scalar pipeline, same two-round budget, but only `hb` is mutated
        // so the snapshot stays a complete undo record.
        let merged = f.block(hb).clone();
        chf_opt::optimize_block_quick(f, hb);
        if config.constraints.check(f, hb).is_err() {
            f.restore_blocks(snap);
            ctx.liveness = cached_lv.take().or(ctx.liveness.take());
            return MergeOutcome::Failure;
        }
        // Commit: rewind the decision's scoped cleanup, then run the
        // whole-function quick optimization the scratch-space trial used to
        // run, so the committed state matches it exactly.
        *f.block_mut(hb) = merged;
        chf_opt::optimize_quick(f);
        ctx.invalidate();
        if !f.contains_block(hb) {
            // Optimization proved the whole block unreachable (cannot
            // happen for reachable seeds, but stay safe): the cleanup is
            // already committed; report failure so expansion stops here.
            return MergeOutcome::Failure;
        }
        return commit_with_oracle(f, hb, s, config, oracle_orig, ctx, kind);
    }
    if config.constraints.check(f, hb).is_err() {
        f.restore_blocks(snap);
        ctx.liveness = cached_lv.take().or(ctx.liveness.take());
        return MergeOutcome::Failure;
    }
    ctx.invalidate();
    commit_with_oracle(f, hb, s, config, oracle_orig, ctx, kind)
}

/// Shared tail of the two commit paths: run the differential oracle (when
/// configured) against the pre-merge clone, undoing the commit on a
/// mismatch.
fn commit_with_oracle(
    f: &mut Function,
    hb: BlockId,
    s: BlockId,
    config: &FormationConfig,
    oracle_orig: Option<Function>,
    ctx: &mut FormationCtx,
    kind: DuplicationKind,
) -> MergeOutcome {
    if let Some(orig) = oracle_orig {
        if let Err(e) = crate::oracle::post_commit_check(f, hb, s, config, &orig) {
            // `post_commit_check` restored `f` from the pre-merge clone, so
            // the CFG shape changed again — drop the analysis caches.
            ctx.invalidate();
            return MergeOutcome::Skipped(e);
        }
    }
    MergeOutcome::Success(kind)
}

/// Median header-visit count of the loop headed by `header`, from its
/// trip-count histogram if the profile recorded one.
fn median_trips(profile: Option<&ProfileData>, header: BlockId) -> Option<u64> {
    let h = profile?.trip_histogram(header)?;
    if h.visits() == 0 {
        return None;
    }
    // Largest k still reached by at least half the loop visits.
    let mut k = 0;
    for &t in h.counts.keys() {
        if h.fraction_at_least(t) >= 0.5 {
            k = t;
        }
    }
    Some(k)
}

/// Mean header-visit count of the loop headed by `header`.
fn mean_trips(profile: Option<&ProfileData>, header: BlockId) -> Option<f64> {
    let h = profile?.trip_histogram(header)?;
    if h.visits() == 0 {
        None
    } else {
        Some(h.mean())
    }
}

/// How many unrolled iterations are worth appending to self-loop `hb`.
///
/// Preferred source: the loop's trip-count *histogram* (§5, "the compiler
/// can use loop trip count histograms to augment an edge frequency
/// profile") — the median visit count bounds useful unrolling; high-variance
/// loops (sieve's marking loop) would fool an average-based estimate.
/// Fallback: the expected trip count from the profiled back-edge
/// probability. A loop that iterates `t` times per visit is worth at most
/// about `t` bodies; beyond that the extra copies are nullified on most
/// executions and their exits only confuse the next-block predictor.
fn expected_unroll_budget(
    f: &Function,
    hb: BlockId,
    profile: Option<&ProfileData>,
    original_header: Option<BlockId>,
) -> usize {
    const MAX_UNROLL: usize = 8;
    if let Some(mean_visits) = mean_trips(profile, original_header.unwrap_or(hb)) {
        // `mean_visits` counts header executions per loop visit; the last
        // one exits, so useful extra bodies ≈ visits − 1.
        return ((mean_visits - 1.0).round().max(0.0) as usize).min(MAX_UNROLL);
    }
    let blk = f.block(hb);
    let total: f64 = blk.exits.iter().map(|e| e.count).sum();
    if total <= 0.0 {
        return usize::MAX; // no profile: fall back to constraint-limited
    }
    let back: f64 = blk
        .exits
        .iter()
        .filter(|e| e.target == ExitTarget::Block(hb))
        .map(|e| e.count)
        .sum();
    let p = (back / total).min(0.999_999);
    let expected_trips = 1.0 / (1.0 - p);
    (expected_trips.ceil() as usize).min(MAX_UNROLL)
}

/// Whether peeling iterations of the loop headed by `header` into a
/// predecessor is worthwhile: only for loops with reliably low trip counts
/// (§5, "a loop peeling policy can then evaluate the benefit ... using a
/// threshold function to pick an appropriate peeling factor").
fn peel_budget(profile: Option<&ProfileData>, header: BlockId) -> usize {
    match median_trips(profile, header) {
        Some(v) if v <= 5 => v as usize,
        Some(_) => 0,
        None => 1, // no histogram: allow a single speculative peel
    }
}

/// The original innermost loop header containing each block, snapshotted
/// before formation rewrites the CFG — trip histograms are keyed by these.
/// Built once per formation run from the context's cached loop forest.
fn original_headers(
    f: &Function,
    ctx: &mut FormationCtx,
) -> chf_ir::fxhash::FxHashMap<BlockId, BlockId> {
    let forest = ctx.forest(f);
    f.block_ids()
        .filter_map(|b| forest.innermost_containing(b).map(|l| (b, l.header)))
        .collect()
}

/// `ExpandBlock` (Figure 5): grow `hb` by merging candidate successors
/// chosen by `policy` until no candidate fits.
pub fn expand_block(
    f: &mut Function,
    hb: BlockId,
    policy: &mut dyn Policy,
    config: &FormationConfig,
) -> FormationStats {
    expand_block_with_profile(f, hb, policy, config, None)
}

/// [`expand_block`] with access to the training profile's trip-count
/// histograms, which bound unrolling and peeling (§5).
pub fn expand_block_with_profile(
    f: &mut Function,
    hb: BlockId,
    policy: &mut dyn Policy,
    config: &FormationConfig,
    profile: Option<&ProfileData>,
) -> FormationStats {
    let mut ctx = FormationCtx::new();
    let original_header = ctx.forest(f).innermost_containing(hb).map(|l| l.header);
    expand_block_inner(f, hb, policy, config, profile, original_header, &mut ctx)
}

#[allow(clippy::too_many_arguments)]
fn expand_block_inner(
    f: &mut Function,
    hb: BlockId,
    policy: &mut dyn Policy,
    config: &FormationConfig,
    profile: Option<&ProfileData>,
    original_header: Option<BlockId>,
    ctx: &mut FormationCtx,
) -> FormationStats {
    let mut stats = FormationStats::default();
    let mut candidates: Vec<Candidate> = Vec::new();
    let mut order = 0usize;
    let mut failed: Vec<BlockId> = Vec::new();

    let push_successors = |f: &Function,
                           candidates: &mut Vec<Candidate>,
                           order: &mut usize,
                           depth: usize,
                           failed: &[BlockId]| {
        let blk = f.block(hb);
        for (i, e) in blk.exits.iter().enumerate() {
            let Some(t) = e.target.block() else { continue };
            if failed.contains(&t) {
                continue;
            }
            let prob = blk.exit_probability(i);
            if let Some(c) = candidates.iter_mut().find(|c| c.block == t) {
                // Rediscovered (e.g., a join reached from both arms): its
                // reach probability accumulates.
                c.prob = (c.prob + prob).min(1.0);
            } else {
                candidates.push(Candidate {
                    block: t,
                    order: *order,
                    depth,
                    prob,
                });
                *order += 1;
            }
        }
    };

    push_successors(f, &mut candidates, &mut order, 0, &failed);

    let mut merges = 0usize;
    let mut unrolls_done = 0usize;
    let mut unroll_budget: Option<usize> = None;
    let mut peels_done: chf_ir::fxhash::FxHashMap<BlockId, usize> =
        chf_ir::fxhash::FxHashMap::default();
    // The pristine loop body, captured just before the first unroll so that
    // later unrolls append single iterations (paper §4.1).
    let mut saved_body: Option<chf_ir::block::Block> = None;
    while merges < config.max_merges_per_block {
        let Some(idx) = policy.select(f, hb, &candidates) else {
            break;
        };
        let cand = candidates.remove(idx);
        if !f.contains_block(cand.block) {
            continue; // merged into another block meanwhile
        }
        // Trial-budget ledger: the policy wanted this candidate, but the
        // function-level budget is spent. Charge the whole remaining
        // frontier (this candidate plus everything still queued — none of
        // it will be tried) to the skip column and stop expanding. The
        // check sits *after* the liveness filters so the ledger counts
        // candidates that would genuinely have produced a trial. The
        // wall-clock deadline shares the checkpoint: expiry mid-run keeps
        // every committed merge (anytime degradation), it only stops new
        // trials from starting.
        let deadline_expired = config
            .deadline
            .is_some_and(|d| std::time::Instant::now() >= d);
        if !ctx.budget_open(config) || deadline_expired {
            stats.budget_skipped += 1 + candidates.len();
            stats.deadline_hit |= deadline_expired;
            break;
        }
        if cand.block == hb {
            if saved_body.is_none() && classify(f, ctx.forest(f), hb, hb) == DuplicationKind::Unroll
            {
                saved_body = Some(f.block(hb).clone());
            }
            let budget = *unroll_budget
                .get_or_insert_with(|| expected_unroll_budget(f, hb, profile, original_header));
            if config.trip_aware_unroll && unrolls_done >= budget {
                failed.push(cand.block);
                continue;
            }
        } else if config.trip_aware_unroll {
            // Peeling gate: merging a loop header that is not our own back
            // edge peels an iteration; only worthwhile for reliably
            // low-trip loops.
            if classify(f, ctx.forest(f), hb, cand.block) == DuplicationKind::Peel {
                let done = *peels_done.get(&cand.block).unwrap_or(&0);
                if done >= ctx.peel_budget(profile, cand.block) {
                    failed.push(cand.block);
                    continue;
                }
            }
        }
        ctx.trials_spent += 1;
        stats.trials += 1;
        match merge_blocks_in_ctx(f, hb, cand.block, config, saved_body.as_ref(), ctx) {
            MergeOutcome::Success(kind) => {
                stats.merges += 1;
                match kind {
                    DuplicationKind::Tail => stats.tail_dups += 1,
                    DuplicationKind::Unroll => {
                        stats.unrolls += 1;
                        unrolls_done += 1;
                    }
                    DuplicationKind::Peel => {
                        stats.peels += 1;
                        *peels_done.entry(cand.block).or_insert(0) += 1;
                    }
                    DuplicationKind::None => {}
                }
                merges += 1;
                // A successful merge changes the block's shape (and
                // canonicalizes its exits), so previously failed candidates
                // may have become mergeable — retry them.
                failed.clear();
                push_successors(f, &mut candidates, &mut order, cand.depth + 1, &failed);
            }
            MergeOutcome::Failure => {
                stats.failures += 1;
                failed.push(cand.block);
            }
            MergeOutcome::Disallowed => {
                failed.push(cand.block);
            }
            MergeOutcome::Skipped(_) => {
                // The safety net contained a verifier violation or oracle
                // mismatch and left the function semantically intact; the
                // candidate is poisoned, but formation converges on the
                // rest.
                stats.skipped += 1;
                failed.push(cand.block);
            }
        }
    }
    stats
}

/// Run convergent hyperblock formation over the whole function.
///
/// Seeds are processed in descending profile-frequency order (hot loop
/// bodies first). Afterwards unreachable blocks are removed.
pub fn form_hyperblocks(
    f: &mut Function,
    policy: &mut dyn Policy,
    config: &FormationConfig,
) -> FormationStats {
    form_hyperblocks_with_profile(f, policy, config, None)
}

/// [`form_hyperblocks`] with trip-count histograms available for the
/// unroll/peel budgets.
pub fn form_hyperblocks_with_profile(
    f: &mut Function,
    policy: &mut dyn Policy,
    config: &FormationConfig,
    profile: Option<&ProfileData>,
) -> FormationStats {
    policy.prepare(f);
    // One context for the whole run: the headers map is built once, and the
    // loop forest computed for it seeds the trial cache of the first
    // expansion (it stays valid until the first committed merge).
    let mut ctx = FormationCtx::new();
    let headers = original_headers(f, &mut ctx);
    // Seed ordering decides who gets first claim on the trial budget. The
    // weight is computed before any merge rewrites the CFG, and the sort is
    // total (descending weight, ascending block id), so the visit order —
    // and therefore every downstream table — is byte-stable.
    let mut seeds: Vec<(BlockId, f64)> = f
        .blocks()
        .map(|(b, blk)| {
            let w = match config.seed_order {
                SeedOrder::Frequency => blk.freq,
                SeedOrder::HotFirst => blk.freq + blk.hottest_edge_weight(),
            };
            (b, w)
        })
        .collect();
    seeds.sort_by(|a, b| {
        b.1.partial_cmp(&a.1)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then(a.0.cmp(&b.0))
    });

    let mut stats = FormationStats::default();
    for (b, _) in seeds {
        if !f.contains_block(b) {
            continue;
        }
        let s = expand_block_inner(
            f,
            b,
            policy,
            config,
            profile,
            headers.get(&b).copied(),
            &mut ctx,
        );
        stats.merge(&s);
    }
    chf_ir::cfg::remove_unreachable(f);
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::BreadthFirst;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::Operand;
    use chf_ir::verify::verify;
    use chf_sim::functional::{profile_run, run, RunConfig};

    fn reg(r: chf_ir::ids::Reg) -> Operand {
        Operand::Reg(r)
    }

    fn digest(f: &Function, args: &[i64]) -> (Option<i64>, Vec<(i64, i64)>) {
        run(f, args, &[], &RunConfig::default()).unwrap().digest()
    }

    /// Stamp a self-profile onto `f` using the given training input.
    fn with_profile(f: &mut Function, args: &[i64]) {
        let p = profile_run(f, args, &[]).unwrap();
        p.apply(f);
    }

    fn diamond() -> Function {
        let mut fb = FunctionBuilder::new("diamond", 1);
        let e = fb.create_block();
        let t = fb.create_block();
        let z = fb.create_block();
        let j = fb.create_block();
        fb.switch_to(e);
        let out = fb.fresh_reg();
        let c = fb.cmp_lt(reg(fb.param(0)), Operand::Imm(10));
        fb.branch(c, t, z);
        fb.switch_to(t);
        fb.mov_to(out, Operand::Imm(1));
        fb.jump(j);
        fb.switch_to(z);
        fb.mov_to(out, Operand::Imm(2));
        fb.jump(j);
        fb.switch_to(j);
        let y = fb.mul(reg(out), Operand::Imm(10));
        fb.ret(Some(reg(y)));
        fb.build().unwrap()
    }

    #[test]
    fn diamond_collapses_to_one_block() {
        let mut f = diamond();
        with_profile(&mut f, &[5]);
        let orig = f.clone();
        let stats = form_hyperblocks(&mut f, &mut BreadthFirst, &FormationConfig::default());
        verify(&f).unwrap();
        assert_eq!(f.block_count(), 1, "{f}");
        assert_eq!(stats.merges, 3);
        // Breadth-first merges both arms before the join; exit
        // deduplication then leaves the join with a single predecessor, so
        // no tail duplication is needed at all.
        assert_eq!(stats.tail_dups, 0);
        for a in [0, 9, 10, 20] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
    }

    #[test]
    fn self_loop_unrolls_until_full() {
        // A tiny self-loop: formation should unroll it several times.
        let mut fb = FunctionBuilder::new("loop", 1);
        let e = fb.create_block();
        let b = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        let acc = fb.mov(Operand::Imm(0));
        fb.jump(b);
        fb.switch_to(b);
        let acc2 = fb.add(reg(acc), reg(i));
        fb.mov_to(acc, reg(acc2));
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        let c = fb.cmp_lt(reg(i), reg(fb.param(0)));
        fb.branch(c, b, x);
        fb.switch_to(x);
        fb.ret(Some(reg(acc)));
        let mut f = fb.build().unwrap();
        with_profile(&mut f, &[40]);
        let orig = f.clone();
        let stats = form_hyperblocks(&mut f, &mut BreadthFirst, &FormationConfig::default());
        verify(&f).unwrap();
        assert!(stats.unrolls >= 2, "expected unrolling, got {stats:?}");
        for a in [0, 1, 3, 17, 40] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
        // Dynamic block count must drop.
        let before = run(&orig, &[40], &[], &RunConfig::default()).unwrap();
        let after = run(&f, &[40], &[], &RunConfig::default()).unwrap();
        assert!(
            after.blocks_executed < before.blocks_executed / 2,
            "{} !< {}",
            after.blocks_executed,
            before.blocks_executed / 2
        );
    }

    #[test]
    fn loop_header_peeled_into_preheader() {
        // entry -> header loop: entry should peel an iteration when merging
        // the header.
        let mut fb = FunctionBuilder::new("peel", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        let c = fb.cmp_lt(reg(i), reg(fb.param(0)));
        fb.branch(c, h, x);
        fb.switch_to(x);
        fb.ret(Some(reg(i)));
        let mut f = fb.build().unwrap();
        with_profile(&mut f, &[3]);
        let orig = f.clone();
        let stats = form_hyperblocks(&mut f, &mut BreadthFirst, &FormationConfig::default());
        verify(&f).unwrap();
        assert!(
            stats.peels + stats.unrolls >= 1,
            "expected loop work: {stats:?}"
        );
        for a in [0, 1, 3, 8] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
    }

    #[test]
    fn constraints_bound_block_growth() {
        // With tight constraints the loop must stop unrolling early.
        let mut fb = FunctionBuilder::new("tight", 1);
        let e = fb.create_block();
        let b = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        fb.jump(b);
        fb.switch_to(b);
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        let c = fb.cmp_lt(reg(i), reg(fb.param(0)));
        fb.branch(c, b, x);
        fb.switch_to(x);
        fb.ret(Some(reg(i)));
        let mut f = fb.build().unwrap();
        with_profile(&mut f, &[100]);
        let config = FormationConfig {
            constraints: BlockConstraints {
                max_insts: 24,
                headroom_percent: 0,
                ..BlockConstraints::trips()
            },
            ..FormationConfig::default()
        };
        let orig = f.clone();
        form_hyperblocks(&mut f, &mut BreadthFirst, &config);
        verify(&f).unwrap();
        for (b, blk) in f.blocks() {
            assert!(blk.size() <= 24, "block {b} too big: {}", blk.size());
        }
        assert_eq!(digest(&f, &[100]), digest(&orig, &[100]));
    }

    #[test]
    fn head_duplication_can_be_disabled() {
        let mut fb = FunctionBuilder::new("nohead", 1);
        let e = fb.create_block();
        let b = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        fb.jump(b);
        fb.switch_to(b);
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        let c = fb.cmp_lt(reg(i), reg(fb.param(0)));
        fb.branch(c, b, x);
        fb.switch_to(x);
        fb.ret(Some(reg(i)));
        let mut f = fb.build().unwrap();
        with_profile(&mut f, &[10]);
        let config = FormationConfig {
            head_duplication: false,
            ..FormationConfig::default()
        };
        let stats = form_hyperblocks(&mut f, &mut BreadthFirst, &config);
        assert_eq!(stats.unrolls, 0);
        assert_eq!(stats.peels, 0);
    }

    #[test]
    fn formation_preserves_behaviour_on_random_programs() {
        use chf_ir::testgen::{generate, GenConfig};
        let gen_cfg = GenConfig::default();
        for seed in 0..40 {
            let mut f = generate(seed, &gen_cfg);
            // Self-profile on one input, then form.
            let p = profile_run(&f, &[3, 7], &[]).unwrap();
            p.apply(&mut f);
            let orig = f.clone();
            let cfg = FormationConfig::default();
            form_hyperblocks(&mut f, &mut BreadthFirst, &cfg);
            verify(&f).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{f}"));
            for args in [[3, 7], [0, 0], [9, 2], [-5, 11]] {
                let a = run(&orig, &args, &[], &RunConfig::default()).unwrap();
                let b = run(&f, &args, &[], &RunConfig::default()).unwrap();
                assert_eq!(
                    a.digest(),
                    b.digest(),
                    "seed {seed} args {args:?}\nBEFORE:\n{orig}\nAFTER:\n{f}"
                );
            }
        }
    }

    #[test]
    fn formation_reduces_dynamic_blocks_on_random_programs() {
        use chf_ir::testgen::{generate, GenConfig};
        let gen_cfg = GenConfig::default();
        let (mut before_total, mut after_total) = (0u64, 0u64);
        for seed in 0..25 {
            let mut f = generate(seed, &gen_cfg);
            let p = profile_run(&f, &[3, 7], &[]).unwrap();
            p.apply(&mut f);
            let orig = f.clone();
            form_hyperblocks(&mut f, &mut BreadthFirst, &FormationConfig::default());
            let a = run(&orig, &[3, 7], &[], &RunConfig::default()).unwrap();
            let b = run(&f, &[3, 7], &[], &RunConfig::default()).unwrap();
            before_total += a.blocks_executed;
            after_total += b.blocks_executed;
        }
        assert!(
            after_total * 2 <= before_total,
            "formation should at least halve dynamic blocks: {after_total} vs {before_total}"
        );
    }

    /// Count the trials an unbounded formation of `f` performs.
    fn unbounded_trials(f: &Function) -> usize {
        let mut g = f.clone();
        form_hyperblocks(&mut g, &mut BreadthFirst, &FormationConfig::default()).trials
    }

    #[test]
    fn trial_budget_stops_exactly_at_cap() {
        use chf_ir::testgen::{generate, GenConfig};
        let mut base = generate(3, &GenConfig::default());
        let p = profile_run(&base, &[3, 7], &[]).unwrap();
        p.apply(&mut base);
        let full = unbounded_trials(&base);
        assert!(full > 2, "program too small to constrain: {full} trials");
        let cap = full / 2;
        let mut f = base.clone();
        let config = FormationConfig {
            trial_budget: Some(cap),
            ..FormationConfig::default()
        };
        let stats = form_hyperblocks(&mut f, &mut BreadthFirst, &config);
        verify(&f).unwrap();
        assert_eq!(
            stats.trials, cap,
            "ledger must stop exactly at the cap ({cap})"
        );
        assert!(
            stats.budget_skipped > 0,
            "a binding budget must record skipped candidates"
        );
        // The ledger surfaces in the m/t/u/p string only when it bit.
        assert!(
            stats.mtup().contains(&format!("(b:{cap}/")),
            "mtup must carry the ledger: {}",
            stats.mtup()
        );
        // Behaviour is still preserved under a binding budget.
        for args in [[3, 7], [0, 0], [9, 2]] {
            let a = run(&base, &args, &[], &RunConfig::default()).unwrap();
            let b = run(&f, &args, &[], &RunConfig::default()).unwrap();
            assert_eq!(a.digest(), b.digest(), "args {args:?}");
        }
    }

    #[test]
    fn unbounded_budget_leaves_ledger_silent() {
        let mut f = diamond();
        with_profile(&mut f, &[5]);
        let stats = form_hyperblocks(&mut f, &mut BreadthFirst, &FormationConfig::default());
        assert!(stats.trials > 0);
        assert_eq!(stats.budget_skipped, 0);
        // Without a binding budget the m/t/u/p string must be exactly the
        // historical four-field format (golden snapshots depend on it).
        assert!(
            !stats.mtup().contains("(b:"),
            "silent ledger leaked into mtup: {}",
            stats.mtup()
        );
    }

    #[test]
    fn zero_budget_forms_nothing() {
        let mut f = diamond();
        with_profile(&mut f, &[5]);
        let before = f.block_count();
        let config = FormationConfig {
            trial_budget: Some(0),
            ..FormationConfig::default()
        };
        let stats = form_hyperblocks(&mut f, &mut BreadthFirst, &config);
        verify(&f).unwrap();
        assert_eq!(stats.trials, 0);
        assert_eq!(stats.merges, 0);
        assert!(stats.budget_skipped > 0);
        assert_eq!(f.block_count(), before, "zero budget must not transform");
    }
}
