//! TRIPS structural block constraints (paper §2).
//!
//! The TRIPS ISA restricts every block to:
//!
//! 1. at most 128 instructions;
//! 2. at most 32 load/store instructions;
//! 3. at most 8 reads and 8 writes to each of 4 register banks;
//! 4. a fixed number of outputs per block (handled by output padding, whose
//!    cost is charged as estimated instruction overhead).
//!
//! The compiler must also leave headroom for instructions inserted after
//! formation (fanout/spill code, paper §6); [`BlockConstraints::headroom_percent`]
//! models that estimate.

use chf_ir::function::Function;
use chf_ir::ids::BlockId;
use chf_ir::liveness::Liveness;
use std::fmt;

/// Structural limits a block must satisfy.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct BlockConstraints {
    /// Maximum instruction slots (instructions + branch/exit slots).
    pub max_insts: usize,
    /// Maximum load/store instructions.
    pub max_memory_ops: usize,
    /// Number of register banks.
    pub reg_banks: u32,
    /// Maximum register-file reads per bank.
    pub reads_per_bank: usize,
    /// Maximum register-file writes per bank.
    pub writes_per_bank: usize,
    /// Fraction of `max_insts` reserved for post-formation insertions
    /// (fanout, spills, output padding), in percent.
    pub headroom_percent: usize,
}

impl BlockConstraints {
    /// The TRIPS prototype's constraints: 128 instructions, 32 loads/stores,
    /// 8 reads and 8 writes across each of 4 banks, with a 10% size
    /// headroom for fanout and spill insertions.
    pub fn trips() -> Self {
        BlockConstraints {
            max_insts: 128,
            max_memory_ops: 32,
            reg_banks: 4,
            reads_per_bank: 8,
            writes_per_bank: 8,
            headroom_percent: 10,
        }
    }

    /// Unconstrained blocks (useful for testing policies in isolation).
    pub fn unlimited() -> Self {
        BlockConstraints {
            max_insts: usize::MAX,
            max_memory_ops: usize::MAX,
            reg_banks: 4,
            reads_per_bank: usize::MAX,
            writes_per_bank: usize::MAX,
            headroom_percent: 0,
        }
    }

    /// Effective instruction budget after headroom.
    pub fn effective_max_insts(&self) -> usize {
        if self.max_insts == usize::MAX {
            return usize::MAX;
        }
        self.max_insts - self.max_insts * self.headroom_percent / 100
    }

    /// Check block `b` of `f` against the constraints, using `liveness` for
    /// the register-interface counts.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn check_with(
        &self,
        f: &Function,
        b: BlockId,
        liveness: &Liveness,
    ) -> Result<(), Violation> {
        let blk = f.block(b);
        // Constant-output rule (paper §2/§4.1): every block execution must
        // produce the same number of register writes and stores, so each
        // additional exit path needs null-write padding for the outputs it
        // does not compute naturally. Charge one padding slot per register
        // output per extra exit.
        let writes = liveness.register_writes(b).len();
        let padding = blk.exits.len().saturating_sub(1) * writes;
        let size = blk.size() + padding;
        if size > self.effective_max_insts() {
            return Err(Violation::TooManyInstructions {
                block: b,
                size,
                max: self.effective_max_insts(),
            });
        }
        let mem = blk.memory_ops();
        if mem > self.max_memory_ops {
            return Err(Violation::TooManyMemoryOps {
                block: b,
                count: mem,
                max: self.max_memory_ops,
            });
        }

        let mut reads = vec![0usize; self.reg_banks as usize];
        for r in liveness.register_reads(b) {
            let bank = (r.0 % self.reg_banks) as usize;
            reads[bank] += 1;
            if reads[bank] > self.reads_per_bank {
                return Err(Violation::TooManyBankReads {
                    block: b,
                    bank: bank as u32,
                    max: self.reads_per_bank,
                });
            }
        }
        let mut writes = vec![0usize; self.reg_banks as usize];
        for r in liveness.register_writes(b) {
            let bank = (r.0 % self.reg_banks) as usize;
            writes[bank] += 1;
            if writes[bank] > self.writes_per_bank {
                return Err(Violation::TooManyBankWrites {
                    block: b,
                    bank: bank as u32,
                    max: self.writes_per_bank,
                });
            }
        }
        Ok(())
    }

    /// Check block `b`, computing liveness internally.
    ///
    /// # Errors
    /// Returns the first violated constraint.
    pub fn check(&self, f: &Function, b: BlockId) -> Result<(), Violation> {
        let lv = Liveness::compute(f);
        self.check_with(f, b, &lv)
    }

    /// Check every block of `f`.
    ///
    /// # Errors
    /// Returns the first violation found, in block order.
    pub fn check_function(&self, f: &Function) -> Result<(), Violation> {
        let lv = Liveness::compute(f);
        for b in f.block_ids() {
            self.check_with(f, b, &lv)?;
        }
        Ok(())
    }
}

impl Default for BlockConstraints {
    fn default() -> Self {
        Self::trips()
    }
}

/// A violated structural constraint.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Block exceeds the instruction-slot budget.
    TooManyInstructions {
        /// Offending block.
        block: BlockId,
        /// Its size in slots.
        size: usize,
        /// The effective budget.
        max: usize,
    },
    /// Block exceeds the load/store budget.
    TooManyMemoryOps {
        /// Offending block.
        block: BlockId,
        /// Number of memory operations.
        count: usize,
        /// The budget.
        max: usize,
    },
    /// Too many register reads from one bank.
    TooManyBankReads {
        /// Offending block.
        block: BlockId,
        /// The saturated bank.
        bank: u32,
        /// The per-bank budget.
        max: usize,
    },
    /// Too many register writes to one bank.
    TooManyBankWrites {
        /// Offending block.
        block: BlockId,
        /// The saturated bank.
        bank: u32,
        /// The per-bank budget.
        max: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::TooManyInstructions { block, size, max } => {
                write!(f, "block {block} has {size} instruction slots (max {max})")
            }
            Violation::TooManyMemoryOps { block, count, max } => {
                write!(f, "block {block} has {count} memory ops (max {max})")
            }
            Violation::TooManyBankReads { block, bank, max } => {
                write!(f, "block {block} reads bank {bank} more than {max} times")
            }
            Violation::TooManyBankWrites { block, bank, max } => {
                write!(f, "block {block} writes bank {bank} more than {max} times")
            }
        }
    }
}

impl std::error::Error for Violation {}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::Operand;

    #[test]
    fn trips_defaults() {
        let c = BlockConstraints::trips();
        assert_eq!(c.max_insts, 128);
        assert_eq!(c.effective_max_insts(), 116);
        assert_eq!(c.max_memory_ops, 32);
    }

    #[test]
    fn small_block_passes() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let x = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        assert_eq!(BlockConstraints::trips().check(&f, f.entry), Ok(()));
    }

    #[test]
    fn oversized_block_rejected() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let mut x = fb.param(0);
        for _ in 0..130 {
            x = fb.add(Operand::Reg(x), Operand::Imm(1));
        }
        fb.ret(Some(Operand::Reg(x)));
        let f = fb.build().unwrap();
        assert!(matches!(
            BlockConstraints::trips().check(&f, f.entry),
            Err(Violation::TooManyInstructions { .. })
        ));
    }

    #[test]
    fn memory_budget_enforced() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        for i in 0..33 {
            fb.store(Operand::Imm(i), Operand::Imm(0));
        }
        fb.ret(None);
        let f = fb.build().unwrap();
        assert!(matches!(
            BlockConstraints::trips().check(&f, f.entry),
            Err(Violation::TooManyMemoryOps { .. })
        ));
    }

    #[test]
    fn bank_reads_enforced() {
        // Read 9 distinct registers of bank 0 (r0, r4, r8, ...): exceeds 8.
        let mut fb = FunctionBuilder::new("f", 40);
        let e = fb.create_block();
        let tgt = fb.create_block();
        fb.switch_to(e);
        fb.jump(tgt);
        fb.switch_to(tgt);
        let mut acc = fb.mov(Operand::Imm(0));
        for i in 0..9 {
            acc = fb.add(Operand::Reg(acc), Operand::Reg(chf_ir::ids::Reg(i * 4)));
        }
        fb.ret(Some(Operand::Reg(acc)));
        let f = fb.build().unwrap();
        assert!(matches!(
            BlockConstraints::trips().check(&f, tgt),
            Err(Violation::TooManyBankReads { bank: 0, .. })
        ));
    }

    #[test]
    fn bank_writes_enforced() {
        // Write 9 registers of bank 1 that are live-out.
        let mut fb = FunctionBuilder::new("f", 0);
        let e = fb.create_block();
        let sink = fb.create_block();
        fb.switch_to(e);
        let mut regs = Vec::new();
        // Allocate registers until we have 9 in bank 1.
        while regs.len() < 9 {
            let r = fb.fresh_reg();
            if r.bank() == 1 {
                regs.push(r);
            }
        }
        for (i, r) in regs.clone().into_iter().enumerate() {
            fb.mov_to(r, Operand::Imm(i as i64));
        }
        fb.jump(sink);
        fb.switch_to(sink);
        let mut acc = fb.mov(Operand::Imm(0));
        for r in regs {
            acc = fb.add(Operand::Reg(acc), Operand::Reg(r));
        }
        fb.ret(Some(Operand::Reg(acc)));
        let f = fb.build().unwrap();
        let entry = f.entry;
        assert!(matches!(
            BlockConstraints::trips().check(&f, entry),
            Err(Violation::TooManyBankWrites { bank: 1, .. })
        ));
    }

    #[test]
    fn unlimited_accepts_everything() {
        let mut fb = FunctionBuilder::new("f", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        for i in 0..200 {
            fb.store(Operand::Imm(i), Operand::Imm(0));
        }
        fb.ret(None);
        let f = fb.build().unwrap();
        assert_eq!(BlockConstraints::unlimited().check_function(&f), Ok(()));
    }

    #[test]
    fn violation_messages() {
        let v = Violation::TooManyInstructions {
            block: BlockId(2),
            size: 150,
            max: 116,
        };
        assert!(v.to_string().contains("B2"));
        assert!(v.to_string().contains("150"));
    }
}
