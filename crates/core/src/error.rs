//! Typed error for the formation/pipeline path.
//!
//! The formation loop is iterative CFG surgery — exactly the class of
//! transformation the verifier exists to police. A violation discovered
//! mid-trial is not a reason to abort the whole compilation: the trial
//! machinery already knows how to roll the CFG back bit-identically, so the
//! correct reaction is *rollback + skip candidate*, reported through this
//! type. `ChfError` is therefore carried inside
//! [`crate::convergent::MergeOutcome::Skipped`] and surfaced by
//! [`crate::pipeline::try_compile`], never panicked.

use chf_ir::verify::VerifyError;
use chf_sim::functional::SimError;
use std::fmt;
use std::path::PathBuf;

/// An error detected (and contained) on the formation/pipeline path.
#[derive(Clone, Debug, PartialEq)]
pub enum ChfError {
    /// The IR verifier rejected the function.
    Verify {
        /// Where in the pipeline the violation was found.
        context: &'static str,
        /// The violation itself.
        error: VerifyError,
    },
    /// The functional simulator could not execute the function.
    Sim {
        /// Where in the pipeline the failure occurred.
        context: &'static str,
        /// The simulator error.
        error: SimError,
    },
    /// The differential oracle observed a behaviour change: the transformed
    /// function disagrees with the pre-transform function on a seeded input.
    OracleMismatch {
        /// Name of the function being transformed.
        function: String,
        /// The arguments on which behaviour diverged.
        args: Vec<i64>,
        /// Minimal reproducer written by the auto-shrinker, if one was
        /// produced (see `results/repros/`).
        repro: Option<PathBuf>,
    },
}

impl fmt::Display for ChfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChfError::Verify { context, error } => {
                write!(f, "verifier violation during {context}: {error}")
            }
            ChfError::Sim { context, error } => {
                write!(f, "simulation failure during {context}: {error}")
            }
            ChfError::OracleMismatch {
                function,
                args,
                repro,
            } => {
                write!(
                    f,
                    "differential oracle mismatch in `{function}` on args {args:?}"
                )?;
                if let Some(p) = repro {
                    write!(f, " (repro: {})", p.display())?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for ChfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChfError::Verify { error, .. } => Some(error),
            ChfError::Sim { error, .. } => Some(error),
            ChfError::OracleMismatch { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::ids::BlockId;

    #[test]
    fn display_is_informative() {
        let e = ChfError::Verify {
            context: "merge trial",
            error: VerifyError::DanglingEdge(BlockId(3), BlockId(9)),
        };
        let s = e.to_string();
        assert!(s.contains("merge trial"));
        assert!(s.contains("B3"));

        let m = ChfError::OracleMismatch {
            function: "gcd".into(),
            args: vec![3, 7],
            repro: Some(PathBuf::from("results/repros/gcd-1234.til")),
        };
        let s = m.to_string();
        assert!(s.contains("gcd"));
        assert!(s.contains("repro"));
    }

    #[test]
    fn source_chains_to_inner_error() {
        use std::error::Error;
        let e = ChfError::Sim {
            context: "oracle run",
            error: chf_sim::functional::SimError::OutOfFuel { executed: 7 },
        };
        assert!(e.source().is_some());
    }
}
