//! Typed error for the formation/pipeline path.
//!
//! The formation loop is iterative CFG surgery — exactly the class of
//! transformation the verifier exists to police. A violation discovered
//! mid-trial is not a reason to abort the whole compilation: the trial
//! machinery already knows how to roll the CFG back bit-identically, so the
//! correct reaction is *rollback + skip candidate*, reported through this
//! type. `ChfError` is therefore carried inside
//! [`crate::convergent::MergeOutcome::Skipped`] and surfaced by
//! [`crate::pipeline::try_compile`], never panicked.

use chf_ir::parse::ParseError;
use chf_ir::verify::VerifyError;
use chf_sim::functional::SimError;
use std::fmt;
use std::path::PathBuf;

/// An error detected (and contained) on the formation/pipeline path.
#[derive(Clone, Debug, PartialEq)]
pub enum ChfError {
    /// The IR verifier rejected the function.
    Verify {
        /// Where in the pipeline the violation was found.
        context: &'static str,
        /// The violation itself.
        error: VerifyError,
    },
    /// The functional simulator could not execute the function.
    Sim {
        /// Where in the pipeline the failure occurred.
        context: &'static str,
        /// The simulator error.
        error: SimError,
    },
    /// The differential oracle observed a behaviour change: the transformed
    /// function disagrees with the pre-transform function on a seeded input.
    OracleMismatch {
        /// Name of the function being transformed.
        function: String,
        /// The arguments on which behaviour diverged.
        args: Vec<i64>,
        /// Minimal reproducer written by the auto-shrinker, if one was
        /// produced (see `results/repros/`).
        repro: Option<PathBuf>,
    },
    /// Submitted `.til` text did not parse — a client error, reported with
    /// the parser's line/message diagnostics.
    Parse {
        /// The parse failure.
        error: ParseError,
    },
    /// A panic escaped the compilation itself and was caught at an
    /// isolation boundary (`catch_unwind` in the compile service or the
    /// benchmark harness). Unlike the typed variants above, nothing is
    /// known about the cause beyond the payload message — which is exactly
    /// why it is classified as *transient*: the retry policy distinguishes
    /// an environmental failure (allocation pressure, a poisoned worker)
    /// from a deterministic bug by compiling again.
    Panicked {
        /// Which isolation boundary caught the panic.
        context: &'static str,
        /// The panic payload rendered as text.
        message: String,
    },
}

impl ChfError {
    /// Whether the retry policy should re-attempt the compilation.
    ///
    /// Verifier violations, simulator failures, oracle mismatches, and
    /// parse errors are deterministic properties of (input, config) —
    /// retrying reproduces them byte-for-byte, so they are permanent. A
    /// caught panic is the one failure whose cause is unknown; one retry
    /// distinguishes environmental from deterministic (the same contract
    /// as `par_map_isolated`'s retry-once rationale).
    pub fn is_transient(&self) -> bool {
        matches!(self, ChfError::Panicked { .. })
    }
}

impl fmt::Display for ChfError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ChfError::Verify { context, error } => {
                write!(f, "verifier violation during {context}: {error}")
            }
            ChfError::Sim { context, error } => {
                write!(f, "simulation failure during {context}: {error}")
            }
            ChfError::OracleMismatch {
                function,
                args,
                repro,
            } => {
                write!(
                    f,
                    "differential oracle mismatch in `{function}` on args {args:?}"
                )?;
                if let Some(p) = repro {
                    write!(f, " (repro: {})", p.display())?;
                }
                Ok(())
            }
            ChfError::Parse { error } => write!(f, "parse error: {error}"),
            ChfError::Panicked { context, message } => {
                write!(f, "panic caught during {context}: {message}")
            }
        }
    }
}

impl std::error::Error for ChfError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ChfError::Verify { error, .. } => Some(error),
            ChfError::Sim { error, .. } => Some(error),
            ChfError::Parse { error } => Some(error),
            ChfError::OracleMismatch { .. } | ChfError::Panicked { .. } => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::ids::BlockId;

    #[test]
    fn display_is_informative() {
        let e = ChfError::Verify {
            context: "merge trial",
            error: VerifyError::DanglingEdge(BlockId(3), BlockId(9)),
        };
        let s = e.to_string();
        assert!(s.contains("merge trial"));
        assert!(s.contains("B3"));

        let m = ChfError::OracleMismatch {
            function: "gcd".into(),
            args: vec![3, 7],
            repro: Some(PathBuf::from("results/repros/gcd-1234.til")),
        };
        let s = m.to_string();
        assert!(s.contains("gcd"));
        assert!(s.contains("repro"));
    }

    #[test]
    fn source_chains_to_inner_error() {
        use std::error::Error;
        let e = ChfError::Sim {
            context: "oracle run",
            error: chf_sim::functional::SimError::OutOfFuel { executed: 7 },
        };
        assert!(e.source().is_some());
        let p = ChfError::Parse {
            error: ParseError {
                line: 3,
                message: "bad opcode".into(),
            },
        };
        assert!(p.source().is_some());
        assert!(p.to_string().contains("line 3"));
    }

    #[test]
    fn only_panics_are_transient() {
        let panicked = ChfError::Panicked {
            context: "service worker",
            message: "boom".into(),
        };
        assert!(panicked.is_transient());
        assert!(panicked.to_string().contains("service worker"));
        let verify = ChfError::Verify {
            context: "compiled output",
            error: VerifyError::DanglingEdge(BlockId(0), BlockId(1)),
        };
        assert!(!verify.is_transient());
        assert!(!ChfError::OracleMismatch {
            function: "f".into(),
            args: vec![],
            repro: None,
        }
        .is_transient());
    }
}
