//! Fanout insertion (paper §6).
//!
//! TRIPS instructions name their consumers directly (target form), and each
//! instruction encodes a small fixed number of targets. A value with more
//! consumers than targets needs a tree of `mov` (fanout) instructions to
//! replicate it. Scale inserts these after register allocation, which is
//! why hyperblock formation must leave size headroom
//! ([`crate::constraints::BlockConstraints::headroom_percent`]).
//!
//! [`insert_fanout`] rewrites each block so no value feeds more than
//! `max_targets` in-block consumers, building forwarding chains of `mov`s,
//! and returns how many instructions were added — validating the headroom
//! estimate.

use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::ids::Reg;
use chf_ir::instr::{Instr, Operand};

/// Fanout statistics.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct FanoutStats {
    /// `mov` instructions inserted.
    pub movs_inserted: usize,
    /// Maximum consumer count observed for a single definition.
    pub max_fanout: usize,
}

/// Number of uses of `r` by one instruction (operands and predicate).
fn uses_of(inst: &Instr, r: Reg) -> usize {
    inst.uses().filter(|u| *u == r).count()
}

/// Consumers of the value defined at `idx` (register `d`): the instruction
/// indices using it before any redefinition, plus the number of *tail*
/// consumers (exit predicates, return operands, and — if no redefinition
/// shadows it — one register-write slot for a potentially live-out value).
/// `live_out`: whether `d` is live out of the block (it then also occupies
/// one register-file write target that cannot be rerouted to a copy).
fn consumers_of(
    blk: &chf_ir::block::Block,
    idx: usize,
    d: Reg,
    live_out: bool,
) -> (Vec<usize>, usize, usize) {
    let mut inst_uses = Vec::new();
    let mut shadowed = false;
    for (j, inst) in blk.insts.iter().enumerate().skip(idx + 1) {
        for _ in 0..uses_of(inst, d) {
            inst_uses.push(j);
        }
        if inst.def() == Some(d) {
            shadowed = true;
            break;
        }
    }
    let mut exit_uses = 0;
    let mut write_slot = 0;
    if !shadowed {
        for e in &blk.exits {
            if e.pred.map(|p| p.reg == d).unwrap_or(false) {
                exit_uses += 1;
            }
            if matches!(e.target, ExitTarget::Return(Some(Operand::Reg(x))) if x == d) {
                exit_uses += 1;
            }
        }
        if live_out {
            write_slot = 1;
        }
    }
    (inst_uses, exit_uses, write_slot)
}

/// Rewrite uses of `from` to `to` in instructions `range` (stopping at a
/// redefinition of `from`) and in the exits if reached, leaving the first
/// `skip_exit_uses` exit reads on the original register.
fn retarget_uses(
    blk: &mut chf_ir::block::Block,
    start: usize,
    from: Reg,
    to: Reg,
    skip_exit_uses: usize,
) {
    let mut hit_redef = false;
    for inst in blk.insts[start..].iter_mut() {
        // Remap *uses* only — a redefinition keeps its destination (and its
        // operands still read the old value being forwarded).
        for o in [inst.a.as_mut(), inst.b.as_mut()].into_iter().flatten() {
            if let Operand::Reg(r) = o {
                if *r == from {
                    *r = to;
                }
            }
        }
        if let Some(p) = inst.pred.as_mut() {
            if p.reg == from {
                p.reg = to;
            }
        }
        if inst.def() == Some(from) {
            hit_redef = true;
            break;
        }
    }
    if !hit_redef {
        let mut skipped = 0;
        for e in blk.exits.iter_mut() {
            if let Some(p) = e.pred.as_mut() {
                if p.reg == from {
                    if skipped < skip_exit_uses {
                        skipped += 1;
                    } else {
                        p.reg = to;
                    }
                }
            }
            if let ExitTarget::Return(Some(Operand::Reg(x))) = &mut e.target {
                if *x == from {
                    if skipped < skip_exit_uses {
                        skipped += 1;
                    } else {
                        *x = to;
                    }
                }
            }
        }
    }
}

/// Insert fanout chains so that no definition feeds more than `max_targets`
/// consumers within its block. Returns statistics; behaviour is preserved
/// (pure copies).
///
/// # Panics
/// Panics if `max_targets < 2` (a chain node must forward at least one
/// consumer besides the link to the next node).
pub fn insert_fanout(f: &mut Function, max_targets: usize) -> FanoutStats {
    assert!(max_targets >= 2, "fanout chains need at least two targets");
    let mut stats = FanoutStats::default();
    let liveness = chf_ir::liveness::Liveness::compute(f);
    let ids: Vec<_> = f.block_ids().collect();

    for b in ids {
        // Pre-pass: an instruction reading the same register several times
        // (e.g. `sub r4, r4`, or a predicate matching an operand) forms an
        // atomic consumer group the forwarding chain cannot split; route
        // the extra reads through copies first so every instruction
        // consumes each value at most once.
        let mut j = 0;
        while j < f.block(b).insts.len() {
            let multi: Vec<Reg> = {
                let inst = &f.block(b).insts[j];
                let mut seen = std::collections::HashSet::new();
                let mut dup = Vec::new();
                for u in inst.uses() {
                    if !seen.insert(u) && !dup.contains(&u) {
                        dup.push(u);
                    }
                }
                dup
            };
            for r in multi {
                while uses_of(&f.block(b).insts[j], r) > 1 {
                    let copy = f.new_reg();
                    {
                        let inst = &mut f.block_mut(b).insts[j];
                        // Replace one occurrence: prefer the predicate,
                        // then the second operand.
                        if inst.pred.map(|p| p.reg == r).unwrap_or(false) {
                            inst.pred.as_mut().expect("checked").reg = copy;
                        } else if inst.b == Some(Operand::Reg(r)) {
                            inst.b = Some(Operand::Reg(copy));
                        } else {
                            inst.a = Some(Operand::Reg(copy));
                        }
                    }
                    f.block_mut(b)
                        .insts
                        .insert(j, Instr::mov(copy, Operand::Reg(r)));
                    stats.movs_inserted += 1;
                    j += 1; // the instruction moved one slot down
                }
            }
            j += 1;
        }

        // Fresh copies are block-local, so only the pre-existing live-out
        // set matters; it is not changed by inserting movs of fresh regs.
        let live_out = liveness.live_out(b);
        let mut idx = 0;
        while idx < f.block(b).insts.len() {
            let Some(d) = f.block(b).insts[idx].def() else {
                idx += 1;
                continue;
            };
            let (inst_uses, exit_uses, write_slot) =
                consumers_of(f.block(b), idx, d, live_out.contains(&d));
            let total = inst_uses.len() + exit_uses + write_slot;
            stats.max_fanout = stats.max_fanout.max(total);

            if total > max_targets {
                // d keeps its (unreroutable) write slot, the link to the
                // copy, and as many leading uses as fit; the copy serves
                // the rest (the outer loop splits it again if needed).
                let keep = max_targets - 1 - write_slot;
                let copy = f.new_reg();
                let blk = f.block_mut(b);
                // When all instruction uses fit, d additionally keeps its
                // first few exit reads up to the budget; the rest move.
                let (split_pos, insert_at, skip_exits) = if keep < inst_uses.len() {
                    (inst_uses[keep], inst_uses[keep], 0)
                } else {
                    (blk.insts.len(), blk.insts.len(), keep - inst_uses.len())
                };
                retarget_uses(blk, split_pos, d, copy, skip_exits);
                blk.insts
                    .insert(insert_at, Instr::mov(copy, Operand::Reg(d)));
                stats.movs_inserted += 1;
            }
            idx += 1;
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::verify::verify;
    use chf_sim::functional::{run, RunConfig};

    fn digest(f: &Function, args: &[i64]) -> (Option<i64>, Vec<(i64, i64)>) {
        run(f, args, &[], &RunConfig::default()).unwrap().digest()
    }

    fn wide_consumer(n: usize) -> Function {
        let mut fb = FunctionBuilder::new("wide", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let v = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        let mut acc = fb.mov(Operand::Imm(0));
        for _ in 0..n {
            acc = fb.add(Operand::Reg(acc), Operand::Reg(v));
        }
        fb.ret(Some(Operand::Reg(acc)));
        fb.build().unwrap()
    }

    /// Re-count the worst in-block fanout (instruction uses + exits + the
    /// register-write slot) after insertion.
    fn worst_fanout(f: &Function) -> usize {
        let liveness = chf_ir::liveness::Liveness::compute(f);
        let mut worst = 0;
        for (b, blk) in f.blocks() {
            let live_out = liveness.live_out(b);
            for (idx, inst) in blk.insts.iter().enumerate() {
                if let Some(d) = inst.def() {
                    let (uses, exits, slot) =
                        consumers_of(f.block(b), idx, d, live_out.contains(&d));
                    worst = worst.max(uses.len() + exits + slot);
                }
            }
        }
        worst
    }

    #[test]
    fn no_fanout_needed_for_narrow_use() {
        let mut f = wide_consumer(2);
        let stats = insert_fanout(&mut f, 5);
        assert_eq!(stats.movs_inserted, 0);
    }

    #[test]
    fn fanout_bounds_consumer_counts() {
        let mut f = wide_consumer(10);
        let orig = f.clone();
        let stats = insert_fanout(&mut f, 3);
        assert!(stats.movs_inserted >= 3, "{stats:?}");
        assert!(stats.max_fanout >= 10);
        verify(&f).unwrap();
        for a in [0, 5, -3] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
        assert!(
            worst_fanout(&f) <= 3,
            "residual fanout {}",
            worst_fanout(&f)
        );
    }

    #[test]
    fn fanout_converges_with_live_out_values() {
        // The value is consumed by instructions AND returned: the chain must
        // still terminate and bound the count.
        let mut fb = FunctionBuilder::new("lv", 1);
        let e = fb.create_block();
        fb.switch_to(e);
        let v = fb.add(Operand::Reg(fb.param(0)), Operand::Imm(1));
        let mut acc = fb.mov(Operand::Imm(0));
        for _ in 0..6 {
            acc = fb.add(Operand::Reg(acc), Operand::Reg(v));
        }
        let s = fb.add(Operand::Reg(acc), Operand::Reg(v));
        fb.ret(Some(Operand::Reg(s)));
        let mut f = fb.build().unwrap();
        let orig = f.clone();
        insert_fanout(&mut f, 2);
        verify(&f).unwrap();
        assert!(worst_fanout(&f) <= 2);
        for a in [1, -4] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]));
        }
    }

    #[test]
    fn fanout_preserves_behaviour_on_generated_programs() {
        use chf_ir::testgen::{generate, GenConfig};
        for seed in 0..25 {
            let f0 = generate(seed, &GenConfig::default());
            let mut f1 = f0.clone();
            insert_fanout(&mut f1, 2);
            verify(&f1).unwrap_or_else(|e| panic!("seed {seed}: {e}"));
            assert!(worst_fanout(&f1) <= 2, "seed {seed}");
            for args in [[3, 7], [0, 0], [-5, 2]] {
                let a = run(&f0, &args, &[], &RunConfig::default()).unwrap();
                let b = run(&f1, &args, &[], &RunConfig::default()).unwrap();
                assert_eq!(a.digest(), b.digest(), "seed {seed} args {args:?}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two targets")]
    fn rejects_single_target() {
        let mut f = wide_consumer(3);
        insert_fanout(&mut f, 1);
    }
}
