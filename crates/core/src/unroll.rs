//! Discrete loop unrolling and peeling — the classical phases that the
//! convergent algorithm replaces (paper §3, §7.1).
//!
//! Two variants, matching the two classical phase orderings of Table 1:
//!
//! * [`cfg_unroll_and_peel`] — **UPIO's `UP`**: operates on the basic-block
//!   CFG *before* if-conversion. It must pick unroll factors from
//!   basic-block sizes, i.e. from inaccurate estimates of the eventual
//!   hyperblock sizes — the phase-ordering handicap the paper describes.
//! * [`hyperblock_unroll_peel`] — **IUPO's `UP`**: operates *after*
//!   if-conversion on loops whose body has collapsed into a single
//!   hyperblock, replicating the predicated body inside the block (Mahlke's
//!   hyperblock loop unrolling). Size estimates are now accurate, but the
//!   phase runs once: it cannot interleave with further if-conversion or
//!   scalar optimization the way convergent formation can.
//!
//! Peel factors come from the profile's loop trip-count histograms (§5,
//! "Loop peeling and unrolling").

use crate::constraints::BlockConstraints;
use chf_ir::block::ExitTarget;
use chf_ir::function::Function;
use chf_ir::ids::BlockId;
use chf_ir::loops::LoopForest;
use chf_ir::profile::ProfileData;
use std::collections::HashMap;

/// Knobs for the discrete passes.
#[derive(Clone, Debug)]
pub struct UnrollParams {
    /// Maximum iterations to peel per loop.
    pub max_peel: usize,
    /// Maximum copies of a body per loop (unroll factor − 1).
    pub max_unroll: usize,
    /// Target block size the unroller aims to fill.
    pub target_size: usize,
    /// Only peel when at least this fraction of loop visits reach the
    /// peeled iteration count.
    pub min_peel_coverage: f64,
}

impl Default for UnrollParams {
    fn default() -> Self {
        UnrollParams {
            max_peel: 3,
            max_unroll: 3,
            target_size: 96,
            min_peel_coverage: 0.5,
        }
    }
}

/// Counts of discrete transformations applied.
#[derive(Copy, Clone, Debug, Default, PartialEq, Eq)]
pub struct UnrollStats {
    /// Body copies appended inside loops.
    pub unrolls: usize,
    /// Iterations peeled ahead of loops.
    pub peels: usize,
}

/// Copy all blocks of `body`, returning the old→new id map. Intra-body
/// edges are remapped to the copies; edges leaving the body are preserved.
/// Back edges (to `header`) are left pointing at the *original* header; the
/// caller rewires them as peeling or unrolling requires.
fn copy_body(f: &mut Function, body: &[BlockId], header: BlockId) -> HashMap<BlockId, BlockId> {
    let map: HashMap<BlockId, BlockId> = body.iter().map(|&b| (b, f.duplicate_block(b))).collect();
    for (&old, &new) in &map {
        let _ = old;
        let blk = f.block_mut(new);
        for e in &mut blk.exits {
            if let ExitTarget::Block(t) = e.target {
                if t != header {
                    if let Some(&nt) = map.get(&t) {
                        e.target = ExitTarget::Block(nt);
                    }
                }
            }
        }
    }
    map
}

/// Peel one iteration of the loop headed by `header`: the copy runs first,
/// then control enters the original loop.
///
/// Returns `false` (no change) if the header is the function entry or the
/// loop shape is unsuitable.
pub fn peel_one(f: &mut Function, header: BlockId) -> bool {
    let forest = LoopForest::of(f);
    let Some(l) = forest.loop_of_header(header) else {
        return false;
    };
    if header == f.entry {
        return false;
    }
    let body: Vec<BlockId> = {
        let mut v: Vec<BlockId> = l.body.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let entry_preds: Vec<BlockId> = f
        .block_ids()
        .filter(|&p| !l.body.contains(&p) && f.block(p).successors().any(|s| s == header))
        .collect();
    if entry_preds.is_empty() {
        return false;
    }

    let map = copy_body(f, &body, header);
    // Copy back edges (still pointing at the original header) stay: after
    // the peeled iteration the original loop runs. Loop-entry edges are
    // redirected to the copied header.
    let new_header = map[&header];
    for p in entry_preds {
        f.block_mut(p).retarget_exits(header, new_header);
    }
    true
}

/// Append one unrolled iteration to the loop headed by `header`: original
/// back edges go to the body copy, whose back edges return to the original
/// header (Figure 4 generalized to multi-block bodies).
pub fn unroll_one(f: &mut Function, header: BlockId) -> bool {
    let forest = LoopForest::of(f);
    let Some(l) = forest.loop_of_header(header) else {
        return false;
    };
    let body: Vec<BlockId> = {
        let mut v: Vec<BlockId> = l.body.iter().copied().collect();
        v.sort_unstable();
        v
    };
    let latches: Vec<BlockId> = l.back_edges.iter().map(|&(u, _)| u).collect();
    let map = copy_body(f, &body, header);
    let new_header = map[&header];
    for latch in latches {
        f.block_mut(latch).retarget_exits(header, new_header);
    }
    // The copy's back edges already target the original header.
    true
}

/// Static size of a loop body in instruction slots.
fn body_size(f: &Function, body: &chf_ir::fxhash::FxHashSet<BlockId>) -> usize {
    body.iter().map(|&b| f.block(b).size()).sum()
}

/// Decide peel/unroll factors for one loop from its trip histogram and
/// size, mirroring the paper's threshold policy.
fn decide(
    f: &Function,
    header: BlockId,
    body: &chf_ir::fxhash::FxHashSet<BlockId>,
    profile: &ProfileData,
    params: &UnrollParams,
) -> (usize, usize) {
    let size = body_size(f, body).max(1);
    let hist = profile.trip_histogram(header);
    let mut peel = 0usize;
    let mut unroll = 0usize;

    if let Some(h) = hist {
        if let Some(mode) = h.mode() {
            // Low-trip-count loops: peel the common number of iterations.
            // (The header is tested once more than the body runs, so a mode
            // of k header visits means k-1 completed iterations; peeling the
            // mode still covers the test chain.)
            let mode = mode as usize;
            if mode >= 1
                && mode <= params.max_peel
                && h.fraction_at_least(mode as u64) >= params.min_peel_coverage
            {
                peel = mode.min(params.max_peel);
            }
        }
        // High-trip-count loops: unroll to fill the target size.
        if h.mean() >= 8.0 {
            let fit = params.target_size / size;
            unroll = fit.saturating_sub(1).min(params.max_unroll);
        }
    }
    (peel, unroll)
}

/// UPIO's discrete `UP` phase: profile-driven unroll and peel over the
/// basic-block CFG.
pub fn cfg_unroll_and_peel(
    f: &mut Function,
    profile: &ProfileData,
    params: &UnrollParams,
) -> UnrollStats {
    let mut stats = UnrollStats::default();
    // Snapshot headers up front; transformations change the loop forest.
    let headers: Vec<BlockId> = {
        let forest = LoopForest::of(f);
        let mut hs: Vec<(usize, BlockId)> = forest
            .loops
            .iter()
            .map(|l| (forest.depth(l.header), l.header))
            .collect();
        // Innermost first.
        hs.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));
        hs.into_iter().map(|(_, h)| h).collect()
    };

    for header in headers {
        if !f.contains_block(header) {
            continue;
        }
        let forest = LoopForest::of(f);
        let Some(l) = forest.loop_of_header(header) else {
            continue;
        };
        let (peel, unroll) = decide(f, header, &l.body, profile, params);
        for _ in 0..peel {
            if peel_one(f, header) {
                stats.peels += 1;
            }
        }
        for _ in 0..unroll {
            if unroll_one(f, header) {
                stats.unrolls += 1;
            }
        }
    }
    stats
}

/// IUPO's discrete `UP` phase: unroll/peel loops whose body has collapsed
/// into a single hyperblock, replicating the predicated body inside the
/// block via head duplication, with accurate size estimates.
pub fn hyperblock_unroll_peel(
    f: &mut Function,
    profile: &ProfileData,
    constraints: &BlockConstraints,
    params: &UnrollParams,
) -> UnrollStats {
    let mut stats = UnrollStats::default();
    let headers: Vec<BlockId> = {
        let forest = LoopForest::of(f);
        forest
            .loops
            .iter()
            .filter(|l| l.body.len() == 1) // single-hyperblock loops only
            .map(|l| l.header)
            .collect()
    };

    let merge_config = crate::convergent::FormationConfig {
        constraints: constraints.clone(),
        head_duplication: true,
        tail_duplication: true,
        iterative_opt: false,
        trip_aware_unroll: true,
        speculation: true,
        max_tail_dup_size: 24,
        max_merges_per_block: 64,
        ..crate::convergent::FormationConfig::default()
    };

    for header in headers {
        if !f.contains_block(header) {
            continue;
        }
        let size = f.block(header).size().max(1);
        let budget = constraints.effective_max_insts();
        let fit = (budget / size).saturating_sub(1).min(params.max_unroll);

        // Unroll: append `fit` copies of the (saved) body to the header
        // block, one iteration at a time.
        let saved = f.block(header).clone();
        for _ in 0..fit {
            if !f.block(header).successors().any(|s| s == header) {
                break; // self edge gone (fully unrolled or shape changed)
            }
            match crate::convergent::merge_blocks_with_body(
                f,
                header,
                header,
                &merge_config,
                Some(&saved),
            ) {
                crate::convergent::MergeOutcome::Success(_) => stats.unrolls += 1,
                _ => break,
            }
        }

        // Peel into the (unique, non-loop) predecessor when trip counts are
        // low, merging header copies into it.
        let Some(hist) = profile.trip_histogram(header) else {
            continue;
        };
        let Some(mode) = hist.mode() else { continue };
        let mode = mode as usize;
        if mode == 0
            || mode > params.max_peel
            || hist.fraction_at_least(mode as u64) < params.min_peel_coverage
        {
            continue;
        }
        for _ in 0..mode {
            let preds: Vec<BlockId> = f
                .block_ids()
                .filter(|&p| p != header && f.block(p).successors().any(|s| s == header))
                .collect();
            let [pred] = preds.as_slice() else { break };
            let pred = *pred;
            match crate::convergent::merge_blocks(f, pred, header, &merge_config) {
                crate::convergent::MergeOutcome::Success(_) => stats.peels += 1,
                _ => break,
            }
        }
    }
    stats
}

#[cfg(test)]
mod tests {
    use super::*;
    use chf_ir::builder::FunctionBuilder;
    use chf_ir::instr::Operand;
    use chf_ir::verify::verify;
    use chf_sim::functional::{profile_run, run, RunConfig};

    fn reg(r: chf_ir::ids::Reg) -> Operand {
        Operand::Reg(r)
    }

    fn digest(f: &Function, args: &[i64]) -> (Option<i64>, Vec<(i64, i64)>) {
        run(f, args, &[], &RunConfig::default()).unwrap().digest()
    }

    /// e -> h; h -> body | exit; body -> h   (while loop, multi-block)
    fn while_loop() -> Function {
        let mut fb = FunctionBuilder::new("wl", 1);
        let e = fb.create_block();
        let h = fb.create_block();
        let body = fb.create_block();
        let exit = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        let acc = fb.mov(Operand::Imm(0));
        fb.jump(h);
        fb.switch_to(h);
        let c = fb.cmp_lt(reg(i), reg(fb.param(0)));
        fb.branch(c, body, exit);
        fb.switch_to(body);
        let acc2 = fb.add(reg(acc), reg(i));
        fb.mov_to(acc, reg(acc2));
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        fb.jump(h);
        fb.switch_to(exit);
        fb.ret(Some(reg(acc)));
        fb.build().unwrap()
    }

    #[test]
    fn peel_one_preserves_behaviour() {
        let mut f = while_loop();
        let orig = f.clone();
        assert!(peel_one(&mut f, BlockId(1)));
        verify(&f).unwrap();
        assert!(f.block_count() > orig.block_count());
        for a in [0, 1, 2, 5, 10] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
    }

    #[test]
    fn unroll_one_preserves_behaviour() {
        let mut f = while_loop();
        let orig = f.clone();
        assert!(unroll_one(&mut f, BlockId(1)));
        verify(&f).unwrap();
        for a in [0, 1, 2, 5, 11] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
    }

    #[test]
    fn repeated_unroll_is_not_power_of_two_limited() {
        let mut f = while_loop();
        let orig = f.clone();
        assert!(unroll_one(&mut f, BlockId(1)));
        assert!(unroll_one(&mut f, BlockId(1)));
        verify(&f).unwrap();
        // Three bodies in the cycle now.
        for a in [0, 1, 2, 3, 7, 9] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
    }

    #[test]
    fn cfg_pass_uses_profile() {
        let mut f = while_loop();
        // High-trip-count training input: unrolling expected.
        let profile = profile_run(&f, &[50], &[]).unwrap();
        profile.apply(&mut f);
        let orig = f.clone();
        let stats = cfg_unroll_and_peel(&mut f, &profile, &UnrollParams::default());
        verify(&f).unwrap();
        assert!(stats.unrolls > 0, "{stats:?}");
        for a in [0, 3, 50] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
    }

    #[test]
    fn cfg_pass_peels_low_trip_loops() {
        let mut f = while_loop();
        let profile = profile_run(&f, &[2], &[]).unwrap();
        profile.apply(&mut f);
        let stats = cfg_unroll_and_peel(&mut f, &profile, &UnrollParams::default());
        verify(&f).unwrap();
        assert!(stats.peels > 0, "{stats:?}");
    }

    #[test]
    fn hyperblock_unroll_on_self_loop() {
        // Build a self-loop hyperblock directly.
        let mut fb = FunctionBuilder::new("hb", 1);
        let e = fb.create_block();
        let b = fb.create_block();
        let x = fb.create_block();
        fb.switch_to(e);
        let i = fb.mov(Operand::Imm(0));
        fb.jump(b);
        fb.switch_to(b);
        let i2 = fb.add(reg(i), Operand::Imm(1));
        fb.mov_to(i, reg(i2));
        let c = fb.cmp_lt(reg(i), reg(fb.param(0)));
        fb.branch(c, b, x);
        fb.switch_to(x);
        fb.ret(Some(reg(i)));
        let mut f = fb.build().unwrap();
        let profile = profile_run(&f, &[40], &[]).unwrap();
        profile.apply(&mut f);
        let orig = f.clone();
        let stats = hyperblock_unroll_peel(
            &mut f,
            &profile,
            &BlockConstraints::trips(),
            &UnrollParams::default(),
        );
        verify(&f).unwrap();
        assert!(stats.unrolls >= 1, "{stats:?}");
        for a in [0, 1, 5, 40] {
            assert_eq!(digest(&f, &[a]), digest(&orig, &[a]), "arg {a}");
        }
        // Dynamic blocks per iteration must drop.
        let before = run(&orig, &[40], &[], &RunConfig::default()).unwrap();
        let after = run(&f, &[40], &[], &RunConfig::default()).unwrap();
        assert!(after.blocks_executed < before.blocks_executed);
    }
}
